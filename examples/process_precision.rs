//! Manufacturing-precision analysis (paper §10, Theorem 5): sweep the
//! lower-bound fraction `f = dmin/dmax` and watch the exact 2-vector
//! delay plateau below the threshold `f* = D(C,[0,dmax],2)/L`.
//!
//! ```sh
//! cargo run --example process_precision
//! ```

use tbf_suite::core::lower_bounds::{precision_sweep, precision_threshold};
use tbf_suite::core::DelayOptions;
use tbf_suite::logic::generators::adders::paper_bypass_adder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = paper_bypass_adder();
    let opts = DelayOptions::default();

    let f_star = precision_threshold(&adder, &opts)?;
    println!(
        "circuit: paper §11 bypass adder (L = {})",
        adder.topological_delay()
    );
    println!("Theorem 5 threshold f* = D(C,[0,dmax],2)/L = {f_star:.3}\n");

    println!("{:>6}  {:>8}   note", "f", "D(2)");
    let sweep = precision_sweep(&adder, 11, &opts)?;
    let plateau = sweep[0].delay;
    for p in &sweep {
        let f = p.fraction();
        let note = if f < f_star {
            "plateau (lower bounds irrelevant below f*)"
        } else if p.delay == plateau {
            "still at the unbounded-model delay"
        } else {
            "lower bounds now bite"
        };
        let bar = "█".repeat((p.delay.to_units() / 2.0).round() as usize);
        println!("{f:>6.2}  {:>8}   {bar} {note}", p.delay.to_string());
    }

    println!();
    println!(
        "interpretation (paper §10): a process that cannot achieve\n\
         f > {f_star:.2} gains nothing in 2-vector delay from extra precision —\n\
         a cheaper, less precise process fabricates equally fast parts."
    );
    Ok(())
}
