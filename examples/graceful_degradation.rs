//! Graceful degradation: the anytime driver under tight budgets.
//!
//! ```sh
//! cargo run --example graceful_degradation
//! ```
//!
//! Runs the paper's §11 bypass adder through [`tbf_core::analyze`] three
//! times — unconstrained, under a starvation-level path cap, and under a
//! zero wall-clock budget — showing how the degradation ladder (exact →
//! escalated retry → sequences upper bound → topological bound) keeps
//! returning sound `[lower, upper]` delay bounds instead of failing.

use std::time::Duration;

use tbf_suite::core::{analyze, AnalysisPolicy, DelayOptions, OutputStatus};
use tbf_suite::logic::generators::adders::paper_bypass_adder;

fn show(title: &str, policy: &AnalysisPolicy) {
    let adder = paper_bypass_adder();
    let report = analyze(&adder, policy);
    println!("== {title} ==");
    match report.exact {
        Some(d) => println!("exact delay {d} (topological {})", report.topological),
        None => println!(
            "delay within [{}, {}] (topological {})",
            report.lower, report.upper, report.topological
        ),
    }
    for o in &report.outputs {
        match o.status {
            OutputStatus::Exact => println!("  {:<8} {} (exact)", o.name, o.delay),
            OutputStatus::Bounded {
                lower,
                upper,
                cause,
            } => {
                println!("  {:<8} within [{lower}, {upper}] — {cause}", o.name)
            }
            OutputStatus::Fallback { cause } => {
                println!(
                    "  {:<8} ≤ {} (topological bound) — {cause}",
                    o.name, o.delay
                )
            }
        }
    }
    println!(
        "  ladder: {} retries, {} sequences fallbacks, {} topological fallbacks\n",
        report.stats.retries, report.stats.sequences_fallbacks, report.stats.topological_fallbacks
    );
}

fn main() {
    // 1. Room to breathe: every cone resolves exactly (the adder's
    //    exact delay is 24 vs a topological bound of 40 — a false path).
    show("default budget", &AnalysisPolicy::default());

    // 2. A starvation-level path cap: the exact engine trips the cap,
    //    one 4× escalation retry runs, and whatever still fails lands on
    //    the sequences/topological rungs — with sound bounds throughout.
    show(
        "max_straddling_paths = 1 (escalation + fallback rungs)",
        &AnalysisPolicy {
            options: DelayOptions {
                max_straddling_paths: 1,
                ..DelayOptions::default()
            },
            escalation_factor: 2,
            ..AnalysisPolicy::default()
        },
    );

    // 3. A zero wall-clock budget: the deadline fires at the first
    //    allocation-granularity poll; every cone degrades to a bound and
    //    the driver still returns normally.
    show(
        "time_budget = 0 (deadline degradation)",
        &AnalysisPolicy::with_options(DelayOptions {
            time_budget: Some(Duration::ZERO),
            ..DelayOptions::default()
        }),
    );
}
