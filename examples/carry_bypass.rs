//! The paper's §11 worked example, end to end: the 4-bit ripple-bypass
//! adder whose critical path is false.
//!
//! ```sh
//! cargo run --example carry_bypass
//! ```
//!
//! Expected headline: topological delay 40, exact 2-vector delay 24 —
//! static timing analysis overestimates by 67%.

use tbf_suite::core::{two_vector_delay, DelayOptions};
use tbf_suite::logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_suite::logic::generators::unit_ninety_percent;
use tbf_suite::logic::paths::all_paths;
use tbf_suite::logic::Time;
use tbf_suite::sim::{max_delays, simulate, Stimulus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = paper_bypass_adder();
    println!("=== 4-bit ripple-bypass adder (paper §11, Figure 7) ===\n");

    // 1. Topology: the ripple-through path dominates statically.
    let out = adder.outputs()[0].1;
    println!(
        "gates: {}  paths to carry-out: {}",
        adder.gate_count(),
        adder.path_count(out)
    );
    let mut paths = all_paths(&adder, out, 1000)?;
    paths.sort_by_key(|p| std::cmp::Reverse(p.length_max(&adder)));
    println!("longest paths by kmax:");
    for p in paths.iter().take(3) {
        let names: Vec<&str> = p.nodes().iter().map(|&n| adder.node(n).name()).collect();
        println!(
            "  [{:>2}, {:>2}]  {}",
            p.length_min(&adder),
            p.length_max(&adder),
            names.join(" → ")
        );
    }

    // 2. Exact delay: the 40-unit ripple path is false.
    let report = two_vector_delay(&adder, &DelayOptions::default())?;
    println!("\ntopological delay : {}", report.topological);
    println!("exact 2-vector    : {}", report.delay);
    println!(
        "false-path slack  : {} ({}% STA overestimate)",
        report.false_path_slack(),
        (report.false_path_slack().to_units() / report.delay.to_units() * 100.0).round()
    );

    // 3. Witness: simulate the sensitizing input pair at worst-case
    //    delays and watch the carry-out move at exactly t = 24.
    let mut before = vec![false]; // c0 rises
    let mut after = vec![true];
    for i in 0..4 {
        before.push(i % 2 == 0); // a = 0101 and b = 1010: all propagate
        after.push(i % 2 == 0);
    }
    for i in 0..4 {
        before.push(i % 2 == 1);
        after.push(i % 2 == 1);
    }
    let stim = Stimulus::vector_pair(&before, &after);
    let result = simulate(&adder, &max_delays(&adder), &stim.waveforms(&adder));
    println!(
        "\nwitness simulation (all-propagate, c0 rising, max delays):\n  carry-out last transition at t = {}",
        result
            .last_output_transition(&adder)
            .map(|t| t.to_string())
            .unwrap_or_else(|| "never".into())
    );

    // 4. Scaling: the same effect on larger bypass adders.
    println!("\n=== scaling: uniform-delay carry-bypass adders ===");
    println!(
        "{:<12} {:>6} {:>12} {:>10} {:>8}",
        "adder", "gates", "topological", "exact", "slack"
    );
    for (bits, blocks) in [(2usize, 2usize), (4, 2), (4, 4), (4, 6)] {
        let n = carry_bypass(bits, blocks, unit_ninety_percent());
        let r = two_vector_delay(&n, &DelayOptions::default())?;
        println!(
            "{:<12} {:>6} {:>12} {:>10} {:>8}",
            format!("{bits}x{blocks}"),
            n.gate_count(),
            r.topological.to_string(),
            r.delay.to_string(),
            r.false_path_slack().to_string(),
        );
    }
    let _ = Time::ZERO;
    Ok(())
}
