//! Cycle-time estimation for an FSM's combinational core — the `P`
//! input family of the paper's Definition 1.
//!
//! The paper observes (§1–§2) that floating-style delays are "commonly
//! used as upper bounds for cycle times" and unifies the notions:
//! `D(C, [dmin,dmax], ω⁻)` is a *sound* upper bound for the minimum
//! period (any period ≥ it lets every output settle before the next
//! sample), while dynamic periodic simulation gives a lower-bound
//! estimate. The exact `D(C, Mg, P)` is deferred by the paper to a
//! follow-up; here the two bounds bracket it.
//!
//! ```sh
//! cargo run --example cycle_time
//! ```

use tbf_suite::core::{sequences_delay, two_vector_delay, DelayOptions};
use tbf_suite::logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_suite::logic::generators::unit_ninety_percent;
use tbf_suite::logic::{Netlist, Time};
use tbf_suite::sim::periodic::min_settling_period;

fn bracket(name: &str, n: &Netlist) -> Result<(), Box<dyn std::error::Error>> {
    let opts = DelayOptions::default();
    let upper = sequences_delay(n, &opts)?.delay;
    let two = two_vector_delay(n, &opts)?.delay;
    let mut s = 0x5EEDu64;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let lower = min_settling_period(
        n,
        Time::EPSILON,
        n.topological_delay() + Time::from_int(1),
        16, // trains
        6,  // vectors per train
        4,  // delay samples per train
        &mut rng,
    );
    println!(
        "{name:<16} simulated ≥ {lower:<8} D(2) = {two:<8} D(ω⁻) ≤ {upper:<8} topological {}",
        n.topological_delay()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("minimum-cycle-time bracket: dynamic lower bound ≤ T* ≤ D(ω⁻) upper bound\n");
    bracket("paper §11 adder", &paper_bypass_adder())?;
    bracket("bypass 2x2", &carry_bypass(2, 2, unit_ninety_percent()))?;
    bracket("bypass 4x2", &carry_bypass(4, 2, unit_ninety_percent()))?;
    println!(
        "\nnote (paper §2): short paths matter for cycle time — the sampled\n\
         lower bound can sit below D(2) when late vectors mask earlier\n\
         transitions; the sound guarantee is the ω⁻ upper bound."
    );
    Ok(())
}
