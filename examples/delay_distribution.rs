//! Statistical vs worst-case timing: sample the last-transition
//! distribution of the §11 bypass adder and place the exact 2-vector
//! delay on it.
//!
//! The paper's Definition 1 admits distribution-function gate models but
//! analyzes the interval model; this example shows what the interval
//! worst case (exact, 24) looks like against Monte-Carlo sampling —
//! the sampled tail approaches but never crosses the computed bound.
//!
//! ```sh
//! cargo run --example delay_distribution
//! ```

use tbf_suite::core::{two_vector_delay, DelayOptions};
use tbf_suite::logic::generators::adders::paper_bypass_adder;
use tbf_suite::sim::montecarlo::DelayDistribution;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let adder = paper_bypass_adder();
    let exact = two_vector_delay(&adder, &DelayOptions::default())?.delay;

    let mut state = 0xD15Cu64;
    let dist = DelayDistribution::sample(&adder, 4000, move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    });

    println!("§11 bypass adder — 4000 sampled (vector-pair × delay) scenarios\n");
    println!("quiet trials (no output motion): {}", dist.quiet_trials());
    println!("mean last transition  : {:.2}", dist.mean());
    println!("median                : {}", dist.quantile(0.5));
    println!("95th percentile       : {}", dist.quantile(0.95));
    println!(
        "sampled worst case    : {}",
        dist.max().expect("transitions observed")
    );
    println!("exact worst case D(2) : {exact}   <- never exceeded\n");

    let hist = dist.histogram(12);
    let peak = hist.iter().map(|&(_, c)| c).max().unwrap_or(1);
    for (edge, count) in hist {
        let bar = "█".repeat(count * 48 / peak);
        println!("≤ {:>5}  {count:>5} {bar}", edge.to_string());
    }
    Ok(())
}
