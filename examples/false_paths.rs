//! Delay-model safari: how the four delay models of the paper's
//! classification relate on circuits with and without false paths, and
//! the Example 5 fixed-vs-variable phenomenon.
//!
//! ```sh
//! cargo run --example false_paths
//! ```

use tbf_suite::core::{
    floating_delay, sequences_delay, topological_delay, two_vector_delay, DelayOptions,
};
use tbf_suite::logic::generators::adders::paper_bypass_adder;
use tbf_suite::logic::generators::figures::figure6_glitch;
use tbf_suite::logic::generators::trees::{comparator, parity_tree};
use tbf_suite::logic::generators::unit_ninety_percent;
use tbf_suite::logic::{DelayBounds, Netlist, Time};

fn row(name: &str, n: &Netlist) -> Result<(), Box<dyn std::error::Error>> {
    let opts = DelayOptions::default();
    let topo = topological_delay(n);
    let two = two_vector_delay(n, &opts)?.delay;
    let seq = sequences_delay(n, &opts)?.delay;
    let fl = floating_delay(n, &opts)?.delay;
    println!(
        "{name:<18} {:>8} {:>8} {:>8} {:>12}",
        two.to_string(),
        seq.to_string(),
        fl.to_string(),
        topo.to_string()
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:<18} {:>8} {:>8} {:>8} {:>12}",
        "circuit", "D(2)", "D(ω⁻)", "floating", "topological"
    );
    println!("{}", "-".repeat(60));

    // No false paths: all models agree.
    row("parity16", &parity_tree(16, unit_ninety_percent()))?;
    row("cmp8", &comparator(8, unit_ninety_percent()))?;

    // The §11 adder: the exact models expose the false ripple path.
    row("bypass (paper)", &paper_bypass_adder())?;

    // Example 5 (Figure 6): fixed vs variable delays change D(ω⁻) but
    // never the floating delay (Theorem 4).
    let fixed = figure6_glitch();
    row("fig6 fixed", &fixed)?;
    let variable = fixed.map_delays(|d| DelayBounds::new(d.max - Time::EPSILON, d.max));
    row("fig6 variable", &variable)?;

    println!();
    println!("invariants visible above:");
    println!("  D(2) ≤ D(ω⁻) ≤ floating ≤ topological          (model ordering)");
    println!("  trees: all four coincide                        (no false paths)");
    println!("  fig6 fixed: D(ω⁻)=0 < floating=2                (Example 5)");
    println!("  fig6 variable: D(ω⁻)=floating                   (Theorem 2)");
    Ok(())
}
