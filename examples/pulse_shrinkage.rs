//! Pulse shrinkage through unequal rise/fall delays (paper §4.1,
//! Figure 3), observed three ways: TBF algebra, netlist expansion +
//! event-driven simulation, and inertial filtering.
//!
//! ```sh
//! cargo run --example pulse_shrinkage
//! ```

use tbf_suite::core::TbfExpr;
use tbf_suite::logic::rise_fall::pulse_shrinkage_chain;
use tbf_suite::logic::{Netlist, Time};
use tbf_suite::sim::{max_delays, simulate, Waveform};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = Time::from_int;

    // A chain of 4 buffers, each with rise delay 3 and fall delay 2:
    // every stage shrinks a high pulse by 1 unit.
    let mut b = Netlist::builder();
    let x = b.input("x");
    let out = pulse_shrinkage_chain(&mut b, x, 4, t(2), t(1), "chain")?;
    b.output("y", out);
    let n = b.finish()?;

    println!("chain: 4 stages, rise 3 / fall 2 (shrinks 1 unit per stage)\n");

    // Drive pulses of decreasing width through the chain.
    for width in [8, 6, 5, 4, 3] {
        let mut w = Waveform::constant(false);
        w.add_pulse(Time::ZERO, t(width), true);
        let r = simulate(&n, &max_delays(&n), &[w]);
        let y = r.waveform(out);
        let desc = if y.is_constant() {
            "pulse swallowed".to_string()
        } else {
            let first = y.transitions().first().map(|&(tt, _)| tt);
            let last = y.last_transition();
            format!(
                "output pulse [{}, {}) width {}",
                first.map(|v| v.to_string()).unwrap_or_default(),
                last.map(|v| v.to_string()).unwrap_or_default(),
                match (first, last) {
                    (Some(a), Some(b)) => (b - a).to_string(),
                    _ => "?".into(),
                }
            )
        };
        println!("input pulse width {width:>2}: {desc}");
    }

    // The same phenomenon straight from the §4.1 TBF model.
    println!("\nTBF check (one stage, rise 3 / fall 2): y(t) = x(t−3)·x(t−2)");
    let stage = TbfExpr::rise_fall_buffer(0, t(3), t(2));
    let wave = |_: usize, time: Time| time >= Time::ZERO && time < t(5);
    let probe = [2.5, 3.5, 6.5, 7.5];
    for p in probe {
        println!(
            "  y({p}) = {}",
            stage.eval_at(Time::from_units(p), &wave) as u8
        );
    }

    // Inertial filtering removes what the transport model keeps.
    println!("\ninertial filter on the stage-1 output (inertia 2):");
    let mut w = Waveform::constant(false);
    w.add_pulse(Time::ZERO, t(3), true);
    let r = simulate(&n, &max_delays(&n), &[w]);
    let stage1 = n.find("chain_s1").unwrap();
    let raw = r.waveform(stage1);
    let filtered = raw.filter_inertial(t(2));
    println!("  transport: {:?}", raw.transitions());
    println!("  inertial : {:?}", filtered.transitions());
    Ok(())
}
