//! Quickstart: parse a circuit, compute its three delays, and compare.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tbf_suite::core::{
    floating_delay, sequences_delay, topological_delay, two_vector_delay, DelayOptions,
};
use tbf_suite::logic::parsers::bench::parse_bench;
use tbf_suite::logic::parsers::mcnc_like_delays;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any ISCAS-85 .bench netlist drops in here; this is the genuine c17.
    let src = "
# c17 — ISCAS-85 benchmark
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
";
    // MCNC-like delays with dmin = 0.9·dmax, as in the paper's §12 runs.
    let netlist = parse_bench(src, mcnc_like_delays)?;
    println!(
        "c17: {} gates, {} inputs, {} outputs",
        netlist.gate_count(),
        netlist.inputs().len(),
        netlist.outputs().len()
    );

    let opts = DelayOptions::default();
    let topo = topological_delay(&netlist);
    let two = two_vector_delay(&netlist, &opts)?;
    let seq = sequences_delay(&netlist, &opts)?;
    let float = floating_delay(&netlist, &opts)?;

    println!("topological (STA) delay : {topo}");
    println!("exact 2-vector delay    : {}", two.delay);
    println!("exact ω⁻ (sequences)    : {}", seq.delay);
    println!("floating delay          : {}", float.delay);
    println!();
    println!("per-output 2-vector delays:");
    for o in &two.outputs {
        println!("  {}: {} (topological {})", o.name, o.delay, o.topological);
    }
    println!();
    println!(
        "search effort: {} breakpoints, {} resolvents, {} LPs",
        two.stats.breakpoints_visited, two.stats.resolvents, two.stats.lps_solved
    );
    Ok(())
}
