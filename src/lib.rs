//! # tbf-suite — Exact circuit delay computation with Timed Boolean Functions
//!
//! Facade crate for the workspace reproducing *"Circuit Delay Models and
//! Their Exact Computation Using Timed Boolean Functions"* (Lam, Brayton,
//! Sangiovanni-Vincentelli, UCB/ERL M93/6, 1993).
//!
//! Re-exports the component crates:
//!
//! * [`bdd`] — ROBDD package,
//! * [`logic`] — gate-level netlists, parsers, and circuit generators,
//! * [`lp`] — exact-rational simplex and path-constraint LPs,
//! * [`sim`] — event-driven timing simulation,
//! * [`core`] — the Timed Boolean Function delay algorithms.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `EXPERIMENTS.md` for the paper-reproduction index.

#![forbid(unsafe_code)]

pub use tbf_bdd as bdd;
pub use tbf_core as core;
pub use tbf_logic as logic;
pub use tbf_lp as lp;
pub use tbf_sim as sim;
