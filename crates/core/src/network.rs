//! Implicit TBF-network construction (paper §7.1–§7.2).
//!
//! At a query point `t = b⁻` the circuit's Timed Boolean Function is
//! materialized as a BDD by a reverse walk from the output that carries
//! the accumulated suffix-delay interval:
//!
//! * once every completion of the current partial path is **positive**
//!   (`suffixᵐᵃˣ + arrivalᵐᵃˣ(n) < b`), the whole sub-cone collapses to
//!   the node's static function over the `x(0⁺)` variables,
//! * once every completion is **negative**
//!   (`suffixᵐⁱⁿ + arrivalᵐⁱⁿ(n) ≥ b`), it collapses to the static
//!   function over the `x(0⁻)` variables,
//! * only **delay-dependent** (straddling) partial paths are expanded, and
//!   each straddling TBF variable `x(t−k)` becomes the resolvent
//!   expression `s·x(0⁺) + s̄·x(0⁻)` of §7.2.
//!
//! Two paths carry the *same* TBF variable — and must share a resolvent —
//! exactly when their delay sums are identical as functions of the gate
//! delay variables: same multiset of variable-delay gates and equal
//! fixed-delay contribution. This refinement is what makes Example 5
//! (Figure 6, fixed delays) come out exact: both paths denote `x(t−2)`,
//! the conjunction `x(t−2)·x̄(t−2)` is identically 0, and the delay by
//! sequences of vectors is 0 while the floating delay is 2.
//!
//! # Variable ordering and manager lifecycle
//!
//! Variables are laid out for small BDDs: primary inputs in **fanin-DFS
//! order** from the outputs (the classical netlist ordering heuristic),
//! each input's `x(0⁺)`, `x(0⁻)` and a reserved block of
//! resolvent/fresh-variable **slots adjacent** to it. Keeping a resolvent
//! next to the input it selects is what keeps XOR-rich circuits (parity
//! trees, adders) polynomial: the difference function factors into
//! contiguous-support blocks instead of remembering one bit per input
//! across the whole order.
//!
//! One [`ConeContext`] per netlist holds the manager and the two static
//! evaluations; queries at successive breakpoints reuse them. The manager
//! is compacted (rebuilt, statics re-derived) when dead nodes from past
//! queries accumulate, and the slot blocks grow geometrically if a
//! breakpoint needs more simultaneous variables per input than reserved.
//!
//! # Budgets and interruption
//!
//! Every engine holds an [`AnalysisBudget`]; its caps are read live (the
//! degradation ladder escalates them between retries without rebuilding
//! the engine) and its deadline/cancel state is polled at every recursion
//! step *and* — via a cancel probe handed to the budgeted BDD operations —
//! at node-allocation granularity inside each BDD call, so even one huge
//! XOR cannot overshoot a deadline by more than a cache-stride of
//! allocations.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use tbf_bdd::{Bdd, BddManager, GcStats, OpAbort, OpBudget, ReorderPolicy, ReorderStats, Var};
use tbf_logic::paths::BreakpointSweep;
use tbf_logic::{Netlist, NodeId, Time};

use crate::budget::AnalysisBudget;
use crate::error::DelayError;
use crate::fault::{self, Site};
use crate::static_fn::{build_statics, gate_bdd};
use crate::tbf::{
    cone_scope_tag, SuffixTracker, TbfCache, TimedTable, TimedVarId, TimedVarKey, SUPPORT_CAP,
};

/// Abort reasons local to the network build; the engines attach bounds
/// and convert to [`DelayError`](crate::DelayError).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BuildAbort {
    TooManyPaths {
        limit: usize,
    },
    BddTooLarge {
        limit: usize,
    },
    /// The budget's deadline or cancellation token fired mid-build. The
    /// engines consult [`AnalysisBudget::cause`] to pick the error.
    Interrupted,
}

impl BuildAbort {
    /// Folds a budgeted BDD-operation abort into a build abort.
    pub(crate) fn from_op(a: OpAbort) -> BuildAbort {
        match a {
            OpAbort::NodeLimit(e) => BuildAbort::BddTooLarge { limit: e.limit },
            OpAbort::Cancelled => BuildAbort::Interrupted,
        }
    }

    /// Converts to the engine-level error at breakpoint `b`, with the
    /// conservative per-cone bounds `(0, b)`.
    pub(crate) fn into_error(self, b: Time, budget: &AnalysisBudget) -> DelayError {
        match self {
            BuildAbort::TooManyPaths { limit } => DelayError::TooManyPaths {
                limit,
                at_breakpoint: b,
                bounds: (Time::ZERO, b),
            },
            BuildAbort::BddTooLarge { limit } => DelayError::BddTooLarge {
                limit,
                at_breakpoint: b,
                bounds: (Time::ZERO, b),
            },
            BuildAbort::Interrupted => budget.interrupt_error(b, (Time::ZERO, b)),
        }
    }
}

/// One resolvent: the Boolean selector of a delay-dependent TBF variable
/// together with the gate set whose delay sum it compares `t` against.
#[derive(Clone, Debug)]
pub(crate) struct Resolvent {
    pub var: Var,
    /// All gates on (one representative of) the path; the LP constraint
    /// is `t ≷ Σ_{g∈gates} d_g`.
    pub gates: Vec<NodeId>,
}

/// Primary-input positions in depth-first fanin order from the outputs —
/// the standard static variable-ordering heuristic for netlist BDDs.
fn dfs_input_order(netlist: &Netlist) -> Vec<usize> {
    let mut order = Vec::with_capacity(netlist.inputs().len());
    let mut seen = vec![false; netlist.len()];
    let mut stack: Vec<NodeId> = netlist.outputs().iter().rev().map(|&(_, o)| o).collect();
    while let Some(n) = stack.pop() {
        if seen[n.index()] {
            continue;
        }
        seen[n.index()] = true;
        if let Some(pos) = netlist.input_position(n) {
            order.push(pos);
            continue;
        }
        for &f in netlist.node(n).fanins().iter().rev() {
            stack.push(f);
        }
    }
    // Inputs not in any output cone go last.
    let mut placed = vec![false; netlist.inputs().len()];
    for &p in &order {
        placed[p] = true;
    }
    for (pos, done) in placed.iter().enumerate() {
        if !done {
            order.push(pos);
        }
    }
    order
}

/// Hard cap on recursion steps per build — a backstop against circuits
/// whose delay-dependent region is combinatorially explosive even after
/// memoization.
const MAX_BUILD_CALLS: usize = 5_000_000;

/// Growth tolerance (percent of the starting live size) for the sifting
/// passes the engine runs itself — one-shot sifts at safe points, where a
/// moderately adventurous search pays off.
const MANUAL_SIFT_GROWTH: usize = 120;

/// Classification rule: which leaf references need their own variable.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// 2-vector: straddling leaves (`smin < b ≤ smax`) get resolvents.
    TwoVector,
    /// ω⁻: unsettled leaves (`b ≤ smax`) get fresh variables.
    Sequences,
}

impl Mode {
    /// Stable index used to scope the timed-node cache per mode (the
    /// same k-function binds a resolvent in one mode and a fresh
    /// variable in the other).
    fn idx(self) -> u8 {
        match self {
            Mode::TwoVector => 0,
            Mode::Sequences => 1,
        }
    }
}

/// Per-netlist arrival data shared by all queries.
pub(crate) struct Timing {
    pub pmax: Vec<Time>,
    pub pminmin: Vec<Time>,
    pub input_order: Vec<usize>,
}

impl Timing {
    pub fn new(netlist: &Netlist) -> Timing {
        Timing {
            pmax: netlist.arrivals(false, true),
            pminmin: netlist.arrivals(true, false),
            input_order: dfs_input_order(netlist),
        }
    }
}

/// The result of one 2-vector query.
#[derive(Debug)]
pub(crate) struct QueryOut {
    /// The TBF at `t = b⁻` over `(x⁺, x⁻, s)`.
    pub f: Bdd,
    pub resolvents: Vec<Resolvent>,
}

/// Per-cone compilation context: one netlist compiled **once** into a
/// manager with statics, variable slots, the interned timed-variable
/// table and the cross-breakpoint instantiation cache — everything the
/// pluggable [`DelayModel`](crate::model::DelayModel) strategies share
/// while sweeping breakpoints.
pub(crate) struct ConeContext {
    /// Shared ownership of the cone netlist: an engine retained across
    /// requests (the serve workspace) must not borrow from a request
    /// that has already been answered.
    netlist: Arc<Netlist>,
    pub timing: Timing,
    /// The analysis-wide budget: live caps + deadline/cancel state.
    pub budget: Arc<AnalysisBudget>,
    /// Reserved auxiliary (resolvent / fresh) variables per input.
    slots: usize,
    pub manager: BddManager,
    after_leaf: Vec<Bdd>,
    before_leaf: Vec<Bdd>,
    slot_vars: Vec<Vec<Var>>,
    static_after: Vec<Bdd>,
    static_before: Vec<Bdd>,
    /// All `x⁺`/`x⁻` variables (for the ∃-projection onto resolvents).
    pub input_vars: Vec<Var>,
    statics_baseline: usize,
    /// Reorder effort folded in from managers this engine has already
    /// replaced (layout rebuilds drop the manager but not its telemetry).
    carried_reorder: ReorderStats,
    /// GC effort folded in from replaced managers, same as
    /// `carried_reorder`.
    carried_gc: GcStats,
    /// High-water arena slots / bytes across replaced managers.
    carried_peak_arena: usize,
    carried_arena_bytes: usize,
    /// Whether any gate has fixed delay. When every gate delay is
    /// variable, two distinct suffixes can never share a k-function
    /// (equal variable-gate multisets in a DAG force equal paths), so
    /// pass 1's within-pass dedup can never hit and is skipped.
    memo_useful: bool,
    /// Interner for k-functions: leaf and interior suffix identities.
    table: TimedTable,
    /// Cross-breakpoint timed-node cache over the interned identities.
    tbf_cache: TbfCache,
    /// Whether this cone keeps cross-breakpoint entries, resolved once
    /// from the budget's [`TbfCacheMode`](crate::TbfCacheMode) and the
    /// cone's gate count (`Auto` bypasses tiny cones).
    use_tbf_cache: bool,
    /// Memoized descending breakpoint sweeps, one per queried output.
    sweeps: HashMap<NodeId, BreakpointSweep>,
}

impl ConeContext {
    pub fn new(
        netlist: Arc<Netlist>,
        budget: Arc<AnalysisBudget>,
    ) -> Result<ConeContext, BuildAbort> {
        let gate_count = netlist
            .nodes()
            .filter(|(_, n)| !n.kind().is_input() && !n.kind().is_constant())
            .count();
        let use_tbf_cache = budget.tbf_cache_mode().enabled_for(gate_count);
        // The cache's cone scope: entries are served only to the cone
        // (structural signature) that built them, so an engine-cache
        // pair that outlives one netlist can never leak a stale BDD
        // handle into the next (see `stale_binding_cannot_survive_a_
        // cone_switch` in `tbf.rs`).
        let scope = cone_scope_tag(&netlist.structural_signature());
        let memo_useful = netlist.nodes().any(|(_, n)| {
            !n.kind().is_input() && !n.kind().is_constant() && !n.delay().is_variable()
        });
        let mut engine = ConeContext {
            timing: Timing::new(&netlist),
            netlist,
            budget,
            slots: 4,
            manager: BddManager::new(),
            after_leaf: Vec::new(),
            before_leaf: Vec::new(),
            slot_vars: Vec::new(),
            static_after: Vec::new(),
            static_before: Vec::new(),
            input_vars: Vec::new(),
            statics_baseline: 0,
            carried_reorder: ReorderStats::default(),
            carried_gc: GcStats::default(),
            carried_peak_arena: 0,
            carried_arena_bytes: 0,
            memo_useful,
            table: TimedTable::default(),
            tbf_cache: TbfCache::default(),
            use_tbf_cache,
            sweeps: HashMap::new(),
        };
        engine.tbf_cache.set_cone(scope);
        engine.layout()?;
        Ok(engine)
    }

    /// Shared ownership of the cone netlist — for spawning sibling
    /// engines (stripe speculation) without borrowing this one.
    pub fn netlist_arc(&self) -> Arc<Netlist> {
        Arc::clone(&self.netlist)
    }

    /// Points a retained engine at a new request's budget. Caps,
    /// deadline and cancel token are read live through this handle on
    /// every poll, and per-op cancel probes are constructed per BDD
    /// call, so swapping the `Arc` is all a service needs to reuse the
    /// engine across requests. Under `obs`, the manager's hot-path
    /// counters are re-routed to the new budget's registry too.
    pub fn rebind_budget(&mut self, budget: Arc<AnalysisBudget>) {
        self.budget = budget;
        // The GC knob rides the budget: a retained engine re-reads it so
        // a gc-off request on a warm engine really runs without sweeps
        // (the service also keys engine reuse on the knob, but the
        // manager must agree with whatever budget it is serving).
        self.manager.set_gc_policy(self.budget.gc_mode().policy());
        #[cfg(feature = "obs")]
        self.manager
            .set_counters(Arc::clone(self.budget.counters()));
    }

    /// The next breakpoint of `output`'s descending `{Kᵢᵐᵃˣ}` sweep
    /// strictly below `below`, via the per-output memoized
    /// [`BreakpointSweep`] enumerator.
    pub fn next_breakpoint(&mut self, output: NodeId, below: Time) -> Option<Time> {
        let netlist = Arc::clone(&self.netlist);
        self.sweeps
            .entry(output)
            .or_insert_with(|| BreakpointSweep::new(&netlist, output))
            .next_below(&netlist, below)
    }

    /// (Re)creates the manager: interleaved variables, then both statics.
    fn layout(&mut self) -> Result<(), BuildAbort> {
        self.layout_with_order(None)
    }

    /// [`layout`](Self::layout), optionally installing a variable order on
    /// the fresh manager before any node is built. All variables are
    /// declared first (the DFS-interleaved creation order is the stable
    /// identity), then the order is applied, then the leaf literals and
    /// statics are constructed under it.
    ///
    /// Reorder telemetry of the manager being replaced is folded into
    /// [`carried_reorder`](Self::total_reorder_stats) so rebuilds never
    /// lose effort accounting.
    fn layout_with_order(&mut self, order: Option<&[Var]>) -> Result<(), BuildAbort> {
        self.carried_reorder.merge(&self.manager.reorder_stats());
        let gc = self.manager.gc_stats();
        self.carried_gc.sweeps += gc.sweeps;
        self.carried_gc.reclaimed += gc.reclaimed;
        self.carried_peak_arena = self.carried_peak_arena.max(self.manager.peak_arena());
        self.carried_arena_bytes = self.carried_arena_bytes.max(self.manager.arena_bytes());
        let n_inputs = self.netlist.inputs().len();
        let mut manager = BddManager::with_complement_edges(self.budget.complement_edges());
        // Route the manager's hot-path counters into the analysis-wide
        // registry carried by the budget, so BDD effort shows up in the
        // same place whatever thread builds this engine.
        #[cfg(feature = "obs")]
        manager.set_counters(Arc::clone(self.budget.counters()));
        let mut after_var: Vec<Option<Var>> = vec![None; n_inputs];
        let mut before_var: Vec<Option<Var>> = vec![None; n_inputs];
        let mut slot_vars = vec![Vec::new(); n_inputs];
        let mut input_vars = Vec::with_capacity(2 * n_inputs);
        for &pos in &self.timing.input_order {
            let name = self
                .netlist
                .node(self.netlist.inputs()[pos])
                .name()
                .to_owned();
            let va = manager.new_named_var(&format!("{name}+"));
            let vb = manager.new_named_var(&format!("{name}-"));
            input_vars.push(va);
            input_vars.push(vb);
            after_var[pos] = Some(va);
            before_var[pos] = Some(vb);
            slot_vars[pos] = (0..self.slots)
                .map(|j| manager.new_named_var(&format!("s_{name}_{j}")))
                .collect();
        }
        // The manager still holds only the two terminals here, so a
        // remembered order can be installed without any node rewriting.
        if let Some(ord) = order {
            manager.set_order(ord);
        }
        let policy = self.budget.reorder();
        manager.set_reorder_policy(policy);
        manager.set_gc_policy(self.budget.gc_mode().policy());
        let unwrap_var = |v: &Option<Var>| v.expect("input_order is a permutation of inputs");
        let after_leaf: Vec<Bdd> = after_var
            .iter()
            .map(|v| manager.var(unwrap_var(v)))
            .collect();
        let before_leaf: Vec<Bdd> = before_var
            .iter()
            .map(|v| manager.var(unwrap_var(v)))
            .collect();
        let bud = self.budget.clone();
        let probe = move || bud.interrupted();
        let op_budget = OpBudget::with_cancel(self.budget.max_bdd_nodes(), &probe);
        let static_after = build_statics(&mut manager, &self.netlist, &after_leaf, &op_budget)
            .map_err(BuildAbort::from_op)?;
        let static_before = build_statics(&mut manager, &self.netlist, &before_leaf, &op_budget)
            .map_err(BuildAbort::from_op)?;
        if order.is_none() && policy == ReorderPolicy::Manual {
            // One sift of the statics right after layout: the cheapest
            // point to pick an order, before queries multiply the nodes.
            // The leaf literals join the roots because the sift loop may
            // sweep (GC): a disconnected input's literal is unreachable
            // from the statics, and its stored handle must stay valid.
            let mut roots = Self::static_roots(&static_after, &static_before);
            roots.extend_from_slice(&after_leaf);
            roots.extend_from_slice(&before_leaf);
            let abort = manager.sift_abort_bound(&roots);
            manager.sift(&roots, MANUAL_SIFT_GROWTH, abort);
        }
        self.statics_baseline = manager.node_count();
        self.manager = manager;
        self.after_leaf = after_leaf;
        self.before_leaf = before_leaf;
        self.slot_vars = slot_vars;
        self.static_after = static_after;
        self.static_before = static_before;
        self.input_vars = input_vars;
        // The old manager's handles just died with it; cached
        // instantiations and leaf bindings die too (the interner's ids
        // stay valid — they name k-functions, not nodes).
        self.tbf_cache.clear();
        Ok(())
    }

    fn static_roots(static_after: &[Bdd], static_before: &[Bdd]) -> Vec<Bdd> {
        let mut roots = Vec::with_capacity(static_after.len() + static_before.len());
        roots.extend_from_slice(static_after);
        roots.extend_from_slice(static_before);
        roots
    }

    /// Every handle the engine holds: the survival set for an arena
    /// sweep at an engine-level safe point. Statics, both leaf-literal
    /// vectors, and everything the cross-breakpoint cache references
    /// (entries and leaf bindings) — the cache stays coherent across
    /// sweeps because its whole reachable set is rooted, not because it
    /// is rebuilt.
    fn gc_roots(&self) -> Vec<Bdd> {
        let mut roots = Self::static_roots(&self.static_after, &self.static_before);
        roots.extend_from_slice(&self.after_leaf);
        roots.extend_from_slice(&self.before_leaf);
        self.tbf_cache.roots(&mut roots);
        roots
    }

    /// The reorder-and-retry rung of the degradation ladder: rebuild a
    /// compact manager, sift the statics to find a better order, then
    /// rebuild once more under that order so the retry starts from a
    /// dense arena. Handles from before the call are invalid (as after
    /// [`reset`](Self::reset)).
    pub fn reorder_and_reset(&mut self) -> Result<(), BuildAbort> {
        self.layout_with_order(None)?;
        let roots = self.gc_roots();
        let abort = self.manager.sift_abort_bound(&roots);
        self.manager.sift(&roots, MANUAL_SIFT_GROWTH, abort);
        let order = self.manager.current_order();
        self.layout_with_order(Some(&order))
    }

    /// Reorder effort across the engine's whole life, including managers
    /// already replaced by layout rebuilds.
    pub fn total_reorder_stats(&self) -> ReorderStats {
        let mut rs = self.carried_reorder;
        rs.merge(&self.manager.reorder_stats());
        rs
    }

    /// Folds the engine's memory telemetry — arena high-water mark,
    /// byte footprint, GC effort, across replaced managers too — into a
    /// stats record. Called wherever `peak_bdd_nodes` is sampled.
    pub(crate) fn sample_memory(&self, stats: &mut crate::report::SearchStats) {
        let gc = self.manager.gc_stats();
        stats.sample_memory(
            self.carried_peak_arena.max(self.manager.peak_arena()),
            self.carried_arena_bytes.max(self.manager.arena_bytes()),
            GcStats {
                sweeps: self.carried_gc.sweeps + gc.sweeps,
                reclaimed: self.carried_gc.reclaimed + gc.reclaimed,
            },
        );
    }

    /// Drops dead nodes accumulated by past queries once they pile up
    /// beyond a fixed headroom over the statics baseline. Cheap queries
    /// never trigger it.
    pub fn maybe_compact(&mut self) -> Result<(), BuildAbort> {
        const HEADROOM: usize = 2_000_000;
        // Staleness sweep on the timed-node cache: entries not rebuilt
        // within this many queries are almost never hit again, and a
        // long-lived engine (service mode) must not grow its cache
        // without bound. Epoch-based, so the sweep is identical at every
        // thread count and reorder policy.
        const TBF_CACHE_MAX_AGE: u64 = 1024;
        let evicted = self.tbf_cache.evict_stale(TBF_CACHE_MAX_AGE);
        #[cfg(feature = "obs")]
        self.budget
            .counters()
            .add(tbf_obs::Metric::TbfCacheEvictions, evicted as u64);
        #[cfg(not(feature = "obs"))]
        let _ = evicted;
        // In-place reclamation first (stale cache entries just left the
        // root set, so their sub-DAGs are collectable): under a GC
        // policy this usually makes the wholesale layout rebuild below
        // unnecessary.
        if self.manager.gc_pending() {
            let roots = self.gc_roots();
            self.manager.maybe_gc(&roots);
        }
        if self.manager.node_count() > self.statics_baseline + HEADROOM {
            self.layout()?;
        } else {
            self.manager.clear_op_caches();
        }
        Ok(())
    }

    /// Rebuilds the manager from scratch (post-panic recovery, ladder
    /// retries): every cached BDD handle is dropped and the statics are
    /// re-derived under the current caps.
    pub fn reset(&mut self) -> Result<(), BuildAbort> {
        self.layout()
    }

    /// `f(∞)` of an output (over the `x⁺` variables).
    pub fn static_out(&self, output: NodeId) -> Bdd {
        self.static_after[output.index()]
    }

    /// The BDD variable of input `pos`'s `x(0⁺)` (`after = true`) or
    /// `x(0⁻)` leaf.
    pub fn leaf_var(&self, pos: usize, after: bool) -> Var {
        let leaf = if after {
            self.after_leaf[pos]
        } else {
            self.before_leaf[pos]
        };
        self.manager
            .root_var(leaf)
            .expect("input leaves are single variables")
    }

    /// Grows the per-input slot blocks and rebuilds the layout.
    fn grow_slots(&mut self, needed: usize) -> Result<(), BuildAbort> {
        while self.slots < needed {
            self.slots *= 2;
        }
        self.layout()
    }

    /// Pass 1: discover the distinct TBF-variable keys of a query.
    fn collect_keys(
        &self,
        output: NodeId,
        b: Time,
        mode: Mode,
    ) -> Result<Vec<(TimedVarKey, Vec<NodeId>)>, BuildAbort> {
        struct KeyCollect<'n> {
            netlist: &'n Netlist,
            pmax: &'n [Time],
            pminmin: &'n [Time],
            b: Time,
            mode: Mode,
            max_paths: usize,
            budget: &'n AnalysisBudget,
            memo_useful: bool,
            suffix: SuffixTracker,
            seen: HashSet<(NodeId, TimedVarKey)>,
            keys: HashMap<TimedVarKey, Vec<NodeId>>,
            calls: usize,
        }
        impl KeyCollect<'_> {
            fn run(&mut self, n: NodeId, smin: Time, smax: Time) -> Result<(), BuildAbort> {
                let i = n.index();
                if smax + self.pmax[i] < self.b {
                    return Ok(()); // fully positive: no new variables
                }
                if self.mode == Mode::TwoVector && smin + self.pminmin[i] >= self.b {
                    return Ok(()); // fully negative
                }
                self.calls += 1;
                if self.calls > MAX_BUILD_CALLS {
                    return Err(BuildAbort::TooManyPaths {
                        limit: self.max_paths,
                    });
                }
                if self.budget.poll().is_some() {
                    return Err(BuildAbort::Interrupted);
                }
                if fault::trip(Site::PathCollect) {
                    return Err(BuildAbort::TooManyPaths {
                        limit: self.max_paths,
                    });
                }
                let node = self.netlist.node(n);
                if node.kind().is_constant() {
                    return Ok(());
                }
                if let Some(pos) = self.netlist.input_position(n) {
                    let key = self.suffix.key(pos);
                    if !self.keys.contains_key(&key) {
                        if self.keys.len() >= self.max_paths {
                            return Err(BuildAbort::TooManyPaths {
                                limit: self.max_paths,
                            });
                        }
                        self.keys.insert(key, self.suffix.gates().to_vec());
                    }
                    return Ok(());
                }
                if self.memo_useful {
                    let memo_key = (n, self.suffix.key(usize::MAX));
                    if !self.seen.insert(memo_key) {
                        return Ok(());
                    }
                }
                let d = node.delay();
                let fanins: Vec<NodeId> = node.fanins().to_vec();
                self.suffix.push(self.netlist, n);
                for f in fanins {
                    self.run(f, smin + d.min, smax + d.max)?;
                }
                self.suffix.pop();
                Ok(())
            }
        }
        let mut kc = KeyCollect {
            netlist: &self.netlist,
            pmax: &self.timing.pmax,
            pminmin: &self.timing.pminmin,
            b,
            mode,
            max_paths: self.budget.max_paths(),
            budget: &self.budget,
            memo_useful: self.memo_useful,
            suffix: SuffixTracker::default(),
            seen: HashSet::new(),
            keys: HashMap::new(),
            calls: 0,
        };
        kc.run(output, Time::ZERO, Time::ZERO)?;
        let mut entries: Vec<(TimedVarKey, Vec<NodeId>)> = kc.keys.into_iter().collect();
        // Deterministic slot assignment.
        entries.sort_by(|a, b| {
            (a.0.input_pos, a.0.fixed_sum, &a.0.variable_gates).cmp(&(
                b.0.input_pos,
                b.0.fixed_sum,
                &b.0.variable_gates,
            ))
        });
        Ok(entries)
    }

    /// Assigns each key a slot variable of its input, growing slots when a
    /// breakpoint needs more than reserved.
    fn assign_slots(
        &mut self,
        entries: &[(TimedVarKey, Vec<NodeId>)],
    ) -> Result<HashMap<TimedVarKey, Var>, BuildAbort> {
        let mut per_input_count: HashMap<usize, usize> = HashMap::new();
        for (key, _) in entries {
            *per_input_count.entry(key.input_pos).or_insert(0) += 1;
        }
        if let Some(&max_needed) = per_input_count.values().max() {
            if max_needed > self.slots {
                self.grow_slots(max_needed)?;
            }
        }
        let mut next_slot: HashMap<usize, usize> = HashMap::new();
        let mut assignment = HashMap::with_capacity(entries.len());
        for (key, _) in entries {
            let slot = next_slot.entry(key.input_pos).or_insert(0);
            assignment.insert(key.clone(), self.slot_vars[key.input_pos][*slot]);
            *slot += 1;
        }
        Ok(assignment)
    }

    /// Builds the 2-vector TBF query of `output` at `t = b⁻`.
    pub fn two_vector_query(&mut self, output: NodeId, b: Time) -> Result<QueryOut, BuildAbort> {
        let entries = self.collect_keys(output, b, Mode::TwoVector)?;
        let vars = self.assign_slots(&entries)?;
        let resolvents: Vec<Resolvent> = entries
            .iter()
            .map(|(key, gates)| Resolvent {
                var: vars[key],
                gates: gates.clone(),
            })
            .collect();
        self.tbf_cache.begin_query();
        let mut leaf_of_key: HashMap<TimedVarId, Bdd> = HashMap::with_capacity(entries.len());
        for (key, _) in &entries {
            let id = self.table.intern(key);
            let s = self.manager.var(vars[key]);
            let after = self.after_leaf[key.input_pos];
            let before = self.before_leaf[key.input_pos];
            let leaf = self.manager.ite(s, after, before);
            self.tbf_cache.bind(Mode::TwoVector.idx(), id, leaf);
            leaf_of_key.insert(id, leaf);
        }
        let f = self.build(output, b, Mode::TwoVector, leaf_of_key)?;
        Ok(QueryOut { f, resolvents })
    }

    /// Builds the sequences-of-vectors TBF of `output` at `t = b⁻` (paper
    /// §9.4): settled variables read `x(0⁺)`, unsettled ones become fresh
    /// Boolean variables — one per distinct TBF variable, adjacent to
    /// their input in the order.
    pub fn sequences_query(&mut self, output: NodeId, b: Time) -> Result<Bdd, BuildAbort> {
        let entries = self.collect_keys(output, b, Mode::Sequences)?;
        let vars = self.assign_slots(&entries)?;
        self.tbf_cache.begin_query();
        let mut leaf_of_key: HashMap<TimedVarId, Bdd> = HashMap::with_capacity(entries.len());
        for (key, _) in &entries {
            let id = self.table.intern(key);
            let leaf = self.manager.var(vars[key]);
            self.tbf_cache.bind(Mode::Sequences.idx(), id, leaf);
            leaf_of_key.insert(id, leaf);
        }
        self.build(output, b, Mode::Sequences, leaf_of_key)
    }

    /// Pass 2: the BDD-building recursion, shared between the two modes.
    ///
    /// Each recursion step returns its BDD *plus* the validity window
    /// `(lo, hi]` of breakpoints over which every collapse decision in
    /// the subtree is unchanged, and the set of leaf timed variables the
    /// result reads. Interior results are stored in the cross-breakpoint
    /// [`TbfCache`] under their interned k-function, so the next
    /// breakpoint's build can splice them back in instead of re-running
    /// the BDD operations (canonicity makes the spliced handle exactly
    /// the node a rebuild would return, so reports cannot move).
    fn build(
        &mut self,
        output: NodeId,
        b: Time,
        mode: Mode,
        leaf_of_key: HashMap<TimedVarId, Bdd>,
    ) -> Result<Bdd, BuildAbort> {
        if !self.use_tbf_cache {
            // Bypassed (mode `Off`, or `Auto` on a tiny cone): drop
            // cross-breakpoint entries up front; the cache then
            // degenerates to a within-build memo table.
            self.tbf_cache.clear_entries();
        }
        /// A sub-BDD with its breakpoint validity window and leaf
        /// support (`None` once the support outgrew [`SUPPORT_CAP`] and
        /// the result became uncacheable).
        struct Built {
            f: Bdd,
            lo: Time,
            hi: Time,
            support: Option<Vec<TimedVarId>>,
        }
        struct TbfBuild<'n> {
            netlist: &'n Netlist,
            pmax: &'n [Time],
            pminmin: &'n [Time],
            b: Time,
            mode: Mode,
            max_paths: usize,
            max_bdd: usize,
            budget: Arc<AnalysisBudget>,
            static_after: &'n [Bdd],
            static_before: &'n [Bdd],
            after_leaf: &'n [Bdd],
            before_leaf: &'n [Bdd],
            leaf_of_key: HashMap<TimedVarId, Bdd>,
            table: &'n mut TimedTable,
            cache: &'n mut TbfCache,
            suffix: SuffixTracker,
            calls: usize,
        }
        impl TbfBuild<'_> {
            fn go(
                &mut self,
                manager: &mut BddManager,
                n: NodeId,
                smin: Time,
                smax: Time,
            ) -> Result<Built, BuildAbort> {
                let i = n.index();
                // Collapse rules: compare the extremal total path lengths
                // of every completion through `n` against the query point.
                // A positive collapse stays valid for every larger query
                // point, a negative one for every smaller — the windows
                // encode exactly that.
                if smax + self.pmax[i] < self.b {
                    return Ok(Built {
                        f: self.static_after[i],
                        lo: smax + self.pmax[i],
                        hi: Time::MAX,
                        support: Some(Vec::new()),
                    });
                }
                if self.mode == Mode::TwoVector && smin + self.pminmin[i] >= self.b {
                    return Ok(Built {
                        f: self.static_before[i],
                        lo: Time::MIN,
                        hi: smin + self.pminmin[i],
                        support: Some(Vec::new()),
                    });
                }
                if manager.node_count() > self.max_bdd {
                    return Err(BuildAbort::BddTooLarge {
                        limit: self.max_bdd,
                    });
                }
                if manager.op_cache_len() > (self.max_bdd / 4).max(1_000_000) {
                    // Op caches can dominate memory on long builds; the
                    // unique table (canonicity) is untouched.
                    manager.clear_op_caches();
                }
                self.calls += 1;
                if self.calls > MAX_BUILD_CALLS {
                    return Err(BuildAbort::TooManyPaths {
                        limit: self.max_paths,
                    });
                }
                if self.budget.poll().is_some() {
                    return Err(BuildAbort::Interrupted);
                }
                let node = self.netlist.node(n);
                if node.kind().is_constant() {
                    // Constants never transition; both statics coincide
                    // and the result is valid at every query point.
                    return Ok(Built {
                        f: self.static_after[i],
                        lo: Time::MIN,
                        hi: Time::MAX,
                        support: Some(Vec::new()),
                    });
                }
                if let Some(pos) = self.netlist.input_position(n) {
                    // Neither collapse fired: this path needs its variable
                    // (straddling resolvent or unsettled fresh variable),
                    // discovered by pass 1. Its window is the straddling
                    // interval itself; outside it a collapse takes over.
                    let key = self.suffix.key(pos);
                    let id = self.table.intern(&key);
                    let f = *self
                        .leaf_of_key
                        .get(&id)
                        .expect("pass 1 discovered every leaf key");
                    let lo = if self.mode == Mode::TwoVector {
                        smin + self.pminmin[i]
                    } else {
                        Time::MIN
                    };
                    return Ok(Built {
                        f,
                        lo,
                        hi: smax + self.pmax[i],
                        support: Some(vec![id]),
                    });
                }
                // Interior gate: suffixes with equal variable-gate
                // multisets and fixed sums induce identical sub-TBFs (and
                // share resolvents consistently), so the sub-BDD is keyed
                // by the interned k-function — both for reuse within this
                // build and across breakpoints while the window holds.
                let kfn = self.suffix.key(usize::MAX);
                let id = self.table.intern(&kfn);
                if let Some(e) = self.cache.lookup(n, id, self.mode.idx(), self.b) {
                    #[cfg(feature = "obs")]
                    self.budget.counters().bump(tbf_obs::Metric::TbfCacheHits);
                    return Ok(Built {
                        f: e.bdd,
                        lo: e.lo,
                        hi: e.hi,
                        support: Some(e.support.clone()),
                    });
                }
                let d = node.delay();
                let fanins: Vec<NodeId> = node.fanins().to_vec();
                let kind = node.kind();
                // The gate's own window: the interval over which it keeps
                // straddling, narrowed below by every fanin's window.
                let mut lo = if self.mode == Mode::TwoVector {
                    smin + self.pminmin[i]
                } else {
                    Time::MIN
                };
                let mut hi = smax + self.pmax[i];
                let mut support: Option<Vec<TimedVarId>> = Some(Vec::new());
                self.suffix.push(self.netlist, n);
                // Frame discipline for GC: a sibling's recursive build
                // can sweep the arena (see the safe point below), and the
                // fanin results already collected here are reachable from
                // no root list — the protected stack shields them until
                // this frame's gate BDD consumes them.
                let protect_base = manager.protected_len();
                let mut fanin_bdds = Vec::with_capacity(fanins.len());
                let mut failed = None;
                for f in fanins {
                    match self.go(manager, f, smin + d.min, smax + d.max) {
                        Ok(built) => {
                            manager.protect(built.f);
                            fanin_bdds.push(built.f);
                            lo = lo.max(built.lo);
                            hi = hi.min(built.hi);
                            support = match (support, built.support) {
                                (Some(mut acc), Some(sub))
                                    if acc.len() + sub.len() <= SUPPORT_CAP =>
                                {
                                    acc.extend(sub);
                                    Some(acc)
                                }
                                _ => None,
                            };
                        }
                        Err(e) => {
                            failed = Some(e);
                            break;
                        }
                    }
                }
                self.suffix.pop();
                if let Some(e) = failed {
                    manager.truncate_protected(protect_base);
                    return Err(e);
                }
                if let Some(acc) = &mut support {
                    acc.sort_unstable();
                    acc.dedup();
                }
                if fault::trip(Site::BddOp) {
                    manager.truncate_protected(protect_base);
                    return Err(BuildAbort::BddTooLarge {
                        limit: self.max_bdd,
                    });
                }
                let bud = self.budget.clone();
                let probe = move || bud.interrupted();
                let op_budget = OpBudget::with_cancel(self.max_bdd, &probe);
                let result = gate_bdd(manager, kind, &fanin_bdds, &op_budget);
                // The gate BDD (right or wrong) now owns the fanins'
                // lifetime: pop this frame's shields before propagating.
                manager.truncate_protected(protect_base);
                let result = result.map_err(BuildAbort::from_op)?;
                #[cfg(feature = "obs")]
                self.budget
                    .counters()
                    .bump(tbf_obs::Metric::TbfInstantiations);
                if let Some(sup) = support.clone() {
                    self.cache
                        .insert((n, id, self.mode.idx()), lo, hi, result, sup);
                }
                // Safe point: the gate's BDD call is complete, so an
                // on-pressure sift or arena sweep may rewrite the arena
                // here. Handles held by parent frames survive any reorder
                // for free and survive a sweep because each frame
                // protects its collected fanins; the explicit roots carry
                // everything else the engine can still reach — statics,
                // leaf literals, pass-1 leaves, the cross-breakpoint
                // cache's whole reachable set, and this result.
                if manager.pressure_pending() || manager.gc_pending() {
                    let mut roots: Vec<Bdd> = Vec::with_capacity(
                        self.static_after.len()
                            + self.static_before.len()
                            + self.after_leaf.len()
                            + self.before_leaf.len()
                            + self.leaf_of_key.len()
                            + 1,
                    );
                    roots.extend_from_slice(self.static_after);
                    roots.extend_from_slice(self.static_before);
                    roots.extend_from_slice(self.after_leaf);
                    roots.extend_from_slice(self.before_leaf);
                    roots.extend(self.leaf_of_key.values().copied());
                    self.cache.roots(&mut roots);
                    roots.push(result);
                    // Sweep *before* the pressure check: under GC most of
                    // the occupied count is transient churn a sweep
                    // reclaims outright, and a sift pass is only worth its
                    // cost when the live population itself kept growing
                    // past the trigger. Checking pressure first would
                    // re-fire a full sift every ~2×live transient
                    // allocations — orders of magnitude more passes than
                    // the append-only arena's geometric backoff.
                    manager.maybe_gc(&roots);
                    if manager.pressure_pending() {
                        manager.check_pressure(&roots);
                    }
                }
                Ok(Built {
                    f: result,
                    lo,
                    hi,
                    support,
                })
            }
        }
        let mut builder = TbfBuild {
            netlist: &self.netlist,
            pmax: &self.timing.pmax,
            pminmin: &self.timing.pminmin,
            b,
            mode,
            max_paths: self.budget.max_paths(),
            max_bdd: self.budget.max_bdd_nodes(),
            budget: self.budget.clone(),
            static_after: &self.static_after,
            static_before: &self.static_before,
            after_leaf: &self.after_leaf,
            before_leaf: &self.before_leaf,
            leaf_of_key,
            table: &mut self.table,
            cache: &mut self.tbf_cache,
            suffix: SuffixTracker::default(),
            calls: 0,
        };
        builder
            .go(&mut self.manager, output, Time::ZERO, Time::ZERO)
            .map(|built| built.f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::DelayOptions;
    use tbf_logic::generators::figures::{figure4_example3, figure5_example4, figure6_glitch};
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn engine(n: &Netlist) -> ConeContext {
        ConeContext::new(
            Arc::new(n.clone()),
            AnalysisBudget::from_options(&DelayOptions::default()).shared(),
        )
        .expect("small circuit")
    }

    #[test]
    fn figure4_tbf_at_4_has_one_resolvent_per_variable() {
        // At t = 4⁻ the two 2-gate paths straddle; they denote the TBF
        // variables a(t−d1−d2) and b(t−d1−d2) — distinct inputs, so two
        // resolvents. The 1-gate path a(t−d2) has kmax 2 < 4 → positive.
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let mut e = engine(&n);
        let q = e.two_vector_query(out, t(4)).expect("small circuit");
        assert_eq!(q.resolvents.len(), 2);
        assert_ne!(q.f, e.static_out(out));
        for r in &q.resolvents {
            assert_eq!(r.gates.len(), 2);
        }
    }

    #[test]
    fn figure4_tbf_at_2_more_paths_straddle() {
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let mut e = engine(&n);
        let q = e.two_vector_query(out, t(2)).expect("small circuit");
        // Paths: a→g2 (k ∈ [1,2], straddles 2), a/b→g1→g2 (k ∈ [2,4],
        // kmin = 2 not < 2 → negative).
        assert_eq!(q.resolvents.len(), 1);
        assert_eq!(q.resolvents[0].gates.len(), 1);
    }

    #[test]
    fn figure5_classification_matches_example4() {
        // At t = 2.8: one path negative, two straddling, two positive —
        // so exactly two resolvents (distinct TBF variables).
        let n = figure5_example4();
        let out = n.find("g5").unwrap();
        let mut e = engine(&n);
        let q = e
            .two_vector_query(out, Time::from_units(2.8))
            .expect("small circuit");
        assert_eq!(q.resolvents.len(), 2);
    }

    #[test]
    fn figure6_fixed_delays_share_the_tbf_variable() {
        // Both paths have fixed length 2: a single TBF variable a(t−2),
        // and the sequences TBF collapses to the constant 0 = static.
        let n = figure6_glitch();
        let out = n.find("g").unwrap();
        let mut e = engine(&n);
        let f = e.sequences_query(out, t(2)).expect("small circuit");
        assert_eq!(f, e.static_out(out));
        assert!(f.is_false());
    }

    #[test]
    fn figure6_variable_delays_get_distinct_variables() {
        let n = figure6_glitch().map_delays(|d| DelayBounds::new(d.max - Time::EPSILON, d.max));
        let out = n.find("g").unwrap();
        let mut e = engine(&n);
        let f = e.sequences_query(out, t(2)).expect("small circuit");
        assert_ne!(f, e.static_out(out));
    }

    #[test]
    fn collapse_makes_settled_cones_static() {
        // A deep chain queried far above its length collapses instantly.
        let mut b = Netlist::builder();
        let mut cur = b.input("x");
        for i in 0..50 {
            cur = b
                .gate(
                    GateKind::Not,
                    &format!("g{i}"),
                    vec![cur],
                    DelayBounds::new(t(1), t(2)),
                )
                .unwrap();
        }
        b.output("f", cur);
        let n = b.finish().unwrap();
        let out = n.find("g49").unwrap();
        let mut e = engine(&n);
        // Query at b = 200 > kmax = 100: everything positive.
        let q = e.two_vector_query(out, t(200)).expect("collapses");
        assert_eq!(q.resolvents.len(), 0);
        assert_eq!(q.f, e.static_out(out));
        // Query at b = 40 < kmin = 50: everything negative — the TBF is
        // the static function of the x⁻ variables, ≠ static over x⁺.
        let q = e.two_vector_query(out, t(40)).expect("collapses");
        assert_eq!(q.resolvents.len(), 0);
        assert_ne!(q.f, e.static_out(out));
    }

    #[test]
    fn path_cap_aborts() {
        // A wide AND of variable-delay buffers at a straddling query.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..8 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::And, "g", bufs, DelayBounds::new(t(1), t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let out = n.find("g").unwrap();
        let opts = DelayOptions {
            max_straddling_paths: 4,
            ..DelayOptions::default()
        };
        let mut e = ConeContext::new(
            Arc::new(n.clone()),
            AnalysisBudget::from_options(&opts).shared(),
        )
        .expect("small circuit");
        let err = e.two_vector_query(out, t(3)).unwrap_err();
        assert_eq!(err, BuildAbort::TooManyPaths { limit: 4 });
    }

    #[test]
    fn escalated_caps_are_read_live() {
        // Same circuit as `path_cap_aborts`: escalating the shared budget
        // (no engine rebuild) must lift the cap for the next query.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..8 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::And, "g", bufs, DelayBounds::new(t(1), t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let out = n.find("g").unwrap();
        let opts = DelayOptions {
            max_straddling_paths: 4,
            ..DelayOptions::default()
        };
        let budget = AnalysisBudget::from_options(&opts).shared();
        let mut e = ConeContext::new(Arc::new(n.clone()), budget.clone()).expect("small circuit");
        assert!(e.two_vector_query(out, t(3)).is_err());
        budget.escalate(4);
        assert!(e.two_vector_query(out, t(3)).is_ok());
    }

    #[test]
    fn cancelled_budget_interrupts_query() {
        use crate::budget::CancelToken;
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let token = CancelToken::new();
        let budget = AnalysisBudget::from_options(&DelayOptions::default())
            .with_token(token.clone())
            .shared();
        let mut e = ConeContext::new(Arc::new(n.clone()), budget).expect("small circuit");
        token.cancel();
        let err = e.two_vector_query(out, t(4)).unwrap_err();
        assert_eq!(err, BuildAbort::Interrupted);
    }

    #[test]
    fn slots_grow_on_demand() {
        // 10 parallel buffers from ONE input: 10 resolvents on the same
        // input — more than the initial slot reservation.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::Xor, "g", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let out = n.find("g").unwrap();
        let mut e = engine(&n);
        let q = e.two_vector_query(out, t(3)).expect("slots grow");
        assert_eq!(q.resolvents.len(), 10);
    }

    #[test]
    fn compaction_preserves_results() {
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let mut e = engine(&n);
        let q1 = e.two_vector_query(out, t(4)).expect("ok");
        let r1 = q1.resolvents.len();
        // Force a relayout and re-query: same structure.
        e.layout().expect("relayout");
        let q2 = e.two_vector_query(out, t(4)).expect("ok");
        assert_eq!(r1, q2.resolvents.len());
        assert_ne!(q2.f, e.static_out(out));
        e.maybe_compact().expect("compaction ok");
    }

    #[test]
    fn resolvents_sit_next_to_their_inputs_in_the_order() {
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let mut e = engine(&n);
        let q = e.two_vector_query(out, t(4)).expect("small circuit");
        for r in &q.resolvents {
            let name = e.manager.var_name(r.var).to_owned();
            assert!(name.starts_with("s_"), "{name}");
        }
        // Layout: (a+, a-, 4 slots, b+, b-, 4 slots) = 12 variables.
        assert_eq!(e.manager.var_count(), 12);
        // The a-resolvent must be ordered before b's input variables.
        let a_res = q
            .resolvents
            .iter()
            .find(|r| e.manager.var_name(r.var).starts_with("s_a"))
            .expect("a has a resolvent");
        let b_plus = e.input_vars[2]; // b+ is third created
        assert!(a_res.var < b_plus, "a's resolvent should precede b+");
    }

    #[test]
    fn dfs_order_interleaves_adder_operands() {
        use tbf_logic::generators::adders::ripple_carry;
        let n = ripple_carry(4, DelayBounds::fixed(t(1)));
        let order = dfs_input_order(&n);
        let names: Vec<&str> = order
            .iter()
            .map(|&p| n.node(n.inputs()[p]).name())
            .collect();
        let pos_a0 = names.iter().position(|&s| s == "a0").unwrap();
        let pos_b0 = names.iter().position(|&s| s == "b0").unwrap();
        assert!(
            pos_a0.abs_diff(pos_b0) <= 2,
            "a0/b0 should be near-adjacent, got {names:?}"
        );
    }
}
