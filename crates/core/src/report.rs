//! Result types for the delay engines.

use std::fmt;

use tbf_logic::Time;

/// A sensitizing scenario realizing (or approaching within one
/// fixed-point unit of) the exact 2-vector delay: the input vector pair
/// and an in-bounds delay assignment extracted from the winning cube's
/// linear program.
///
/// Feed it to `tbf_sim::simulate` to watch the last output transition
/// land at the computed delay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayWitness {
    /// Name of the output whose transition realizes the circuit delay.
    pub output: String,
    /// Input vector applied since `t = −∞`, in primary-input order.
    pub before: Vec<bool>,
    /// Input vector applied at `t = 0`.
    pub after: Vec<bool>,
    /// Per-node delay assignment (indexed like the netlist's nodes).
    pub delays: Vec<Time>,
}

/// Per-output delay result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputDelay {
    /// The primary output's name.
    pub name: String,
    /// Its delay: exact when [`exact`](Self::exact) is true, otherwise a
    /// sound upper bound (the output's cone hit a resource cap).
    pub delay: Time,
    /// The output's topological delay, for the exact-vs-topological gap.
    pub topological: Time,
    /// Whether `delay` is exact (capped cones report a bound instead;
    /// the circuit-level result is still exact whenever some exact
    /// output dominates every bounded one).
    pub exact: bool,
}

/// Search-effort counters, reported for the paper's CPU-time-style table
/// columns and for regression tracking.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Breakpoints (`Kᵢᵐᵃˣ` values) examined across all outputs.
    pub breakpoints_visited: usize,
    /// Delay-dependent paths expanded (resolvents created).
    pub resolvents: usize,
    /// Linear programs solved.
    pub lps_solved: usize,
    /// Peak BDD node count.
    pub peak_bdd_nodes: usize,
}

/// The result of an exact delay computation.
///
/// The circuit delay of Definition 1 is the maximum over outputs of the
/// per-output last-transition time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayReport {
    /// The circuit's exact delay.
    pub delay: Time,
    /// The circuit's topological delay (baseline).
    pub topological: Time,
    /// Per-output breakdown.
    pub outputs: Vec<OutputDelay>,
    /// A sensitizing scenario for the circuit delay (2-vector engine
    /// only; `None` when the delay is 0 or the engine was ω⁻).
    pub witness: Option<DelayWitness>,
    /// Effort counters.
    pub stats: SearchStats,
}

impl DelayReport {
    /// The gap between the pessimistic topological estimate and the exact
    /// delay, in time units (0 when every critical path is true).
    pub fn false_path_slack(&self) -> Time {
        self.topological - self.delay
    }

    /// The delay of a named output, if present.
    pub fn output_delay(&self, name: &str) -> Option<Time> {
        self.outputs
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.delay)
    }
}

impl fmt::Display for DelayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "exact delay {} (topological {}, slack {})",
            self.delay,
            self.topological,
            self.false_path_slack()
        )?;
        for o in &self.outputs {
            writeln!(
                f,
                "  {}: {}{} (topological {})",
                o.name,
                if o.exact { "" } else { "≤ " },
                o.delay,
                o.topological
            )?;
        }
        write!(
            f,
            "  [{} breakpoints, {} resolvents, {} LPs, {} peak BDD nodes]",
            self.stats.breakpoints_visited,
            self.stats.resolvents,
            self.stats.lps_solved,
            self.stats.peak_bdd_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn slack_and_lookup() {
        let r = DelayReport {
            delay: t(24),
            topological: t(40),
            outputs: vec![OutputDelay {
                name: "cout".into(),
                delay: t(24),
                topological: t(40),
                exact: true,
            }],
            witness: None,
            stats: SearchStats::default(),
        };
        assert_eq!(r.false_path_slack(), t(16));
        assert_eq!(r.output_delay("cout"), Some(t(24)));
        assert_eq!(r.output_delay("nope"), None);
    }

    #[test]
    fn display_is_informative() {
        let r = DelayReport {
            delay: t(3),
            topological: t(5),
            outputs: vec![],
            witness: None,
            stats: SearchStats {
                breakpoints_visited: 2,
                resolvents: 1,
                lps_solved: 4,
                peak_bdd_nodes: 100,
            },
        };
        let s = r.to_string();
        assert!(s.contains("exact delay 3"));
        assert!(s.contains("topological 5"));
        assert!(s.contains("4 LPs"));
    }
}
