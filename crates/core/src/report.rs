//! Result types for the delay engines.

use std::fmt;

use tbf_logic::Time;

use crate::error::DelayError;

/// A sensitizing scenario realizing (or approaching within one
/// fixed-point unit of) the exact 2-vector delay: the input vector pair
/// and an in-bounds delay assignment extracted from the winning cube's
/// linear program.
///
/// Feed it to `tbf_sim::simulate` to watch the last output transition
/// land at the computed delay.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayWitness {
    /// Name of the output whose transition realizes the circuit delay.
    pub output: String,
    /// Input vector applied since `t = −∞`, in primary-input order.
    pub before: Vec<bool>,
    /// Input vector applied at `t = 0`.
    pub after: Vec<bool>,
    /// Per-node delay assignment (indexed like the netlist's nodes).
    pub delays: Vec<Time>,
}

/// Why a cone's result was degraded below exactness.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DegradeCause {
    /// More delay-dependent paths than the straddling-path cap.
    TooManyPaths,
    /// The BDD manager outgrew its node cap.
    BddTooLarge,
    /// The XOR difference produced more cubes than the cube cap.
    TooManyCubes,
    /// The wall-clock budget ran out.
    TimedOut,
    /// A cancellation token fired.
    Cancelled,
    /// An internal invariant failed (typed, not a panic).
    InternalInvariant,
    /// The engine panicked inside this cone; the panic was isolated and
    /// the cone degraded.
    EnginePanic,
}

impl DegradeCause {
    /// Classifies a [`DelayError`] into the cause it degrades with.
    /// `None` for netlist errors, which are caller mistakes rather than
    /// resource exhaustion.
    pub fn from_error(e: &DelayError) -> Option<DegradeCause> {
        Some(match e {
            DelayError::TooManyPaths { .. } => DegradeCause::TooManyPaths,
            DelayError::BddTooLarge { .. } => DegradeCause::BddTooLarge,
            DelayError::TooManyCubes { .. } => DegradeCause::TooManyCubes,
            DelayError::TimedOut { .. } => DegradeCause::TimedOut,
            DelayError::Cancelled { .. } => DegradeCause::Cancelled,
            DelayError::Internal { .. } => DegradeCause::InternalInvariant,
            DelayError::Netlist(_) => return None,
        })
    }
}

impl fmt::Display for DegradeCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render the `Debug` name in spaced lowercase
        // (`TooManyPaths` → `too many paths`).
        let name = format!("{self:?}");
        let mut out = String::with_capacity(name.len() + 4);
        for (i, c) in name.chars().enumerate() {
            if c.is_uppercase() {
                if i > 0 {
                    out.push(' ');
                }
                out.extend(c.to_lowercase());
            } else {
                out.push(c);
            }
        }
        f.write_str(&out)
    }
}

/// How trustworthy a per-output `delay` figure is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OutputStatus {
    /// `delay` is the exact delay of this output's cone.
    Exact,
    /// Exactness was abandoned but sound bounds survived: the true
    /// delay lies in `[lower, upper]`, and `delay` equals `upper`.
    Bounded {
        /// Sound lower bound on the cone's delay.
        lower: Time,
        /// Sound upper bound on the cone's delay.
        upper: Time,
        /// Why the ladder stopped short of exactness.
        cause: DegradeCause,
    },
    /// Every analytic rung failed; `delay` is the cone's topological
    /// bound (always sound, maximally pessimistic).
    Fallback {
        /// Why the ladder fell through to the topological bound.
        cause: DegradeCause,
    },
}

/// Per-output delay result.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutputDelay {
    /// The primary output's name.
    pub name: String,
    /// Its delay: exact when [`status`](Self::status) is
    /// [`OutputStatus::Exact`], otherwise a sound upper bound.
    pub delay: Time,
    /// The output's topological delay, for the exact-vs-topological gap.
    pub topological: Time,
    /// How the `delay` figure was obtained (exact, bounded, or
    /// topological fallback).
    pub status: OutputStatus,
}

impl OutputDelay {
    /// Whether `delay` is exact for this output.
    pub fn is_exact(&self) -> bool {
        matches!(self.status, OutputStatus::Exact)
    }

    /// The sound `(lower, upper)` bounds this entry certifies. Exact
    /// entries collapse to `(delay, delay)`; fallback entries to
    /// `(0, topological)`.
    pub fn bounds(&self) -> (Time, Time) {
        match self.status {
            OutputStatus::Exact => (self.delay, self.delay),
            OutputStatus::Bounded { lower, upper, .. } => (lower, upper),
            OutputStatus::Fallback { .. } => (Time::ZERO, self.topological),
        }
    }
}

/// Search-effort counters, reported for the paper's CPU-time-style table
/// columns and for regression tracking.
///
/// Equality is *semantic*: representation-dependent telemetry —
/// `peak_bdd_nodes`, the `reorder_*` fields and the memory fields
/// (`peak_arena_nodes`, `arena_bytes`, `gc_sweeps`, `gc_reclaimed`) —
/// is excluded, so two reports compare equal whenever the search did the
/// same logical work, whatever the variable order, thread count or GC
/// mode happened to be.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Breakpoints (`Kᵢᵐᵃˣ` values) examined across all outputs.
    pub breakpoints_visited: usize,
    /// Delay-dependent paths expanded (resolvents created).
    pub resolvents: usize,
    /// Linear programs solved.
    pub lps_solved: usize,
    /// Peak BDD node count.
    pub peak_bdd_nodes: usize,
    /// Ladder retries (reorder-and-retry or cap escalation + engine
    /// reset) attempted.
    pub retries: usize,
    /// Cones that fell back to the sequences-delay upper bound.
    pub sequences_fallbacks: usize,
    /// Cones that fell all the way through to the topological bound.
    pub topological_fallbacks: usize,
    /// Engine panics caught and isolated by the driver.
    pub panics_caught: usize,
    /// Variable-reordering (sifting) passes run.
    pub reorders: usize,
    /// Sum of live BDD node counts just before each sift.
    pub reorder_nodes_before: usize,
    /// Sum of live BDD node counts just after each sift.
    pub reorder_nodes_after: usize,
    /// Wall-clock milliseconds spent sifting.
    pub reorder_time_ms: u64,
    /// Peak arena *slots* (live + dead) of any one manager — the real
    /// high-water memory mark, unlike `peak_bdd_nodes` which counts
    /// occupied slots and therefore shrinks when GC reclaims.
    pub peak_arena_nodes: usize,
    /// Largest arena + unique-subtable footprint, in bytes, sampled
    /// wherever `peak_bdd_nodes` is.
    pub arena_bytes: usize,
    /// Mark-and-sweep passes run across all managers.
    pub gc_sweeps: u64,
    /// Arena nodes reclaimed by those sweeps.
    pub gc_reclaimed: u64,
}

impl PartialEq for SearchStats {
    fn eq(&self, other: &Self) -> bool {
        // Deliberately skips peak_bdd_nodes, reorders,
        // reorder_nodes_before/after, reorder_time_ms, peak_arena_nodes,
        // arena_bytes, gc_sweeps and gc_reclaimed: those describe the
        // representation, the wall clock and the memory manager — not
        // the search.
        self.breakpoints_visited == other.breakpoints_visited
            && self.resolvents == other.resolvents
            && self.lps_solved == other.lps_solved
            && self.retries == other.retries
            && self.sequences_fallbacks == other.sequences_fallbacks
            && self.topological_fallbacks == other.topological_fallbacks
            && self.panics_caught == other.panics_caught
    }
}

impl Eq for SearchStats {}

impl SearchStats {
    /// Folds another cone's counters into this one: effort counters add,
    /// `peak_bdd_nodes` takes the max (each parallel worker owns its own
    /// BDD manager, so peaks are concurrent, not cumulative).
    pub fn merge(&mut self, other: &SearchStats) {
        self.breakpoints_visited += other.breakpoints_visited;
        self.resolvents += other.resolvents;
        self.lps_solved += other.lps_solved;
        self.peak_bdd_nodes = self.peak_bdd_nodes.max(other.peak_bdd_nodes);
        self.retries += other.retries;
        self.sequences_fallbacks += other.sequences_fallbacks;
        self.topological_fallbacks += other.topological_fallbacks;
        self.panics_caught += other.panics_caught;
        self.reorders += other.reorders;
        self.reorder_nodes_before += other.reorder_nodes_before;
        self.reorder_nodes_after += other.reorder_nodes_after;
        self.reorder_time_ms += other.reorder_time_ms;
        self.peak_arena_nodes = self.peak_arena_nodes.max(other.peak_arena_nodes);
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
        self.gc_sweeps += other.gc_sweeps;
        self.gc_reclaimed += other.gc_reclaimed;
    }

    /// Folds a BDD manager's reordering counters into this record.
    pub(crate) fn absorb_reorder(&mut self, rs: tbf_bdd::ReorderStats) {
        self.reorders += rs.reorders;
        self.reorder_nodes_before += rs.nodes_before;
        self.reorder_nodes_after += rs.nodes_after;
        self.reorder_time_ms += rs.time_ms;
    }

    /// Samples one engine's memory telemetry into this record: peaks
    /// take the max (repeated samples of a growing engine), and the GC
    /// totals too — they are monotone over an engine's life, so the max
    /// absorbs repeated samples without double counting, while distinct
    /// engines' totals are summed by [`merge`](Self::merge).
    pub(crate) fn sample_memory(
        &mut self,
        peak_arena: usize,
        arena_bytes: usize,
        gc: tbf_bdd::GcStats,
    ) {
        self.peak_arena_nodes = self.peak_arena_nodes.max(peak_arena);
        self.arena_bytes = self.arena_bytes.max(arena_bytes);
        self.gc_sweeps = self.gc_sweeps.max(gc.sweeps);
        self.gc_reclaimed = self.gc_reclaimed.max(gc.reclaimed);
    }
}

/// The result of an exact delay computation.
///
/// The circuit delay of Definition 1 is the maximum over outputs of the
/// per-output last-transition time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayReport {
    /// The circuit's exact delay.
    pub delay: Time,
    /// The circuit's topological delay (baseline).
    pub topological: Time,
    /// Per-output breakdown.
    pub outputs: Vec<OutputDelay>,
    /// A sensitizing scenario for the circuit delay (2-vector engine
    /// only; `None` when the delay is 0 or the engine was ω⁻).
    pub witness: Option<DelayWitness>,
    /// Effort counters.
    pub stats: SearchStats,
}

impl DelayReport {
    /// The gap between the pessimistic topological estimate and the exact
    /// delay, in time units (0 when every critical path is true).
    pub fn false_path_slack(&self) -> Time {
        self.topological - self.delay
    }

    /// The delay of a named output, if present.
    pub fn output_delay(&self, name: &str) -> Option<Time> {
        self.outputs
            .iter()
            .find(|o| o.name == name)
            .map(|o| o.delay)
    }
}

impl fmt::Display for DelayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "exact delay {} (topological {}, slack {})",
            self.delay,
            self.topological,
            self.false_path_slack()
        )?;
        for o in &self.outputs {
            writeln!(
                f,
                "  {}: {}{} (topological {})",
                o.name,
                if o.is_exact() { "" } else { "≤ " },
                o.delay,
                o.topological
            )?;
        }
        write!(
            f,
            "  [{} breakpoints, {} resolvents, {} LPs, {} peak BDD nodes]",
            self.stats.breakpoints_visited,
            self.stats.resolvents,
            self.stats.lps_solved,
            self.stats.peak_bdd_nodes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn slack_and_lookup() {
        let r = DelayReport {
            delay: t(24),
            topological: t(40),
            outputs: vec![OutputDelay {
                name: "cout".into(),
                delay: t(24),
                topological: t(40),
                status: OutputStatus::Exact,
            }],
            witness: None,
            stats: SearchStats::default(),
        };
        assert_eq!(r.false_path_slack(), t(16));
        assert_eq!(r.output_delay("cout"), Some(t(24)));
        assert_eq!(r.output_delay("nope"), None);
    }

    #[test]
    fn display_is_informative() {
        let r = DelayReport {
            delay: t(3),
            topological: t(5),
            outputs: vec![],
            witness: None,
            stats: SearchStats {
                breakpoints_visited: 2,
                resolvents: 1,
                lps_solved: 4,
                peak_bdd_nodes: 100,
                ..SearchStats::default()
            },
        };
        let s = r.to_string();
        assert!(s.contains("exact delay 3"));
        assert!(s.contains("topological 5"));
        assert!(s.contains("4 LPs"));
    }

    #[test]
    fn status_bounds_and_exactness() {
        let exact = OutputDelay {
            name: "a".into(),
            delay: t(4),
            topological: t(6),
            status: OutputStatus::Exact,
        };
        assert!(exact.is_exact());
        assert_eq!(exact.bounds(), (t(4), t(4)));

        let bounded = OutputDelay {
            name: "b".into(),
            delay: t(6),
            topological: t(8),
            status: OutputStatus::Bounded {
                lower: t(2),
                upper: t(6),
                cause: DegradeCause::TooManyPaths,
            },
        };
        assert!(!bounded.is_exact());
        assert_eq!(bounded.bounds(), (t(2), t(6)));

        let fallback = OutputDelay {
            name: "c".into(),
            delay: t(8),
            topological: t(8),
            status: OutputStatus::Fallback {
                cause: DegradeCause::EnginePanic,
            },
        };
        assert!(!fallback.is_exact());
        assert_eq!(fallback.bounds(), (Time::ZERO, t(8)));
    }

    #[test]
    fn stats_equality_ignores_representation_telemetry() {
        let a = SearchStats {
            peak_bdd_nodes: 10,
            reorders: 2,
            reorder_nodes_before: 500,
            reorder_nodes_after: 100,
            reorder_time_ms: 3,
            ..SearchStats::default()
        };
        let b = SearchStats {
            peak_bdd_nodes: 99,
            ..SearchStats::default()
        };
        assert_eq!(a, b, "representation telemetry must not affect equality");
        let c = SearchStats {
            lps_solved: 1,
            ..SearchStats::default()
        };
        assert_ne!(a, c, "search-effort counters still distinguish");
    }

    #[test]
    fn merge_adds_reorder_counters() {
        let mut a = SearchStats {
            reorders: 1,
            reorder_nodes_before: 10,
            reorder_nodes_after: 4,
            reorder_time_ms: 2,
            ..SearchStats::default()
        };
        a.merge(&a.clone());
        assert_eq!(a.reorders, 2);
        assert_eq!(a.reorder_nodes_before, 20);
        assert_eq!(a.reorder_nodes_after, 8);
        assert_eq!(a.reorder_time_ms, 4);
    }

    #[test]
    fn degrade_cause_classification() {
        let e = DelayError::TimedOut {
            elapsed_ms: 10,
            at_breakpoint: t(5),
            bounds: (Time::ZERO, t(5)),
        };
        assert_eq!(DegradeCause::from_error(&e), Some(DegradeCause::TimedOut));
        let n: DelayError = tbf_logic::NetlistError::NoOutputs.into();
        assert_eq!(DegradeCause::from_error(&n), None);
        assert_eq!(DegradeCause::EnginePanic.to_string(), "engine panic");
        assert_eq!(DegradeCause::TooManyPaths.to_string(), "too many paths");
    }
}
