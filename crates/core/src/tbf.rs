//! The explicit Timed Boolean Function algebra of paper §4.
//!
//! A [`TbfExpr`] is a Boolean expression whose leaves are *timed
//! variables* `xᵢ(t + offset)` — Definition 2's recursive closure of the
//! identity function under product and sum (plus negation and XOR for
//! convenience). Evaluating a TBF at a time against concrete input
//! waveforms reproduces the circuit-behaviour calculations of Example 2
//! and the gate models of §4.1.

use std::collections::HashMap;

use tbf_bdd::Bdd;
use tbf_logic::{Netlist, NodeId, Time};

/// A Timed Boolean Function over `n` inputs.
///
/// # Example
///
/// Example 2 of the paper: `f(a,b)(t) = a(t−1) ⊕ b(t+1)`.
///
/// ```
/// use tbf_core::TbfExpr;
/// use tbf_logic::Time;
///
/// let f = TbfExpr::var(0, Time::from_int(-1)).xor(TbfExpr::var(1, Time::from_int(1)));
/// // a = step rising at 0; b = step rising at 2.
/// let a = |t: Time| t >= Time::ZERO;
/// let b = |t: Time| t >= Time::from_int(2);
/// let wave = |i: usize, t: Time| if i == 0 { a(t) } else { b(t) };
/// // At t = 0.5: a(-0.5) = 0, b(1.5) = 0 → 0.
/// assert!(!f.eval_at(Time::from_units(0.5), &wave));
/// // At t = 1.5: a(0.5) = 1, b(2.5) = 1 → 0.
/// assert!(!f.eval_at(Time::from_units(1.5), &wave));
/// // At t = 1.0: a(0) = 1, b(2) = 1 → 0; at t = 1.0⁻…
/// // At t = 1.2: a(0.2)=1, b(2.2)=1 → 0. At t = 1.0-0.5: see above.
/// assert!(f.eval_at(Time::from_int(1), &|i, t| if i == 0 { t >= Time::ZERO } else { false }));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TbfExpr {
    /// A timed variable `x_index(t + offset)`.
    Var {
        /// Input index.
        index: usize,
        /// Time offset added to the evaluation time (gate delays give
        /// negative offsets, e.g. `x(t − τ)` has `offset = −τ`).
        offset: Time,
    },
    /// Logical negation.
    Not(Box<TbfExpr>),
    /// Product (conjunction).
    And(Box<TbfExpr>, Box<TbfExpr>),
    /// Sum (disjunction).
    Or(Box<TbfExpr>, Box<TbfExpr>),
    /// Exclusive or.
    Xor(Box<TbfExpr>, Box<TbfExpr>),
    /// A Boolean constant.
    Const(bool),
}

impl TbfExpr {
    /// The timed variable `x_index(t + offset)`.
    pub fn var(index: usize, offset: Time) -> TbfExpr {
        TbfExpr::Var { index, offset }
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> TbfExpr {
        TbfExpr::Not(Box::new(self))
    }

    /// Conjunction.
    pub fn and(self, rhs: TbfExpr) -> TbfExpr {
        TbfExpr::And(Box::new(self), Box::new(rhs))
    }

    /// Disjunction.
    pub fn or(self, rhs: TbfExpr) -> TbfExpr {
        TbfExpr::Or(Box::new(self), Box::new(rhs))
    }

    /// Exclusive or.
    pub fn xor(self, rhs: TbfExpr) -> TbfExpr {
        TbfExpr::Xor(Box::new(self), Box::new(rhs))
    }

    /// Evaluates the TBF at time `t` against an input-waveform oracle
    /// `wave(input_index, time) → value`.
    pub fn eval_at(&self, t: Time, wave: &impl Fn(usize, Time) -> bool) -> bool {
        match self {
            TbfExpr::Var { index, offset } => wave(*index, t + *offset),
            TbfExpr::Not(e) => !e.eval_at(t, wave),
            TbfExpr::And(l, r) => l.eval_at(t, wave) && r.eval_at(t, wave),
            TbfExpr::Or(l, r) => l.eval_at(t, wave) || r.eval_at(t, wave),
            TbfExpr::Xor(l, r) => l.eval_at(t, wave) ^ r.eval_at(t, wave),
            TbfExpr::Const(v) => *v,
        }
    }

    /// The §4.1 model of a buffer with distinct rising/falling delays:
    /// `x(t−τᵣ)·x(t−τ_f)` when `τᵣ > τ_f`, `x(t−τᵣ)+x(t−τ_f)` when
    /// `τᵣ < τ_f`, and plain `x(t−τ)` when equal.
    pub fn rise_fall_buffer(index: usize, rise: Time, fall: Time) -> TbfExpr {
        let slow = TbfExpr::var(index, -rise);
        let fast = TbfExpr::var(index, -fall);
        match rise.cmp(&fall) {
            std::cmp::Ordering::Greater => slow.and(fast),
            std::cmp::Ordering::Less => slow.or(fast),
            std::cmp::Ordering::Equal => slow,
        }
    }

    /// Derives the TBF of a netlist node by composition (paper §4.1),
    /// assigning every gate its **maximum** delay — a fixed-delay TBF
    /// suitable for waveform calculations.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for the netlist.
    pub fn of_netlist_node(netlist: &Netlist, node: tbf_logic::NodeId) -> TbfExpr {
        fn go(netlist: &Netlist, node: tbf_logic::NodeId, shift: Time) -> TbfExpr {
            let n = netlist.node(node);
            if let Some(pos) = netlist.input_position(node) {
                return TbfExpr::var(pos, shift);
            }
            use tbf_logic::GateKind as G;
            if matches!(n.kind(), G::Const0 | G::Const1) {
                return TbfExpr::Const(n.kind() == G::Const1);
            }
            let shift = shift - n.delay().max;
            let kids: Vec<TbfExpr> = n.fanins().iter().map(|&f| go(netlist, f, shift)).collect();
            let fold = |op: fn(TbfExpr, TbfExpr) -> TbfExpr, kids: &[TbfExpr]| -> TbfExpr {
                let mut it = kids.iter().cloned();
                let first = it.next().expect("gates have fanins");
                it.fold(first, op)
            };
            match n.kind() {
                G::And => fold(TbfExpr::and, &kids),
                G::Or => fold(TbfExpr::or, &kids),
                G::Nand => fold(TbfExpr::and, &kids).not(),
                G::Nor => fold(TbfExpr::or, &kids).not(),
                G::Xor => fold(TbfExpr::xor, &kids),
                G::Xnor => fold(TbfExpr::xor, &kids).not(),
                G::Not => kids[0].clone().not(),
                G::Buf => kids[0].clone(),
                G::Maj => {
                    let (a, b, c) = (kids[0].clone(), kids[1].clone(), kids[2].clone());
                    a.clone().and(b.clone()).or(a.and(c.clone())).or(b.and(c))
                }
                G::Mux => {
                    let (s, d0, d1) = (kids[0].clone(), kids[1].clone(), kids[2].clone());
                    s.clone().not().and(d0).or(s.and(d1))
                }
                G::Input | G::Const0 | G::Const1 => unreachable!("handled above"),
            }
        }
        go(netlist, node, Time::ZERO)
    }

    /// All distinct `(index, offset)` timed variables in the expression.
    pub fn support(&self) -> Vec<(usize, Time)> {
        let mut out = Vec::new();
        fn go(e: &TbfExpr, out: &mut Vec<(usize, Time)>) {
            match e {
                TbfExpr::Var { index, offset } => {
                    if !out.contains(&(*index, *offset)) {
                        out.push((*index, *offset));
                    }
                }
                TbfExpr::Not(x) => go(x, out),
                TbfExpr::And(l, r) | TbfExpr::Or(l, r) | TbfExpr::Xor(l, r) => {
                    go(l, out);
                    go(r, out);
                }
                TbfExpr::Const(_) => {}
            }
        }
        go(self, &mut out);
        out.sort_unstable();
        out
    }
}

// ---------------------------------------------------------------------
// The symbolic side of the shared delay-model engine: interned timed
// variables (k-functions) and the cross-breakpoint instantiation cache.
// `ConeContext` (network.rs) compiles a cone once into these tables;
// the per-breakpoint BDD builds then reuse any sub-function whose
// validity window still contains the query point.

/// Identity of a timed variable / k-function `x(t−k)` reached through a
/// suffix path: the endpoint plus the delay sum `k` *as a function* of
/// the gate delay variables (variable-gate multiset + fixed part).
/// `input_pos` is `usize::MAX` for interior (gate) suffix keys.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub(crate) struct TimedVarKey {
    pub input_pos: usize,
    pub variable_gates: Vec<NodeId>,
    pub fixed_sum: Time,
}

impl TimedVarKey {
    /// Splits a suffix path into its k-function parts. The engines use
    /// the incremental [`SuffixTracker`] instead; this reference
    /// implementation remains as the test oracle.
    #[cfg(test)]
    pub fn of_suffix(netlist: &Netlist, input_pos: usize, suffix: &[NodeId]) -> TimedVarKey {
        let mut tracker = SuffixTracker::default();
        for &g in suffix {
            tracker.push(netlist, g);
        }
        tracker.key(input_pos)
    }
}

/// The current suffix path of a reverse cone walk, with its k-function
/// parts maintained *incrementally*: [`key`](SuffixTracker::key) costs
/// O(variable gates on the path) instead of re-walking (and re-reading
/// delays for) the whole suffix at every leaf and interior gate — the
/// dominant per-visit cost of the old interned keys on deep cones.
#[derive(Default)]
pub(crate) struct SuffixTracker {
    gates: Vec<NodeId>,
    /// Variable-delay gates of `gates`, in push order.
    variable_gates: Vec<NodeId>,
    /// Per-pushed-gate fixed contribution (`None` for variable-delay).
    contributions: Vec<Option<Time>>,
    fixed_sum: Time,
}

impl SuffixTracker {
    /// Appends gate `g` to the suffix.
    pub fn push(&mut self, netlist: &Netlist, g: NodeId) {
        self.gates.push(g);
        let d = netlist.node(g).delay();
        if d.is_variable() {
            self.variable_gates.push(g);
            self.contributions.push(None);
        } else {
            self.fixed_sum += d.max;
            self.contributions.push(Some(d.max));
        }
    }

    /// Removes the most recently pushed gate.
    pub fn pop(&mut self) {
        self.gates.pop();
        match self.contributions.pop().expect("pop must match a push") {
            Some(t) => self.fixed_sum -= t,
            None => {
                self.variable_gates.pop();
            }
        }
    }

    /// The k-function key of the current suffix (variable gates in
    /// sorted order, as [`TimedVarKey`] demands).
    pub fn key(&self, input_pos: usize) -> TimedVarKey {
        let mut variable_gates = self.variable_gates.clone();
        variable_gates.sort_unstable();
        TimedVarKey {
            input_pos,
            variable_gates,
            fixed_sum: self.fixed_sum,
        }
    }

    /// The raw suffix gates, outermost first.
    pub fn gates(&self) -> &[NodeId] {
        &self.gates
    }
}

/// Index of an interned [`TimedVarKey`] in a cone's [`TimedTable`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub(crate) struct TimedVarId(u32);

impl TimedVarId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// The cone's interner: every distinct k-function (leaf or interior
/// suffix) gets one stable [`TimedVarId`] for the context's lifetime.
/// Append-only, so ids survive manager rebuilds.
#[derive(Default)]
pub(crate) struct TimedTable {
    ids: HashMap<TimedVarKey, TimedVarId>,
}

impl TimedTable {
    /// The id of `key`, interning it on first sight.
    pub fn intern(&mut self, key: &TimedVarKey) -> TimedVarId {
        if let Some(&id) = self.ids.get(key) {
            return id;
        }
        let id = TimedVarId(u32::try_from(self.ids.len()).unwrap_or(u32::MAX));
        self.ids.insert(key.clone(), id);
        id
    }
}

/// Entries whose support exceeds this are not cached: the per-entry
/// support list is what makes invalidation exact, and unbounded lists
/// would make the cache quadratic in cone width.
pub(crate) const SUPPORT_CAP: usize = 128;

/// FNV-1a over a cone's structural-signature bytes: the cone scope tag
/// for [`TbfCache::set_cone`]. Collisions are astronomically unlikely
/// and at worst cost a wrong *hit window* — never a wrong result,
/// because entries are additionally epoch-checked, and a colliding cone
/// necessarily owns a different manager whose rebuild `clear()`s the
/// cache anyway; the tag is a guard, not the sole line of defense.
pub(crate) fn cone_scope_tag(signature: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in signature {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One cached instantiation of a timed sub-function: the BDD built for
/// `(gate, suffix k-function)` at some query point, valid for every
/// breakpoint `b` in `(lo, hi]` — the window over which every collapse
/// decision in the subtree is unchanged — as long as none of the leaf
/// variables in `support` has been re-bound since `built_epoch`.
pub(crate) struct Instantiation {
    pub lo: Time,
    pub hi: Time,
    pub bdd: Bdd,
    built_epoch: u64,
    /// The mode's global bindings generation when this entry was built.
    /// While the generation is unchanged, *no* leaf binding has changed,
    /// so freshness holds without scanning `support` — the common case
    /// on adjacent breakpoints, and the fix for the per-hit O(support)
    /// epoch scan that made cache hits slower than small rebuilds.
    built_generation: u64,
    /// The cache's cone scope when this entry was built. Served only
    /// while the cache is in the same scope: `Bdd` handles and
    /// `TimedVarId`s are meaningful only against the manager and
    /// interner of the cone that built them, so an entry must never
    /// cross a cone boundary however fresh its epoch looks.
    built_cone: u64,
    pub support: Vec<TimedVarId>,
}

/// The cross-breakpoint timed-node cache (the "symbolic TBF DAG"): maps
/// `(gate, interned k-function, mode)` to a still-valid BDD so adjacent
/// breakpoints reuse sub-BDDs instead of rebuilding them.
///
/// Invalidation is epoch-based: every query bumps the epoch and re-binds
/// its leaf variables; a binding that actually changed (a leaf key got a
/// different slot variable, or a different resolvent) stamps its
/// `changed_at`, and an entry is served only if `built_epoch` is at
/// least as new as every support leaf's `changed_at`.
///
/// The cache holds plain `Bdd` handles. Handles survive sifting reorders
/// (swaps rewrite nodes in place), so entries stay correct until the
/// manager itself is rebuilt — [`clear`](TbfCache::clear) is called on
/// every layout rebuild. Mark-and-sweep GC is the one operation that
/// *can* invalidate a handle, so the engine lists every handle the cache
/// holds — entries and leaf bindings, via [`roots`](TbfCache::roots) —
/// in the root set of every sweep: the cache stays coherent because
/// everything it references survives, not because it is rebuilt.
#[derive(Default)]
pub(crate) struct TbfCache {
    entries: HashMap<(NodeId, TimedVarId, u8), Instantiation>,
    /// Per-mode leaf bindings, indexed by `TimedVarId`.
    bindings: [Vec<Option<Bdd>>; 2],
    /// Epoch at which each binding last changed.
    changed_at: [Vec<u64>; 2],
    /// Per-mode count of *actual* binding changes, ever. An entry built
    /// at the current generation is trivially fresh (O(1) hit check);
    /// the per-support scan only runs when some binding changed since.
    generation: [u64; 2],
    epoch: u64,
    /// The active cone scope. Epochs and generations are monotonic for
    /// the cache's whole life, so in a cache that outlives one cone
    /// (the service workspace keeps them across requests) an old cone's
    /// entry can look perfectly fresh to the epoch machinery while its
    /// BDD handle points into a dead manager. Scoping entries by cone
    /// makes that stale read structurally impossible: [`lookup`] serves
    /// an entry only when its `built_cone` matches, whatever the epochs
    /// say.
    ///
    /// [`lookup`]: TbfCache::lookup
    cone: u64,
}

impl TbfCache {
    /// Starts a new query: later [`bind`](TbfCache::bind) calls stamp
    /// changed leaves with this epoch.
    pub fn begin_query(&mut self) {
        self.epoch += 1;
    }

    /// Enters the scope of the cone tagged `tag` (derived from the cone
    /// netlist's structural signature). Entries built under any other
    /// scope stop being served immediately — per-cone invalidation, not
    /// the per-session `clear()` a rebuild does.
    pub fn set_cone(&mut self, tag: u64) {
        self.cone = tag;
    }

    /// Drops every entry built under the scope `tag` (an edited cone's
    /// entries, under the incremental engine), returning how many were
    /// removed. Other cones' entries are untouched.
    ///
    /// The hot path invalidates lazily — [`lookup`](TbfCache::lookup)
    /// refuses entries whose `built_cone` differs from the active scope
    /// — so this eager sweep is for memory reclamation in caches shared
    /// across cones; today only the regression suite drives it.
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn invalidate_cone(&mut self, tag: u64) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, e| e.built_cone != tag);
        before - self.entries.len()
    }

    /// Registers the query's BDD for leaf `id` (mode-scoped). Re-binding
    /// a leaf to the BDD it already had leaves validity untouched.
    pub fn bind(&mut self, mode: u8, id: TimedVarId, leaf: Bdd) {
        let m = mode as usize;
        let i = id.index();
        if self.bindings[m].len() <= i {
            self.bindings[m].resize(i + 1, None);
            self.changed_at[m].resize(i + 1, 0);
        }
        if self.bindings[m][i] != Some(leaf) {
            self.bindings[m][i] = Some(leaf);
            self.changed_at[m][i] = self.epoch;
            self.generation[m] += 1;
        }
    }

    /// The still-valid instantiation of `(n, id, mode)` at breakpoint
    /// `b`, if any: the window must contain `b` and every support leaf's
    /// binding must predate the entry.
    pub fn lookup(&self, n: NodeId, id: TimedVarId, mode: u8, b: Time) -> Option<&Instantiation> {
        let e = self.entries.get(&(n, id, mode))?;
        // Cone scope first: epochs are monotonic across the cache's
        // whole life, so only the scope tag can tell a fresh entry from
        // a stale survivor of a previous cone.
        if e.built_cone != self.cone {
            return None;
        }
        if !(e.lo < b && b <= e.hi) {
            return None;
        }
        // Fast path: no binding in this mode has changed since the entry
        // was built, so every support leaf is necessarily fresh.
        if e.built_generation == self.generation[mode as usize] {
            return Some(e);
        }
        let changed = &self.changed_at[mode as usize];
        let fresh = e
            .support
            .iter()
            .all(|s| changed.get(s.index()).is_some_and(|&c| c <= e.built_epoch));
        fresh.then_some(e)
    }

    /// Caches a freshly built instantiation. Entries with oversized
    /// support are dropped: exact invalidation would cost more than the
    /// rebuild they might save.
    pub fn insert(
        &mut self,
        key: (NodeId, TimedVarId, u8),
        lo: Time,
        hi: Time,
        bdd: Bdd,
        support: Vec<TimedVarId>,
    ) {
        if support.len() > SUPPORT_CAP {
            return;
        }
        self.entries.insert(
            key,
            Instantiation {
                lo,
                hi,
                bdd,
                built_epoch: self.epoch,
                built_generation: self.generation[key.2 as usize],
                built_cone: self.cone,
                support,
            },
        );
    }

    /// Drops every entry (not the interner): called whenever the BDD
    /// manager is rebuilt, which invalidates all handles at once.
    pub fn clear(&mut self) {
        self.entries.clear();
        for m in 0..2 {
            self.bindings[m].clear();
            self.changed_at[m].clear();
        }
    }

    /// Drops the cached instantiations but keeps the leaf bindings —
    /// used when cross-breakpoint reuse is disabled, reducing the cache
    /// to a within-build memo table.
    pub fn clear_entries(&mut self) {
        self.entries.clear();
    }

    /// Every `Bdd` handle the cache holds: each entry's instantiation
    /// plus every bound leaf in both modes. Listed in the root set of
    /// each arena sweep so GC never frees a node a cache hit could
    /// return. Deterministic contents, but unordered — callers must not
    /// let the iteration order influence results (the GC mark phase is
    /// order-insensitive).
    pub fn roots(&self, out: &mut Vec<Bdd>) {
        out.extend(self.entries.values().map(|e| e.bdd));
        for m in 0..2 {
            out.extend(self.bindings[m].iter().flatten().copied());
        }
    }

    /// Staleness sweep for long-lived engines: drops every entry whose
    /// instantiation was built more than `max_age` queries ago, and
    /// returns how many were evicted. Purely an effort/memory knob —
    /// an evicted entry is rebuilt on demand to the identical canonical
    /// BDD, so results never change — and deterministic: epochs count
    /// queries, not wall time, so the sweep evicts the same entries at
    /// every thread count and reorder policy.
    pub fn evict_stale(&mut self, max_age: u64) -> usize {
        let cutoff = self.epoch.saturating_sub(max_age);
        let before = self.entries.len();
        self.entries.retain(|_, e| e.built_epoch >= cutoff);
        before - self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::generators::figures::figure4_example3;
    use tbf_logic::{DelayBounds, GateKind, Netlist};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    /// Step waveform rising at `at`.
    fn step(at: Time) -> impl Fn(Time) -> bool {
        move |time| time >= at
    }

    #[test]
    fn example2_waveform_algebra() {
        // f(a,b)(t) = a(t−1) ⊕ b(t+1).
        let f = TbfExpr::var(0, -t(1)).xor(TbfExpr::var(1, t(1)));
        let a = step(Time::ZERO); // a rises at 0
        let b = step(t(3)); // b rises at 3
        let wave = |i: usize, time: Time| if i == 0 { a(time) } else { b(time) };
        // a(t−1) rises at t=1; b(t+1) rises at t=2: XOR is a pulse [1,2).
        assert!(!f.eval_at(Time::from_units(0.5), &wave));
        assert!(f.eval_at(Time::from_units(1.5), &wave));
        assert!(!f.eval_at(Time::from_units(2.5), &wave));
    }

    #[test]
    fn rise_fall_buffer_models() {
        // τr = 2 > τf = 1: AND form — a pulse shrinks.
        let f = TbfExpr::rise_fall_buffer(0, t(2), t(1));
        // Input: pulse high on [0, 10).
        let wave = |_: usize, time: Time| time >= Time::ZERO && time < t(10);
        // Output rises at 2 (slow), falls at 11 (fast+10): high [2, 11).
        assert!(!f.eval_at(Time::from_units(1.5), &wave));
        assert!(f.eval_at(Time::from_units(2.5), &wave));
        assert!(f.eval_at(Time::from_units(10.5), &wave));
        assert!(!f.eval_at(Time::from_units(11.5), &wave));
        // τr < τf: OR form.
        let g = TbfExpr::rise_fall_buffer(0, t(1), t(2));
        assert!(g.eval_at(Time::from_units(1.5), &wave));
        // Equal: plain variable.
        assert_eq!(
            TbfExpr::rise_fall_buffer(0, t(3), t(3)),
            TbfExpr::var(0, -t(3))
        );
    }

    #[test]
    fn pulse_shrinkage_through_chain() {
        // Two rise-2/fall-1 buffers in series shrink a width-3 pulse by 1
        // per stage: compose manually.
        let stage1 = TbfExpr::rise_fall_buffer(0, t(2), t(1));
        // Compose stage2 over stage1 by evaluating stage1 at shifted t.
        let wave_in = |_: usize, time: Time| time >= Time::ZERO && time < t(3);
        let stage2_out = |time: Time| {
            let w1 = |_i: usize, tt: Time| stage1.eval_at(tt, &wave_in);
            TbfExpr::rise_fall_buffer(0, t(2), t(1)).eval_at(time, &w1)
        };
        // Stage 1: high [2, 4) (width 2). Stage 2: high [4, 5) (width 1).
        assert!(stage2_out(Time::from_units(4.5)));
        assert!(!stage2_out(Time::from_units(3.5)));
        assert!(!stage2_out(Time::from_units(5.5)));
    }

    #[test]
    fn netlist_tbf_matches_static_eval_when_settled() {
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let f = TbfExpr::of_netlist_node(&n, out);
        // Far in the future everything is settled: TBF = static function.
        for a in [false, true] {
            for b in [false, true] {
                let wave = |i: usize, _tt: Time| if i == 0 { a } else { b };
                assert_eq!(f.eval_at(t(1000), &wave), n.evaluate_outputs(&[a, b])[0]);
            }
        }
        // Its support carries the path delay offsets −d2 and −(d1+d2)
        // at maximum delays: −2 and −4.
        let sup = f.support();
        assert!(sup.contains(&(0, -t(2))));
        assert!(sup.contains(&(0, -t(4))));
        assert!(sup.contains(&(1, -t(4))));
    }

    #[test]
    fn netlist_tbf_shows_transient_difference() {
        // Figure 4 with the pair (a,b): (1,1)→(0,1) at t=0: statically f
        // drops to 0, but the AND path keeps f high until t = 4.
        let n = figure4_example3();
        let out = n.find("g2").unwrap();
        let f = TbfExpr::of_netlist_node(&n, out);
        let wave = |i: usize, time: Time| {
            if i == 0 {
                time < Time::ZERO // a falls at 0
            } else {
                true // b constant 1
            }
        };
        assert!(f.eval_at(Time::from_units(3.5), &wave), "old value lingers");
        assert!(!f.eval_at(Time::from_units(4.5), &wave), "settled");
    }

    #[test]
    fn constants_and_support() {
        let c = TbfExpr::Const(true);
        assert!(c.eval_at(t(0), &|_, _| false));
        assert!(c.support().is_empty());
        let mut b = Netlist::builder();
        let _x = b.input("x");
        let k = b
            .gate(GateKind::Const1, "k", vec![], DelayBounds::ZERO)
            .unwrap();
        let g = b
            .gate(GateKind::Not, "g", vec![k], DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let f = TbfExpr::of_netlist_node(&n, g);
        assert!(!f.eval_at(t(99), &|_, _| false));
    }

    #[test]
    fn lookup_freshness_tracks_the_binding_generation() {
        let mut mgr = tbf_bdd::BddManager::new();
        let v = mgr.new_var();
        let tru = mgr.constant(true);
        let leaf = mgr.var(v);
        let mut cache = TbfCache::default();
        let node = figure4_example3().nodes().next().expect("non-empty").0;
        let id = TimedVarId(0);

        cache.begin_query();
        cache.bind(0, id, leaf);
        cache.insert((node, id, 0), t(0), t(10), tru, vec![id]);
        assert!(cache.lookup(node, id, 0, t(5)).is_some());

        // Re-binding the same leaf is not a change: the O(1) fast path
        // still serves the entry.
        cache.begin_query();
        cache.bind(0, id, leaf);
        assert_eq!(cache.generation[0], 1);
        assert!(cache.lookup(node, id, 0, t(5)).is_some());

        // A real re-bind bumps the generation and invalidates the entry.
        cache.begin_query();
        cache.bind(0, id, tru);
        assert_eq!(cache.generation[0], 2);
        assert!(cache.lookup(node, id, 0, t(5)).is_none());

        // A change to an *unrelated* leaf defeats the fast path but the
        // support scan still proves the entry fresh.
        cache.begin_query();
        cache.insert((node, id, 0), t(0), t(10), tru, vec![id]);
        cache.begin_query();
        cache.bind(0, TimedVarId(9), leaf);
        assert!(cache.lookup(node, id, 0, t(5)).is_some());
    }

    /// Regression test for the latent lifetime bug the persistent
    /// service workspace exposes: epochs and generations are monotonic
    /// for a cache's whole life, so when one `TbfCache` outlives the
    /// cone it was built against (it used to die with the request), an
    /// entry from the *previous* cone passes every epoch freshness
    /// check — `built_generation` still equals the mode's generation if
    /// the new cone happens not to have re-bound the colliding
    /// `TimedVarId` — and `lookup` hands the new cone a BDD handle into
    /// a dead manager. Invalidation must therefore be per-cone (the
    /// scope tag), not per-session (`clear`).
    #[test]
    fn stale_binding_cannot_survive_a_cone_switch() {
        let mut mgr = tbf_bdd::BddManager::new();
        let v = mgr.new_var();
        let leaf = mgr.var(v);
        let stale_bdd = mgr.constant(true);
        let mut cache = TbfCache::default();
        let node = figure4_example3().nodes().next().expect("non-empty").0;
        let id = TimedVarId(0);
        let cone_a = cone_scope_tag(b"cone-a");
        let cone_b = cone_scope_tag(b"cone-b");

        // Cone A builds and caches an instantiation.
        cache.set_cone(cone_a);
        cache.begin_query();
        cache.bind(0, id, leaf);
        cache.insert((node, id, 0), t(0), t(10), stale_bdd, vec![id]);
        assert!(cache.lookup(node, id, 0, t(5)).is_some());

        // The cache survives into cone B (same NodeId/TimedVarId values
        // by construction — slices renumber from 0). Without the scope
        // tag this lookup returned cone A's entry: `built_generation`
        // still matches (no re-bind happened), so the epoch machinery
        // calls it fresh even though its BDD lives in A's manager.
        cache.set_cone(cone_b);
        assert!(
            cache.lookup(node, id, 0, t(5)).is_none(),
            "cone A's instantiation must not be served to cone B"
        );

        // Returning to cone A's scope serves it again — per-cone
        // scoping, not a blanket clear.
        cache.set_cone(cone_a);
        assert!(cache.lookup(node, id, 0, t(5)).is_some());

        // Invalidating cone A drops exactly its entries.
        cache.begin_query();
        cache.set_cone(cone_b);
        cache.insert((node, TimedVarId(1), 0), t(0), t(10), stale_bdd, vec![]);
        assert_eq!(cache.invalidate_cone(cone_a), 1);
        assert_eq!(cache.entries.len(), 1);
        assert!(cache.lookup(node, TimedVarId(1), 0, t(5)).is_some());
    }

    #[test]
    fn suffix_tracker_matches_of_suffix() {
        let n = figure4_example3();
        let gates: Vec<_> = n
            .nodes()
            .filter(|(_, node)| !node.kind().is_input() && !node.kind().is_constant())
            .map(|(id, _)| id)
            .collect();
        let mut tracker = SuffixTracker::default();
        let mut suffix = Vec::new();
        for &g in &gates {
            tracker.push(&n, g);
            suffix.push(g);
            assert_eq!(tracker.gates(), &suffix[..]);
            assert_eq!(tracker.key(1), TimedVarKey::of_suffix(&n, 1, &suffix));
        }
        for _ in 0..gates.len() {
            tracker.pop();
            suffix.pop();
            assert_eq!(tracker.key(0), TimedVarKey::of_suffix(&n, 0, &suffix));
        }
    }

    #[test]
    fn cache_eviction_is_epoch_based() {
        let mgr = tbf_bdd::BddManager::new();
        let tru = mgr.constant(true);
        let mut cache = TbfCache::default();
        let node = figure4_example3().nodes().next().expect("non-empty").0;
        let id_a = TimedVarId(0);
        let id_b = TimedVarId(1);

        cache.begin_query(); // epoch 1
        cache.insert((node, id_a, 0), t(0), t(10), tru, vec![]);
        for _ in 0..5 {
            cache.begin_query(); // epochs 2..=6
        }
        cache.insert((node, id_b, 0), t(0), t(10), tru, vec![]);
        assert_eq!(cache.entries.len(), 2);
        assert_eq!(cache.epoch, 6);

        // Age 10 keeps everything; age 3 evicts only the epoch-1 entry.
        assert_eq!(cache.evict_stale(10), 0);
        assert_eq!(cache.evict_stale(3), 1);
        assert_eq!(cache.entries.len(), 1);
        assert!(cache.lookup(node, id_b, 0, t(5)).is_some());
        assert!(cache.lookup(node, id_a, 0, t(5)).is_none());

        // An evicted entry is simply rebuilt: re-inserting revalidates.
        cache.insert((node, id_a, 0), t(0), t(10), tru, vec![]);
        assert!(cache.lookup(node, id_a, 0, t(5)).is_some());

        // Age 0 keeps only entries built in the current epoch.
        cache.begin_query(); // epoch 7
        assert_eq!(cache.evict_stale(0), 2);
        assert!(cache.entries.is_empty());
    }
}
