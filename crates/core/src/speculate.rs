//! Within-cone breakpoint speculation: the striped parallel sweep.
//!
//! Under largest-cone-first scheduling one giant cone bounds the tail
//! latency of a whole run — every other worker drains the queue and
//! then idles while a single thread walks that cone's breakpoints. The
//! striped sweep fixes this by fanning *independent breakpoints* of one
//! cone across workers, without giving up the driver's byte-identical
//! reports.
//!
//! # Determinism by fixed decomposition
//!
//! Thread counts must never change a [`CircuitReport`], including its
//! effort statistics (`peak_bdd_nodes` depends on which context tested
//! which breakpoint). So the unit of decomposition is **not** the
//! worker: the descending breakpoint sequence is dealt round-robin into
//! a fixed number of [`STRIPES`], each stripe owns a private
//! [`ConeContext`] and tests its indices in ascending order, and the
//! available workers merely *schedule* stripes. Every per-test result —
//! hit, miss, error, statistics — is a pure function of
//! `(cone, stripe, index)`, so the merged outcome is the same whether
//! the stripes ran on one thread or eight.
//!
//! # Prefix-exact merge
//!
//! The classic sweep stops at the first decisive breakpoint (hit or
//! error), having visited exactly the indices before it. The merge
//! replays that contract: walk indices ascending, count each as
//! visited, fold in its recorded statistics, and return at the first
//! non-miss. Tests a stripe ran *below* the decisive index are
//! speculative waste — their statistics are discarded, so the report
//! says exactly what a breakpoint-serial sweep over the same stripes
//! would have said. A stripe stops early once some other stripe has
//! found a decisive index above its next one (shared high-water mark),
//! which only ever skips work the merge would discard anyway.
//!
//! The sweep is engaged by the anytime driver for cones above
//! [`GIANT_CONE_GATES`] gates when no fault plan is armed (fault
//! schedules count trip sites in sweep order, which striping does not
//! preserve); everything else keeps the classic sequential sweep in
//! [`cone_delay`].

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tbf_logic::{NodeId, Time};

use crate::error::DelayError;
use crate::model::{cone_delay, DelayModel, Hit};
use crate::network::ConeContext;
use crate::report::SearchStats;
use crate::two_vector::WitnessParts;

/// Cones with more gates than this take the striped sweep under the
/// anytime driver. Sized well above every golden/differential suite
/// circuit so the committed baselines keep pinning the classic sweep.
pub(crate) const GIANT_CONE_GATES: usize = 64;

/// The fixed stripe count. Fixing it (instead of using the worker
/// count) is what makes the merged report independent of `threads`;
/// it also caps the per-cone speedup, so it is sized at the sweet spot
/// where stripe-context construction stays amortized.
pub(crate) const STRIPES: usize = 4;

/// Sweeps shorter than this stay on the classic path: striping would
/// spend more on extra contexts than the fan-out could return.
const MIN_BREAKPOINTS: usize = 2 * STRIPES;

/// One breakpoint test as recorded by a stripe.
enum Outcome {
    /// The interval cannot hold the last transition; statistics of the
    /// test.
    Miss(SearchStats),
    /// The last transition falls in this interval.
    Hit(SearchStats, Hit),
    /// The test failed (cap, interrupt, netlist error).
    Fail(SearchStats, Box<DelayError>),
    /// The test panicked; the payload is re-thrown by the merge if the
    /// index turns out to be decisive.
    Panicked(Box<dyn std::any::Any + Send>),
}

impl Outcome {
    fn is_miss(&self) -> bool {
        matches!(self, Outcome::Miss(_))
    }
}

/// The striped within-cone sweep. Equivalent to
/// [`cone_delay`] over the same stripe decomposition at every worker
/// count; falls back to the classic sweep outright when the cone's
/// breakpoint sequence is too short to stripe.
///
/// `make_model` builds one model instance per stripe (models are
/// stateless strategy values); `workers` only schedules — it is clamped
/// to [`STRIPES`] and never changes the result.
pub(crate) fn cone_delay_striped<M: DelayModel>(
    make_model: &(dyn Fn() -> M + Sync),
    cx: &mut ConeContext,
    output: NodeId,
    stats: &mut SearchStats,
    workers: usize,
) -> Result<(Time, Option<WitnessParts>), DelayError> {
    let mut model = make_model();
    // Materialize the descending breakpoint sequence once, on the
    // primary context's memoized enumerator.
    let mut bps = Vec::new();
    let mut below = Time::MAX;
    while let Some(b) = model.breakpoints(cx, output, below) {
        bps.push(b);
        below = b;
    }
    if bps.len() < MIN_BREAKPOINTS {
        return cone_delay(&mut model, cx, output, stats);
    }

    let cone = cx.netlist_arc();
    let budget = Arc::clone(&cx.budget);
    let n = bps.len();
    // Indices at or above the budget's breakpoint cap are never tested:
    // the merge synthesizes the classic sweep's cap error there.
    let tested = n.min(budget.max_breakpoints());
    // Lowest decisive (non-miss) index found so far, shared so stripes
    // stop speculating past it. Only ever skips discarded work: an
    // index is skipped only while some recorded decisive index is
    // strictly below it.
    let stop_hint = AtomicUsize::new(tested);
    let results: Vec<Mutex<Vec<(usize, Outcome)>>> =
        (0..STRIPES).map(|_| Mutex::new(Vec::new())).collect();

    let run_stripe = |s: usize| {
        let mut sink: Vec<(usize, Outcome)> = Vec::new();
        let mut wcx = match ConeContext::new(Arc::clone(&cone), Arc::clone(&budget)) {
            Ok(c) => c,
            Err(e) => {
                let err = e.into_error(bps[s], &budget);
                sink.push((s, Outcome::Fail(SearchStats::default(), Box::new(err))));
                *results[s].lock().expect("stripe sink poisoned") = sink;
                return;
            }
        };
        let mut model = make_model();
        let mut i = s;
        while i < tested && i <= stop_hint.load(Ordering::Acquire) {
            let b = bps[i];
            let mut ts = SearchStats::default();
            let outcome = if budget.check_now().is_some() {
                Outcome::Fail(ts, Box::new(budget.interrupt_error(b, (Time::ZERO, b))))
            } else {
                let window_lo = bps.get(i + 1).copied().unwrap_or(Time::ZERO);
                let attempt = catch_unwind(AssertUnwindSafe(|| {
                    match model.test_at(&mut wcx, output, window_lo, b, &mut ts) {
                        Ok(None) => wcx
                            .maybe_compact()
                            .map(|()| None)
                            .map_err(|e| e.into_error(b, &budget)),
                        other => other,
                    }
                }));
                match attempt {
                    Err(payload) => Outcome::Panicked(payload),
                    Ok(Ok(Some(hit))) => Outcome::Hit(ts, hit),
                    Ok(Ok(None)) => Outcome::Miss(ts),
                    Ok(Err(e)) => Outcome::Fail(ts, Box::new(e)),
                }
            };
            let decisive = !outcome.is_miss();
            sink.push((i, outcome));
            if decisive {
                stop_hint.fetch_min(i, Ordering::AcqRel);
                break;
            }
            i += STRIPES;
        }
        *results[s].lock().expect("stripe sink poisoned") = sink;
    };

    let workers = workers.clamp(1, STRIPES);
    if workers <= 1 {
        for s in 0..STRIPES {
            run_stripe(s);
        }
    } else {
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let s = next.fetch_add(1, Ordering::Relaxed);
                    if s >= STRIPES {
                        break;
                    }
                    run_stripe(s);
                });
            }
        });
    }

    // Prefix-exact merge: ascending indices, classic-sweep accounting.
    let mut per_index: Vec<Option<Outcome>> = (0..tested).map(|_| None).collect();
    for cell in results {
        for (i, o) in cell.into_inner().expect("stripe sink poisoned") {
            per_index[i] = Some(o);
        }
    }
    for (i, &b) in bps.iter().enumerate() {
        stats.breakpoints_visited += 1;
        if i >= tested {
            return Err(DelayError::TooManyCubes {
                limit: budget.max_breakpoints(),
                at_breakpoint: b,
                bounds: (Time::ZERO, b),
            });
        }
        match per_index[i]
            .take()
            .expect("every index below the decisive one was tested")
        {
            Outcome::Miss(ts) => stats.merge(&ts),
            Outcome::Hit(ts, hit) => {
                stats.merge(&ts);
                return Ok(model.certificate(hit));
            }
            Outcome::Fail(ts, e) => {
                stats.merge(&ts);
                return Err(*e);
            }
            Outcome::Panicked(payload) => resume_unwind(payload),
        }
    }
    // Every interval missed: the output cannot transition at all.
    Ok((Time::ZERO, None))
}
