//! # tbf-core — Exact circuit delay computation with Timed Boolean Functions
//!
//! A from-scratch implementation of *"Circuit Delay Models and Their Exact
//! Computation Using Timed Boolean Functions"* (W. K. C. Lam, R. K.
//! Brayton, A. L. Sangiovanni-Vincentelli, UCB/ERL M93/6, DAC 1993).
//!
//! The paper formulates **exact** (not upper-bound) delay computation for
//! combinational circuits with bounded gate delays `[dᵐⁱⁿ, dᵐᵃˣ]` as a
//! *mixed Boolean linear program*: the delay is the largest `t` such that
//! the circuit's **Timed Boolean Function** `f(t, x, d)` differs from its
//! settled static function `f(∞, x)` for some input family member and
//! some in-bounds delay assignment. This crate implements:
//!
//! * [`two_vector_delay`] — the exact 2-vector (transition) delay
//!   `D(C, [dᵐⁱⁿ,dᵐᵃˣ], 2)` by descending breakpoint search, implicit
//!   resolvent enumeration with BDDs, and exact-rational LP feasibility
//!   (paper §5–§7),
//! * [`sequences_delay`] — the exact delay by sequences of vectors
//!   `D(C, ·, ω⁻)`, equal to the floating/viability delay for circuits
//!   with variable gate delays (paper §8–§9, Theorems 1–3),
//! * [`topological_delay`] — the classical STA baseline re-exported for
//!   side-by-side comparison,
//! * [`lower_bounds`] — the Theorem 5 analysis of when gate-delay lower
//!   bounds affect the 2-vector delay, with the `f* = D(C,[0,dᵐᵃˣ],2)/L`
//!   threshold,
//! * [`TbfExpr`] — the explicit TBF algebra of §4 (timed variables,
//!   Boolean connectives, waveform evaluation),
//! * [`analyze`] — the **anytime driver**: a graceful-degradation ladder
//!   (exact → escalated retry → sequences upper bound → topological
//!   bound) with cooperative cancellation ([`CancelToken`]), wall-clock
//!   deadlines checked at BDD-allocation granularity, and per-cone panic
//!   isolation. It never errors on a well-formed netlist: every output
//!   gets sound `[lower, upper]` delay bounds and a
//!   [`OutputStatus`] saying which ladder rung produced them.
//!
//! # Example
//!
//! The paper's §11 worked example: a 4-bit ripple-bypass adder whose
//! longest topological path is 40 but whose exact 2-vector carry delay is
//! 24 — the ripple-through path is false.
//!
//! ```
//! use tbf_core::{two_vector_delay, DelayOptions};
//! use tbf_logic::generators::adders::paper_bypass_adder;
//! use tbf_logic::Time;
//!
//! let adder = paper_bypass_adder();
//! assert_eq!(adder.topological_delay(), Time::from_int(40));
//! let report = two_vector_delay(&adder, &DelayOptions::default())?;
//! assert_eq!(report.delay, Time::from_int(24));
//! # Ok::<(), tbf_core::DelayError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
// Library code must degrade through typed `DelayError`s, never panic:
// `.unwrap()` is banned outside tests (`.expect()` remains for documented
// invariants, each carrying its justification string).
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
// The engine's core types flow through every hot call chain; keep enums
// and error payloads small enough to pass in registers.
#![deny(clippy::large_enum_variant)]
#![deny(clippy::result_large_err)]

mod budget;
mod driver;
mod error;
mod model;
mod network;
mod options;
mod report;
mod static_fn;
mod tbf;

pub mod fault;
pub mod lower_bounds;
#[cfg(feature = "obs")]
pub mod obs;
pub mod oracle;
mod sequences;
mod speculate;
mod two_vector;

pub use budget::{AnalysisBudget, CancelToken};
pub use driver::{
    analyze, analyze_eco, analyze_with_budget, analyze_with_token, AnalysisPolicy, CircuitReport,
    ConeStore, EcoStats,
};
pub use error::DelayError;
pub use options::{DelayOptions, GcMode, TbfCacheMode};
pub use report::{DegradeCause, DelayReport, DelayWitness, OutputDelay, OutputStatus, SearchStats};
pub use sequences::{floating_delay, sequences_delay};
pub use tbf::TbfExpr;
pub use tbf_bdd::{ReorderPolicy, ReorderStats};
pub use two_vector::two_vector_delay;

use tbf_logic::{Netlist, Time};

/// The classical topological (static timing analysis) delay — the
/// baseline the paper's table compares against. Identical to
/// [`Netlist::topological_delay`], re-exported here so the three delay
/// models are side by side.
///
/// # Example
///
/// ```
/// use tbf_logic::generators::adders::paper_bypass_adder;
/// use tbf_logic::Time;
/// assert_eq!(
///     tbf_core::topological_delay(&paper_bypass_adder()),
///     Time::from_int(40),
/// );
/// ```
pub fn topological_delay(netlist: &Netlist) -> Time {
    netlist.topological_delay()
}
