//! Resource caps and knobs for the exact-delay engines.

use tbf_bdd::{GcPolicy, ReorderPolicy};

/// Cross-breakpoint timed-node caching policy (see
/// [`DelayOptions::tbf_cache`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TbfCacheMode {
    /// Size-gated: cross-breakpoint reuse is enabled only for cones with
    /// more than [`TbfCacheMode::TINY_CONE_GATES`] gates. Tiny cones
    /// rebuild faster than the cache bookkeeping they would pay for.
    #[default]
    Auto,
    /// Always on, whatever the cone size.
    On,
    /// Always off: memoization is restricted to a single breakpoint
    /// build (the A/B ablation baseline).
    Off,
}

impl TbfCacheMode {
    /// Cones at or below this many gates bypass the cross-breakpoint
    /// cache under [`TbfCacheMode::Auto`].
    pub const TINY_CONE_GATES: usize = 32;

    /// Whether a cone with `gates` gates uses cross-breakpoint caching
    /// under this mode.
    #[must_use]
    pub fn enabled_for(self, gates: usize) -> bool {
        match self {
            TbfCacheMode::Auto => gates > Self::TINY_CONE_GATES,
            TbfCacheMode::On => true,
            TbfCacheMode::Off => false,
        }
    }

    /// Canonical lowercase name (`auto` / `on` / `off`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TbfCacheMode::Auto => "auto",
            TbfCacheMode::On => "on",
            TbfCacheMode::Off => "off",
        }
    }

    /// Parses a canonical name; accepts the boolean spellings
    /// `true`/`false` as `on`/`off` for wire compatibility.
    #[must_use]
    pub fn parse(s: &str) -> Option<TbfCacheMode> {
        match s {
            "auto" => Some(TbfCacheMode::Auto),
            "on" | "true" => Some(TbfCacheMode::On),
            "off" | "false" => Some(TbfCacheMode::Off),
            _ => None,
        }
    }
}

/// Arena garbage-collection knob (see [`DelayOptions::gc`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum GcMode {
    /// Engine-chosen: mark-and-sweep on arena pressure with
    /// [`GcMode::DEFAULT_TRIGGER_NODES`]. Currently identical to
    /// [`GcMode::On`]; the variant exists so a future size- or
    /// workload-gated heuristic can slot in without a wire change.
    #[default]
    Auto,
    /// Mark-and-sweep on arena pressure with
    /// [`GcMode::DEFAULT_TRIGGER_NODES`].
    On,
    /// Never sweep: the legacy append-only arena (the A/B ablation
    /// baseline — memory is reclaimed only by engine-level compaction).
    Off,
}

impl GcMode {
    /// Arena slots at which the first pressure sweep fires (the manager
    /// re-arms above the surviving population after each sweep).
    pub const DEFAULT_TRIGGER_NODES: usize = 16_384;

    /// Whether any sweep can fire under this mode.
    #[must_use]
    pub fn enabled(self) -> bool {
        !matches!(self, GcMode::Off)
    }

    /// The manager-level policy this mode installs.
    #[must_use]
    pub fn policy(self) -> GcPolicy {
        match self {
            GcMode::Auto | GcMode::On => GcPolicy::OnPressure {
                trigger_nodes: Self::DEFAULT_TRIGGER_NODES,
            },
            GcMode::Off => GcPolicy::None,
        }
    }

    /// Canonical lowercase name (`auto` / `on` / `off`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            GcMode::Auto => "auto",
            GcMode::On => "on",
            GcMode::Off => "off",
        }
    }

    /// Parses a canonical name; accepts the boolean spellings
    /// `true`/`false` as `on`/`off` for wire compatibility.
    #[must_use]
    pub fn parse(s: &str) -> Option<GcMode> {
        match s {
            "auto" => Some(GcMode::Auto),
            "on" | "true" => Some(GcMode::On),
            "off" | "false" => Some(GcMode::Off),
            _ => None,
        }
    }
}

/// Configuration for [`two_vector_delay`](crate::two_vector_delay) and
/// [`sequences_delay`](crate::sequences_delay).
///
/// The defaults are sized for ISCAS-85-scale circuits; raise the caps for
/// pathological inputs (the engines fail with typed
/// [`DelayError`](crate::DelayError)s carrying sound bounds instead of
/// silently truncating).
///
/// # Example
///
/// ```
/// use tbf_core::DelayOptions;
/// let opts = DelayOptions {
///     max_straddling_paths: 100_000,
///     ..DelayOptions::default()
/// };
/// assert!(opts.max_bdd_nodes > 0);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DelayOptions {
    /// Cap on simultaneously delay-dependent (straddling) paths per
    /// breakpoint (2-vector engine) and on unsettled TBF variables per
    /// breakpoint (sequences engine).
    pub max_straddling_paths: usize,
    /// Cap on total BDD nodes in the manager.
    pub max_bdd_nodes: usize,
    /// Cap on XOR-BDD cubes examined per breakpoint.
    pub max_cubes: usize,
    /// Cap on breakpoints visited per output (a safety net against
    /// adversarial delay grids; `usize::MAX` by default).
    pub max_breakpoints: usize,
    /// Wall-clock budget for one engine invocation (`None` = unlimited).
    /// Exceeding it yields [`DelayError::TimedOut`](crate::DelayError)
    /// with sound bounds, checked between breakpoints.
    pub time_budget: Option<std::time::Duration>,
    /// Dynamic BDD variable reordering. Reordering only ever changes the
    /// *representation*: reports are byte-identical whatever this is set
    /// to (only effort telemetry differs). Under
    /// [`ReorderPolicy::Manual`] the engine sifts its static functions
    /// once after layout; under [`ReorderPolicy::OnPressure`] the manager
    /// additionally sifts between gate constructions when it grows past
    /// the trigger, and the anytime ladder gains a reorder-and-retry
    /// rung before giving up exactness on a blown node cap.
    pub reorder: ReorderPolicy,
    /// Cross-breakpoint timed-node caching in the delay-model engine:
    /// sub-BDDs built at one breakpoint are reused at adjacent
    /// breakpoints while their validity window holds. Purely an effort
    /// knob — results and reports are byte-identical in every mode (the
    /// unique table is canonical, so a rebuild allocates exactly the
    /// nodes a cache hit returns). [`TbfCacheMode::Auto`] (the default)
    /// bypasses the cache for tiny cones, where its bookkeeping costs
    /// more wall time than the rebuilds it saves;
    /// [`TbfCacheMode::Off`] restricts memoization to within a single
    /// breakpoint build, for A/B measurement.
    pub tbf_cache: TbfCacheMode,
    /// Complement edges in the BDD substrate: negation becomes an O(1)
    /// tag flip and a function shares one physical node with its
    /// complement, roughly halving unique-table traffic on
    /// negation-rich circuits. Purely representational — reports are
    /// byte-identical either way — and on by default; `false` keeps the
    /// legacy plain-node managers for differential testing.
    pub complement_edges: bool,
    /// Mark-and-sweep garbage collection of the BDD arena. Under
    /// [`GcMode::Auto`] / [`GcMode::On`] the manager sweeps at safe
    /// points (between gate constructions and between sift variables)
    /// once the arena passes the pressure trigger, reclaiming transient
    /// reorder/build garbage in place instead of letting it trip
    /// `max_bdd_nodes` or the sift abort bound spuriously. Purely a
    /// memory/effort knob: whether a sweep fires depends only on logical
    /// quantities, so results and reports are byte-identical with GC on
    /// or off (only memory telemetry differs). [`GcMode::Off`] keeps the
    /// legacy append-only arena for A/B measurement.
    pub gc: GcMode,
}

impl Default for DelayOptions {
    fn default() -> Self {
        DelayOptions {
            max_straddling_paths: 20_000,
            max_bdd_nodes: 4_000_000,
            max_cubes: 50_000,
            max_breakpoints: usize::MAX,
            time_budget: None,
            reorder: ReorderPolicy::None,
            tbf_cache: TbfCacheMode::Auto,
            complement_edges: true,
            gc: GcMode::Auto,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_generous() {
        let o = DelayOptions::default();
        assert!(o.max_straddling_paths >= 10_000);
        assert!(o.max_bdd_nodes >= 1_000_000);
        assert!(o.max_cubes >= 10_000);
        assert_eq!(o.max_breakpoints, usize::MAX);
        assert!(o.time_budget.is_none());
    }

    #[test]
    fn struct_update_syntax_works() {
        let o = DelayOptions {
            max_cubes: 7,
            ..DelayOptions::default()
        };
        assert_eq!(o.max_cubes, 7);
        assert_eq!(o.max_bdd_nodes, DelayOptions::default().max_bdd_nodes);
    }

    #[test]
    fn cache_mode_gates_tiny_cones() {
        assert_eq!(DelayOptions::default().tbf_cache, TbfCacheMode::Auto);
        assert!(DelayOptions::default().complement_edges);
        assert!(!TbfCacheMode::Auto.enabled_for(TbfCacheMode::TINY_CONE_GATES));
        assert!(TbfCacheMode::Auto.enabled_for(TbfCacheMode::TINY_CONE_GATES + 1));
        assert!(TbfCacheMode::On.enabled_for(0));
        assert!(!TbfCacheMode::Off.enabled_for(usize::MAX));
        for m in [TbfCacheMode::Auto, TbfCacheMode::On, TbfCacheMode::Off] {
            assert_eq!(TbfCacheMode::parse(m.name()), Some(m));
        }
        assert_eq!(TbfCacheMode::parse("true"), Some(TbfCacheMode::On));
        assert_eq!(TbfCacheMode::parse("false"), Some(TbfCacheMode::Off));
        assert_eq!(TbfCacheMode::parse("sometimes"), None);
    }

    #[test]
    fn gc_mode_maps_to_manager_policy() {
        assert_eq!(DelayOptions::default().gc, GcMode::Auto);
        assert!(GcMode::Auto.enabled());
        assert!(GcMode::On.enabled());
        assert!(!GcMode::Off.enabled());
        assert_eq!(
            GcMode::Auto.policy(),
            GcPolicy::OnPressure {
                trigger_nodes: GcMode::DEFAULT_TRIGGER_NODES
            }
        );
        assert_eq!(GcMode::On.policy(), GcMode::Auto.policy());
        assert_eq!(GcMode::Off.policy(), GcPolicy::None);
        for m in [GcMode::Auto, GcMode::On, GcMode::Off] {
            assert_eq!(GcMode::parse(m.name()), Some(m));
        }
        assert_eq!(GcMode::parse("true"), Some(GcMode::On));
        assert_eq!(GcMode::parse("false"), Some(GcMode::Off));
        assert_eq!(GcMode::parse("maybe"), None);
    }
}
