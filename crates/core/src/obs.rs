//! Run-scoped observability: the [`observe`] entry point that collects
//! effort counters and the phase tree for everything executed inside it.
//!
//! Only compiled with the `obs` feature. The instrumentation changes
//! *nothing* about the analysis — counters record deterministic logical
//! work, phase spans record structure plus volatile wall time — so every
//! report produced under [`observe`] is byte-identical to the same run
//! outside it.
//!
//! # How the pieces connect
//!
//! * [`observe`] installs a thread-local *session* counter registry and
//!   a phase capture root, then runs the closure.
//! * Every [`AnalysisBudget`](crate::AnalysisBudget) built inside (all
//!   engine entry points build one) picks the session registry up and
//!   carries it — through [`fork`](crate::AnalysisBudget::fork) — to
//!   every cone on every worker thread.
//! * The engines install the registry on each `BddManager` they create,
//!   so the BDD hot-path counters land in the same place.
//! * The anytime driver captures a phase subtree per cone job on the
//!   worker that runs it and attaches the subtrees on the coordinating
//!   thread in netlist output order (merge-on-join), so the tree is
//!   independent of scheduling.
//!
//! # Example
//!
//! ```
//! use tbf_core::{analyze, AnalysisPolicy};
//! use tbf_logic::generators::adders::paper_bypass_adder;
//!
//! let adder = paper_bypass_adder();
//! let (report, obs) = tbf_core::obs::observe(|| {
//!     analyze(&adder, &AnalysisPolicy::default())
//! });
//! assert!(report.exact.is_some());
//! assert!(obs.counters.get(tbf_obs::Metric::IteCalls) > 0);
//! assert!(!obs.phases.is_empty());
//! ```

use std::cell::RefCell;
use std::sync::Arc;

use tbf_obs::{phase, Counters, PhaseNode};

thread_local! {
    static SESSION: RefCell<Option<Arc<Counters>>> = const { RefCell::new(None) };
}

/// The session registry installed by an enclosing [`observe`], if any.
/// [`AnalysisBudget::from_options`](crate::AnalysisBudget::from_options)
/// calls this so every budget created inside an observed run reports
/// into the run's registry.
pub(crate) fn session_counters() -> Option<Arc<Counters>> {
    SESSION.with(|s| s.borrow().clone())
}

/// Everything recorded by one [`observe`] call.
#[derive(Clone, Debug)]
pub struct RunObservation {
    /// The run's effort-counter registry (deterministic totals).
    pub counters: Arc<Counters>,
    /// The run's phase tree, merged on join in deterministic order.
    pub phases: Vec<PhaseNode>,
}

/// Restores the previous session registry even if the closure unwinds.
struct SessionGuard {
    previous: Option<Arc<Counters>>,
}

impl Drop for SessionGuard {
    fn drop(&mut self) {
        let previous = self.previous.take();
        SESSION.with(|s| *s.borrow_mut() = previous);
    }
}

/// Runs `f` with observability collection enabled and returns its result
/// together with the recorded [`RunObservation`].
///
/// Nesting replaces the outer session for the inner closure's duration;
/// the outer session resumes afterwards (inner work is counted only in
/// the inner registry).
pub fn observe<R>(f: impl FnOnce() -> R) -> (R, RunObservation) {
    let counters = Counters::shared();
    let guard = SessionGuard {
        previous: SESSION.with(|s| s.borrow_mut().replace(Arc::clone(&counters))),
    };
    let (r, phases) = phase::capture(f);
    drop(guard);
    (r, RunObservation { counters, phases })
}

/// A phase span that also books the budget polls consumed while it was
/// open (the delta of the cone-fork's poll counter) into its phase node.
/// Used for ladder rungs and per-output cone spans; inert (like
/// [`Phase`](tbf_obs::Phase)) when the run is not being observed.
pub(crate) struct RungSpan<'b> {
    _phase: tbf_obs::Phase,
    budget: &'b crate::AnalysisBudget,
    polls_at_entry: u64,
}

impl<'b> RungSpan<'b> {
    /// Opens the span; the name should be a stable rung or cone label.
    pub fn open(name: &str, budget: &'b crate::AnalysisBudget) -> RungSpan<'b> {
        RungSpan {
            _phase: tbf_obs::Phase::enter(name),
            budget,
            polls_at_entry: budget.poll_count(),
        }
    }
}

impl Drop for RungSpan<'_> {
    fn drop(&mut self) {
        // Runs before `_phase` drops, so the span's frame is still the
        // innermost open one and receives the delta.
        phase::record_budget_polls(self.budget.poll_count().saturating_sub(self.polls_at_entry));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_obs::Metric;

    #[test]
    fn observe_installs_and_restores_the_session() {
        assert!(session_counters().is_none());
        let ((), obs) = observe(|| {
            assert!(session_counters().is_some());
        });
        assert!(session_counters().is_none());
        assert_eq!(obs.counters.get(Metric::IteCalls), 0);
    }

    #[test]
    fn nested_observe_shadows_the_outer_session() {
        let ((), outer) = observe(|| {
            let outer_session = session_counters().expect("outer installed");
            let ((), inner) = observe(|| {
                session_counters()
                    .expect("inner installed")
                    .bump(Metric::GcRuns);
            });
            assert_eq!(inner.counters.get(Metric::GcRuns), 1);
            assert!(Arc::ptr_eq(
                &outer_session,
                &session_counters().expect("outer restored")
            ));
        });
        assert_eq!(outer.counters.get(Metric::GcRuns), 0);
    }

    #[test]
    fn budgets_inside_observe_share_the_registry() {
        let opts = crate::DelayOptions::default();
        let ((), obs) = observe(|| {
            let budget = crate::AnalysisBudget::from_options(&opts);
            let fork = budget.fork(&opts);
            assert!(Arc::ptr_eq(budget.counters(), fork.counters()));
            let _ = fork.poll();
        });
        assert_eq!(obs.counters.get(Metric::BudgetPolls), 1);
    }
}
