//! Deterministic fault injection for exercising the degradation ladder.
//!
//! Compiled to no-ops unless the `fault-injection` cargo feature is on:
//! the release engines pay nothing for the harness. With the feature
//! enabled, tests arm a thread-local `FaultPlan` naming *injection
//! sites* ([`Site`]) and hit counts; the engines consult
//! `trip` at those sites and fail exactly where the plan says, letting
//! tests walk every error variant and every ladder rung without
//! constructing pathological circuits.
//!
//! Plans are per-thread and scoped: `with_plan` arms the plan, runs
//! the closure, and disarms on exit (including on panic), so one test
//! cannot leak faults into another.

/// A named injection point inside the analysis pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Site {
    /// Inside a budgeted BDD operation (forces `BddTooLarge`).
    BddOp,
    /// During straddling-path discovery (forces `TooManyPaths`).
    PathCollect,
    /// During difference-cube enumeration (forces `TooManyCubes`).
    CubeEnum,
    /// At the top of a breakpoint iteration (forces deadline expiry —
    /// `TimedOut`).
    Breakpoint,
    /// At the start of an output cone (panics, for exercising panic
    /// isolation).
    ConeStart,
    /// Before the interior LP solve in witness extraction (forces the
    /// documented supremum-vertex fallback).
    LpInterior,
    /// Before the XOR satisfiability read in witness extraction (forces
    /// the internal-invariant error path).
    XorSat,
    /// While decoding a service request frame (`tbf serve`): forces the
    /// malformed-frame error path without needing malformed input.
    FrameParse,
    /// Right after a service request is admitted: cancels the request's
    /// token mid-flight, exercising the cancellation drain path.
    RequestCancel,
    /// After a service request completes: poisons the request's
    /// warm-cache entries so they are evicted and rebuilt rather than
    /// served stale.
    CachePoison,
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::Site;
    use std::cell::RefCell;

    /// One armed fault: fires on the `after`-th hit of its site
    /// (0 = first hit), then disarms.
    #[derive(Clone, Copy, Debug)]
    struct Armed {
        site: Site,
        after: usize,
        hits: usize,
        fired: bool,
    }

    thread_local! {
        static PLAN: RefCell<Vec<Armed>> = const { RefCell::new(Vec::new()) };
    }

    /// A deterministic set of faults to arm for the duration of a
    /// [`with_plan`](super::with_plan) scope.
    #[derive(Clone, Debug, Default)]
    pub struct FaultPlan {
        armed: Vec<(Site, usize)>,
    }

    impl FaultPlan {
        /// An empty plan (no faults).
        #[must_use]
        pub fn new() -> Self {
            Self::default()
        }

        /// Arms `site` to fire once, on its `after`-th hit (0-based).
        #[must_use]
        pub fn once_at(mut self, site: Site, after: usize) -> Self {
            self.armed.push((site, after));
            self
        }

        /// Arms `site` to fire on its first hit.
        #[must_use]
        pub fn once(self, site: Site) -> Self {
            self.once_at(site, 0)
        }

        #[cfg(test)]
        pub(crate) fn is_empty_for_test(&self) -> bool {
            self.armed.is_empty()
        }
    }

    /// RAII guard restoring the previous plan when a scope ends.
    struct PlanGuard {
        previous: Vec<Armed>,
    }

    impl Drop for PlanGuard {
        fn drop(&mut self) {
            PLAN.with(|p| *p.borrow_mut() = std::mem::take(&mut self.previous));
        }
    }

    /// Runs `f` with `plan` armed on this thread; the previous plan is
    /// restored on exit, even if `f` panics.
    pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
        let armed: Vec<Armed> = plan
            .armed
            .into_iter()
            .map(|(site, after)| Armed {
                site,
                after,
                hits: 0,
                fired: false,
            })
            .collect();
        let guard = PlanGuard {
            previous: PLAN.with(|p| std::mem::replace(&mut *p.borrow_mut(), armed)),
        };
        let r = f();
        drop(guard);
        r
    }

    /// Captures the calling thread's plan as a re-armable template: the
    /// `(site, after)` pairs of every fault that has not yet fired.
    ///
    /// The parallel driver snapshots once at `analyze()` entry and
    /// re-arms a fresh copy per cone job (via
    /// [`with_cone_plan`](super::with_cone_plan)), so each cone sees the
    /// same deterministic fault schedule regardless of worker count or
    /// scheduling order.
    pub fn snapshot() -> FaultPlan {
        FaultPlan {
            armed: PLAN.with(|p| {
                p.borrow()
                    .iter()
                    .filter(|a| !a.fired)
                    .map(|a| (a.site, a.after))
                    .collect()
            }),
        }
    }

    /// Whether any armed fault on this thread has not yet fired.
    ///
    /// The striped within-cone sweep consults this to stay on the
    /// classic sequential sweep while a fault schedule is live: trip
    /// sites are counted in sweep order, which speculative striping
    /// does not preserve.
    pub fn any_armed() -> bool {
        PLAN.with(|p| p.borrow().iter().any(|a| !a.fired))
    }

    /// Records a hit at `site`; returns `true` exactly when an armed
    /// fault fires here.
    pub fn trip(site: Site) -> bool {
        PLAN.with(|p| {
            let mut plan = p.borrow_mut();
            for a in plan.iter_mut() {
                if a.site != site || a.fired {
                    continue;
                }
                let hit = a.hits;
                a.hits += 1;
                if hit == a.after {
                    a.fired = true;
                    return true;
                }
            }
            false
        })
    }
}

#[cfg(feature = "fault-injection")]
pub use imp::{trip, with_plan, FaultPlan};

/// The per-cone fault schedule handed to each analysis worker: a full
/// [`FaultPlan`] template with the feature on, a zero-sized stand-in
/// otherwise (so the driver's plumbing compiles identically either way).
#[cfg(feature = "fault-injection")]
pub(crate) type ConePlan = FaultPlan;

/// See the `fault-injection` variant.
#[cfg(not(feature = "fault-injection"))]
#[derive(Clone, Debug, Default)]
pub(crate) struct ConePlan;

/// Snapshots the calling thread's not-yet-fired faults as a re-armable
/// template (empty/zero-sized when the feature is off). The parallel
/// driver snapshots once per analysis and re-arms per cone; a service
/// loop snapshots once per retry attempt so one-shot faults stay spent
/// across retries.
#[cfg(feature = "fault-injection")]
pub fn snapshot() -> ConePlan {
    imp::snapshot()
}

/// See the `fault-injection` variant.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn snapshot() -> ConePlan {
    ConePlan
}

/// Runs `f` with a fresh re-arm of the snapshot `plan` on the current
/// thread — the unit of fault determinism for one cone job.
#[cfg(feature = "fault-injection")]
pub(crate) fn with_cone_plan<R>(plan: &ConePlan, f: impl FnOnce() -> R) -> R {
    with_plan(plan.clone(), f)
}

/// See the `fault-injection` variant.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn with_cone_plan<R>(_plan: &ConePlan, f: impl FnOnce() -> R) -> R {
    f()
}

/// No-op [`trip`] when fault injection is compiled out: always `false`,
/// trivially inlined — zero cost at every call site.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub fn trip(_site: Site) -> bool {
    false
}

/// Whether this thread has an armed, not-yet-fired fault. The striped
/// within-cone sweep falls back to the classic sequential sweep while
/// one is live, so fault schedules keep their sweep-order trip counts.
#[cfg(feature = "fault-injection")]
pub(crate) fn any_armed() -> bool {
    imp::any_armed()
}

/// See the `fault-injection` variant.
#[cfg(not(feature = "fault-injection"))]
#[inline(always)]
pub(crate) fn any_armed() -> bool {
    false
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    #[test]
    fn fires_once_at_the_requested_hit() {
        with_plan(FaultPlan::new().once_at(Site::Breakpoint, 2), || {
            assert!(!trip(Site::Breakpoint)); // hit 0
            assert!(!trip(Site::Breakpoint)); // hit 1
            assert!(trip(Site::Breakpoint)); // hit 2 fires
            assert!(!trip(Site::Breakpoint)); // disarmed
            assert!(!trip(Site::BddOp)); // other sites unaffected
        });
    }

    #[test]
    fn plan_is_scoped_and_panic_safe() {
        let result = std::panic::catch_unwind(|| {
            with_plan(FaultPlan::new().once(Site::ConeStart), || {
                panic!("boom");
            })
        });
        assert!(result.is_err());
        // The plan armed inside the scope must be gone.
        assert!(!trip(Site::ConeStart));
    }

    #[test]
    fn snapshot_rearms_per_cone() {
        with_plan(FaultPlan::new().once(Site::BddOp), || {
            let template = snapshot();
            // Two "cones" each see the one-shot fault fresh.
            for _ in 0..2 {
                with_cone_plan(&template, || {
                    assert!(trip(Site::BddOp));
                    assert!(!trip(Site::BddOp));
                });
            }
            // The outer plan was shelved during the cone scopes, so its
            // own one-shot is still live.
            assert!(trip(Site::BddOp));
            // A fired fault drops out of later snapshots.
            assert!(snapshot().is_empty_for_test());
        });
    }

    #[test]
    fn multiple_sites_fire_independently() {
        with_plan(
            FaultPlan::new().once(Site::BddOp).once(Site::CubeEnum),
            || {
                assert!(trip(Site::BddOp));
                assert!(trip(Site::CubeEnum));
                assert!(!trip(Site::BddOp));
            },
        );
    }
}

#[cfg(all(test, not(feature = "fault-injection")))]
mod tests {
    use super::*;

    #[test]
    fn disabled_trip_is_always_false() {
        assert!(!trip(Site::BddOp));
        assert!(!trip(Site::ConeStart));
    }
}
