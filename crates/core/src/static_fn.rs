//! Static (settled, `t = ∞`) circuit functions as BDDs.

use tbf_bdd::{Bdd, BddManager, OpAbort, OpBudget};
use tbf_logic::{GateKind, Netlist};

/// Builds the BDD of a single gate from its fanin BDDs, aborting cleanly
/// if the manager outgrows the budget's node cap or its cancel probe
/// fires mid-operation.
pub(crate) fn gate_bdd(
    manager: &mut BddManager,
    kind: GateKind,
    fanins: &[Bdd],
    budget: &OpBudget<'_>,
) -> Result<Bdd, OpAbort> {
    let and_all = |m: &mut BddManager, fs: &[Bdd]| -> Result<Bdd, OpAbort> {
        let mut acc = Bdd::TRUE;
        for &f in fs {
            acc = m.try_and_b(acc, f, budget)?;
        }
        Ok(acc)
    };
    let or_all = |m: &mut BddManager, fs: &[Bdd]| -> Result<Bdd, OpAbort> {
        let mut acc = Bdd::FALSE;
        for &f in fs {
            acc = m.try_or_b(acc, f, budget)?;
        }
        Ok(acc)
    };
    let xor_all = |m: &mut BddManager, fs: &[Bdd]| -> Result<Bdd, OpAbort> {
        let mut acc = Bdd::FALSE;
        for &f in fs {
            acc = m.try_xor_b(acc, f, budget)?;
        }
        Ok(acc)
    };
    Ok(match kind {
        GateKind::Input => unreachable!("inputs are leaves"),
        GateKind::And => and_all(manager, fanins)?,
        GateKind::Or => or_all(manager, fanins)?,
        GateKind::Nand => {
            let a = and_all(manager, fanins)?;
            manager.try_not_b(a, budget)?
        }
        GateKind::Nor => {
            let a = or_all(manager, fanins)?;
            manager.try_not_b(a, budget)?
        }
        GateKind::Xor => xor_all(manager, fanins)?,
        GateKind::Xnor => {
            let x = xor_all(manager, fanins)?;
            manager.try_not_b(x, budget)?
        }
        GateKind::Not => manager.try_not_b(fanins[0], budget)?,
        GateKind::Buf => fanins[0],
        GateKind::Maj => {
            let ab = manager.try_and_b(fanins[0], fanins[1], budget)?;
            let ac = manager.try_and_b(fanins[0], fanins[2], budget)?;
            let bc = manager.try_and_b(fanins[1], fanins[2], budget)?;
            let t = manager.try_or_b(ab, ac, budget)?;
            manager.try_or_b(t, bc, budget)?
        }
        GateKind::Mux => manager.try_ite_b(fanins[0], fanins[2], fanins[1], budget)?,
        GateKind::Const0 => Bdd::FALSE,
        GateKind::Const1 => Bdd::TRUE,
    })
}

/// Builds the static function of every node over the given per-input leaf
/// BDDs (one per primary input, in input order), aborting if the manager
/// outgrows the budget or its cancel probe fires.
///
/// Called twice per analysis: once over the `x(0⁺)` variables (this is
/// `f(∞)`) and once over the `x(0⁻)` variables (the all-negative collapse
/// of the TBF network).
pub(crate) fn build_statics(
    manager: &mut BddManager,
    netlist: &Netlist,
    leaves: &[Bdd],
    budget: &OpBudget<'_>,
) -> Result<Vec<Bdd>, OpAbort> {
    assert_eq!(leaves.len(), netlist.inputs().len());
    let mut out: Vec<Bdd> = Vec::with_capacity(netlist.len());
    let mut input_pos = 0usize;
    for (_, node) in netlist.nodes() {
        let b = if node.kind().is_input() {
            let b = leaves[input_pos];
            input_pos += 1;
            b
        } else {
            let fanins: Vec<Bdd> = node.fanins().iter().map(|f| out[f.index()]).collect();
            gate_bdd(manager, node.kind(), &fanins, budget)?
        };
        out.push(b);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::{DelayBounds, Time};

    fn d1() -> DelayBounds {
        DelayBounds::fixed(Time::from_int(1))
    }

    fn generous() -> OpBudget<'static> {
        OpBudget::nodes_only(1_000_000)
    }

    #[test]
    fn statics_match_evaluation() {
        // f = MUX(s, a·b, a⊕b); exhaustively compare BDD vs netlist eval.
        let mut b = Netlist::builder();
        let s = b.input("s");
        let a = b.input("a");
        let bb = b.input("b");
        let g1 = b.gate(GateKind::And, "g1", vec![a, bb], d1()).unwrap();
        let g2 = b.gate(GateKind::Xor, "g2", vec![a, bb], d1()).unwrap();
        let g3 = b.gate(GateKind::Mux, "g3", vec![s, g1, g2], d1()).unwrap();
        b.output("f", g3);
        let n = b.finish().unwrap();

        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..3)
            .map(|i| {
                let v = m.new_named_var(&format!("x{i}"));
                m.var(v)
            })
            .collect();
        let statics = build_statics(&mut m, &n, &vars, &generous()).unwrap();
        let out = n.find("g3").unwrap();
        for i in 0..8u8 {
            let assignment = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            assert_eq!(
                m.eval(statics[out.index()], &assignment),
                n.evaluate_outputs(&assignment)[0],
                "{assignment:?}"
            );
        }
    }

    #[test]
    fn all_gate_kinds_build() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let mut nodes = Vec::new();
        for (i, kind) in [
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ]
        .iter()
        .enumerate()
        {
            nodes.push(
                b.gate(*kind, &format!("g{i}"), vec![x, y, z], d1())
                    .unwrap(),
            );
        }
        let n1 = b.gate(GateKind::Not, "n1", vec![x], d1()).unwrap();
        let b1 = b.gate(GateKind::Buf, "b1", vec![y], d1()).unwrap();
        let mj = b.gate(GateKind::Maj, "mj", vec![x, y, z], d1()).unwrap();
        let c0 = b
            .gate(GateKind::Const0, "c0", vec![], DelayBounds::ZERO)
            .unwrap();
        let c1 = b
            .gate(GateKind::Const1, "c1", vec![], DelayBounds::ZERO)
            .unwrap();
        nodes.extend([n1, b1, mj, c0, c1]);
        for (i, id) in nodes.iter().enumerate() {
            b.output(&format!("o{i}"), *id);
        }
        let n = b.finish().unwrap();

        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..3)
            .map(|_| {
                let v = m.new_var();
                m.var(v)
            })
            .collect();
        let statics = build_statics(&mut m, &n, &vars, &generous()).unwrap();
        for i in 0..8u8 {
            let assignment = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let eval = n.evaluate(&assignment);
            for (id, _) in n.nodes() {
                if n.node(id).kind().is_input() {
                    continue;
                }
                assert_eq!(
                    m.eval(statics[id.index()], &assignment),
                    eval[id.index()],
                    "node {} on {assignment:?}",
                    n.node(id).name()
                );
            }
        }
    }

    #[test]
    fn cancelled_probe_aborts_static_build() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let g = b.gate(GateKind::Xor, "g", vec![x, y], d1()).unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let mut m = BddManager::new();
        let vars: Vec<Bdd> = (0..2)
            .map(|_| {
                let v = m.new_var();
                m.var(v)
            })
            .collect();
        let probe = || true;
        let budget = OpBudget::with_cancel(1_000_000, &probe);
        let r = build_statics(&mut m, &n, &vars, &budget);
        assert_eq!(r, Err(OpAbort::Cancelled));
    }
}
