//! Shared analysis budget: resource caps, a wall-clock deadline, and a
//! cooperative cancellation token, polled at allocation granularity
//! inside the BDD operations.
//!
//! One [`AnalysisBudget`] is threaded through a whole analysis — the
//! engine, the breakpoint loops, the cube/LP loops and (via a cancel
//! probe) every budgeted BDD operation. The caps are interior-mutable so
//! the degradation ladder can [`escalate`](AnalysisBudget::escalate)
//! them between retry rungs without rebuilding the budget, and the
//! deadline/token state is *sticky*: once an interrupt fires, every
//! subsequent poll reports it until the analysis unwinds.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tbf_logic::Time;

use crate::error::DelayError;
use crate::options::DelayOptions;

/// Poll granularity for the wall clock: reading `Instant::now()` on
/// every BDD allocation would dominate small operations, so only every
/// `CLOCK_STRIDE`-th poll consults the clock. The cancel token (an
/// atomic load) is checked on every poll.
const CLOCK_STRIDE: u64 = 32;

/// A cloneable, thread-safe cooperative cancellation handle.
///
/// Hand a clone to another thread (or a ctrl-C handler) and call
/// [`cancel`](CancelToken::cancel); every analysis polling a budget
/// carrying this token stops at the next allocation-granularity check
/// and degrades its in-flight cones instead of erroring.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What cut an analysis short (distinct from resource caps, which are
/// per-cone and carry their own error variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Interrupt {
    /// The wall-clock deadline derived from
    /// [`DelayOptions::time_budget`] passed.
    Deadline,
    /// A [`CancelToken`] fired.
    Cancelled,
}

/// The shared per-analysis budget.
///
/// Created from [`DelayOptions`] (whose caps become live views onto this
/// budget for the duration of the analysis); consumed by the engines and
/// the [`analyze`](crate::analyze) driver.
#[derive(Debug)]
pub struct AnalysisBudget {
    max_paths: Cell<usize>,
    max_bdd_nodes: Cell<usize>,
    max_cubes: Cell<usize>,
    max_breakpoints: Cell<usize>,
    started: Instant,
    time_budget: Option<Duration>,
    deadline: Option<Instant>,
    token: Option<CancelToken>,
    polls: Cell<u64>,
    tripped: Cell<Option<Interrupt>>,
}

impl AnalysisBudget {
    /// Builds a budget from the option caps; the deadline clock starts
    /// *now*.
    #[must_use]
    pub fn from_options(options: &DelayOptions) -> Self {
        let started = Instant::now();
        AnalysisBudget {
            max_paths: Cell::new(options.max_straddling_paths),
            max_bdd_nodes: Cell::new(options.max_bdd_nodes),
            max_cubes: Cell::new(options.max_cubes),
            max_breakpoints: Cell::new(options.max_breakpoints),
            started,
            time_budget: options.time_budget,
            deadline: options.time_budget.map(|b| started + b),
            token: None,
            polls: Cell::new(0),
            tripped: Cell::new(None),
        }
    }

    /// Attaches a cancellation token (builder style).
    #[must_use]
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Wraps the budget for shared ownership between a driver and the
    /// engines it builds.
    #[must_use]
    pub fn shared(self) -> Rc<Self> {
        Rc::new(self)
    }

    /// Current straddling-path cap.
    pub fn max_paths(&self) -> usize {
        self.max_paths.get()
    }

    /// Current BDD node cap.
    pub fn max_bdd_nodes(&self) -> usize {
        self.max_bdd_nodes.get()
    }

    /// Current difference-cube cap.
    pub fn max_cubes(&self) -> usize {
        self.max_cubes.get()
    }

    /// Current breakpoint cap.
    pub fn max_breakpoints(&self) -> usize {
        self.max_breakpoints.get()
    }

    /// Multiplies every resource cap by `factor` (saturating). The
    /// deadline and token are untouched: escalation buys space, not
    /// time.
    pub fn escalate(&self, factor: usize) {
        self.max_paths
            .set(self.max_paths.get().saturating_mul(factor));
        self.max_bdd_nodes
            .set(self.max_bdd_nodes.get().saturating_mul(factor));
        self.max_cubes
            .set(self.max_cubes.get().saturating_mul(factor));
        self.max_breakpoints
            .set(self.max_breakpoints.get().saturating_mul(factor));
    }

    /// Restores the caps to the given options' values (undoing
    /// escalation before the next cone).
    pub fn restore_caps(&self, options: &DelayOptions) {
        self.max_paths.set(options.max_straddling_paths);
        self.max_bdd_nodes.set(options.max_bdd_nodes);
        self.max_cubes.set(options.max_cubes);
        self.max_breakpoints.set(options.max_breakpoints);
    }

    /// Milliseconds since the budget was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The configured time budget, if any.
    pub fn time_budget(&self) -> Option<Duration> {
        self.time_budget
    }

    /// Rate-limited interrupt poll: the token is checked every call, the
    /// clock every [`CLOCK_STRIDE`]-th call (and on the very first).
    /// Sticky — once tripped, always tripped.
    pub(crate) fn poll(&self) -> Option<Interrupt> {
        if let Some(t) = self.tripped.get() {
            return Some(t);
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                self.tripped.set(Some(Interrupt::Cancelled));
                return self.tripped.get();
            }
        }
        let n = self.polls.get();
        self.polls.set(n.wrapping_add(1));
        if n.is_multiple_of(CLOCK_STRIDE) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    self.tripped.set(Some(Interrupt::Deadline));
                }
            }
        }
        self.tripped.get()
    }

    /// Non-rate-limited check (used at rung boundaries, where a stale
    /// answer would waste a whole ladder step).
    pub(crate) fn check_now(&self) -> Option<Interrupt> {
        if let Some(t) = self.tripped.get() {
            return Some(t);
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                self.tripped.set(Some(Interrupt::Cancelled));
            }
        }
        if self.tripped.get().is_none() {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    self.tripped.set(Some(Interrupt::Deadline));
                }
            }
        }
        self.tripped.get()
    }

    /// `true` when the analysis should stop — the shape the BDD layer's
    /// cancel probe wants.
    pub(crate) fn interrupted(&self) -> bool {
        self.poll().is_some()
    }

    /// The interrupt recorded so far, without probing clock or token.
    pub(crate) fn cause(&self) -> Option<Interrupt> {
        self.tripped.get()
    }

    /// The typed error for the recorded interrupt — `Cancelled` when the
    /// token fired, `TimedOut` otherwise (an unrecorded cause can only
    /// mean the deadline was observed inside a BDD probe whose sticky
    /// state has since been read).
    pub(crate) fn interrupt_error(&self, at_breakpoint: Time, bounds: (Time, Time)) -> DelayError {
        match self.cause() {
            Some(Interrupt::Cancelled) => DelayError::Cancelled {
                at_breakpoint,
                bounds,
            },
            _ => DelayError::TimedOut {
                elapsed_ms: self.elapsed_ms(),
                at_breakpoint,
                bounds,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_mirror_options_and_escalate() {
        let opts = DelayOptions {
            max_straddling_paths: 10,
            max_bdd_nodes: 100,
            max_cubes: 7,
            max_breakpoints: 3,
            ..DelayOptions::default()
        };
        let b = AnalysisBudget::from_options(&opts);
        assert_eq!(b.max_paths(), 10);
        assert_eq!(b.max_bdd_nodes(), 100);
        b.escalate(4);
        assert_eq!(b.max_paths(), 40);
        assert_eq!(b.max_cubes(), 28);
        assert_eq!(b.max_breakpoints(), 12);
        b.restore_caps(&opts);
        assert_eq!(b.max_paths(), 10);
        // Escalation saturates instead of overflowing.
        let huge = AnalysisBudget::from_options(&DelayOptions::default());
        huge.max_breakpoints.set(usize::MAX);
        huge.escalate(1000);
        assert_eq!(huge.max_breakpoints(), usize::MAX);
    }

    #[test]
    fn token_trips_poll_and_sticks() {
        let token = CancelToken::new();
        let b = AnalysisBudget::from_options(&DelayOptions::default()).with_token(token.clone());
        assert_eq!(b.poll(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.poll(), Some(Interrupt::Cancelled));
        // Sticky.
        assert_eq!(b.poll(), Some(Interrupt::Cancelled));
        assert_eq!(b.cause(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn zero_deadline_trips_first_poll() {
        let opts = DelayOptions {
            time_budget: Some(Duration::ZERO),
            ..DelayOptions::default()
        };
        let b = AnalysisBudget::from_options(&opts);
        // The very first poll consults the clock.
        assert_eq!(b.poll(), Some(Interrupt::Deadline));
        assert!(b.interrupted());
    }

    #[test]
    fn no_budget_never_trips() {
        let b = AnalysisBudget::from_options(&DelayOptions::default());
        for _ in 0..1000 {
            assert_eq!(b.poll(), None);
        }
        assert_eq!(b.check_now(), None);
    }
}
