//! Shared analysis budget: resource caps, a wall-clock deadline, and a
//! cooperative cancellation token, polled at allocation granularity
//! inside the BDD operations.
//!
//! One [`AnalysisBudget`] is threaded through a whole analysis — the
//! engine, the breakpoint loops, the cube/LP loops and (via a cancel
//! probe) every budgeted BDD operation. The caps are interior-mutable
//! (atomics, so budgets are `Send + Sync` and per-cone workers can carry
//! them across threads) so the degradation ladder can
//! [`escalate`](AnalysisBudget::escalate) them between retry rungs
//! without rebuilding the budget, and the deadline/token state is
//! *sticky*: once an interrupt fires, every subsequent poll reports it
//! until the analysis unwinds.
//!
//! The parallel driver gives every cone its own budget via
//! [`fork`](AnalysisBudget::fork): caps start fresh from the options (so
//! one cone's retry escalation can never leak into a sibling's caps),
//! while the epoch, deadline and token are shared so wall-clock budgets
//! and Ctrl-C cut across all workers at once.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tbf_logic::Time;

use crate::error::DelayError;
use crate::options::DelayOptions;

/// Poll granularity for the wall clock: reading `Instant::now()` on
/// every BDD allocation would dominate small operations, so only every
/// `CLOCK_STRIDE`-th poll consults the clock. The cancel token (an
/// atomic load) is checked on every poll.
const CLOCK_STRIDE: u64 = 32;

/// A cloneable, thread-safe cooperative cancellation handle.
///
/// Hand a clone to another thread (or a ctrl-C handler) and call
/// [`cancel`](CancelToken::cancel); every analysis polling a budget
/// carrying this token stops at the next allocation-granularity check
/// and degrades its in-flight cones instead of erroring.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation has been requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// What cut an analysis short (distinct from resource caps, which are
/// per-cone and carry their own error variants).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Interrupt {
    /// The wall-clock deadline derived from
    /// [`DelayOptions::time_budget`] passed.
    Deadline,
    /// A [`CancelToken`] fired.
    Cancelled,
}

/// Sticky interrupt state, packed into an `AtomicU8` so budgets stay
/// `Sync` without locks.
const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;

fn decode_trip(raw: u8) -> Option<Interrupt> {
    match raw {
        TRIP_DEADLINE => Some(Interrupt::Deadline),
        TRIP_CANCELLED => Some(Interrupt::Cancelled),
        _ => None,
    }
}

/// The shared per-analysis budget.
///
/// Created from [`DelayOptions`] (whose caps become live views onto this
/// budget for the duration of the analysis); consumed by the engines and
/// the [`analyze`](crate::analyze) driver. `Send + Sync`: the parallel
/// driver forks one per cone and moves them into scoped worker threads.
#[derive(Debug)]
pub struct AnalysisBudget {
    max_paths: AtomicUsize,
    max_bdd_nodes: AtomicUsize,
    max_cubes: AtomicUsize,
    max_breakpoints: AtomicUsize,
    started: Instant,
    time_budget: Option<Duration>,
    deadline: Option<Instant>,
    token: Option<CancelToken>,
    polls: AtomicU64,
    tripped: AtomicU8,
    reorder: tbf_bdd::ReorderPolicy,
    tbf_cache: crate::options::TbfCacheMode,
    complement_edges: bool,
    gc: crate::options::GcMode,
    /// The observed run's shared counter registry. Forks clone the
    /// `Arc`, so every cone on every worker reports into one registry;
    /// u64 sums are commutative and the per-cone work is deterministic,
    /// so totals are identical at every thread count.
    #[cfg(feature = "obs")]
    counters: Arc<tbf_obs::Counters>,
}

impl AnalysisBudget {
    /// Builds a budget from the option caps; the deadline clock starts
    /// *now*.
    #[must_use]
    pub fn from_options(options: &DelayOptions) -> Self {
        let started = Instant::now();
        AnalysisBudget {
            max_paths: AtomicUsize::new(options.max_straddling_paths),
            max_bdd_nodes: AtomicUsize::new(options.max_bdd_nodes),
            max_cubes: AtomicUsize::new(options.max_cubes),
            max_breakpoints: AtomicUsize::new(options.max_breakpoints),
            started,
            time_budget: options.time_budget,
            deadline: options.time_budget.map(|b| started + b),
            token: None,
            polls: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            reorder: options.reorder,
            tbf_cache: options.tbf_cache,
            complement_edges: options.complement_edges,
            gc: options.gc,
            #[cfg(feature = "obs")]
            counters: crate::obs::session_counters().unwrap_or_else(tbf_obs::Counters::shared),
        }
    }

    /// Attaches a cancellation token (builder style).
    #[must_use]
    pub fn with_token(mut self, token: CancelToken) -> Self {
        self.token = Some(token);
        self
    }

    /// Wraps the budget for shared ownership between a driver and the
    /// engines it builds.
    #[must_use]
    pub fn shared(self) -> Arc<Self> {
        Arc::new(self)
    }

    /// An independent per-cone budget: caps reset to `options` (so a
    /// sibling cone's escalation never inflates this cone's limits, and
    /// vice versa), while the epoch, wall-clock deadline and cancel
    /// token are *shared* with `self` — time is a whole-analysis
    /// resource, space is per-cone.
    ///
    /// The sticky interrupt state starts clear: an already-cancelled
    /// token re-trips on the fork's first poll, and an already-expired
    /// deadline re-trips on its first clock poll, so no interrupt is
    /// lost.
    #[must_use]
    pub fn fork(&self, options: &DelayOptions) -> Self {
        AnalysisBudget {
            max_paths: AtomicUsize::new(options.max_straddling_paths),
            max_bdd_nodes: AtomicUsize::new(options.max_bdd_nodes),
            max_cubes: AtomicUsize::new(options.max_cubes),
            max_breakpoints: AtomicUsize::new(options.max_breakpoints),
            started: self.started,
            time_budget: self.time_budget,
            deadline: self.deadline,
            token: self.token.clone(),
            polls: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            reorder: options.reorder,
            tbf_cache: options.tbf_cache,
            complement_edges: options.complement_edges,
            gc: options.gc,
            #[cfg(feature = "obs")]
            counters: Arc::clone(&self.counters),
        }
    }

    /// A request-scoped budget for a long-running service: caps restart
    /// from `options`, the clock restarts *now*, and `token` (the
    /// request's own cancel handle) replaces the parent's. The parent's
    /// wall-clock deadline still applies — the effective deadline is the
    /// earlier of `now + options.time_budget` and the parent (session)
    /// deadline — so a session time budget cuts across every request it
    /// admits.
    ///
    /// Unlike [`fork`](Self::fork), which clones the parent's counter
    /// registry, a request fork binds to the *currently observed*
    /// session registry (see [`crate::obs::observe`]) when one is
    /// installed. A warm process that wraps each request in `observe`
    /// therefore gets per-request counters instead of accumulating the
    /// whole session into one misleading artifact.
    #[must_use]
    pub fn fork_request(&self, options: &DelayOptions, token: CancelToken) -> Self {
        let started = Instant::now();
        let own_deadline = options.time_budget.map(|b| started + b);
        let deadline = match (own_deadline, self.deadline) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        AnalysisBudget {
            max_paths: AtomicUsize::new(options.max_straddling_paths),
            max_bdd_nodes: AtomicUsize::new(options.max_bdd_nodes),
            max_cubes: AtomicUsize::new(options.max_cubes),
            max_breakpoints: AtomicUsize::new(options.max_breakpoints),
            started,
            time_budget: options.time_budget,
            deadline,
            token: Some(token),
            polls: AtomicU64::new(0),
            tripped: AtomicU8::new(TRIP_NONE),
            reorder: options.reorder,
            tbf_cache: options.tbf_cache,
            complement_edges: options.complement_edges,
            gc: options.gc,
            #[cfg(feature = "obs")]
            counters: crate::obs::session_counters().unwrap_or_else(|| Arc::clone(&self.counters)),
        }
    }

    /// The counter registry this budget (and its forks) report into.
    #[cfg(feature = "obs")]
    pub(crate) fn counters(&self) -> &Arc<tbf_obs::Counters> {
        &self.counters
    }

    /// Cancellation probes consumed so far. Forks start from zero, so on
    /// a per-cone budget this is the cone's own consumption.
    #[cfg(feature = "obs")]
    pub(crate) fn poll_count(&self) -> u64 {
        self.polls.load(Ordering::Relaxed)
    }

    /// Current straddling-path cap.
    pub fn max_paths(&self) -> usize {
        self.max_paths.load(Ordering::Relaxed)
    }

    /// Current BDD node cap.
    pub fn max_bdd_nodes(&self) -> usize {
        self.max_bdd_nodes.load(Ordering::Relaxed)
    }

    /// Current difference-cube cap.
    pub fn max_cubes(&self) -> usize {
        self.max_cubes.load(Ordering::Relaxed)
    }

    /// Current breakpoint cap.
    pub fn max_breakpoints(&self) -> usize {
        self.max_breakpoints.load(Ordering::Relaxed)
    }

    /// Multiplies every resource cap by `factor` (saturating). The
    /// deadline and token are untouched: escalation buys space, not
    /// time.
    pub fn escalate(&self, factor: usize) {
        for cap in [
            &self.max_paths,
            &self.max_bdd_nodes,
            &self.max_cubes,
            &self.max_breakpoints,
        ] {
            let cur = cap.load(Ordering::Relaxed);
            cap.store(cur.saturating_mul(factor), Ordering::Relaxed);
        }
    }

    /// Restores the caps to the given options' values (undoing
    /// escalation before the next cone).
    pub fn restore_caps(&self, options: &DelayOptions) {
        self.max_paths
            .store(options.max_straddling_paths, Ordering::Relaxed);
        self.max_bdd_nodes
            .store(options.max_bdd_nodes, Ordering::Relaxed);
        self.max_cubes.store(options.max_cubes, Ordering::Relaxed);
        self.max_breakpoints
            .store(options.max_breakpoints, Ordering::Relaxed);
    }

    /// Milliseconds since the budget was created.
    pub fn elapsed_ms(&self) -> u64 {
        self.started.elapsed().as_millis() as u64
    }

    /// The configured time budget, if any.
    pub fn time_budget(&self) -> Option<Duration> {
        self.time_budget
    }

    /// The configured variable-reordering policy.
    pub fn reorder(&self) -> tbf_bdd::ReorderPolicy {
        self.reorder
    }

    /// The engine's cross-breakpoint timed-node caching policy.
    pub fn tbf_cache_mode(&self) -> crate::options::TbfCacheMode {
        self.tbf_cache
    }

    /// Whether BDD managers built under this budget use complement
    /// edges.
    pub fn complement_edges(&self) -> bool {
        self.complement_edges
    }

    /// The arena garbage-collection mode for managers built under this
    /// budget.
    pub fn gc_mode(&self) -> crate::options::GcMode {
        self.gc
    }

    fn trip(&self, cause: Interrupt) {
        let raw = match cause {
            Interrupt::Deadline => TRIP_DEADLINE,
            Interrupt::Cancelled => TRIP_CANCELLED,
        };
        // First writer wins; a lost race means another thread already
        // recorded an interrupt, which is just as sticky.
        let _ = self
            .tripped
            .compare_exchange(TRIP_NONE, raw, Ordering::Relaxed, Ordering::Relaxed);
    }

    /// Rate-limited interrupt poll: the token is checked every call, the
    /// clock every [`CLOCK_STRIDE`]-th call (and on the very first).
    /// Sticky — once tripped, always tripped.
    pub(crate) fn poll(&self) -> Option<Interrupt> {
        if let Some(t) = decode_trip(self.tripped.load(Ordering::Relaxed)) {
            return Some(t);
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                self.trip(Interrupt::Cancelled);
                return self.cause();
            }
        }
        let n = self.polls.fetch_add(1, Ordering::Relaxed);
        #[cfg(feature = "obs")]
        self.counters.bump(tbf_obs::Metric::BudgetPolls);
        if n.is_multiple_of(CLOCK_STRIDE) {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    self.trip(Interrupt::Deadline);
                }
            }
        }
        self.cause()
    }

    /// Non-rate-limited check (used at rung boundaries, where a stale
    /// answer would waste a whole ladder step).
    pub(crate) fn check_now(&self) -> Option<Interrupt> {
        if let Some(t) = self.cause() {
            return Some(t);
        }
        if let Some(token) = &self.token {
            if token.is_cancelled() {
                self.trip(Interrupt::Cancelled);
            }
        }
        if self.cause().is_none() {
            if let Some(d) = self.deadline {
                if Instant::now() > d {
                    self.trip(Interrupt::Deadline);
                }
            }
        }
        self.cause()
    }

    /// `true` when the analysis should stop — the shape the BDD layer's
    /// cancel probe wants.
    pub(crate) fn interrupted(&self) -> bool {
        self.poll().is_some()
    }

    /// The interrupt recorded so far, without probing clock or token.
    pub(crate) fn cause(&self) -> Option<Interrupt> {
        decode_trip(self.tripped.load(Ordering::Relaxed))
    }

    /// The typed error for the recorded interrupt — `Cancelled` when the
    /// token fired, `TimedOut` otherwise (an unrecorded cause can only
    /// mean the deadline was observed inside a BDD probe whose sticky
    /// state has since been read).
    pub(crate) fn interrupt_error(&self, at_breakpoint: Time, bounds: (Time, Time)) -> DelayError {
        match self.cause() {
            Some(Interrupt::Cancelled) => DelayError::Cancelled {
                at_breakpoint,
                bounds,
            },
            _ => DelayError::TimedOut {
                elapsed_ms: self.elapsed_ms(),
                at_breakpoint,
                bounds,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn caps_mirror_options_and_escalate() {
        let opts = DelayOptions {
            max_straddling_paths: 10,
            max_bdd_nodes: 100,
            max_cubes: 7,
            max_breakpoints: 3,
            ..DelayOptions::default()
        };
        let b = AnalysisBudget::from_options(&opts);
        assert_eq!(b.max_paths(), 10);
        assert_eq!(b.max_bdd_nodes(), 100);
        b.escalate(4);
        assert_eq!(b.max_paths(), 40);
        assert_eq!(b.max_cubes(), 28);
        assert_eq!(b.max_breakpoints(), 12);
        b.restore_caps(&opts);
        assert_eq!(b.max_paths(), 10);
        // Escalation saturates instead of overflowing.
        let huge = AnalysisBudget::from_options(&DelayOptions::default());
        huge.max_breakpoints.store(usize::MAX, Ordering::Relaxed);
        huge.escalate(1000);
        assert_eq!(huge.max_breakpoints(), usize::MAX);
    }

    #[test]
    fn forked_budgets_have_independent_caps() {
        let opts = DelayOptions {
            max_straddling_paths: 10,
            max_bdd_nodes: 100,
            max_cubes: 7,
            max_breakpoints: 3,
            ..DelayOptions::default()
        };
        let base = AnalysisBudget::from_options(&opts);
        let cone_a = base.fork(&opts);
        let cone_b = base.fork(&opts);
        // One cone's rung-2 escalation must not inflate its siblings.
        cone_a.escalate(4);
        assert_eq!(cone_a.max_paths(), 40);
        assert_eq!(cone_b.max_paths(), 10);
        assert_eq!(base.max_paths(), 10);
        // And a fork made *after* an escalation still starts from the
        // configured options, not the escalated parent.
        base.escalate(8);
        let cone_c = base.fork(&opts);
        assert_eq!(cone_c.max_paths(), 10);
        assert_eq!(cone_c.max_cubes(), 7);
    }

    #[test]
    fn forks_share_deadline_and_token() {
        let token = CancelToken::new();
        let base = AnalysisBudget::from_options(&DelayOptions::default()).with_token(token.clone());
        let fork = base.fork(&DelayOptions::default());
        assert_eq!(fork.poll(), None);
        token.cancel();
        assert_eq!(fork.poll(), Some(Interrupt::Cancelled));
        // A fork taken after cancellation re-trips immediately.
        let late = base.fork(&DelayOptions::default());
        assert_eq!(late.poll(), Some(Interrupt::Cancelled));

        let timed = AnalysisBudget::from_options(&DelayOptions {
            time_budget: Some(Duration::ZERO),
            ..DelayOptions::default()
        });
        let timed_fork = timed.fork(&DelayOptions::default());
        // First poll consults the clock and finds the shared epoch's
        // deadline already expired.
        assert_eq!(timed_fork.poll(), Some(Interrupt::Deadline));
    }

    #[test]
    fn request_fork_combines_session_and_request_deadlines() {
        // Session with a generous deadline; the request's tighter budget
        // wins.
        let session = AnalysisBudget::from_options(&DelayOptions {
            time_budget: Some(Duration::from_secs(3600)),
            ..DelayOptions::default()
        });
        let req = session.fork_request(
            &DelayOptions {
                time_budget: Some(Duration::ZERO),
                ..DelayOptions::default()
            },
            CancelToken::new(),
        );
        assert_eq!(req.poll(), Some(Interrupt::Deadline));

        // Session deadline already spent: even a deadline-free request
        // inherits it.
        let spent = AnalysisBudget::from_options(&DelayOptions {
            time_budget: Some(Duration::ZERO),
            ..DelayOptions::default()
        });
        let req = spent.fork_request(&DelayOptions::default(), CancelToken::new());
        assert_eq!(req.poll(), Some(Interrupt::Deadline));

        // Neither side bounded: the request never trips.
        let free = AnalysisBudget::from_options(&DelayOptions::default());
        let req = free.fork_request(&DelayOptions::default(), CancelToken::new());
        assert_eq!(req.poll(), None);
    }

    #[test]
    fn request_fork_has_its_own_token() {
        let session_token = CancelToken::new();
        let session = AnalysisBudget::from_options(&DelayOptions::default())
            .with_token(session_token.clone());
        let request_token = CancelToken::new();
        let req = session.fork_request(&DelayOptions::default(), request_token.clone());
        // Cancelling the request does not touch the session…
        request_token.cancel();
        assert_eq!(req.poll(), Some(Interrupt::Cancelled));
        assert_eq!(session.poll(), None);
        // …and a fresh request starts clean.
        let next = session.fork_request(&DelayOptions::default(), CancelToken::new());
        assert_eq!(next.poll(), None);
    }

    #[test]
    fn budgets_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalysisBudget>();
        assert_send_sync::<CancelToken>();
    }

    #[test]
    fn token_trips_poll_and_sticks() {
        let token = CancelToken::new();
        let b = AnalysisBudget::from_options(&DelayOptions::default()).with_token(token.clone());
        assert_eq!(b.poll(), None);
        token.cancel();
        assert!(token.is_cancelled());
        assert_eq!(b.poll(), Some(Interrupt::Cancelled));
        // Sticky.
        assert_eq!(b.poll(), Some(Interrupt::Cancelled));
        assert_eq!(b.cause(), Some(Interrupt::Cancelled));
    }

    #[test]
    fn zero_deadline_trips_first_poll() {
        let opts = DelayOptions {
            time_budget: Some(Duration::ZERO),
            ..DelayOptions::default()
        };
        let b = AnalysisBudget::from_options(&opts);
        // The very first poll consults the clock.
        assert_eq!(b.poll(), Some(Interrupt::Deadline));
        assert!(b.interrupted());
    }

    #[test]
    fn no_budget_never_trips() {
        let b = AnalysisBudget::from_options(&DelayOptions::default());
        for _ in 0..1000 {
            assert_eq!(b.poll(), None);
        }
        assert_eq!(b.check_now(), None);
    }
}
