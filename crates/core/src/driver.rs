//! The anytime analysis driver: a per-cone degradation ladder that always
//! produces sound delay bounds, whatever resource caps, deadlines,
//! cancellations or engine panics occur along the way.
//!
//! [`analyze`] runs every output cone down a ladder of rungs:
//!
//! 1. **Exact** 2-vector analysis under the configured caps.
//! 2. **Reorder and retry** (only when [`DelayOptions::reorder`] is not
//!    [`ReorderPolicy::None`], and only for a blown node cap): rebuild the
//!    engine, sift the static functions to a better variable order, and
//!    rerun the exact search once under the *same* caps — a bad order is
//!    often the whole reason the cap blew, and sifting is far cheaper than
//!    a cap escalation.
//! 3. **Retry** with escalated caps after a manager reset, up to
//!    [`AnalysisPolicy::max_retries`] times (resource caps only — a spent
//!    deadline cannot be escalated away).
//! 4. **Sequences upper bound**: the ω⁻ delay dominates the 2-vector
//!    delay (more switching freedom can only delay the last transition)
//!    and needs no cube enumeration or LP, so it often fits in caps the
//!    exact search blew.
//! 5. **Topological bound**: always available, maximally pessimistic.
//!
//! # Parallel cone analysis
//!
//! Output cones are independent (§7 of the paper analyzes one output at a
//! time), so the driver extracts each output's fanin cone into a
//! self-contained [`ConeJob`] — a cone-restricted netlist slice plus a
//! [forked](AnalysisBudget::fork) per-cone budget — and runs the jobs on
//! a [`std::thread::scope`] worker pool sized by
//! [`AnalysisPolicy::threads`]. Each worker owns its own BDD manager
//! (built per cone, so no symbolic state crosses threads); the shared
//! wall-clock deadline and [`CancelToken`] still fire mid-BDD-op on every
//! worker through the forked budgets. Jobs are scheduled largest
//! estimated cone first so a big cone cannot strand the pool at the end
//! of the queue.
//!
//! The result is **deterministic**: `threads: 1` and `threads: N` return
//! byte-identical [`CircuitReport`]s. Both paths run the identical
//! per-cone pipeline (fresh engine on the cone slice, fresh budget fork,
//! per-cone fault-plan re-arm) and results are merged back in netlist
//! output order — worker count and scheduling order only change
//! wall-clock time, never a single reported value.
//!
//! Each cone runs under `catch_unwind`: an engine panic is counted,
//! isolated to its cone (which degrades to rung 4 with cause
//! [`DegradeCause::EnginePanic`]), and later cones run on their own
//! managers so they never see torn state. The circuit-level result is
//! never an error: well-formed netlists always get a [`CircuitReport`]
//! whose `[lower, upper]` interval soundly contains the exact delay.

use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use tbf_bdd::ReorderPolicy;
use tbf_logic::transform::extract_cone_slice;
use tbf_logic::{Netlist, NodeId, Time};

use crate::budget::{AnalysisBudget, CancelToken};
use crate::error::DelayError;
use crate::fault::{self, Site};
use crate::network::ConeContext;
use crate::options::DelayOptions;
use crate::report::{DegradeCause, DelayWitness, OutputDelay, OutputStatus, SearchStats};
use crate::two_vector::WitnessParts;

/// How [`analyze`] trades exactness for robustness.
#[derive(Clone, Debug)]
pub struct AnalysisPolicy {
    /// Resource caps and time budget for the underlying engines.
    pub options: DelayOptions,
    /// How many times a cone that hit a resource cap is retried with
    /// escalated caps (after a manager reset).
    pub max_retries: usize,
    /// Cap multiplier applied per retry.
    pub escalation_factor: usize,
    /// Whether to attempt the sequences-delay upper bound (rung 3) before
    /// falling back to the topological bound.
    pub sequences_fallback: bool,
    /// Whether to isolate engine panics per cone. Disable to let panics
    /// propagate (useful when debugging the engines themselves).
    pub catch_panics: bool,
    /// Worker threads for cone analysis: `1` (the default) runs on the
    /// calling thread, `0` means one worker per available core, any
    /// other value is used as given (clamped to the number of cones).
    /// The report is byte-identical for every setting.
    pub threads: usize,
}

impl Default for AnalysisPolicy {
    fn default() -> Self {
        AnalysisPolicy {
            options: DelayOptions::default(),
            max_retries: 1,
            escalation_factor: 4,
            sequences_fallback: true,
            catch_panics: true,
            threads: 1,
        }
    }
}

impl AnalysisPolicy {
    /// A policy wrapping the given engine options with default ladder
    /// behavior.
    #[must_use]
    pub fn with_options(options: DelayOptions) -> Self {
        AnalysisPolicy {
            options,
            ..AnalysisPolicy::default()
        }
    }

    /// Builder-style worker count (see [`threads`](Self::threads)).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The anytime analysis result: sound circuit-level delay bounds plus the
/// per-output breakdown of how each cone fared on the ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitReport {
    /// Sound lower bound on the circuit's 2-vector delay.
    pub lower: Time,
    /// Sound upper bound on the circuit's 2-vector delay.
    pub upper: Time,
    /// The exact delay, when every potentially-dominating cone resolved
    /// exactly (`lower == upper`).
    pub exact: Option<Time>,
    /// The circuit's topological delay (baseline).
    pub topological: Time,
    /// Per-output results with their ladder status.
    pub outputs: Vec<OutputDelay>,
    /// A sensitizing scenario for the largest exactly-resolved cone.
    pub witness: Option<DelayWitness>,
    /// Effort and degradation counters.
    pub stats: SearchStats,
}

impl CircuitReport {
    /// Whether every output resolved exactly (no degradation anywhere).
    pub fn all_exact(&self) -> bool {
        self.outputs.iter().all(OutputDelay::is_exact)
    }
}

impl std::fmt::Display for CircuitReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.exact {
            Some(d) => writeln!(f, "exact delay {} (topological {})", d, self.topological)?,
            None => writeln!(
                f,
                "delay within [{}, {}] (topological {})",
                self.lower, self.upper, self.topological
            )?,
        }
        for o in &self.outputs {
            match o.status {
                OutputStatus::Exact => {
                    writeln!(
                        f,
                        "  {}: {} (topological {})",
                        o.name, o.delay, o.topological
                    )?;
                }
                OutputStatus::Bounded {
                    lower,
                    upper,
                    cause,
                } => {
                    writeln!(
                        f,
                        "  {}: within [{lower}, {upper}] ({cause}; topological {})",
                        o.name, o.topological
                    )?;
                }
                OutputStatus::Fallback { cause } => {
                    writeln!(
                        f,
                        "  {}: ≤ {} ({cause}; topological bound)",
                        o.name, o.delay
                    )?;
                }
            }
        }
        write!(
            f,
            "  [{} breakpoints, {} LPs, {} retries, {} seq fallbacks, {} topo fallbacks, \
             {} panics caught]",
            self.stats.breakpoints_visited,
            self.stats.lps_solved,
            self.stats.retries,
            self.stats.sequences_fallbacks,
            self.stats.topological_fallbacks,
            self.stats.panics_caught
        )
    }
}

/// Analyzes the circuit with graceful degradation: never fails, always
/// returns sound `[lower, upper]` bounds on the exact 2-vector delay.
///
/// The module-level docs in `driver.rs` describe the ladder and the
/// threading model; per-output statuses report exactly where each cone
/// landed.
///
/// # Example
///
/// ```
/// use tbf_core::{analyze, AnalysisPolicy};
/// use tbf_logic::generators::adders::paper_bypass_adder;
/// use tbf_logic::Time;
///
/// let report = analyze(&paper_bypass_adder(), &AnalysisPolicy::default());
/// assert_eq!(report.exact, Some(Time::from_int(24)));
/// assert!(report.all_exact());
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist, policy: &AnalysisPolicy) -> CircuitReport {
    analyze_budgeted(
        netlist,
        policy,
        AnalysisBudget::from_options(&policy.options).shared(),
    )
}

/// [`analyze`] with a cooperative [`CancelToken`]: cancel from another
/// thread and in-flight cones degrade to sound bounds at the next
/// allocation-granularity poll.
#[must_use]
pub fn analyze_with_token(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    token: CancelToken,
) -> CircuitReport {
    analyze_budgeted(
        netlist,
        policy,
        AnalysisBudget::from_options(&policy.options)
            .with_token(token)
            .shared(),
    )
}

/// [`analyze`] under a caller-supplied [`AnalysisBudget`] — the entry
/// point for long-running services that fork per-request budgets off a
/// session budget ([`AnalysisBudget::fork_request`]) instead of letting
/// the driver build one from the options. The budget's caps, deadline
/// and token apply exactly as if the analysis had created it; per-cone
/// forks are still taken off `budget` internally.
#[must_use]
pub fn analyze_with_budget(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    budget: Arc<AnalysisBudget>,
) -> CircuitReport {
    analyze_budgeted(netlist, policy, budget)
}

/// How one ladder rung ended.
enum Attempt<T> {
    Done(T),
    Error(DelayError),
    Panicked,
}

/// Runs `f` (a rung of one cone), isolating panics when asked. A panic
/// invalidates the engine — it is dropped for rebuild by the next rung.
fn run_rung<T>(
    engine: &mut Option<ConeContext>,
    catch_panics: bool,
    f: impl FnOnce(&mut ConeContext) -> Result<T, DelayError>,
) -> Attempt<T> {
    let Some(eng) = engine.as_mut() else {
        return Attempt::Panicked; // caller ensures presence; treat as dead engine
    };
    let result = if catch_panics {
        catch_unwind(AssertUnwindSafe(|| f(eng)))
    } else {
        Ok(f(eng))
    };
    match result {
        Ok(Ok(v)) => Attempt::Done(v),
        Ok(Err(e)) => Attempt::Error(e),
        Err(_) => {
            // The manager may hold torn state; force a rebuild.
            *engine = None;
            Attempt::Panicked
        }
    }
}

/// Ensures the engine exists, rebuilding it after a panic or reset.
/// Returns the build error when construction itself exceeds the budget.
fn ensure_engine(
    netlist: &Arc<Netlist>,
    budget: &Arc<AnalysisBudget>,
    engine: &mut Option<ConeContext>,
) -> Result<(), DelayError> {
    if engine.is_none() {
        match ConeContext::new(Arc::clone(netlist), budget.clone()) {
            Ok(e) => *engine = Some(e),
            Err(a) => return Err(a.into_error(netlist.topological_delay(), budget)),
        }
    }
    Ok(())
}

/// One output's self-contained unit of work: the cone-restricted netlist
/// slice plus the map back into the full netlist's coordinates.
struct ConeJob {
    /// Output name (owned: jobs cross thread boundaries).
    name: String,
    /// The single-output cone netlist (shared with any engine built on
    /// it, which may outlive the job inside a [`ConeStore`]).
    cone: Arc<Netlist>,
    /// `node_map[i]` = full-netlist id of cone node `i`.
    node_map: Vec<NodeId>,
    /// The output's driver node *within the cone*.
    out_id: NodeId,
    /// The cone's retention key: byte-for-byte
    /// [`Netlist::cone_signature`] of this output, so equal keys mean
    /// structurally identical slices (kinds, fanins, delays, names).
    key: Vec<u8>,
}

impl ConeJob {
    fn new(netlist: &Netlist, output_index: usize) -> ConeJob {
        let slice = extract_cone_slice(netlist, output_index);
        let (name, out_id) = slice.netlist.outputs()[0].clone();
        let mut key = vec![b'C', 1u8];
        key.extend_from_slice(&slice.netlist.structural_signature());
        debug_assert_eq!(key, netlist.cone_signature(output_index));
        ConeJob {
            name,
            cone: Arc::new(slice.netlist),
            node_map: slice.node_map,
            out_id,
            key,
        }
    }

    /// Scheduling cost estimate: cone node count (a proxy for the BDD
    /// and path work ahead; exact cost is unknowable up front).
    fn cost(&self) -> usize {
        self.cone.len()
    }
}

/// What one cone job produces; merged in output order by the driver.
struct ConeOutcome {
    entry: OutputDelay,
    stats: SearchStats,
    /// Witness parts in *cone-local* coordinates, with the exact delay
    /// they realize (for the cross-cone "largest wins" fold). Remapped
    /// to full-netlist coordinates only at merge time, against whatever
    /// full netlist the merging request carries — a retained witness
    /// must not bake in a previous request's netlist.
    witness: Option<(Time, WitnessParts)>,
    /// The engine that ran the job, handed back for retention in a
    /// [`ConeStore`] (`None` when the final rung panicked).
    engine: Option<ConeContext>,
    /// The cone's phase subtree, captured on whichever worker ran the
    /// job and attached by the coordinator in netlist output order, so
    /// the merged tree never depends on scheduling (merge-on-join).
    #[cfg(feature = "obs")]
    phases: Vec<tbf_obs::PhaseNode>,
}

/// Translates cone-local witness parts into full-netlist coordinates:
/// inputs outside the cone default to `false`, nodes outside the cone to
/// their max delay — exactly the defaults the single-engine extraction
/// used for variables absent from the satisfying cube.
fn remap_witness(full: &Netlist, job: &ConeJob, parts: WitnessParts) -> DelayWitness {
    let (cone_before, cone_after, cone_delays) = parts;
    let n_in = full.inputs().len();
    let mut before = vec![false; n_in];
    let mut after = vec![false; n_in];
    for (ci, &cid) in job.cone.inputs().iter().enumerate() {
        let src = job.node_map[cid.index()];
        if let Some(pos) = full.input_position(src) {
            before[pos] = cone_before[ci];
            after[pos] = cone_after[ci];
        }
    }
    let mut delays: Vec<Time> = full.nodes().map(|(_, node)| node.delay().max).collect();
    for (ci, &src) in job.node_map.iter().enumerate() {
        delays[src.index()] = cone_delays[ci];
    }
    DelayWitness {
        output: job.name.clone(),
        before,
        after,
        delays,
    }
}

/// The policy's thread knob with `0` resolved to the core count.
fn raw_workers(requested: usize) -> usize {
    if requested == 0 {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        requested
    }
}

/// Resolves the policy's thread knob against the job count.
fn resolve_threads(requested: usize, jobs: usize) -> usize {
    raw_workers(requested).clamp(1, jobs.max(1))
}

/// What one incremental analysis did with the retained state: how many
/// cones were answered from the store and how many actually ran.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EcoStats {
    /// Cones whose slice signature was unchanged and whose retained
    /// result was merged back without any recomputation.
    pub reused: usize,
    /// Cones that ran the ladder (changed slices, never-seen slices, or
    /// all cones when result reuse was off for the request).
    pub recomputed: usize,
}

/// One retained cone result, stored in *cone-local* coordinates so it
/// can be merged into any later request whose slice is structurally
/// identical — whatever the rest of that request's netlist looks like.
struct StoredResult {
    entry: OutputDelay,
    stats: SearchStats,
    witness: Option<(Time, WitnessParts)>,
    #[cfg(feature = "obs")]
    phases: Vec<tbf_obs::PhaseNode>,
}

/// Everything retained for one cone slice signature.
struct StoredCone {
    /// The exact outcome, when the cone resolved exactly. Degraded
    /// outcomes are never retained: they depend on caps and deadlines,
    /// not just the slice.
    result: Option<StoredResult>,
    /// The compiled engine (manager, statics, interner, [`TbfCache`](crate::tbf::TbfCache)),
    /// handed to a later *volatile* recompute of the same slice so it
    /// starts from a warm cache instead of an empty manager.
    engine: Option<ConeContext>,
    /// LRU stamp ([`ConeStore::epoch`] at last use).
    touched: u64,
}

/// The incremental engine's retention store: per-cone results and
/// compiled engines keyed by the cone slice's structural signature
/// ([`Netlist::cone_signature`]). The key covers gate kinds, fanins,
/// delay annotations and input/output names, so a hit is only possible
/// for a structurally identical slice — which is exactly the
/// invalidation rule: any edit inside a cone changes its signature and
/// the stale entry simply stops being found.
///
/// Reuse policy, mirroring the serve warm cache:
/// * **Results** are retained only when exact, and merged back only for
///   requests without a deadline — a deadline run must behave like a
///   cold start so results never depend on what happened to be retained.
/// * **Engines** are retained for every cone that survived its ladder,
///   but handed out only to volatile (deadline) recomputes, whose
///   reports are wall-clock-dependent anyway; deterministic requests
///   always compile fresh engines.
///
/// Capacity is bounded: least-recently-used entries are evicted once the
/// store exceeds its capacity, oldest first with the key as tie-break,
/// so eviction is deterministic given the request sequence.
pub struct ConeStore {
    entries: HashMap<Vec<u8>, StoredCone>,
    epoch: u64,
    capacity: usize,
}

impl ConeStore {
    /// An empty store retaining at most `capacity` cones (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> ConeStore {
        ConeStore {
            entries: HashMap::new(),
            epoch: 0,
            capacity: capacity.max(1),
        }
    }

    /// Number of retained cones.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops everything (post-panic hygiene for long-lived sessions).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The retained exact outcome for `key`, reconstructed for merging,
    /// if one exists.
    fn reused_outcome(&mut self, key: &[u8]) -> Option<ConeOutcome> {
        let e = self.entries.get_mut(key)?;
        let r = e.result.as_ref()?;
        e.touched = self.epoch;
        Some(ConeOutcome {
            entry: r.entry.clone(),
            stats: r.stats.clone(),
            witness: r.witness.clone(),
            engine: None,
            #[cfg(feature = "obs")]
            phases: r.phases.clone(),
        })
    }

    /// Takes the retained engine for `key` out of the store, if any.
    fn take_engine(&mut self, key: &[u8]) -> Option<ConeContext> {
        let e = self.entries.get_mut(key)?;
        e.touched = self.epoch;
        e.engine.take()
    }

    /// Retains what a freshly run cone produced, then enforces capacity.
    fn retain(&mut self, key: &[u8], result: Option<StoredResult>, engine: Option<ConeContext>) {
        let entry = self
            .entries
            .entry(key.to_vec())
            .or_insert_with(|| StoredCone {
                result: None,
                engine: None,
                touched: self.epoch,
            });
        entry.touched = self.epoch;
        if result.is_some() {
            entry.result = result;
        }
        if engine.is_some() {
            entry.engine = engine;
        }
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by(|a, b| (a.1.touched, a.0).cmp(&(b.1.touched, b.0)))
                .map(|(k, _)| k.clone())
                .expect("non-empty above capacity");
            self.entries.remove(&victim);
        }
    }
}

/// Incremental (ECO) whole-circuit analysis against a retention `store`.
///
/// Behaves exactly like [`analyze_with_budget`] — the returned
/// [`CircuitReport`] is byte-identical to a cold run on the same netlist
/// and policy — but cones whose slice signature is already retained with
/// an exact result are merged back without recomputation, and every cone
/// that does run deposits its result and engine for the next request.
///
/// `reuse_results` gates the read side: pass `false` for volatile
/// (deadline-bearing) requests, which must recompute every cone like a
/// cold start; exact results from such runs are still written back.
///
/// The second return value reports the reuse split; under the `obs`
/// feature the same numbers are folded into the budget's counter
/// registry as `eco_cones_reused` / `eco_cones_recomputed`.
#[must_use]
pub fn analyze_eco(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    budget: Arc<AnalysisBudget>,
    store: &mut ConeStore,
    reuse_results: bool,
) -> (CircuitReport, EcoStats) {
    #[cfg(feature = "obs")]
    let counters = Arc::clone(budget.counters());
    let (report, eco) = analyze_impl(netlist, policy, budget, Some((store, reuse_results)));
    #[cfg(feature = "obs")]
    {
        counters.add(tbf_obs::Metric::EcoConesReused, eco.reused as u64);
        counters.add(tbf_obs::Metric::EcoConesRecomputed, eco.recomputed as u64);
    }
    (report, eco)
}

fn analyze_budgeted(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    budget: Arc<AnalysisBudget>,
) -> CircuitReport {
    analyze_impl(netlist, policy, budget, None).0
}

fn analyze_impl(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    budget: Arc<AnalysisBudget>,
    mut eco: Option<(&mut ConeStore, bool)>,
) -> (CircuitReport, EcoStats) {
    // Snapshot the calling thread's fault plan once; every cone job
    // re-arms a fresh copy so the fault schedule is per-cone
    // deterministic whatever the worker count.
    let plan = fault::snapshot();
    let jobs: Vec<ConeJob> = (0..netlist.outputs().len())
        .map(|i| ConeJob::new(netlist, i))
        .collect();

    if let Some((store, _)) = eco.as_mut() {
        store.epoch += 1;
    }

    // Partition against the store: cones whose slice signature is
    // retained with an exact result are merged back verbatim (the reuse
    // set); everything else runs the ladder. Warm engines are handed
    // out only when result reuse is off — a reusing request must be
    // bit-for-bit a cold run, so its recomputes compile fresh engines.
    let mut outcomes: Vec<Option<ConeOutcome>> = jobs.iter().map(|_| None).collect();
    let mut warm: Vec<Mutex<Option<ConeContext>>> = Vec::new();
    let mut reused = 0usize;
    for (i, job) in jobs.iter().enumerate() {
        let mut warm_engine = None;
        if let Some((store, reuse_results)) = eco.as_mut() {
            if *reuse_results {
                if let Some(out) = store.reused_outcome(&job.key) {
                    outcomes[i] = Some(out);
                    reused += 1;
                }
            } else {
                warm_engine = store.take_engine(&job.key);
            }
        }
        warm.push(Mutex::new(warm_engine));
    }
    let ran: Vec<bool> = outcomes.iter().map(Option::is_none).collect();

    // Largest estimated cone first, original order as the tie-break, so
    // the most expensive cone starts immediately instead of serializing
    // the tail of the schedule.
    let mut order: Vec<usize> = (0..jobs.len()).filter(|&i| ran[i]).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(jobs[i].cost()), i));

    let threads = resolve_threads(policy.threads, order.len());
    // Workers left over once every cone has one are lent to the striped
    // within-cone sweep of giant cones (`speculate`). Scheduling only:
    // the striped decomposition is fixed, so this never changes a
    // reported value.
    let spec_workers = (raw_workers(policy.threads) / order.len().max(1)).max(1);
    if threads <= 1 {
        for &i in &order {
            let warm_engine = warm[i].lock().map(|mut w| w.take()).unwrap_or(None);
            outcomes[i] = Some(run_cone_job(
                &jobs[i],
                policy,
                &budget,
                &plan,
                spec_workers,
                warm_engine,
            ));
        }
    } else {
        let next = AtomicUsize::new(0);
        let finished = std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut mine: Vec<(usize, ConeOutcome)> = Vec::new();
                        loop {
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            let Some(&i) = order.get(k) else { break };
                            let warm_engine = warm[i].lock().map(|mut w| w.take()).unwrap_or(None);
                            let outcome = run_cone_job(
                                &jobs[i],
                                policy,
                                &budget,
                                &plan,
                                spec_workers,
                                warm_engine,
                            );
                            mine.push((i, outcome));
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| {
                    // Workers only panic when `catch_panics` is off;
                    // propagate exactly like the sequential path would.
                    h.join().unwrap_or_else(|payload| resume_unwind(payload))
                })
                .collect::<Vec<_>>()
        });
        for (i, outcome) in finished {
            outcomes[i] = Some(outcome);
        }
    }

    // Deterministic merge in netlist output order. Witnesses are
    // remapped to full-netlist coordinates here, against *this*
    // request's netlist — retained parts carry only cone coordinates.
    let mut stats = SearchStats::default();
    let mut outputs: Vec<OutputDelay> = Vec::with_capacity(jobs.len());
    let mut witness: Option<DelayWitness> = None;
    let mut witness_delay = Time::MIN;
    for (i, outcome) in outcomes.into_iter().enumerate() {
        let Some(mut outcome) = outcome else { continue };
        stats.merge(&outcome.stats);
        if let Some((store, _)) = eco.as_mut() {
            if ran[i] {
                let result = (outcome.entry.status == OutputStatus::Exact).then(|| StoredResult {
                    entry: outcome.entry.clone(),
                    stats: outcome.stats.clone(),
                    witness: outcome.witness.clone(),
                    #[cfg(feature = "obs")]
                    phases: outcome.phases.clone(),
                });
                store.retain(&jobs[i].key, result, outcome.engine.take());
            }
        }
        #[cfg(feature = "obs")]
        tbf_obs::phase::attach(std::mem::take(&mut outcome.phases));
        if let Some((delay, parts)) = outcome.witness.take() {
            if delay > witness_delay {
                witness = Some(remap_witness(netlist, &jobs[i], parts));
                witness_delay = delay;
            }
        }
        outputs.push(outcome.entry);
    }

    let lower = outputs
        .iter()
        .map(|o| o.bounds().0)
        .max()
        .unwrap_or(Time::ZERO);
    let upper = outputs
        .iter()
        .map(|o| o.bounds().1)
        .max()
        .unwrap_or(Time::ZERO);
    let report = CircuitReport {
        lower,
        upper,
        exact: (lower == upper).then_some(upper),
        topological: netlist.topological_delay(),
        outputs,
        witness,
        stats,
    };
    let eco_stats = EcoStats {
        reused,
        recomputed: ran.iter().filter(|&&r| r).count(),
    };
    (report, eco_stats)
}

/// Runs one cone job end to end on the current thread: re-arm the fault
/// plan, fork an independent budget, build an engine on the cone slice
/// (warm, when the store handed one back; fresh otherwise) and walk the
/// ladder. The witness stays in cone coordinates for the merge.
fn run_cone_job(
    job: &ConeJob,
    policy: &AnalysisPolicy,
    base: &Arc<AnalysisBudget>,
    plan: &fault::ConePlan,
    spec_workers: usize,
    warm: Option<ConeContext>,
) -> ConeOutcome {
    fault::with_cone_plan(plan, || {
        let budget = Arc::new(base.fork(&policy.options));
        let mut warm = warm;
        if let Some(eng) = warm.as_mut() {
            // A retained engine still carries the budget of the request
            // that built it; point it at this request's fork before any
            // query polls a stale deadline or cancel token.
            eng.rebind_budget(budget.clone());
        }
        let run = |warm: Option<ConeContext>| {
            let mut stats = SearchStats::default();
            let ((entry, witness), engine) =
                cone_ladder(job, policy, &budget, &mut stats, spec_workers, warm);
            ConeOutcome {
                entry,
                stats,
                witness,
                engine,
                #[cfg(feature = "obs")]
                phases: Vec::new(),
            }
        };
        // Capture the cone's phase subtree on this worker; the driver
        // attaches it in output order so the tree is schedule-independent.
        #[cfg(feature = "obs")]
        {
            let (mut outcome, phases) = tbf_obs::phase::capture(|| {
                let _cone = crate::obs::RungSpan::open(&format!("cone:{}", job.name), &budget);
                run(warm)
            });
            outcome.phases = phases;
            outcome
        }
        #[cfg(not(feature = "obs"))]
        run(warm)
    })
}

/// What [`cone_ladder`] hands back: the cone's entry (plus the witness
/// parts when it resolved exactly with a transition), and the engine
/// for retention (gone when the final rung panicked).
type LadderOutcome = (
    (OutputDelay, Option<(Time, WitnessParts)>),
    Option<ConeContext>,
);

/// Runs one cone down the full ladder; always returns an entry, plus the
/// witness parts when the cone resolved exactly with a transition, plus
/// the engine for retention (gone when the final rung panicked).
fn cone_ladder(
    job: &ConeJob,
    policy: &AnalysisPolicy,
    budget: &Arc<AnalysisBudget>,
    stats: &mut SearchStats,
    spec_workers: usize,
    warm: Option<ConeContext>,
) -> LadderOutcome {
    let mut engine: Option<ConeContext> = warm;
    let result = cone_rungs(job, policy, budget, stats, &mut engine, spec_workers);
    // Teardown: reorder effort lives in the engine (it survives manager
    // rebuilds); fold it into the cone's stats. Lost when the final rung
    // panicked and dropped the engine — telemetry only, never a result.
    if let Some(eng) = engine.as_ref() {
        stats.absorb_reorder(eng.total_reorder_stats());
    }
    (result, engine)
}

/// The ladder proper; `engine` is owned by [`cone_ladder`] so telemetry
/// can be folded out of it after the final rung.
fn cone_rungs(
    job: &ConeJob,
    policy: &AnalysisPolicy,
    budget: &Arc<AnalysisBudget>,
    stats: &mut SearchStats,
    engine: &mut Option<ConeContext>,
    spec_workers: usize,
) -> (OutputDelay, Option<(Time, WitnessParts)>) {
    let cone = &job.cone;
    let out_id = job.out_id;
    // Giant cones sweep their breakpoints striped (see `speculate`):
    // the fixed decomposition keeps the report byte-identical at every
    // thread count, so the gate depends only on the cone itself — plus
    // the live fault plan, whose trip sites are counted in sweep order
    // and therefore pin the classic sweep.
    let striped = cone.gate_count() > crate::speculate::GIANT_CONE_GATES && !fault::any_armed();
    let name = job.name.as_str();
    let topological = cone.topological_delay_of(out_id);
    let mut lower = Time::ZERO;
    let mut upper = topological;
    let mut cause;
    let mut panicked = false;
    let mut have_error_bound = false;

    // Rungs 1–3: exact search, retried after a reorder and then with
    // escalated caps.
    let mut attempts = 0usize;
    let mut reordered = false;
    #[cfg(feature = "obs")]
    let mut rung_name = "two_vector_exact";
    loop {
        #[cfg(feature = "obs")]
        let _rung = crate::obs::RungSpan::open(rung_name, budget);
        if let Err(e) = ensure_engine(cone, budget, engine) {
            cause = DegradeCause::from_error(&e).unwrap_or(DegradeCause::InternalInvariant);
            if let Some((lo, hi)) = e.bounds() {
                lower = lower.max(lo);
                upper = upper.min(hi);
                have_error_bound = true;
            }
            break;
        }
        let attempt: Attempt<(Time, Option<WitnessParts>)> =
            run_rung(engine, policy.catch_panics, |eng| {
                if fault::trip(Site::ConeStart) {
                    panic!("injected engine panic (fault site ConeStart)");
                }
                if striped {
                    crate::speculate::cone_delay_striped(
                        &|| crate::two_vector::TwoVector,
                        eng,
                        out_id,
                        stats,
                        spec_workers,
                    )
                } else {
                    crate::model::cone_delay(&mut crate::two_vector::TwoVector, eng, out_id, stats)
                }
            });
        match attempt {
            Attempt::Done((delay, w)) => {
                let entry = OutputDelay {
                    name: name.to_owned(),
                    delay,
                    topological,
                    status: OutputStatus::Exact,
                };
                return (entry, w.map(|parts| (delay, parts)));
            }
            Attempt::Panicked => {
                stats.panics_caught += 1;
                cause = DegradeCause::EnginePanic;
                panicked = true;
                break;
            }
            Attempt::Error(e) => {
                cause = DegradeCause::from_error(&e).unwrap_or(DegradeCause::InternalInvariant);
                if let Some((lo, hi)) = e.bounds() {
                    lower = lower.max(lo);
                    upper = upper.min(hi);
                    have_error_bound = true;
                }
                // Rung 2: a blown node cap is often an ordering problem,
                // not a size problem — sift the statics into a better
                // order and rerun once under the *same* caps before
                // spending an escalation. Does not consume an attempt.
                if cause == DegradeCause::BddTooLarge
                    && policy.options.reorder != ReorderPolicy::None
                    && !reordered
                {
                    reordered = true;
                    stats.retries += 1;
                    #[cfg(feature = "obs")]
                    {
                        rung_name = "reorder_retry";
                    }
                    if let Some(eng) = engine.as_mut() {
                        if eng.reorder_and_reset().is_err() {
                            *engine = None;
                        }
                    }
                    continue;
                }
                let retryable = matches!(
                    cause,
                    DegradeCause::TooManyPaths
                        | DegradeCause::BddTooLarge
                        | DegradeCause::TooManyCubes
                );
                if retryable && attempts < policy.max_retries {
                    attempts += 1;
                    stats.retries += 1;
                    #[cfg(feature = "obs")]
                    {
                        rung_name = "escalated_retry";
                    }
                    budget.escalate(policy.escalation_factor);
                    // Reset drops dead nodes and rebuilds statics under
                    // the new caps; a failed reset forces a fresh engine.
                    if let Some(eng) = engine.as_mut() {
                        if eng.reset().is_err() {
                            *engine = None;
                        }
                    }
                    continue;
                }
                break;
            }
        }
    }

    // Rung 4: sequences upper bound. Skipped after a panic (a panicking
    // engine degrades straight to the topological bound), when disabled,
    // and once the budget is interrupted (it would fail identically at
    // its first poll).
    if policy.sequences_fallback
        && !panicked
        && budget.cause().is_none()
        && ensure_engine(cone, budget, engine).is_ok()
    {
        #[cfg(feature = "obs")]
        let _rung = crate::obs::RungSpan::open("sequences_bound", budget);
        let attempt: Attempt<Time> = run_rung(engine, policy.catch_panics, |eng| {
            crate::model::cone_delay(&mut crate::sequences::Sequences, eng, out_id, stats)
                .map(|(t, _)| t)
        });
        match attempt {
            Attempt::Done(seq) => {
                stats.sequences_fallbacks += 1;
                let seq_upper = upper.min(seq);
                let entry = OutputDelay {
                    name: name.to_owned(),
                    delay: seq_upper,
                    topological,
                    status: OutputStatus::Bounded {
                        lower,
                        upper: seq_upper,
                        cause,
                    },
                };
                return (entry, None);
            }
            Attempt::Panicked => {
                stats.panics_caught += 1;
            }
            Attempt::Error(_) => {}
        }
    }

    // Rung 5: bounds from the failed search if it established any, else
    // the bare topological fallback.
    let entry = if have_error_bound && (upper < topological || lower > Time::ZERO) {
        OutputDelay {
            name: name.to_owned(),
            delay: upper,
            topological,
            status: OutputStatus::Bounded {
                lower,
                upper,
                cause,
            },
        }
    } else {
        #[cfg(feature = "obs")]
        let _rung = crate::obs::RungSpan::open("topological_bound", budget);
        stats.topological_fallbacks += 1;
        OutputDelay {
            name: name.to_owned(),
            delay: topological,
            topological,
            status: OutputStatus::Fallback { cause },
        }
    };
    (entry, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3};
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn paper_examples_resolve_exactly() {
        let p = AnalysisPolicy::default();
        let r = analyze(&figure4_example3(), &p);
        assert_eq!(r.exact, Some(t(4)));
        let r = analyze(&figure1_three_paths(), &p);
        assert_eq!(r.exact, Some(t(5)));
        let r = analyze(&paper_bypass_adder(), &p);
        assert_eq!(r.exact, Some(t(24)));
        assert!(r.all_exact());
        assert_eq!(r.stats.retries, 0);
        assert_eq!(r.stats.panics_caught, 0);
    }

    #[test]
    fn parallel_report_is_byte_identical_to_sequential() {
        for n in [paper_bypass_adder(), figure1_three_paths()] {
            let sequential = analyze(&n, &AnalysisPolicy::default());
            for threads in [2, 4, 0] {
                let parallel = analyze(&n, &AnalysisPolicy::default().with_threads(threads));
                assert_eq!(sequential, parallel, "threads={threads}");
            }
        }
    }

    #[test]
    fn retry_with_escalated_caps_recovers_exactness() {
        // 10 parallel variable-delay buffers into an XOR: 10 straddling
        // paths. Cap 3 fails; one 4× escalation lifts it to 12 ≥ 10.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::Xor, "g", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let policy = AnalysisPolicy::with_options(DelayOptions {
            max_straddling_paths: 3,
            ..DelayOptions::default()
        });
        let r = analyze(&n, &policy);
        assert!(r.stats.retries >= 1, "escalation should have happened");
        assert!(r.all_exact(), "escalated caps fit: {r}");
        assert_eq!(r.exact, Some(t(4)));
    }

    #[test]
    fn escalation_does_not_leak_into_sibling_cones() {
        // Output "hard" needs escalation (10 straddling paths under a cap
        // of 3); output "easy" does not. The easy cone's budget fork must
        // still see the configured cap, whatever order the cones ran in —
        // checked indirectly: the report is identical across thread
        // counts and the easy cone stays exact.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let hard = b
            .gate(GateKind::Xor, "hard", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        let easy = b
            .gate(GateKind::Not, "easy", vec![y], DelayBounds::new(t(1), t(2)))
            .unwrap();
        b.output("hard", hard);
        b.output("easy", easy);
        let n = b.finish().unwrap();
        let policy = AnalysisPolicy::with_options(DelayOptions {
            max_straddling_paths: 3,
            ..DelayOptions::default()
        });
        let sequential = analyze(&n, &policy);
        assert!(sequential.all_exact(), "{sequential}");
        assert!(sequential.stats.retries >= 1);
        for threads in [2, 4] {
            let parallel = analyze(&n, &policy.clone().with_threads(threads));
            assert_eq!(sequential, parallel, "threads={threads}");
        }
    }

    #[test]
    fn exhausted_retries_degrade_with_sound_bounds() {
        // Same circuit, but retries can't reach 10 paths: caps 1 → 2.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::Xor, "g", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let policy = AnalysisPolicy {
            options: DelayOptions {
                max_straddling_paths: 1,
                ..DelayOptions::default()
            },
            escalation_factor: 2,
            ..AnalysisPolicy::default()
        };
        let r = analyze(&n, &policy);
        assert!(!r.all_exact());
        // The exact delay is 4; whatever ladder rung produced the answer,
        // the bounds must contain it.
        assert!(r.lower <= t(4) && t(4) <= r.upper, "{r}");
        assert!(r.stats.retries >= 1);
    }

    #[test]
    fn zero_time_budget_still_reports_bounds() {
        let policy = AnalysisPolicy::with_options(DelayOptions {
            time_budget: Some(std::time::Duration::ZERO),
            ..DelayOptions::default()
        });
        let r = analyze(&paper_bypass_adder(), &policy);
        assert!(!r.all_exact());
        assert!(r.lower <= t(24) && t(24) <= r.upper, "{r}");
        assert_eq!(r.topological, t(40));
        for o in &r.outputs {
            match o.status {
                OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } => {
                    assert_eq!(cause, DegradeCause::TimedOut);
                }
                OutputStatus::Exact => panic!("zero budget cannot be exact"),
            }
        }
    }

    #[test]
    fn pre_cancelled_token_degrades_every_cone() {
        let token = CancelToken::new();
        token.cancel();
        let r = analyze_with_token(&paper_bypass_adder(), &AnalysisPolicy::default(), token);
        assert!(!r.all_exact());
        assert!(r.upper <= t(40));
        assert!(r.lower <= t(24) && t(24) <= r.upper);
        for o in &r.outputs {
            match o.status {
                OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } => {
                    assert_eq!(cause, DegradeCause::Cancelled);
                }
                OutputStatus::Exact => panic!("cancelled analysis cannot be exact"),
            }
        }
    }

    #[test]
    fn pre_cancelled_token_degrades_identically_across_threads() {
        let cancelled = || {
            let token = CancelToken::new();
            token.cancel();
            token
        };
        let n = paper_bypass_adder();
        let sequential = analyze_with_token(&n, &AnalysisPolicy::default(), cancelled());
        let parallel =
            analyze_with_token(&n, &AnalysisPolicy::default().with_threads(4), cancelled());
        assert_eq!(sequential, parallel);
    }

    /// `a,b,c` feeding two independent cones: `f1 = AND(a,b)` and
    /// `f2 = <kind>(b,c)` — editing `f2`'s gate must never touch `f1`.
    fn two_cone_circuit(second: GateKind) -> Netlist {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let x = b.input("b");
        let c = b.input("c");
        let g1 = b
            .gate(
                GateKind::And,
                "g1",
                vec![a, x],
                DelayBounds::new(t(1), t(2)),
            )
            .unwrap();
        let g2 = b
            .gate(second, "g2", vec![x, c], DelayBounds::new(t(1), t(3)))
            .unwrap();
        b.output("f1", g1);
        b.output("f2", g2);
        b.finish().unwrap()
    }

    #[test]
    fn eco_reuses_unchanged_cones_and_matches_cold_runs() {
        let policy = AnalysisPolicy::default();
        let budget = || AnalysisBudget::from_options(&policy.options).shared();
        let base = two_cone_circuit(GateKind::Or);
        let edited = two_cone_circuit(GateKind::Xor);
        let mut store = ConeStore::new(64);

        // Cold start: nothing retained, everything runs.
        let (r1, e1) = analyze_eco(&base, &policy, budget(), &mut store, true);
        assert_eq!(r1, analyze(&base, &policy));
        assert_eq!(
            e1,
            EcoStats {
                reused: 0,
                recomputed: 2
            }
        );

        // One-gate edit: only the edited cone recomputes, and the report
        // is byte-identical to a cold run on the edited netlist.
        let (r2, e2) = analyze_eco(&edited, &policy, budget(), &mut store, true);
        assert_eq!(r2, analyze(&edited, &policy));
        assert_eq!(
            e2,
            EcoStats {
                reused: 1,
                recomputed: 1
            }
        );

        // Undo: both slices are retained now, so nothing runs at all.
        let (r3, e3) = analyze_eco(&base, &policy, budget(), &mut store, true);
        assert_eq!(r3, analyze(&base, &policy));
        assert_eq!(
            e3,
            EcoStats {
                reused: 2,
                recomputed: 0
            }
        );
    }

    #[test]
    fn eco_identity_request_reuses_every_cone_with_witness_intact() {
        let policy = AnalysisPolicy::default();
        let budget = || AnalysisBudget::from_options(&policy.options).shared();
        let n = paper_bypass_adder();
        let cold = analyze(&n, &policy);
        assert!(cold.witness.is_some(), "adder should produce a witness");
        let mut store = ConeStore::new(64);
        let (first, _) = analyze_eco(&n, &policy, budget(), &mut store, true);
        let (second, eco) = analyze_eco(&n, &policy, budget(), &mut store, true);
        assert_eq!(first, cold);
        assert_eq!(second, cold);
        assert_eq!(eco.reused, n.outputs().len());
        assert_eq!(eco.recomputed, 0);
    }

    #[test]
    fn eco_volatile_requests_recompute_everything_but_still_retain() {
        let policy = AnalysisPolicy::default();
        let budget = || AnalysisBudget::from_options(&policy.options).shared();
        let n = two_cone_circuit(GateKind::Or);
        let mut store = ConeStore::new(64);
        // A volatile request never reads retained results...
        let (r1, e1) = analyze_eco(&n, &policy, budget(), &mut store, false);
        let (r2, e2) = analyze_eco(&n, &policy, budget(), &mut store, false);
        assert_eq!(r1, analyze(&n, &policy));
        assert_eq!(r2, r1);
        assert_eq!(e1.reused + e2.reused, 0);
        assert_eq!(e2.recomputed, 2);
        // ...but its exact results are written back for later reuse.
        let (r3, e3) = analyze_eco(&n, &policy, budget(), &mut store, true);
        assert_eq!(r3, r1);
        assert_eq!(e3.reused, 2);
    }

    #[test]
    fn eco_store_capacity_evicts_least_recently_used() {
        let policy = AnalysisPolicy::default();
        let budget = || AnalysisBudget::from_options(&policy.options).shared();
        let or_variant = two_cone_circuit(GateKind::Or);
        let xor_variant = two_cone_circuit(GateKind::Xor);
        // Capacity 1: each two-cone request evicts down to one entry, so
        // at most one cone can ever be answered from the store.
        let mut store = ConeStore::new(1);
        let (_, _) = analyze_eco(&or_variant, &policy, budget(), &mut store, true);
        assert_eq!(store.len(), 1);
        let (r, eco) = analyze_eco(&xor_variant, &policy, budget(), &mut store, true);
        assert_eq!(r, analyze(&xor_variant, &policy));
        assert!(eco.reused <= 1, "{eco:?}");
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn thread_resolution_clamps_sanely() {
        assert_eq!(resolve_threads(1, 5), 1);
        assert_eq!(resolve_threads(8, 5), 5);
        assert_eq!(resolve_threads(3, 5), 3);
        assert!(resolve_threads(0, 100) >= 1);
        assert_eq!(resolve_threads(4, 0), 1);
    }

    #[test]
    fn display_shows_status_lines() {
        let r = analyze(&paper_bypass_adder(), &AnalysisPolicy::default());
        let s = r.to_string();
        assert!(s.contains("exact delay 24"), "{s}");
        assert!(s.contains("topological 40"), "{s}");
    }
}
