//! The anytime analysis driver: a per-cone degradation ladder that always
//! produces sound delay bounds, whatever resource caps, deadlines,
//! cancellations or engine panics occur along the way.
//!
//! [`analyze`] runs every output cone down a ladder of rungs:
//!
//! 1. **Exact** 2-vector analysis under the configured caps.
//! 2. **Retry** with escalated caps after a manager reset, up to
//!    [`AnalysisPolicy::max_retries`] times (resource caps only — a spent
//!    deadline cannot be escalated away).
//! 3. **Sequences upper bound**: the ω⁻ delay dominates the 2-vector
//!    delay (more switching freedom can only delay the last transition)
//!    and needs no cube enumeration or LP, so it often fits in caps the
//!    exact search blew.
//! 4. **Topological bound**: always available, maximally pessimistic.
//!
//! Each cone runs under `catch_unwind`: an engine panic is counted,
//! isolated to its cone (which degrades to rung 4 with cause
//! [`DegradeCause::EnginePanic`]), and the shared manager is rebuilt so
//! later cones see consistent state. The circuit-level result is never an
//! error: well-formed netlists always get a [`CircuitReport`] whose
//! `[lower, upper]` interval soundly contains the exact delay.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use tbf_logic::{Netlist, NodeId, Time};

use crate::budget::{AnalysisBudget, CancelToken};
use crate::error::DelayError;
use crate::fault::{self, Site};
use crate::network::Engine;
use crate::options::DelayOptions;
use crate::report::{DegradeCause, DelayWitness, OutputDelay, OutputStatus, SearchStats};
use crate::two_vector::WitnessParts;

/// How [`analyze`] trades exactness for robustness.
#[derive(Clone, Debug)]
pub struct AnalysisPolicy {
    /// Resource caps and time budget for the underlying engines.
    pub options: DelayOptions,
    /// How many times a cone that hit a resource cap is retried with
    /// escalated caps (after a manager reset).
    pub max_retries: usize,
    /// Cap multiplier applied per retry.
    pub escalation_factor: usize,
    /// Whether to attempt the sequences-delay upper bound (rung 3) before
    /// falling back to the topological bound.
    pub sequences_fallback: bool,
    /// Whether to isolate engine panics per cone. Disable to let panics
    /// propagate (useful when debugging the engines themselves).
    pub catch_panics: bool,
}

impl Default for AnalysisPolicy {
    fn default() -> Self {
        AnalysisPolicy {
            options: DelayOptions::default(),
            max_retries: 1,
            escalation_factor: 4,
            sequences_fallback: true,
            catch_panics: true,
        }
    }
}

impl AnalysisPolicy {
    /// A policy wrapping the given engine options with default ladder
    /// behavior.
    #[must_use]
    pub fn with_options(options: DelayOptions) -> Self {
        AnalysisPolicy {
            options,
            ..AnalysisPolicy::default()
        }
    }
}

/// The anytime analysis result: sound circuit-level delay bounds plus the
/// per-output breakdown of how each cone fared on the ladder.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CircuitReport {
    /// Sound lower bound on the circuit's 2-vector delay.
    pub lower: Time,
    /// Sound upper bound on the circuit's 2-vector delay.
    pub upper: Time,
    /// The exact delay, when every potentially-dominating cone resolved
    /// exactly (`lower == upper`).
    pub exact: Option<Time>,
    /// The circuit's topological delay (baseline).
    pub topological: Time,
    /// Per-output results with their ladder status.
    pub outputs: Vec<OutputDelay>,
    /// A sensitizing scenario for the largest exactly-resolved cone.
    pub witness: Option<DelayWitness>,
    /// Effort and degradation counters.
    pub stats: SearchStats,
}

impl CircuitReport {
    /// Whether every output resolved exactly (no degradation anywhere).
    pub fn all_exact(&self) -> bool {
        self.outputs.iter().all(OutputDelay::is_exact)
    }
}

impl std::fmt::Display for CircuitReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.exact {
            Some(d) => writeln!(f, "exact delay {} (topological {})", d, self.topological)?,
            None => writeln!(
                f,
                "delay within [{}, {}] (topological {})",
                self.lower, self.upper, self.topological
            )?,
        }
        for o in &self.outputs {
            match o.status {
                OutputStatus::Exact => {
                    writeln!(
                        f,
                        "  {}: {} (topological {})",
                        o.name, o.delay, o.topological
                    )?;
                }
                OutputStatus::Bounded {
                    lower,
                    upper,
                    cause,
                } => {
                    writeln!(
                        f,
                        "  {}: within [{lower}, {upper}] ({cause}; topological {})",
                        o.name, o.topological
                    )?;
                }
                OutputStatus::Fallback { cause } => {
                    writeln!(
                        f,
                        "  {}: ≤ {} ({cause}; topological bound)",
                        o.name, o.delay
                    )?;
                }
            }
        }
        write!(
            f,
            "  [{} breakpoints, {} LPs, {} retries, {} seq fallbacks, {} topo fallbacks, \
             {} panics caught]",
            self.stats.breakpoints_visited,
            self.stats.lps_solved,
            self.stats.retries,
            self.stats.sequences_fallbacks,
            self.stats.topological_fallbacks,
            self.stats.panics_caught
        )
    }
}

/// Analyzes the circuit with graceful degradation: never fails, always
/// returns sound `[lower, upper]` bounds on the exact 2-vector delay.
///
/// See the [module docs](self) for the ladder. Per-output statuses
/// report exactly where each cone landed.
///
/// # Example
///
/// ```
/// use tbf_core::{analyze, AnalysisPolicy};
/// use tbf_logic::generators::adders::paper_bypass_adder;
/// use tbf_logic::Time;
///
/// let report = analyze(&paper_bypass_adder(), &AnalysisPolicy::default());
/// assert_eq!(report.exact, Some(Time::from_int(24)));
/// assert!(report.all_exact());
/// ```
#[must_use]
pub fn analyze(netlist: &Netlist, policy: &AnalysisPolicy) -> CircuitReport {
    analyze_budgeted(
        netlist,
        policy,
        AnalysisBudget::from_options(&policy.options).shared(),
    )
}

/// [`analyze`] with a cooperative [`CancelToken`]: cancel from another
/// thread and in-flight cones degrade to sound bounds at the next
/// allocation-granularity poll.
#[must_use]
pub fn analyze_with_token(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    token: CancelToken,
) -> CircuitReport {
    analyze_budgeted(
        netlist,
        policy,
        AnalysisBudget::from_options(&policy.options)
            .with_token(token)
            .shared(),
    )
}

/// How one ladder rung ended.
enum Attempt<T> {
    Done(T),
    Error(DelayError),
    Panicked,
}

/// Runs `f` (a rung of one cone), isolating panics when asked. A panic
/// invalidates the engine — it is dropped for rebuild by the next rung.
fn run_rung<'a, T>(
    engine: &mut Option<Engine<'a>>,
    catch_panics: bool,
    f: impl FnOnce(&mut Engine<'a>) -> Result<T, DelayError>,
) -> Attempt<T> {
    let Some(eng) = engine.as_mut() else {
        return Attempt::Panicked; // caller ensures presence; treat as dead engine
    };
    let result = if catch_panics {
        catch_unwind(AssertUnwindSafe(|| f(eng)))
    } else {
        Ok(f(eng))
    };
    match result {
        Ok(Ok(v)) => Attempt::Done(v),
        Ok(Err(e)) => Attempt::Error(e),
        Err(_) => {
            // The manager may hold torn state; force a rebuild.
            *engine = None;
            Attempt::Panicked
        }
    }
}

/// Ensures the engine exists, rebuilding it after a panic or reset.
/// Returns the build error when construction itself exceeds the budget.
fn ensure_engine<'a>(
    netlist: &'a Netlist,
    budget: &Rc<AnalysisBudget>,
    engine: &mut Option<Engine<'a>>,
) -> Result<(), DelayError> {
    if engine.is_none() {
        match Engine::new(netlist, budget.clone()) {
            Ok(e) => *engine = Some(e),
            Err(a) => return Err(a.into_error(netlist.topological_delay(), budget)),
        }
    }
    Ok(())
}

fn analyze_budgeted(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    budget: Rc<AnalysisBudget>,
) -> CircuitReport {
    let mut stats = SearchStats::default();
    let mut outputs: Vec<OutputDelay> = Vec::new();
    let mut witness: Option<DelayWitness> = None;
    let mut witness_delay = Time::MIN;
    let mut engine: Option<Engine<'_>> = None;

    for (name, out_id) in netlist.outputs() {
        budget.restore_caps(&policy.options);
        let entry = analyze_cone(
            netlist,
            policy,
            &budget,
            &mut engine,
            name,
            *out_id,
            &mut stats,
            &mut witness,
            &mut witness_delay,
        );
        outputs.push(entry);
    }

    let lower = outputs
        .iter()
        .map(|o| o.bounds().0)
        .max()
        .unwrap_or(Time::ZERO);
    let upper = outputs
        .iter()
        .map(|o| o.bounds().1)
        .max()
        .unwrap_or(Time::ZERO);
    CircuitReport {
        lower,
        upper,
        exact: (lower == upper).then_some(upper),
        topological: netlist.topological_delay(),
        outputs,
        witness,
        stats,
    }
}

/// Runs one output cone down the full ladder; always returns an entry.
#[allow(clippy::too_many_arguments)]
fn analyze_cone<'a>(
    netlist: &'a Netlist,
    policy: &AnalysisPolicy,
    budget: &Rc<AnalysisBudget>,
    engine: &mut Option<Engine<'a>>,
    name: &str,
    out_id: NodeId,
    stats: &mut SearchStats,
    witness: &mut Option<DelayWitness>,
    witness_delay: &mut Time,
) -> OutputDelay {
    let topological = netlist.topological_delay_of(out_id);
    let mut lower = Time::ZERO;
    let mut upper = topological;
    let mut cause;
    let mut panicked = false;
    let mut have_error_bound = false;

    // Rungs 1–2: exact search, retried with escalated caps.
    let mut attempts = 0usize;
    loop {
        if let Err(e) = ensure_engine(netlist, budget, engine) {
            cause = DegradeCause::from_error(&e).unwrap_or(DegradeCause::InternalInvariant);
            if let Some((lo, hi)) = e.bounds() {
                lower = lower.max(lo);
                upper = upper.min(hi);
                have_error_bound = true;
            }
            break;
        }
        let attempt: Attempt<(Time, Option<WitnessParts>)> =
            run_rung(engine, policy.catch_panics, |eng| {
                if fault::trip(Site::ConeStart) {
                    panic!("injected engine panic (fault site ConeStart)");
                }
                crate::two_vector::cone_delay(netlist, eng, out_id, stats)
            });
        match attempt {
            Attempt::Done((delay, w)) => {
                if delay > *witness_delay {
                    if let Some((before, after, delays)) = w {
                        *witness = Some(DelayWitness {
                            output: name.to_owned(),
                            before,
                            after,
                            delays,
                        });
                        *witness_delay = delay;
                    }
                }
                return OutputDelay {
                    name: name.to_owned(),
                    delay,
                    topological,
                    status: OutputStatus::Exact,
                };
            }
            Attempt::Panicked => {
                stats.panics_caught += 1;
                cause = DegradeCause::EnginePanic;
                panicked = true;
                break;
            }
            Attempt::Error(e) => {
                cause = DegradeCause::from_error(&e).unwrap_or(DegradeCause::InternalInvariant);
                if let Some((lo, hi)) = e.bounds() {
                    lower = lower.max(lo);
                    upper = upper.min(hi);
                    have_error_bound = true;
                }
                let retryable = matches!(
                    cause,
                    DegradeCause::TooManyPaths
                        | DegradeCause::BddTooLarge
                        | DegradeCause::TooManyCubes
                );
                if retryable && attempts < policy.max_retries {
                    attempts += 1;
                    stats.retries += 1;
                    budget.escalate(policy.escalation_factor);
                    // Reset drops dead nodes and rebuilds statics under
                    // the new caps; a failed reset forces a fresh engine.
                    if let Some(eng) = engine.as_mut() {
                        if eng.reset().is_err() {
                            *engine = None;
                        }
                    }
                    continue;
                }
                break;
            }
        }
    }

    // Rung 3: sequences upper bound. Skipped after a panic (a panicking
    // engine degrades straight to the topological bound), when disabled,
    // and once the budget is interrupted (it would fail identically at
    // its first poll).
    if policy.sequences_fallback
        && !panicked
        && budget.cause().is_none()
        && ensure_engine(netlist, budget, engine).is_ok()
    {
        let attempt: Attempt<Time> = run_rung(engine, policy.catch_panics, |eng| {
            crate::sequences::cone_delay(netlist, eng, out_id, stats)
        });
        match attempt {
            Attempt::Done(seq) => {
                stats.sequences_fallbacks += 1;
                let seq_upper = upper.min(seq);
                return OutputDelay {
                    name: name.to_owned(),
                    delay: seq_upper,
                    topological,
                    status: OutputStatus::Bounded {
                        lower,
                        upper: seq_upper,
                        cause,
                    },
                };
            }
            Attempt::Panicked => {
                stats.panics_caught += 1;
            }
            Attempt::Error(_) => {}
        }
    }

    // Rung 4: bounds from the failed search if it established any, else
    // the bare topological fallback.
    if have_error_bound && (upper < topological || lower > Time::ZERO) {
        OutputDelay {
            name: name.to_owned(),
            delay: upper,
            topological,
            status: OutputStatus::Bounded {
                lower,
                upper,
                cause,
            },
        }
    } else {
        stats.topological_fallbacks += 1;
        OutputDelay {
            name: name.to_owned(),
            delay: topological,
            topological,
            status: OutputStatus::Fallback { cause },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3};
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn paper_examples_resolve_exactly() {
        let p = AnalysisPolicy::default();
        let r = analyze(&figure4_example3(), &p);
        assert_eq!(r.exact, Some(t(4)));
        let r = analyze(&figure1_three_paths(), &p);
        assert_eq!(r.exact, Some(t(5)));
        let r = analyze(&paper_bypass_adder(), &p);
        assert_eq!(r.exact, Some(t(24)));
        assert!(r.all_exact());
        assert_eq!(r.stats.retries, 0);
        assert_eq!(r.stats.panics_caught, 0);
    }

    #[test]
    fn retry_with_escalated_caps_recovers_exactness() {
        // 10 parallel variable-delay buffers into an XOR: 10 straddling
        // paths. Cap 3 fails; one 4× escalation lifts it to 12 ≥ 10.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::Xor, "g", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let policy = AnalysisPolicy::with_options(DelayOptions {
            max_straddling_paths: 3,
            ..DelayOptions::default()
        });
        let r = analyze(&n, &policy);
        assert!(r.stats.retries >= 1, "escalation should have happened");
        assert!(r.all_exact(), "escalated caps fit: {r}");
        assert_eq!(r.exact, Some(t(4)));
    }

    #[test]
    fn exhausted_retries_degrade_with_sound_bounds() {
        // Same circuit, but retries can't reach 10 paths: caps 1 → 2.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::Xor, "g", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let policy = AnalysisPolicy {
            options: DelayOptions {
                max_straddling_paths: 1,
                ..DelayOptions::default()
            },
            escalation_factor: 2,
            ..AnalysisPolicy::default()
        };
        let r = analyze(&n, &policy);
        assert!(!r.all_exact());
        // The exact delay is 4; whatever ladder rung produced the answer,
        // the bounds must contain it.
        assert!(r.lower <= t(4) && t(4) <= r.upper, "{r}");
        assert!(r.stats.retries >= 1);
    }

    #[test]
    fn zero_time_budget_still_reports_bounds() {
        let policy = AnalysisPolicy::with_options(DelayOptions {
            time_budget: Some(std::time::Duration::ZERO),
            ..DelayOptions::default()
        });
        let r = analyze(&paper_bypass_adder(), &policy);
        assert!(!r.all_exact());
        assert!(r.lower <= t(24) && t(24) <= r.upper, "{r}");
        assert_eq!(r.topological, t(40));
        for o in &r.outputs {
            match o.status {
                OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } => {
                    assert_eq!(cause, DegradeCause::TimedOut);
                }
                OutputStatus::Exact => panic!("zero budget cannot be exact"),
            }
        }
    }

    #[test]
    fn pre_cancelled_token_degrades_every_cone() {
        let token = CancelToken::new();
        token.cancel();
        let r = analyze_with_token(&paper_bypass_adder(), &AnalysisPolicy::default(), token);
        assert!(!r.all_exact());
        assert!(r.upper <= t(40));
        assert!(r.lower <= t(24) && t(24) <= r.upper);
        for o in &r.outputs {
            match o.status {
                OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } => {
                    assert_eq!(cause, DegradeCause::Cancelled);
                }
                OutputStatus::Exact => panic!("cancelled analysis cannot be exact"),
            }
        }
    }

    #[test]
    fn display_shows_status_lines() {
        let r = analyze(&paper_bypass_adder(), &AnalysisPolicy::default());
        let s = r.to_string();
        assert!(s.contains("exact delay 24"), "{s}");
        assert!(s.contains("topological 40"), "{s}");
    }
}
