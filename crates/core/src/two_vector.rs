//! The exact 2-vector (transition) delay engine (paper §6–§7.3).

use std::collections::HashMap;
use std::sync::Arc;

use tbf_bdd::{transfer, Bdd, BddManager, Cube, OpAbort, OpBudget, Var};
use tbf_logic::{Netlist, NodeId, Time};
use tbf_lp::{PathLp, PathLpOutcome};

use crate::budget::AnalysisBudget;
use crate::error::DelayError;
use crate::fault::{self, Site};
use crate::model::{delay_with_model, DelayModel, Hit};
use crate::network::{ConeContext, QueryOut};
use crate::options::DelayOptions;
use crate::report::{DelayReport, DelayWitness, OutputDelay, OutputStatus, SearchStats};

/// Computes the exact 2-vector delay `D(C, [dᵐⁱⁿ,dᵐᵃˣ], 2)`: the latest
/// possible arrival time of the last output transition when an arbitrary
/// vector pair switches at `t = 0`, over all in-bounds gate delay
/// assignments.
///
/// This is the paper's §7.3 algorithm: descend through the breakpoints
/// `{Kᵢᵐᵃˣ}`; at each query point `t = b⁻` build the TBF as a BDD with
/// resolvents standing in for the delay-dependent variables, compare
/// against the static function `f(∞)`, and check each difference cube's
/// induced linear program for feasibility, maximizing `t`. The first
/// breakpoint interval with a feasible cube yields the exact delay.
///
/// For never-erroring whole-circuit analysis with graceful degradation,
/// see [`analyze`](crate::analyze).
///
/// # Errors
///
/// Returns a [`DelayError`] carrying sound `(lower, upper)` bounds when a
/// resource cap of [`DelayOptions`] is exceeded.
///
/// # Example
///
/// ```
/// use tbf_core::{two_vector_delay, DelayOptions};
/// use tbf_logic::generators::figures::figure4_example3;
/// use tbf_logic::Time;
///
/// // Example 3 of the paper: delay = 4.
/// let report = two_vector_delay(&figure4_example3(), &DelayOptions::default())?;
/// assert_eq!(report.delay, Time::from_int(4));
/// # Ok::<(), tbf_core::DelayError>(())
/// ```
pub fn two_vector_delay(
    netlist: &Netlist,
    options: &DelayOptions,
) -> Result<DelayReport, DelayError> {
    two_vector_delay_budgeted(netlist, AnalysisBudget::from_options(options).shared())
}

/// [`two_vector_delay`] against a caller-supplied (possibly shared,
/// possibly cancellable) budget.
pub(crate) fn two_vector_delay_budgeted(
    netlist: &Netlist,
    budget: Arc<AnalysisBudget>,
) -> Result<DelayReport, DelayError> {
    delay_with_model(netlist, budget, &mut TwoVector)
}

/// The capped cone's [`OutputDelay`] entry (its delay is the sound upper
/// bound carried by the error); `None` for non-degradable errors.
pub(crate) fn degraded_output(
    netlist: &Netlist,
    name: &str,
    out_id: NodeId,
    e: &DelayError,
) -> Option<OutputDelay> {
    let cause = crate::report::DegradeCause::from_error(e)?;
    let topological = netlist.topological_delay_of(out_id);
    let (lo, hi) = e.bounds().unwrap_or((Time::ZERO, topological));
    let hi = hi.min(topological);
    Some(OutputDelay {
        name: name.to_owned(),
        delay: hi,
        topological,
        status: OutputStatus::Bounded {
            lower: lo,
            upper: hi,
            cause,
        },
    })
}

/// Aggregates per-output results into the circuit report, erroring (with
/// widened bounds) only when a non-exact cone could dominate the exact
/// maximum.
pub(crate) fn finish_report(
    netlist: &Netlist,
    outputs: Vec<OutputDelay>,
    witness: Option<DelayWitness>,
    stats: SearchStats,
    first_error: Option<DelayError>,
) -> Result<DelayReport, DelayError> {
    let exact_max = outputs
        .iter()
        .filter(|o| o.is_exact())
        .map(|o| o.delay)
        .max()
        .unwrap_or(Time::ZERO);
    let bound_max = outputs
        .iter()
        .filter(|o| !o.is_exact())
        .map(|o| o.delay)
        .max();
    match (bound_max, first_error) {
        (Some(bound), Some(e)) if bound > exact_max => {
            // Some capped cone could dominate: only bounds are sound.
            Err(e.with_bounds(exact_max, bound))
        }
        _ => Ok(DelayReport {
            delay: exact_max,
            topological: netlist.topological_delay(),
            outputs,
            witness,
            stats,
        }),
    }
}

/// Raw witness parts: (before vector, after vector, per-node delays).
pub(crate) type WitnessParts = (Vec<bool>, Vec<bool>, Vec<Time>);

/// The 2-vector model as a [`DelayModel`] strategy (§7.3): test a
/// breakpoint interval by building the resolvent TBF, XOR-ing against
/// the settled function, and maximizing `t` over each difference cube's
/// induced linear program.
pub(crate) struct TwoVector;

impl DelayModel for TwoVector {
    fn test_at(
        &mut self,
        cx: &mut ConeContext,
        output: NodeId,
        window_lo: Time,
        b: Time,
        stats: &mut SearchStats,
    ) -> Result<Option<Hit>, DelayError> {
        let netlist = cx.netlist_arc();
        let query = cx
            .two_vector_query(output, b)
            .map_err(|e| e.into_error(b, &cx.budget))?;
        stats.resolvents += query.resolvents.len();
        stats.peak_bdd_nodes = stats.peak_bdd_nodes.max(cx.manager.node_count());
        cx.sample_memory(stats);
        #[cfg(feature = "obs")]
        tbf_obs::phase::record_peak_nodes(cx.manager.node_count() as u64);

        let found = check_interval(&netlist, cx, output, &query, window_lo, b, stats)?;
        Ok(found.map(|(t, w)| Hit {
            t,
            witness: Some(w),
        }))
    }
}

/// Checks one breakpoint interval `(window_lo, b]`; returns the exact
/// delay if the last output transition can fall inside it.
fn check_interval(
    netlist: &Netlist,
    cx: &mut ConeContext,
    output: NodeId,
    query: &QueryOut,
    window_lo: Time,
    b: Time,
    stats: &mut SearchStats,
) -> Result<Option<(Time, WitnessParts)>, DelayError> {
    let static_out = cx.static_out(output);
    let budget = cx.budget.clone();
    let abort = |a: OpAbort| match a {
        OpAbort::NodeLimit(e) => DelayError::BddTooLarge {
            limit: e.limit,
            at_breakpoint: b,
            bounds: (Time::ZERO, b),
        },
        OpAbort::Cancelled => budget.interrupt_error(b, (Time::ZERO, b)),
    };
    let bud = cx.budget.clone();
    let probe = move || bud.interrupted();
    let op_budget = OpBudget::with_cancel(cx.budget.max_bdd_nodes(), &probe);
    let xor = cx
        .manager
        .try_xor_b(query.f, static_out, &op_budget)
        .map_err(abort)?;
    if xor.is_false() {
        return Ok(None);
    }
    // Project onto the resolvent variables: the input values only need to
    // exist (inputs are arbitrary), so quantify them out and enumerate
    // resolution cubes only (§7.2's implicit enumeration).
    let input_vars = cx.input_vars.clone();
    let projected = cx
        .manager
        .try_exists_all_b(xor, &input_vars, &op_budget)
        .map_err(abort)?;
    debug_assert!(!projected.is_false(), "∃ of a non-false BDD");
    stats.peak_bdd_nodes = stats.peak_bdd_nodes.max(cx.manager.node_count());
    cx.sample_memory(stats);
    #[cfg(feature = "obs")]
    tbf_obs::phase::record_peak_nodes(cx.manager.node_count() as u64);

    // Dense LP variable space: every gate on any resolvent path.
    let mut gate_index: HashMap<NodeId, usize> = HashMap::new();
    let mut bounds: Vec<(i64, i64)> = Vec::new();
    for r in &query.resolvents {
        for &g in &r.gates {
            gate_index.entry(g).or_insert_with(|| {
                let d = netlist.node(g).delay();
                bounds.push((d.min.scaled(), d.max.scaled()));
                bounds.len() - 1
            });
        }
    }
    let paths: Vec<Vec<usize>> = query
        .resolvents
        .iter()
        .map(|r| r.gates.iter().map(|g| gate_index[g]).collect())
        .collect();

    // Materialize the cubes first: witness extraction below needs the
    // manager mutably. The cap bounds the allocation.
    let cubes = canonical_cubes(cx, projected, b)?;
    let mut best: Option<(Time, WitnessParts)> = None;
    for (cube_idx, cube) in cubes.iter().enumerate() {
        // LP chains can dominate a breakpoint; honor the budget here too.
        if cube_idx % 64 == 0 && cx.budget.check_now().is_some() {
            let lo = best.as_ref().map(|(t, _)| *t).unwrap_or(Time::ZERO);
            return Err(cx.budget.interrupt_error(b, (lo, b)));
        }
        let mut lp = PathLp::new(&bounds);
        lp.set_t_window(window_lo.scaled(), b.scaled());
        for (r, gates) in query.resolvents.iter().zip(&paths) {
            match cube.phase(r.var) {
                Some(true) => lp.t_greater_than(gates),
                Some(false) => lp.t_less_than(gates),
                None => {}
            }
        }
        stats.lps_solved += 1;
        if let PathLpOutcome::Feasible { t_sup, delays } = lp.solve() {
            let t = Time::from_scaled(t_sup);
            // Only transitions strictly inside the interval count; at or
            // below the window floor the valuation classification no
            // longer matches and the cube re-appears (correctly
            // re-classified) in a lower interval.
            if t > window_lo && best.as_ref().is_none_or(|(cur, _)| t > *cur) {
                let parts = extract_witness(
                    netlist,
                    cx,
                    query,
                    xor,
                    &lp,
                    &gate_index,
                    &paths,
                    b,
                    t_sup,
                    &delays,
                )?;
                let done = t == b;
                best = Some((t, parts));
                if done {
                    break; // cannot improve within this interval
                }
            }
        }
    }
    Ok(best)
}

/// Enumerates the difference cubes of `projected` in the canonical
/// (variable-identity) order, regardless of how the manager is currently
/// ordered.
///
/// Cube enumeration walks the ROBDD top-down, so the cube *sequence*
/// follows the current variable order — and the sequence decides LP
/// tie-breaks, the early exit at `t = b`, and which cubes a `max_cubes`
/// overflow truncates. To keep reports byte-identical under every
/// [`ReorderPolicy`](tbf_bdd::ReorderPolicy), a reordered manager's
/// function is first rebuilt in an identity-ordered scratch manager
/// (canonicity makes the rebuilt ROBDD — hence the cube sequence —
/// exactly the one an unreordered run enumerates).
pub(crate) fn canonical_cubes(
    cx: &mut ConeContext,
    projected: Bdd,
    b: Time,
) -> Result<Vec<Cube>, DelayError> {
    let too_many = |limit: usize| DelayError::TooManyCubes {
        limit,
        at_breakpoint: b,
        bounds: (Time::ZERO, b),
    };
    let max_cubes = cx.budget.max_cubes();
    let mut cubes = Vec::new();
    let push = |cubes: &mut Vec<Cube>, cube: Cube| -> Result<(), DelayError> {
        if cubes.len() >= max_cubes || fault::trip(Site::CubeEnum) {
            return Err(too_many(max_cubes));
        }
        cubes.push(cube);
        Ok(())
    };
    if cx.manager.is_identity_order() {
        for cube in cx.manager.cubes(projected) {
            push(&mut cubes, cube)?;
        }
    } else {
        let mut scratch = BddManager::new();
        // The scratch rebuild is real BDD work; count it with the rest.
        #[cfg(feature = "obs")]
        scratch.set_counters(Arc::clone(cx.budget.counters()));
        let var_map: Vec<Var> = (0..cx.manager.var_count())
            .map(|_| scratch.new_var())
            .collect();
        let moved = transfer(
            &mut cx.manager,
            projected,
            &mut scratch,
            &var_map,
            cx.budget.max_bdd_nodes(),
        )
        .map_err(|e| DelayError::BddTooLarge {
            limit: e.limit,
            at_breakpoint: b,
            bounds: (Time::ZERO, b),
        })?;
        for cube in scratch.cubes(moved) {
            push(&mut cubes, cube)?;
        }
    }
    Ok(cubes)
}

/// Derives a concrete sensitizing scenario for a winning cube.
///
/// The delay assignment comes from a strictly interior LP point near the
/// supremum, so every resolvent has a definite arrived/not-arrived value;
/// restricting the XOR BDD by that *total* valuation leaves a function of
/// the input variables whose any satisfying assignment genuinely realizes
/// the late transition (an input picked against a partial valuation could
/// silently depend on resolvent outcomes the delays contradict).
#[allow(clippy::too_many_arguments)]
fn extract_witness(
    netlist: &Netlist,
    cx: &mut ConeContext,
    query: &QueryOut,
    xor: tbf_bdd::Bdd,
    lp: &PathLp,
    gate_index: &HashMap<NodeId, usize>,
    paths: &[Vec<usize>],
    b: Time,
    t_sup: i64,
    sup_delays: &[i64],
) -> Result<WitnessParts, DelayError> {
    // Prefer an interior point one grid unit below the supremum; fall
    // back to the supremum vertex when the interior solve fails (the
    // scenario then sits on a valuation boundary and replays a hair
    // early, which the caller documents).
    let interior = if fault::trip(Site::LpInterior) {
        None
    } else {
        lp.solve_interior(t_sup - 1)
    };
    let (t_w, d_w) = interior.unwrap_or((t_sup, sup_delays.to_vec()));
    // Total resolvent valuation induced by (t_w, d_w).
    let mut g = xor;
    for (r, gates) in query.resolvents.iter().zip(paths) {
        let sum: i64 = gates.iter().map(|&gi| d_w[gi]).sum();
        let arrived = t_w > sum;
        g = cx.manager.restrict(g, r.var, arrived);
    }
    if g.is_false() {
        // Grid rounding pushed the point onto a boundary; retreat to the
        // partial (cube-only) restriction — still a valid input pair for
        // a nearby delay assignment.
        g = xor;
    }
    if fault::trip(Site::XorSat) {
        g = tbf_bdd::Bdd::FALSE;
    }
    // The lexicographically minimal satisfying cube (in variable-identity
    // order) is order-independent, so the witness stays byte-identical
    // under any reorder policy.
    let sat = cx.manager.min_sat_cube(g).ok_or(DelayError::Internal {
        detail: "witness extraction: xor BDD unsatisfiable in a feasible interval",
        at_breakpoint: b,
        bounds: (Time::ZERO, b),
    })?;
    let n_in = netlist.inputs().len();
    let mut before = vec![false; n_in];
    let mut after = vec![false; n_in];
    for pos in 0..n_in {
        if let Some(v) = sat.phase(cx.leaf_var(pos, true)) {
            after[pos] = v;
        }
        if let Some(v) = sat.phase(cx.leaf_var(pos, false)) {
            before[pos] = v;
        }
    }
    let mut delays: Vec<Time> = netlist.nodes().map(|(_, node)| node.delay().max).collect();
    for (&node, &idx) in gate_index {
        delays[node.index()] = Time::from_scaled(d_w[idx]);
    }
    Ok((before, after, delays))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3};
    use tbf_logic::generators::trees::parity_tree;
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn opts() -> DelayOptions {
        DelayOptions::default()
    }

    #[test]
    fn single_buffer_fixed() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let g = b
            .gate(GateKind::Buf, "g", vec![x], DelayBounds::fixed(t(5)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let r = two_vector_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, t(5));
        assert_eq!(r.topological, t(5));
        assert_eq!(r.false_path_slack(), Time::ZERO);
    }

    #[test]
    fn single_buffer_bounded() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let g = b
            .gate(GateKind::Buf, "g", vec![x], DelayBounds::new(t(3), t(5)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let r = two_vector_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, t(5));
    }

    #[test]
    fn example3_delay_is_4() {
        let r = two_vector_delay(&figure4_example3(), &opts()).unwrap();
        assert_eq!(r.delay, t(4));
        assert_eq!(r.topological, t(4));
    }

    #[test]
    fn bypass_adder_delay_is_24() {
        let r = two_vector_delay(&paper_bypass_adder(), &opts()).unwrap();
        assert_eq!(r.topological, t(40));
        assert_eq!(r.delay, t(24), "the ripple-through path is false");
        assert_eq!(r.false_path_slack(), t(16));
    }

    #[test]
    fn parity_tree_has_no_false_paths() {
        let n = parity_tree(8, DelayBounds::new(Time::from_units(0.9), t(1)));
        let r = two_vector_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, r.topological);
        assert_eq!(r.delay, t(3));
    }

    #[test]
    fn figure1_reports_shorter_exact_delay_for_sensitizable_paths() {
        // The AND output: longest path is P1 (buffer [4,5] + AND 0).
        // P1's last transition is realizable (e.g. x2/x3 held
        // non-controlling), so the exact delay equals the topological 5.
        let r = two_vector_delay(&figure1_three_paths(), &opts()).unwrap();
        assert_eq!(r.topological, t(5));
        assert_eq!(r.delay, t(5));
    }

    #[test]
    fn constant_output_never_transitions() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let inv = b
            .gate(GateKind::Not, "inv", vec![x], DelayBounds::fixed(t(1)))
            .unwrap();
        let g = b
            .gate(GateKind::And, "g", vec![x, inv], DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        // x·x̄ = 0 statically; with fixed equal path delays the output
        // can still glitch? Paths: x→g [1,1] and x→inv→g [2,2]: different
        // lengths → a real glitch exists; last transition at 2.
        let r = two_vector_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, t(2));
    }

    #[test]
    fn truly_dead_output_has_zero_delay() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let c = b
            .gate(GateKind::Const0, "c", vec![], DelayBounds::ZERO)
            .unwrap();
        let g = b
            .gate(GateKind::And, "g", vec![x, c], DelayBounds::fixed(t(3)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let r = two_vector_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, Time::ZERO);
    }

    #[test]
    fn multi_output_takes_the_max() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let fast = b
            .gate(GateKind::Buf, "fast", vec![x], DelayBounds::fixed(t(2)))
            .unwrap();
        let slow = b
            .gate(GateKind::Not, "slow", vec![x], DelayBounds::fixed(t(7)))
            .unwrap();
        b.output("a", fast);
        b.output("b", slow);
        let n = b.finish().unwrap();
        let r = two_vector_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, t(7));
        assert_eq!(r.output_delay("a"), Some(t(2)));
        assert_eq!(r.output_delay("b"), Some(t(7)));
    }

    #[test]
    fn zero_time_budget_times_out_with_bounds() {
        let opts = DelayOptions {
            time_budget: Some(std::time::Duration::ZERO),
            ..DelayOptions::default()
        };
        let err = two_vector_delay(&paper_bypass_adder(), &opts).unwrap_err();
        match err {
            DelayError::TimedOut { bounds, .. } => {
                assert!(bounds.0 <= bounds.1);
                assert!(bounds.1 <= t(40));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn generous_time_budget_changes_nothing() {
        let opts = DelayOptions {
            time_budget: Some(std::time::Duration::from_secs(600)),
            ..DelayOptions::default()
        };
        let r = two_vector_delay(&paper_bypass_adder(), &opts).unwrap();
        assert_eq!(r.delay, t(24));
    }

    #[test]
    fn cancelled_token_yields_cancelled_error() {
        use crate::budget::CancelToken;
        let token = CancelToken::new();
        token.cancel();
        let budget = AnalysisBudget::from_options(&opts())
            .with_token(token)
            .shared();
        let err = two_vector_delay_budgeted(&paper_bypass_adder(), budget).unwrap_err();
        assert!(
            matches!(err, DelayError::Cancelled { .. }),
            "unexpected {err:?}"
        );
    }

    #[test]
    fn path_cap_produces_typed_error_with_bounds() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let mut bufs = Vec::new();
        for i in 0..10 {
            bufs.push(
                b.gate(
                    GateKind::Buf,
                    &format!("b{i}"),
                    vec![x],
                    DelayBounds::new(t(1), t(3)),
                )
                .unwrap(),
            );
        }
        let g = b
            .gate(GateKind::Xor, "g", bufs, DelayBounds::fixed(t(1)))
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let tight = DelayOptions {
            max_straddling_paths: 3,
            ..DelayOptions::default()
        };
        let err = two_vector_delay(&n, &tight).unwrap_err();
        match err {
            DelayError::TooManyPaths { limit, bounds, .. } => {
                assert_eq!(limit, 3);
                assert!(bounds.1 <= t(4));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
