//! Typed failures of the exact-delay engines.

use std::fmt;

use tbf_logic::Time;

/// Why an exact delay could not be computed.
///
/// The engines never silently truncate: resource caps surface as errors
/// carrying the best bounds established before the cap was hit, so the
/// caller still learns something sound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DelayError {
    /// More simultaneously delay-dependent paths than
    /// [`DelayOptions::max_straddling_paths`](crate::DelayOptions)
    /// at some breakpoint.
    TooManyPaths {
        /// The configured cap.
        limit: usize,
        /// The breakpoint being examined when the cap was hit.
        at_breakpoint: Time,
        /// Sound bounds on the delay established so far:
        /// `(lower, upper)` — the true delay lies within.
        bounds: (Time, Time),
    },
    /// The BDD manager exceeded
    /// [`DelayOptions::max_bdd_nodes`](crate::DelayOptions).
    BddTooLarge {
        /// The configured cap.
        limit: usize,
        /// The breakpoint being examined when the cap was hit.
        at_breakpoint: Time,
        /// Sound bounds on the delay established so far.
        bounds: (Time, Time),
    },
    /// The XOR BDD produced more cubes than
    /// [`DelayOptions::max_cubes`](crate::DelayOptions).
    TooManyCubes {
        /// The configured cap.
        limit: usize,
        /// The breakpoint being examined when the cap was hit.
        at_breakpoint: Time,
        /// Sound bounds on the delay established so far.
        bounds: (Time, Time),
    },
    /// The configured time budget ran out
    /// ([`DelayOptions::time_budget`](crate::DelayOptions)).
    TimedOut {
        /// Milliseconds spent before giving up.
        elapsed_ms: u64,
        /// The breakpoint being examined when the budget ran out.
        at_breakpoint: Time,
        /// Sound bounds on the delay established so far.
        bounds: (Time, Time),
    },
    /// A [`CancelToken`](crate::CancelToken) fired mid-analysis.
    Cancelled {
        /// The breakpoint being examined when cancellation was observed.
        at_breakpoint: Time,
        /// Sound bounds on the delay established so far.
        bounds: (Time, Time),
    },
    /// An internal invariant failed. Never expected on well-formed
    /// netlists; surfaced as a typed error (instead of a panic) so one
    /// bad cone cannot take down a whole-circuit analysis.
    Internal {
        /// What was violated.
        detail: &'static str,
        /// The breakpoint being examined when the invariant failed.
        at_breakpoint: Time,
        /// Sound bounds on the delay established so far.
        bounds: (Time, Time),
    },
    /// A netlist error surfaced during analysis (e.g. no outputs).
    Netlist(tbf_logic::NetlistError),
}

impl DelayError {
    /// Replaces the carried bounds with circuit-level ones (the per-output
    /// search only knows its own cone; the engines widen with the other
    /// outputs' results before surfacing the error).
    pub(crate) fn with_bounds(mut self, lo: Time, hi: Time) -> DelayError {
        match &mut self {
            DelayError::TooManyPaths { bounds, .. }
            | DelayError::BddTooLarge { bounds, .. }
            | DelayError::TooManyCubes { bounds, .. }
            | DelayError::TimedOut { bounds, .. }
            | DelayError::Cancelled { bounds, .. }
            | DelayError::Internal { bounds, .. } => *bounds = (lo, hi),
            DelayError::Netlist(_) => {}
        }
        self
    }

    /// The sound `(lower, upper)` delay bounds established before the
    /// failure, when the failure was a resource cap.
    pub fn bounds(&self) -> Option<(Time, Time)> {
        match self {
            DelayError::TooManyPaths { bounds, .. }
            | DelayError::BddTooLarge { bounds, .. }
            | DelayError::TooManyCubes { bounds, .. }
            | DelayError::TimedOut { bounds, .. }
            | DelayError::Cancelled { bounds, .. }
            | DelayError::Internal { bounds, .. } => Some(*bounds),
            DelayError::Netlist(_) => None,
        }
    }
}

impl fmt::Display for DelayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DelayError::TooManyPaths {
                limit,
                at_breakpoint,
                bounds,
            } => write!(
                f,
                "more than {limit} delay-dependent paths at breakpoint {at_breakpoint}; \
                 delay is within [{}, {}]",
                bounds.0, bounds.1
            ),
            DelayError::BddTooLarge {
                limit,
                at_breakpoint,
                bounds,
            } => write!(
                f,
                "BDD grew past {limit} nodes at breakpoint {at_breakpoint}; \
                 delay is within [{}, {}]",
                bounds.0, bounds.1
            ),
            DelayError::TooManyCubes {
                limit,
                at_breakpoint,
                bounds,
            } => write!(
                f,
                "XOR BDD produced more than {limit} cubes at breakpoint {at_breakpoint}; \
                 delay is within [{}, {}]",
                bounds.0, bounds.1
            ),
            DelayError::TimedOut {
                elapsed_ms,
                at_breakpoint,
                bounds,
            } => write!(
                f,
                "time budget exhausted after {elapsed_ms} ms at breakpoint {at_breakpoint}; \
                 delay is within [{}, {}]",
                bounds.0, bounds.1
            ),
            DelayError::Cancelled {
                at_breakpoint,
                bounds,
            } => write!(
                f,
                "analysis cancelled at breakpoint {at_breakpoint}; \
                 delay is within [{}, {}]",
                bounds.0, bounds.1
            ),
            DelayError::Internal {
                detail,
                at_breakpoint,
                bounds,
            } => write!(
                f,
                "internal invariant violated ({detail}) at breakpoint {at_breakpoint}; \
                 delay is within [{}, {}]",
                bounds.0, bounds.1
            ),
            DelayError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for DelayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DelayError::Netlist(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tbf_logic::NetlistError> for DelayError {
    fn from(e: tbf_logic::NetlistError) -> Self {
        DelayError::Netlist(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_bounds() {
        let e = DelayError::TooManyPaths {
            limit: 10,
            at_breakpoint: Time::from_int(5),
            bounds: (Time::from_int(3), Time::from_int(5)),
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.contains("[3, 5]"));
        assert_eq!(e.bounds(), Some((Time::from_int(3), Time::from_int(5))));
    }

    #[test]
    fn cancelled_and_internal_carry_bounds() {
        let c = DelayError::Cancelled {
            at_breakpoint: Time::from_int(7),
            bounds: (Time::ZERO, Time::from_int(7)),
        };
        assert!(c.to_string().contains("cancelled"));
        assert_eq!(c.bounds(), Some((Time::ZERO, Time::from_int(7))));
        let i = DelayError::Internal {
            detail: "xor non-false",
            at_breakpoint: Time::from_int(3),
            bounds: (Time::ZERO, Time::from_int(3)),
        };
        assert!(i.to_string().contains("xor non-false"));
        assert!(i.bounds().is_some());
    }

    #[test]
    fn netlist_error_wraps() {
        let e: DelayError = tbf_logic::NetlistError::NoOutputs.into();
        assert!(e.to_string().contains("no primary"));
        assert!(e.bounds().is_none());
        assert!(std::error::Error::source(&e).is_some());
    }
}
