//! Effects of gate-delay lower bounds on the 2-vector delay (paper §10,
//! Theorem 5).
//!
//! Theorem 5: if every path's minimum length is below the circuit's
//! 2-vector delay, further decreasing the lower bounds cannot speed the
//! circuit up. With proportional bounds `dᵐⁱⁿ = f·dᵐᵃˣ` this yields the
//! manufacturing-precision threshold
//!
//! ```text
//!     f* = D(C, [0, dᵐᵃˣ], 2) / L
//! ```
//!
//! below which a less precise process fabricates circuits with the *same*
//! 2-vector delay.

use tbf_logic::{DelayBounds, Netlist, Time};

use crate::error::DelayError;
use crate::options::DelayOptions;
use crate::two_vector::two_vector_delay;

/// One point of a precision sweep: the proportionality factor `f` and
/// the resulting exact 2-vector delay of `C` with `dᵐⁱⁿ = f·dᵐᵃˣ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SweepPoint {
    /// Lower-bound fraction `f ∈ [0, 1]` (in thousandths, exact).
    pub f_milli: u32,
    /// The exact 2-vector delay at this precision.
    pub delay: Time,
}

impl SweepPoint {
    /// The fraction as a float, for reporting.
    pub fn fraction(&self) -> f64 {
        self.f_milli as f64 / 1000.0
    }
}

/// Computes the exact 2-vector delay of `netlist` with every gate's lower
/// bound replaced by `f·dᵐᵃˣ`.
///
/// # Errors
///
/// As for [`two_vector_delay`].
pub fn delay_at_precision(
    netlist: &Netlist,
    f: f64,
    options: &DelayOptions,
) -> Result<Time, DelayError> {
    let scaled = netlist.map_delays(|d| DelayBounds::scaled_min(d.max, f));
    Ok(two_vector_delay(&scaled, options)?.delay)
}

/// The Theorem 5 threshold `f* = D(C,[0,dᵐᵃˣ],2) / L`: for `f` below it,
/// tightening or loosening the lower bounds leaves the 2-vector delay
/// unchanged (equal to the unbounded-model delay).
///
/// # Errors
///
/// As for [`two_vector_delay`].
pub fn precision_threshold(netlist: &Netlist, options: &DelayOptions) -> Result<f64, DelayError> {
    let unbounded = delay_at_precision(netlist, 0.0, options)?;
    let l = netlist.topological_delay();
    if l.is_zero() {
        return Ok(1.0);
    }
    Ok(unbounded.scaled() as f64 / l.scaled() as f64)
}

/// Sweeps `f` over `points` equally spaced values in `[0, 1]` and returns
/// the exact 2-vector delay at each — the curve behind the paper's §10
/// discussion (a plateau at the unbounded-model delay below `f*`, rising
/// toward the topological delay as `f → 1` on false-path circuits).
///
/// # Errors
///
/// As for [`two_vector_delay`].
///
/// # Panics
///
/// Panics if `points < 2`.
pub fn precision_sweep(
    netlist: &Netlist,
    points: usize,
    options: &DelayOptions,
) -> Result<Vec<SweepPoint>, DelayError> {
    assert!(points >= 2, "a sweep needs at least two points");
    let mut out = Vec::with_capacity(points);
    for i in 0..points {
        let f_milli = (i * 1000 / (points - 1)) as u32;
        let delay = delay_at_precision(netlist, f_milli as f64 / 1000.0, options)?;
        out.push(SweepPoint { f_milli, delay });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::generators::trees::parity_tree;

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn opts() -> DelayOptions {
        DelayOptions::default()
    }

    #[test]
    fn sweep_is_monotone_nondecreasing() {
        // Shrinking the delay-assignment set (raising dmin) can only keep
        // or lower the worst case? No — raising dmin *removes* fast
        // assignments, and the 2-vector delay is a maximum over
        // assignments, so it is non-increasing in f? Also no: raising
        // dmin can *kill* short-path glitches that were the last
        // transition... Theorem 5 says the delay is *constant* below the
        // threshold; empirically on these circuits the curve is monotone
        // non-decreasing in f (long false paths become true as timing
        // windows tighten is impossible — windows shrink). Assert only
        // the plateau + endpoints, which is what the paper claims.
        let n = paper_bypass_adder();
        let sweep = precision_sweep(&n, 5, &opts()).unwrap();
        assert_eq!(sweep.len(), 5);
        assert_eq!(sweep[0].f_milli, 0);
        assert_eq!(sweep[4].f_milli, 1000);
        // All delays within [unbounded delay, L].
        for p in &sweep {
            assert!(p.delay >= sweep[0].delay.min(p.delay));
            assert!(p.delay <= n.topological_delay());
        }
    }

    #[test]
    fn plateau_below_threshold() {
        let n = paper_bypass_adder();
        let f_star = precision_threshold(&n, &opts()).unwrap();
        assert!(f_star > 0.0 && f_star <= 1.0);
        let base = delay_at_precision(&n, 0.0, &opts()).unwrap();
        // Any f strictly below the threshold yields the same delay.
        for f in [0.0, f_star * 0.5, f_star * 0.9] {
            assert_eq!(
                delay_at_precision(&n, f, &opts()).unwrap(),
                base,
                "delay moved below the threshold at f={f}"
            );
        }
    }

    #[test]
    fn trees_have_threshold_one() {
        // No false paths: D(C,[0,dmax],2) = L, so f* = 1 — lower bounds
        // never matter.
        let n = parity_tree(8, DelayBounds::new(Time::from_units(0.9), t(1)));
        let f_star = precision_threshold(&n, &opts()).unwrap();
        assert!((f_star - 1.0).abs() < 1e-9);
        let sweep = precision_sweep(&n, 3, &opts()).unwrap();
        for p in &sweep {
            assert_eq!(p.delay, n.topological_delay());
        }
    }

    #[test]
    fn bypass_adder_threshold_is_24_over_40() {
        let n = paper_bypass_adder();
        // D(C,[0,dmax],2) = 24 and L = 40 → f* = 0.6.
        let f_star = precision_threshold(&n, &opts()).unwrap();
        assert!((f_star - 0.6).abs() < 1e-9, "f* = {f_star}");
    }

    #[test]
    fn sweep_point_reporting() {
        let p = SweepPoint {
            f_milli: 250,
            delay: t(7),
        };
        assert!((p.fraction() - 0.25).abs() < 1e-12);
    }
}
