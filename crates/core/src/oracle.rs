//! An independent floating-delay oracle by ternary (X-valued)
//! simulation.
//!
//! Classic floating-mode analysis (McGeer–Brayton, Chen–Du): under the
//! unbounded gate delay model `[0, dᵐᵃˣ]` and a single applied vector
//! `v`, with all node values unknown beforehand, a gate's output becomes
//! *determined* at the earliest instant the already-settled subset of its
//! fanins forces its value regardless of the unsettled ones; the gate's
//! settle time is its maximum delay past that instant:
//!
//! ```text
//! T(input) = 0
//! T(g)     = dᵐᵃˣ_g + min { τ : fanins settled by τ force g under v }
//! ```
//!
//! The floating delay of the circuit is the maximum settle time over all
//! input vectors — an **exponential** enumeration, implemented here as a
//! brute-force oracle to cross-validate the symbolic
//! [`floating_delay`](crate::floating_delay) engine on small circuits
//! (see `crates/core/tests/props.rs`).

use tbf_logic::{GateKind, Netlist, Time};

/// Ternary value for X-propagation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Ternary {
    False,
    True,
    Unknown,
}

impl Ternary {
    fn from_bool(b: bool) -> Ternary {
        if b {
            Ternary::True
        } else {
            Ternary::False
        }
    }

    fn is_known(self) -> bool {
        self != Ternary::Unknown
    }
}

/// Evaluates a gate over ternary inputs: returns a binary value only if
/// every completion of the unknowns agrees. `groups[i]` identifies the
/// *node* behind pin `i`: pins tied to the same unsettled node share one
/// unknown (a node holds a single value, even an arbitrary one — the
/// distinction behind Example 5's correlations).
fn eval_ternary(kind: GateKind, inputs: &[Ternary], groups: &[usize]) -> Ternary {
    debug_assert_eq!(inputs.len(), groups.len());
    let mut unknown_groups: Vec<usize> = inputs
        .iter()
        .zip(groups)
        .filter(|(v, _)| !v.is_known())
        .map(|(_, &g)| g)
        .collect();
    unknown_groups.sort_unstable();
    unknown_groups.dedup();
    if unknown_groups.is_empty() {
        let concrete: Vec<bool> = inputs.iter().map(|&v| v == Ternary::True).collect();
        return Ternary::from_bool(kind.eval(&concrete));
    }
    // Small counts: try both phases of each unknown node exhaustively.
    if unknown_groups.len() <= 16 {
        let mut first: Option<bool> = None;
        for mask in 0..(1u32 << unknown_groups.len()) {
            let concrete: Vec<bool> = inputs
                .iter()
                .zip(groups)
                .map(|(&v, &g)| match v {
                    Ternary::True => true,
                    Ternary::False => false,
                    Ternary::Unknown => {
                        let j = unknown_groups.binary_search(&g).expect("group is unknown");
                        (mask >> j) & 1 == 1
                    }
                })
                .collect();
            let out = kind.eval(&concrete);
            match first {
                None => first = Some(out),
                Some(f) if f != out => return Ternary::Unknown,
                Some(_) => {}
            }
        }
        Ternary::from_bool(first.expect("at least one completion"))
    } else {
        Ternary::Unknown
    }
}

/// Floating settle time of every node for one input vector (the inner
/// recursion above), plus the final values.
fn settle_times(netlist: &Netlist, vector: &[bool]) -> Vec<Time> {
    let mut settle = vec![Time::MAX; netlist.len()];
    let final_values = netlist.evaluate(vector);
    for (id, node) in netlist.nodes() {
        let i = id.index();
        settle[i] = match node.kind() {
            GateKind::Input => Time::ZERO,
            GateKind::Const0 | GateKind::Const1 => Time::ZERO,
            kind => {
                // Candidate instants: the settle times of the fanins, in
                // ascending order (plus 0 for "already forced" covers
                // constant-output gates with no settled fanin — cannot
                // happen for nontrivial kinds, but harmless).
                let fanins = node.fanins();
                let mut taus: Vec<Time> = fanins.iter().map(|f| settle[f.index()]).collect();
                taus.sort_unstable();
                taus.dedup();
                let groups: Vec<usize> = fanins.iter().map(|f| f.index()).collect();
                let mut determined_at = None;
                for &tau in std::iter::once(&Time::ZERO).chain(taus.iter()) {
                    let ternary: Vec<Ternary> = fanins
                        .iter()
                        .map(|f| {
                            if settle[f.index()] <= tau {
                                Ternary::from_bool(final_values[f.index()])
                            } else {
                                Ternary::Unknown
                            }
                        })
                        .collect();
                    if eval_ternary(kind, &ternary, &groups).is_known() {
                        determined_at = Some(tau);
                        break;
                    }
                }
                let tau = determined_at.expect("all fanins settled forces the gate");
                tau + node.delay().max
            }
        };
    }
    settle
}

/// Hard input-count cap for [`floating_delay_oracle`]: past this the
/// `2^n` enumeration is no longer an oracle, just a heater.
pub const ORACLE_INPUT_CAP: usize = 24;

/// The typed refusal of [`floating_delay_oracle`] on circuits whose
/// input count makes the `2^n` enumeration intractable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OracleTooLarge {
    /// The circuit's primary input count.
    pub inputs: usize,
    /// The cap it exceeded ([`ORACLE_INPUT_CAP`]).
    pub cap: usize,
}

impl std::fmt::Display for OracleTooLarge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "oracle is exponential; {} inputs exceeds the cap of {}",
            self.inputs, self.cap
        )
    }
}

impl std::error::Error for OracleTooLarge {}

/// The exact floating delay by brute force: maximum settle time over all
/// `2^n` input vectors under the unbounded gate delay model.
///
/// Exponential in the input count — a ground-truth oracle for testing
/// the symbolic engine, not a production algorithm.
///
/// # Errors
///
/// Returns [`OracleTooLarge`] when the netlist has more than
/// [`ORACLE_INPUT_CAP`] inputs, so harnesses can skip (rather than
/// crash on) circuits the oracle cannot check.
pub fn floating_delay_oracle(netlist: &Netlist) -> Result<Time, OracleTooLarge> {
    let n = netlist.inputs().len();
    if n > ORACLE_INPUT_CAP {
        return Err(OracleTooLarge {
            inputs: n,
            cap: ORACLE_INPUT_CAP,
        });
    }
    let mut worst = Time::ZERO;
    for bits in 0..(1u64 << n) {
        let vector: Vec<bool> = (0..n).map(|i| (bits >> i) & 1 == 1).collect();
        let settle = settle_times(netlist, &vector);
        for &(_, out) in netlist.outputs() {
            // An output that is already forced with no dependence on the
            // vector still "settles" at its determination time; the
            // floating delay counts the worst over outputs.
            worst = worst.max(settle[out.index()]);
        }
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{floating_delay, DelayOptions};
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::generators::figures::{figure4_example3, figure6_glitch};
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    #[test]
    fn ternary_evaluation() {
        use Ternary::*;
        let g2 = [0usize, 1];
        let g3 = [0usize, 1, 2];
        // AND with a controlling 0 is determined despite unknowns.
        assert_eq!(eval_ternary(GateKind::And, &[False, Unknown], &g2), False);
        assert_eq!(eval_ternary(GateKind::And, &[True, Unknown], &g2), Unknown);
        assert_eq!(eval_ternary(GateKind::Or, &[True, Unknown], &g2), True);
        assert_eq!(eval_ternary(GateKind::Xor, &[True, Unknown], &g2), Unknown);
        assert_eq!(eval_ternary(GateKind::Not, &[Unknown], &[0]), Unknown);
        assert_eq!(eval_ternary(GateKind::Not, &[False], &[0]), True);
        // MAJ determined by two agreeing knowns.
        assert_eq!(
            eval_ternary(GateKind::Maj, &[True, True, Unknown], &g3),
            True
        );
        assert_eq!(
            eval_ternary(GateKind::Maj, &[True, False, Unknown], &g3),
            Unknown
        );
        // MUX with both data equal is determined despite unknown select.
        assert_eq!(
            eval_ternary(GateKind::Mux, &[Unknown, True, True], &g3),
            True
        );
        assert_eq!(
            eval_ternary(GateKind::Mux, &[Unknown, True, False], &g3),
            Unknown
        );
        // Same-node pins share one unknown: XOR(a, a) = 0, AND(a, a) = a.
        assert_eq!(
            eval_ternary(GateKind::Xor, &[Unknown, Unknown], &[7, 7]),
            False
        );
        assert_eq!(
            eval_ternary(GateKind::And, &[Unknown, Unknown], &[7, 7]),
            Unknown
        );
        // Distinct nodes stay independent: XOR(a, b) unknown.
        assert_eq!(
            eval_ternary(GateKind::Xor, &[Unknown, Unknown], &[7, 8]),
            Unknown
        );
    }

    #[test]
    fn chain_settles_at_topological() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let g1 = b
            .gate(GateKind::Not, "g1", vec![x], DelayBounds::unbounded(t(2)))
            .unwrap();
        let g2 = b
            .gate(GateKind::Buf, "g2", vec![g1], DelayBounds::unbounded(t(3)))
            .unwrap();
        b.output("f", g2);
        let n = b.finish().unwrap();
        assert_eq!(floating_delay_oracle(&n).unwrap(), t(5));
    }

    #[test]
    fn controlling_value_shortens_settling() {
        // AND(slow-buffer(x), y): with y = 0 the output settles at the
        // AND's own delay; with y = 1 it waits for the slow side.
        let mut b = Netlist::builder();
        let x = b.input("x");
        let y = b.input("y");
        let slow = b
            .gate(
                GateKind::Buf,
                "slow",
                vec![x],
                DelayBounds::unbounded(t(10)),
            )
            .unwrap();
        let g = b
            .gate(
                GateKind::And,
                "g",
                vec![slow, y],
                DelayBounds::unbounded(t(1)),
            )
            .unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        // Worst vector keeps y non-controlling: 10 + 1.
        assert_eq!(floating_delay_oracle(&n).unwrap(), t(11));
    }

    #[test]
    fn figure6_oracle_is_2() {
        // Fig. 6's floating delay is 2 (Theorem 4: whatever the bounds).
        assert_eq!(floating_delay_oracle(&figure6_glitch()).unwrap(), t(2));
    }

    #[test]
    fn oracle_matches_engine_on_figure4() {
        let n = figure4_example3();
        let engine = floating_delay(&n, &DelayOptions::default()).unwrap().delay;
        assert_eq!(floating_delay_oracle(&n).unwrap(), engine);
    }

    #[test]
    fn oracle_matches_engine_on_bypass_adder() {
        let n = paper_bypass_adder();
        let engine = floating_delay(&n, &DelayOptions::default()).unwrap().delay;
        assert_eq!(floating_delay_oracle(&n).unwrap(), engine);
    }

    #[test]
    fn too_many_inputs_is_a_typed_error() {
        use tbf_logic::generators::trees::parity_tree;
        let n = parity_tree(25, DelayBounds::unbounded(t(1)));
        let err = floating_delay_oracle(&n).unwrap_err();
        assert_eq!(
            err,
            OracleTooLarge {
                inputs: 25,
                cap: ORACLE_INPUT_CAP
            }
        );
        assert!(err.to_string().contains("exponential"), "{err}");
        // It is a std error, so harnesses can `?` it.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("25"));
    }

    #[test]
    fn oracle_cap_boundary_is_inclusive() {
        use tbf_logic::generators::trees::parity_tree;
        // Exactly at the cap the oracle must still run (on a cheap
        // netlist shape this stays fast: the bottleneck is 2^n vectors
        // times a linear sweep, so keep n small here and only check the
        // *refusal* boundary arithmetic).
        let err =
            floating_delay_oracle(&parity_tree(25, DelayBounds::unbounded(t(1)))).unwrap_err();
        assert_eq!(err.cap, 24);
        assert!(floating_delay_oracle(&parity_tree(4, DelayBounds::unbounded(t(1)))).is_ok());
    }

    #[test]
    fn oracle_cross_checks_c17_with_reordering_on() {
        // End-to-end: the ISCAS-85 c17 under MCNC-like delays, run
        // through the symbolic floating-delay engine with manual
        // reordering enabled, cross-checked against the brute-force
        // ternary oracle. c17 has 5 inputs, so the oracle is exact and
        // cheap.
        let n = tbf_logic::parsers::bench::c17(tbf_logic::parsers::mcnc_like_delays);
        let opts = DelayOptions {
            reorder: tbf_bdd::ReorderPolicy::Manual,
            ..DelayOptions::default()
        };
        let engine = floating_delay(&n, &opts).unwrap().delay;
        assert_eq!(floating_delay_oracle(&n).unwrap(), engine);
        // And the report is identical to the unreordered run.
        let plain = floating_delay(&n, &DelayOptions::default()).unwrap();
        let reordered = floating_delay(&n, &opts).unwrap();
        assert_eq!(plain.delay, reordered.delay);
        assert_eq!(plain.outputs, reordered.outputs);
    }
}
