//! The exact delay-by-sequences-of-vectors engine (paper §8–§9).

use std::sync::Arc;

use tbf_logic::{Netlist, NodeId, Time};

use crate::budget::AnalysisBudget;
use crate::error::DelayError;
use crate::model::{delay_with_model, DelayModel, Hit};
use crate::network::ConeContext;
use crate::options::DelayOptions;
use crate::report::{DelayReport, SearchStats};

/// Computes the exact delay by sequences of vectors
/// `D(C, [dᵐⁱⁿ,dᵐᵃˣ], ω⁻)`: the latest possible arrival time of the last
/// output transition when an arbitrary train of input vectors ends with a
/// final vector at `t = 0`.
///
/// This is the paper's §9.4 algorithm: descend through the breakpoints
/// `{Kᵢᵐᵃˣ}`; at each query point replace settled TBF variables
/// (`kᵐᵃˣ < b`) by `x(0⁺)` and unsettled ones by fresh free Boolean
/// variables (distinct per distinct TBF variable, per the §9.1 worst-case
/// delay assignment); the first breakpoint where the TBF differs from the
/// static function is the exact delay. No linear programming is needed,
/// and by Theorem 3 the result is invariant under the gate-delay lower
/// bounds.
///
/// For circuits in which every gate has variable delay and no two paths
/// share a gate set, this equals the **floating** and **viability**
/// delays (Theorems 1–2); see [`floating_delay`].
///
/// # Errors
///
/// Returns a [`DelayError`] carrying sound bounds when a resource cap is
/// exceeded.
///
/// # Example
///
/// ```
/// use tbf_core::{sequences_delay, DelayOptions};
/// use tbf_logic::generators::figures::figure6_glitch;
/// use tbf_logic::{DelayBounds, Time};
///
/// // Figure 6 with fixed delays: the output never moves — delay 0 —
/// // while the floating delay (unbounded model) would be 2.
/// let fixed = figure6_glitch();
/// let r = sequences_delay(&fixed, &DelayOptions::default())?;
/// assert_eq!(r.delay, Time::ZERO);
///
/// // With variable delays the sequences delay rises to the floating
/// // delay (Theorem 2).
/// let variable = fixed.map_delays(|d| DelayBounds::new(d.max - Time::EPSILON, d.max));
/// let r = sequences_delay(&variable, &DelayOptions::default())?;
/// assert_eq!(r.delay, Time::from_int(2));
/// # Ok::<(), tbf_core::DelayError>(())
/// ```
pub fn sequences_delay(
    netlist: &Netlist,
    options: &DelayOptions,
) -> Result<DelayReport, DelayError> {
    sequences_delay_budgeted(netlist, AnalysisBudget::from_options(options).shared())
}

/// [`sequences_delay`] against a caller-supplied budget.
pub(crate) fn sequences_delay_budgeted(
    netlist: &Netlist,
    budget: Arc<AnalysisBudget>,
) -> Result<DelayReport, DelayError> {
    delay_with_model(netlist, budget, &mut Sequences)
}

/// The floating delay of the circuit under the unbounded gate delay model
/// `[0, dᵐᵃˣ]`.
///
/// By Theorem 3 the sequences delay is invariant in the lower bounds, and
/// by Theorems 1–2 and 4 it coincides with the floating and viability
/// delays whenever gate delays are genuinely variable — so this simply
/// relaxes every gate to `[0, dᵐᵃˣ]` (making every delay variable) and
/// runs [`sequences_delay`].
///
/// # Errors
///
/// As for [`sequences_delay`].
pub fn floating_delay(
    netlist: &Netlist,
    options: &DelayOptions,
) -> Result<DelayReport, DelayError> {
    delay_with_model(
        netlist,
        AnalysisBudget::from_options(options).shared(),
        &mut Floating,
    )
}

/// The ω⁻ model as a [`DelayModel`] strategy (§9.4): test a breakpoint
/// by building the sequences TBF (fresh free variables for unsettled
/// timed variables) and comparing it against the settled function — no
/// cube enumeration or linear programming. The
/// [`analyze`](crate::analyze) driver uses it as the sound upper-bound
/// rung of the degradation ladder (ω⁻ dominates the 2-vector delay).
pub(crate) struct Sequences;

impl DelayModel for Sequences {
    fn test_at(
        &mut self,
        cx: &mut ConeContext,
        output: NodeId,
        _window_lo: Time,
        b: Time,
        stats: &mut SearchStats,
    ) -> Result<Option<Hit>, DelayError> {
        let f = cx
            .sequences_query(output, b)
            .map_err(|e| e.into_error(b, &cx.budget))?;
        stats.peak_bdd_nodes = stats.peak_bdd_nodes.max(cx.manager.node_count());
        cx.sample_memory(stats);
        #[cfg(feature = "obs")]
        tbf_obs::phase::record_peak_nodes(cx.manager.node_count() as u64);
        // When the TBF still differs from the settled function, a
        // transition exists arbitrarily close below b (§9.3): the exact
        // delay (supremum) is b itself.
        let differs = f != cx.static_out(output);
        Ok(differs.then_some(Hit {
            t: b,
            witness: None,
        }))
    }
}

/// The floating-mode model: ω⁻ on the netlist with every gate relaxed
/// to `[0, dᵐᵃˣ]` (Theorems 1–4). Purely a [`prepare`] step — the sweep
/// and tests are exactly [`Sequences`] on the relaxed netlist.
///
/// [`prepare`]: DelayModel::prepare
pub(crate) struct Floating;

impl DelayModel for Floating {
    fn prepare(&self, netlist: &Netlist) -> Option<Netlist> {
        Some(netlist.map_delays(|d| tbf_logic::DelayBounds::unbounded(d.max)))
    }

    fn test_at(
        &mut self,
        cx: &mut ConeContext,
        output: NodeId,
        window_lo: Time,
        b: Time,
        stats: &mut SearchStats,
    ) -> Result<Option<Hit>, DelayError> {
        Sequences.test_at(cx, output, window_lo, b, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_vector::two_vector_delay;
    use tbf_logic::generators::adders::paper_bypass_adder;
    use tbf_logic::generators::figures::{figure4_example3, figure6_glitch};
    use tbf_logic::generators::trees::parity_tree;
    use tbf_logic::{DelayBounds, GateKind};

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    fn opts() -> DelayOptions {
        DelayOptions::default()
    }

    #[test]
    fn figure6_fixed_vs_variable() {
        // The paper's Example 5 head-to-head.
        let fixed = figure6_glitch();
        assert_eq!(sequences_delay(&fixed, &opts()).unwrap().delay, Time::ZERO);
        let variable = fixed.map_delays(|d| DelayBounds::new(d.max - Time::EPSILON, d.max));
        assert_eq!(sequences_delay(&variable, &opts()).unwrap().delay, t(2));
        // Floating delay is 2 in both cases (Theorem 4: invariant across
        // gate delay models).
        assert_eq!(floating_delay(&fixed, &opts()).unwrap().delay, t(2));
        assert_eq!(floating_delay(&variable, &opts()).unwrap().delay, t(2));
    }

    #[test]
    fn sequences_dominates_two_vector() {
        // ω⁻ includes vector pairs, so D(ω⁻) ≥ D(2).
        for n in [
            figure4_example3(),
            paper_bypass_adder(),
            parity_tree(6, DelayBounds::new(Time::from_units(0.9), t(1))),
        ] {
            let seq = sequences_delay(&n, &opts()).unwrap().delay;
            let two = two_vector_delay(&n, &opts()).unwrap().delay;
            assert!(seq >= two, "sequences {seq} < 2-vector {two}");
        }
    }

    #[test]
    fn lower_bound_invariance_theorem3() {
        // D(C,[dmin,dmax],ω⁻) must not depend on dmin (for dmin < dmax).
        let base = paper_bypass_adder();
        let d_of = |f: f64| {
            let n = base.map_delays(|d| DelayBounds::scaled_min(d.max, f));
            sequences_delay(&n, &opts()).unwrap().delay
        };
        let at_0 = d_of(0.0);
        let at_half = d_of(0.5);
        let at_90 = d_of(0.9);
        assert_eq!(at_0, at_half);
        assert_eq!(at_half, at_90);
    }

    #[test]
    fn bypass_adder_floating_delay() {
        // The floating delay of the §11 adder also sees the false path:
        // under single-vector floating-mode sensitization the ripple path
        // still cannot propagate the last transition past the bypass.
        let r = floating_delay(&paper_bypass_adder(), &opts()).unwrap();
        assert!(r.delay <= r.topological);
        let two = two_vector_delay(&paper_bypass_adder(), &opts())
            .unwrap()
            .delay;
        assert!(r.delay >= two);
    }

    #[test]
    fn parity_tree_sequences_equals_topological() {
        let n = parity_tree(8, DelayBounds::new(Time::from_units(0.9), t(1)));
        let r = sequences_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, r.topological);
    }

    #[test]
    fn chain_delay_is_sum_of_max() {
        let mut b = Netlist::builder();
        let mut cur = b.input("x");
        for i in 0..5 {
            cur = b
                .gate(
                    GateKind::Not,
                    &format!("g{i}"),
                    vec![cur],
                    DelayBounds::new(t(1), t(2)),
                )
                .unwrap();
        }
        b.output("f", cur);
        let n = b.finish().unwrap();
        let r = sequences_delay(&n, &opts()).unwrap();
        assert_eq!(r.delay, t(10));
    }

    #[test]
    fn multi_output_reports_per_output() {
        let mut b = Netlist::builder();
        let x = b.input("x");
        let f1 = b
            .gate(GateKind::Buf, "f1", vec![x], DelayBounds::new(t(1), t(2)))
            .unwrap();
        let f2 = b
            .gate(GateKind::Not, "f2", vec![f1], DelayBounds::new(t(1), t(3)))
            .unwrap();
        b.output("a", f1);
        b.output("b", f2);
        let n = b.finish().unwrap();
        let r = sequences_delay(&n, &opts()).unwrap();
        assert_eq!(r.output_delay("a"), Some(t(2)));
        assert_eq!(r.output_delay("b"), Some(t(5)));
        assert_eq!(r.delay, t(5));
    }
}
