//! The pluggable delay-model layer of the unified engine.
//!
//! Every exact delay model in the paper's taxonomy follows the same
//! computation shape (§7.3, §9.4): compile the cone once (a
//! [`ConeContext`] holds the BDD manager, statics, interned timed
//! variables and the cross-breakpoint instantiation cache), then sweep
//! the distinct maximum path lengths `{Kᵢᵐᵃˣ}` downward, testing at
//! each query point `t = b⁻` whether the timed function still differs
//! from the settled function. What varies between models is only *how*
//! a breakpoint is tested — resolvents plus linear programs for the
//! 2-vector delay, fresh free variables for ω⁻ — and whether the
//! netlist is transformed up front (the floating delay relaxes every
//! gate to `[0, dᵐᵃˣ]`).
//!
//! [`DelayModel`] captures exactly that variation; [`cone_delay`] and
//! [`delay_with_model`] own the shared sweep and report assembly. The
//! concrete strategies live next to their algorithms:
//! [`TwoVector`](crate::two_vector::TwoVector),
//! [`Sequences`](crate::sequences::Sequences) and
//! [`Floating`](crate::sequences::Floating).

use std::sync::Arc;

use tbf_logic::{Netlist, NodeId, Time};

use crate::budget::AnalysisBudget;
use crate::error::DelayError;
use crate::fault::{self, Site};
use crate::network::ConeContext;
use crate::report::{DelayReport, DelayWitness, OutputDelay, OutputStatus, SearchStats};
use crate::two_vector::{degraded_output, finish_report, WitnessParts};

/// A breakpoint interval test that succeeded: the last output transition
/// falls at `t`, optionally with a concrete sensitizing scenario.
pub(crate) struct Hit {
    /// The exact delay realized inside the tested interval.
    pub t: Time,
    /// Raw witness parts, when the model extracts scenarios.
    pub witness: Option<WitnessParts>,
}

/// One delay model of the paper's taxonomy, as a strategy plugged into
/// the shared breakpoint sweep.
///
/// Implementations are thin: all heavy state (manager, statics, timed
/// tables, caches) lives in the per-cone [`ConeContext`], so one model
/// value can serve many cones and rungs.
pub(crate) trait DelayModel {
    /// Transforms the netlist before compilation, or `None` to analyze
    /// it as given. The floating delay relaxes every gate to
    /// `[0, dᵐᵃˣ]` here (Theorems 1–4 reduce it to ω⁻ on the relaxed
    /// netlist).
    fn prepare(&self, _netlist: &Netlist) -> Option<Netlist> {
        None
    }

    /// The next query point strictly below `below`, or `None` when the
    /// sweep is exhausted. The default descends the cone's memoized
    /// `{Kᵢᵐᵃˣ}` enumeration; models with coarser sound grids may skip.
    fn breakpoints(&mut self, cx: &mut ConeContext, output: NodeId, below: Time) -> Option<Time> {
        cx.next_breakpoint(output, below)
    }

    /// Tests the interval `(window_lo, b]`: builds the model's timed
    /// function at `t = b⁻` through the context (hitting its
    /// cross-breakpoint cache) and decides whether the last output
    /// transition can fall inside the interval.
    fn test_at(
        &mut self,
        cx: &mut ConeContext,
        output: NodeId,
        window_lo: Time,
        b: Time,
        stats: &mut SearchStats,
    ) -> Result<Option<Hit>, DelayError>;

    /// Folds a hit into the final per-cone result. The default passes
    /// the hit through; models whose hits are suprema of open intervals
    /// need nothing more.
    fn certificate(&self, hit: Hit) -> (Time, Option<WitnessParts>) {
        (hit.t, hit.witness)
    }
}

/// The shared descending breakpoint sweep (§7.3 step structure): one
/// cone, one model, the context's budget. Exposed to the
/// [`analyze`](crate::analyze) driver so the degradation ladder can
/// retry and degrade per cone with any model on any rung.
pub(crate) fn cone_delay(
    model: &mut dyn DelayModel,
    cx: &mut ConeContext,
    output: NodeId,
    stats: &mut SearchStats,
) -> Result<(Time, Option<WitnessParts>), DelayError> {
    let mut b_opt = model.breakpoints(cx, output, Time::MAX);
    let mut visited = 0usize;
    while let Some(b) = b_opt {
        visited += 1;
        stats.breakpoints_visited += 1;
        if cx.budget.check_now().is_some() || fault::trip(Site::Breakpoint) {
            return Err(cx.budget.interrupt_error(b, (Time::ZERO, b)));
        }
        if visited > cx.budget.max_breakpoints() {
            return Err(DelayError::TooManyCubes {
                limit: cx.budget.max_breakpoints(),
                at_breakpoint: b,
                bounds: (Time::ZERO, b),
            });
        }
        let lower_bp = model.breakpoints(cx, output, b);
        let window_lo = lower_bp.unwrap_or(Time::ZERO);
        if let Some(hit) = model.test_at(cx, output, window_lo, b, stats)? {
            return Ok(model.certificate(hit));
        }
        cx.maybe_compact()
            .map_err(|e| e.into_error(b, &cx.budget))?;
        b_opt = lower_bp;
    }
    // No interval ever differed: the output cannot transition at all.
    Ok((Time::ZERO, None))
}

/// Whole-circuit analysis under one model: compile each output's cone
/// once, sweep it with [`cone_delay`], degrade capped cones to sound
/// bounds, and fold the per-output results into a [`DelayReport`].
/// This is the single implementation behind
/// [`two_vector_delay`](crate::two_vector_delay),
/// [`sequences_delay`](crate::sequences_delay) and
/// [`floating_delay`](crate::floating_delay).
pub(crate) fn delay_with_model(
    netlist: &Netlist,
    budget: Arc<AnalysisBudget>,
    model: &mut dyn DelayModel,
) -> Result<DelayReport, DelayError> {
    let prepared = model.prepare(netlist);
    let netlist = prepared.as_ref().unwrap_or(netlist);
    let mut cx = ConeContext::new(Arc::new(netlist.clone()), budget.clone())
        .map_err(|e| e.into_error(netlist.topological_delay(), &budget))?;
    let mut stats = SearchStats::default();
    let mut outputs = Vec::new();
    let mut witness: Option<DelayWitness> = None;
    let mut witness_delay = Time::MIN;
    let mut first_error: Option<DelayError> = None;
    for (name, out_id) in netlist.outputs() {
        #[cfg(feature = "obs")]
        let _cone = crate::obs::RungSpan::open(&format!("cone:{name}"), &budget);
        match cone_delay(model, &mut cx, *out_id, &mut stats) {
            Ok((delay, w)) => {
                if delay > witness_delay {
                    if let Some((before, after, delays)) = w {
                        witness = Some(DelayWitness {
                            output: name.clone(),
                            before,
                            after,
                            delays,
                        });
                        witness_delay = delay;
                    }
                }
                outputs.push(OutputDelay {
                    name: name.clone(),
                    delay,
                    topological: netlist.topological_delay_of(*out_id),
                    status: OutputStatus::Exact,
                });
            }
            Err(e) => {
                // This cone hit a cap: keep its sound upper bound and move
                // on — if another output dominates it, the circuit-level
                // delay is still exact.
                let Some(entry) = degraded_output(netlist, name, *out_id, &e) else {
                    return Err(e); // netlist errors are not degradable
                };
                first_error.get_or_insert(e);
                outputs.push(entry);
            }
        }
    }
    stats.absorb_reorder(cx.total_reorder_stats());
    finish_report(netlist, outputs, witness, stats, first_error)
}
