//! Cooperative cancellation at allocation granularity.
//!
//! These tests build a circuit whose *static* BDD is exponential under
//! the engine's fanin-DFS variable layout (a decoy AND gate, wired as the
//! hard output's *first* fanin, pins the interleaved order
//! `x0,y0,x1,y1,…`; the rest of the output is the crossing function
//! `⊕ᵢ xᵢ·y_{n−1−i}`, whose pairs sit maximally far apart in that
//! order). The decoy sits inside the hard cone on purpose: the driver
//! analyzes each output on its own cone-restricted engine, so an
//! order-pinning gate in a *sibling* cone would no longer poison this
//! one. A single `try_xor`/`try_and` chain inside `Engine::new` would
//! run for a very long time — so the deadline/token must fire *inside*
//! the operation, not between ladder rungs.

use std::time::{Duration, Instant};

use tbf_core::{
    analyze, analyze_with_token, two_vector_delay, AnalysisPolicy, CancelToken, DegradeCause,
    DelayError, DelayOptions, OutputStatus,
};
use tbf_logic::{DelayBounds, GateKind, Netlist, Time};

fn t(x: i64) -> Time {
    Time::from_int(x)
}

/// 2n inputs; the hard output XORs a decoy AND over `x0,y0,x1,y1,…`
/// (cheap, but first in DFS so it pins the variable order) with
/// `⊕ᵢ xᵢ·y_{n−1−i}` (exponential BDD in that order). A separate cheap
/// output keeps the driver's multi-cone path honest.
fn crossing_circuit(n: usize) -> Netlist {
    let mut b = Netlist::builder();
    let xs: Vec<_> = (0..n).map(|i| b.input(&format!("x{i}"))).collect();
    let ys: Vec<_> = (0..n).map(|i| b.input(&format!("y{i}"))).collect();
    let mut interleaved = Vec::new();
    for i in 0..n {
        interleaved.push(xs[i]);
        interleaved.push(ys[i]);
    }
    let decoy = b
        .gate(
            GateKind::And,
            "decoy",
            interleaved,
            DelayBounds::fixed(t(1)),
        )
        .unwrap();
    let mut fanins = vec![decoy];
    fanins.extend((0..n).map(|i| {
        b.gate(
            GateKind::And,
            &format!("a{i}"),
            vec![xs[i], ys[n - 1 - i]],
            DelayBounds::new(t(1), t(2)),
        )
        .unwrap()
    }));
    let hard = b
        .gate(GateKind::Xor, "hard", fanins, DelayBounds::new(t(1), t(2)))
        .unwrap();
    b.output("decoy_out", decoy);
    b.output("hard_out", hard);
    b.finish().unwrap()
}

/// Caps so large that only the deadline/token can stop the analysis.
fn uncapped_with(time_budget: Option<Duration>) -> DelayOptions {
    DelayOptions {
        max_bdd_nodes: usize::MAX / 4,
        max_straddling_paths: usize::MAX / 4,
        max_cubes: usize::MAX / 4,
        time_budget,
        ..DelayOptions::default()
    }
}

#[test]
fn deadline_fires_inside_a_single_bdd_operation() {
    let n = crossing_circuit(20);
    let budget = Duration::from_millis(100);
    let start = Instant::now();
    let err = two_vector_delay(&n, &uncapped_with(Some(budget)))
        .expect_err("the crossing BDD cannot finish inside the budget");
    let elapsed = start.elapsed();
    assert!(
        matches!(err, DelayError::TimedOut { .. }),
        "expected TimedOut, got {err:?}"
    );
    // The acceptance bar: cancellation latency bounded by ~10× the
    // budget, which is only possible if the check runs *inside* the op.
    assert!(
        elapsed < budget * 10,
        "cancellation latency {elapsed:?} exceeds 10× the {budget:?} budget"
    );
}

#[test]
fn anytime_driver_degrades_on_deadline_instead_of_erroring() {
    let n = crossing_circuit(20);
    let budget = Duration::from_millis(100);
    let policy = AnalysisPolicy::with_options(uncapped_with(Some(budget)));
    let start = Instant::now();
    let r = analyze(&n, &policy);
    let elapsed = start.elapsed();
    assert!(
        elapsed < budget * 10,
        "driver cancellation latency {elapsed:?} exceeds 10× the {budget:?} budget"
    );
    assert!(!r.all_exact());
    assert!(r.upper <= n.topological_delay());
    assert!(r.outputs.iter().all(|o| match o.status {
        OutputStatus::Exact => true,
        OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } =>
            cause == DegradeCause::TimedOut,
    }));
}

#[test]
fn cancel_token_interrupts_mid_operation_from_another_thread() {
    let n = crossing_circuit(20);
    let token = CancelToken::new();
    let canceller = {
        let token = token.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            token.cancel();
        })
    };
    let start = Instant::now();
    let r = analyze_with_token(
        &n,
        &AnalysisPolicy::with_options(uncapped_with(None)),
        token,
    );
    let elapsed = start.elapsed();
    canceller.join().expect("canceller thread");
    assert!(
        elapsed < Duration::from_secs(2),
        "token cancellation latency {elapsed:?} too high"
    );
    assert!(!r.all_exact());
    assert!(r.outputs.iter().any(|o| match o.status {
        OutputStatus::Exact => false,
        OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } =>
            cause == DegradeCause::Cancelled,
    }));
}

#[test]
fn node_cap_confirms_the_crossing_bdd_is_genuinely_exponential() {
    // Guards the premise of the latency tests above: with a finite node
    // cap and no deadline, the static build must blow the cap — i.e. the
    // timeout really happens inside an exploding operation, not after a
    // cheap build.
    let n = crossing_circuit(20);
    let opts = DelayOptions {
        max_bdd_nodes: 2_000_000,
        time_budget: None,
        ..DelayOptions::default()
    };
    let err = two_vector_delay(&n, &opts).expect_err("2M nodes cannot hold the crossing BDD");
    assert!(
        matches!(err, DelayError::BddTooLarge { .. }),
        "expected BddTooLarge, got {err:?}"
    );
}
