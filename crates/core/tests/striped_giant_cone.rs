//! Referee for the striped within-cone sweep (`speculate`): a single
//! giant cone — above the striping threshold, with a long all-miss
//! breakpoint sweep — must produce the same `CircuitReport` at every
//! worker count, and render to the same bytes across the reorder and
//! complement-edge axes.
//!
//! The circuit is a distilled carry-bypass: a `stages`-deep AND ripple
//! chain muxed against a 2-gate bypass on the same propagate signal.
//! When `p = 1` the mux masks the chain, when `p = 0` the chain is
//! killed at every stage by `p` directly — so the deep path is false,
//! the exact delay is the bypass's few gate delays, and the sweep
//! misses at every deep breakpoint before hitting at the shallow end.
//! That shape (one output, > 64 gates, ~`stages` breakpoints, nearly
//! all misses) maximizes the speculative surface of the striped sweep.

use tbf_core::{analyze, two_vector_delay, AnalysisPolicy, DelayOptions, ReorderPolicy};
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::{GateKind, Netlist, Time};

/// `stages + 5` gates, one output, breakpoints ≈ `stages`.
fn bypass_chain(stages: usize) -> Netlist {
    let d = unit_ninety_percent();
    let mut b = Netlist::builder();
    let c = b.input("c");
    let p = b.input("p");
    let mut r = b.gate(GateKind::And, "r0", vec![c, p], d).unwrap();
    for i in 1..stages {
        r = b
            .gate(GateKind::And, &format!("r{i}"), vec![r, p], d)
            .unwrap();
    }
    let byp = b.gate(GateKind::And, "byp", vec![c, p], d).unwrap();
    let np = b.gate(GateKind::Not, "np", vec![p], d).unwrap();
    let sel1 = b.gate(GateKind::And, "sel1", vec![p, byp], d).unwrap();
    let sel0 = b.gate(GateKind::And, "sel0", vec![np, r], d).unwrap();
    let out = b.gate(GateKind::Or, "out", vec![sel1, sel0], d).unwrap();
    b.output("f", out);
    b.finish().unwrap()
}

fn policy(threads: usize, reorder: ReorderPolicy, complement_edges: bool) -> AnalysisPolicy {
    AnalysisPolicy::with_options(DelayOptions {
        reorder,
        complement_edges,
        ..DelayOptions::default()
    })
    .with_threads(threads)
}

#[test]
fn giant_cone_resolves_its_false_path_exactly() {
    let n = bypass_chain(66);
    assert!(
        n.gate_count() > 64,
        "referee must exceed the striping threshold, has {} gates",
        n.gate_count()
    );
    let r = analyze(&n, &AnalysisPolicy::default());
    assert_eq!(r.exact, Some(Time::from_int(3)), "{r}");
    assert_eq!(r.topological, Time::from_int(68));
    // The sweep misses at every deep breakpoint before the shallow hit.
    assert!(r.stats.breakpoints_visited >= 66, "{r}");
    assert!(r.all_exact());
}

#[test]
fn giant_cone_report_is_identical_across_threads_reorder_complement() {
    let n = bypass_chain(66);
    let baseline = analyze(&n, &policy(1, ReorderPolicy::None, true));
    for complement_edges in [true, false] {
        let pressure = ReorderPolicy::OnPressure {
            trigger_nodes: 64,
            max_growth: 150,
        };
        for reorder in [ReorderPolicy::None, pressure] {
            // Within one (reorder, complement) cell the full report
            // struct — statistics included — must be byte-identical at
            // every worker count: striping is a fixed decomposition,
            // workers only schedule.
            let cell = analyze(&n, &policy(1, reorder, complement_edges));
            for threads in [2, 4, 0] {
                let parallel = analyze(&n, &policy(threads, reorder, complement_edges));
                assert_eq!(
                    cell, parallel,
                    "threads={threads} reorder={reorder:?} ce={complement_edges}"
                );
            }
            // Across cells the node-count statistics legitimately move
            // (complement edges shrink the unique table), but the
            // rendered report — delays, statuses, effort counters — is
            // the same bytes everywhere.
            assert_eq!(
                cell.to_string(),
                baseline.to_string(),
                "reorder={reorder:?} ce={complement_edges}"
            );
        }
    }
}

#[test]
fn striped_sweep_agrees_with_the_classic_direct_engine() {
    // `two_vector_delay` drives the classic sequential sweep whatever
    // the cone size; `analyze` stripes this cone. Same circuit, same
    // options — the answer and the sweep accounting must agree.
    let n = bypass_chain(66);
    let direct = two_vector_delay(&n, &DelayOptions::default()).expect("cone analyzes exactly");
    let driver = analyze(&n, &AnalysisPolicy::default().with_threads(4));
    assert_eq!(Some(direct.delay), driver.exact);
    assert_eq!(
        direct.stats.breakpoints_visited,
        driver.stats.breakpoints_visited
    );
}

#[test]
fn chain_just_below_the_threshold_stays_consistent() {
    // One stage short of the striping threshold: the classic sweep
    // runs. Same structure, same false path — the two sweeps sit on
    // either side of the gate and must tell the same story.
    let n = bypass_chain(59);
    assert!(n.gate_count() <= 64, "{} gates", n.gate_count());
    let r = analyze(&n, &AnalysisPolicy::default());
    assert_eq!(r.exact, Some(Time::from_int(3)), "{r}");
    for threads in [2, 4] {
        let parallel = analyze(&n, &AnalysisPolicy::default().with_threads(threads));
        assert_eq!(r, parallel, "threads={threads}");
    }
}
