//! Engine-equivalence goldens: the refactor's safety net.
//!
//! Every circuit here has its full `CircuitReport` Display output
//! committed under `tests/goldens/`. The test renders the report for
//! every cell of the `{1,4} threads × {none, on-pressure} reorder`
//! matrix and asserts each cell is byte-identical to the golden — so
//! any engine change that perturbs a reported value (delay, bounds,
//! breakpoint/LP/retry counts, witness) fails loudly with a diff.
//!
//! The goldens were blessed from the pre-refactor engine; re-bless
//! (after deliberately changing reported behavior) with:
//!
//! ```text
//! TBF_BLESS=1 cargo test -p tbf-core --test engine_equivalence
//! ```
//!
//! The suite compiles with and without the `obs` feature, so CI can
//! prove instrumentation does not perturb reports either.

use std::fmt::Write as _;
use std::path::PathBuf;

use tbf_core::{analyze, AnalysisPolicy, DelayOptions, ReorderPolicy};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder, ripple_carry};
use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3, figure6_glitch};
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::trees::parity_tree;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::parsers::bench::c17;
use tbf_logic::parsers::mcnc_like_delays;
use tbf_logic::Netlist;

/// The CLI's `--reorder pressure` policy: installed but (at these
/// circuit sizes) never firing, so it must not move a single byte.
fn pressure() -> ReorderPolicy {
    ReorderPolicy::OnPressure {
        trigger_nodes: 50_000,
        max_growth: 120,
    }
}

fn policy(threads: usize, reorder: ReorderPolicy) -> AnalysisPolicy {
    AnalysisPolicy::with_options(DelayOptions {
        reorder,
        ..DelayOptions::default()
    })
    .with_threads(threads)
}

/// The golden suite: the paper's figure circuits, c17, the generator
/// family, and one seeded random DAG. Names key the golden files, so
/// they must stay stable.
fn suite() -> Vec<(&'static str, Netlist)> {
    let d = unit_ninety_percent();
    vec![
        ("c17", c17(mcnc_like_delays)),
        ("paper_bypass_adder", paper_bypass_adder()),
        ("ripple_carry_4", ripple_carry(4, d)),
        ("carry_bypass_2x2", carry_bypass(2, 2, d)),
        ("parity_tree_6", parity_tree(6, d)),
        ("figure1_three_paths", figure1_three_paths()),
        ("figure4_example3", figure4_example3()),
        ("figure6_glitch", figure6_glitch()),
        ("random_dag_6x30", random_dag(6, 30, 3, 0x5EED)),
    ]
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/goldens")
        .join(format!("{name}.txt"))
}

/// Renders the full matrix for one circuit, asserting every cell is
/// identical to the `threads=1, reorder=None` baseline first.
fn render_matrix(name: &str, netlist: &Netlist) -> String {
    let baseline = format!("{}\n", analyze(netlist, &policy(1, ReorderPolicy::None)));
    for threads in [1, 4] {
        for reorder in [ReorderPolicy::None, pressure()] {
            let cell = format!("{}\n", analyze(netlist, &policy(threads, reorder)));
            assert_eq!(
                cell, baseline,
                "{name}: report differs at threads={threads} reorder={reorder:?}"
            );
        }
    }
    baseline
}

#[test]
fn reports_match_committed_goldens_across_the_matrix() {
    let bless = std::env::var_os("TBF_BLESS").is_some();
    let mut failures = String::new();
    for (name, netlist) in suite() {
        let rendered = render_matrix(name, &netlist);
        let path = golden_path(name);
        if bless {
            std::fs::create_dir_all(path.parent().expect("goldens dir has a parent"))
                .expect("create goldens dir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden {} ({e}); run with TBF_BLESS=1",
                path.display()
            )
        });
        if rendered != golden {
            let _ = writeln!(
                failures,
                "== {name}: report drifted from golden ==\n--- golden\n{golden}\n--- got\n{rendered}"
            );
        }
    }
    assert!(failures.is_empty(), "{failures}");
}
