//! The extracted sensitizing witness must actually drive the circuit:
//! simulating it reproduces the computed exact delay on the paper's
//! circuits and never exceeds it anywhere.

use tbf_core::{two_vector_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder, ripple_carry};
use tbf_logic::generators::figures::figure4_example3;
use tbf_logic::generators::trees::parity_tree;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::{Netlist, Time};
use tbf_sim::{simulate, Stimulus};

fn opts() -> DelayOptions {
    DelayOptions::default()
}

/// Simulates the witness and returns the last transition of the witness
/// output.
fn replay(n: &Netlist, report: &tbf_core::DelayReport) -> Option<Time> {
    let w = report
        .witness
        .as_ref()
        .expect("nonzero delay has a witness");
    let stim = Stimulus::vector_pair(&w.before, &w.after);
    let r = simulate(n, &w.delays, &stim.waveforms(n));
    let out = n
        .outputs()
        .iter()
        .find(|(name, _)| *name == w.output)
        .expect("witness names a real output")
        .1;
    r.waveform(out).last_transition()
}

#[test]
fn witness_attains_the_bound_on_figure4() {
    let n = figure4_example3();
    let report = two_vector_delay(&n, &opts()).unwrap();
    assert_eq!(replay(&n, &report), Some(report.delay));
}

#[test]
fn witness_attains_the_bound_on_the_bypass_adder() {
    let n = paper_bypass_adder();
    let report = two_vector_delay(&n, &opts()).unwrap();
    assert_eq!(report.delay, Time::from_int(24));
    assert_eq!(replay(&n, &report), Some(Time::from_int(24)));
}

#[test]
fn witness_attains_the_bound_on_suite_circuits() {
    let d = unit_ninety_percent();
    for (name, n) in [
        ("rca4", ripple_carry(4, d)),
        ("bypass2x2", carry_bypass(2, 2, d)),
        ("parity8", parity_tree(8, d)),
    ] {
        let report = two_vector_delay(&n, &opts()).unwrap();
        let observed = replay(&n, &report);
        assert_eq!(
            observed,
            Some(report.delay),
            "{name}: witness replay missed the bound"
        );
    }
}

#[test]
fn witness_delays_respect_bounds() {
    let n = paper_bypass_adder();
    let report = two_vector_delay(&n, &opts()).unwrap();
    let w = report.witness.unwrap();
    assert_eq!(w.delays.len(), n.len());
    for (id, node) in n.nodes() {
        let d = w.delays[id.index()];
        assert!(
            node.delay().min <= d && d <= node.delay().max,
            "node {} delay {d} outside {}",
            node.name(),
            node.delay()
        );
    }
    assert_eq!(w.before.len(), n.inputs().len());
    assert_eq!(w.after.len(), n.inputs().len());
}

#[test]
fn zero_delay_circuits_have_no_witness() {
    use tbf_logic::{DelayBounds, GateKind};
    let mut b = Netlist::builder();
    let x = b.input("x");
    let c = b
        .gate(GateKind::Const0, "c", vec![], DelayBounds::ZERO)
        .unwrap();
    let g = b
        .gate(
            GateKind::And,
            "g",
            vec![x, c],
            DelayBounds::fixed(Time::from_int(3)),
        )
        .unwrap();
    b.output("f", g);
    let n = b.finish().unwrap();
    let report = two_vector_delay(&n, &opts()).unwrap();
    assert_eq!(report.delay, Time::ZERO);
    assert!(report.witness.is_none());
}
