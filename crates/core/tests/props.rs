//! Property tests for the exact delay engines against a brute-force
//! simulation oracle.
//!
//! The decisive case is **fixed** gate delays: the delay assignment is
//! then unique, so exhaustively simulating every input vector pair gives
//! the true 2-vector delay — and the engine must match it *exactly*, not
//! just bound it.
//!
//! Cases are drawn from the in-repo SplitMix64 stream (hermetic — no
//! external property-test crates); each test runs a fixed number of
//! seeded cases plus the regression recipes shrunk from past failures.

use tbf_core::oracle::floating_delay_oracle;
use tbf_core::{floating_delay, sequences_delay, two_vector_delay, DelayOptions};
use tbf_logic::generators::random::SplitMix64;
use tbf_logic::{DelayBounds, GateKind, Netlist, Time};
use tbf_sim::{max_delays, sample_delays, simulate, Stimulus};

/// A recipe for a small random netlist.
#[derive(Clone, Debug)]
struct Recipe {
    n_inputs: usize,
    gates: Vec<(u8, Vec<usize>, i64, i64)>, // kind, fanin refs, dmin, dmax
}

fn gen_recipe(rng: &mut SplitMix64, fixed: bool) -> Recipe {
    let n_inputs = 2 + rng.below(3);
    let n_gates = 1 + rng.below(8);
    let gates = (0..n_gates)
        .map(|_| {
            let kind = (rng.below(6)) as u8;
            let n_fanins = 1 + rng.below(3);
            let fanins = (0..n_fanins).map(|_| rng.below(64)).collect();
            let dmin = 1 + rng.below(4) as i64;
            let spread = if fixed { 0 } else { rng.below(3) as i64 };
            (kind, fanins, dmin, dmin + spread)
        })
        .collect();
    Recipe { n_inputs, gates }
}

/// A regression case distilled from a previously-failing generated
/// circuit (reconvergent XOR over a buffer chain).
fn regression_recipes() -> Vec<Recipe> {
    vec![Recipe {
        n_inputs: 2,
        gates: vec![
            (0, vec![0], 1, 1),
            (0, vec![0], 1, 1),
            (0, vec![0], 1, 1),
            (0, vec![0], 1, 1),
            (4, vec![56, 32], 1, 1),
        ],
    }]
}

fn build(recipe: &Recipe) -> Netlist {
    let mut b = Netlist::builder();
    let mut pool: Vec<_> = (0..recipe.n_inputs)
        .map(|i| b.input(&format!("x{i}")))
        .collect();
    for (g, (kind_raw, fanin_refs, dmin, dmax)) in recipe.gates.iter().enumerate() {
        let kind = match kind_raw % 6 {
            0 => GateKind::And,
            1 => GateKind::Or,
            2 => GateKind::Nand,
            3 => GateKind::Nor,
            4 => GateKind::Xor,
            _ => GateKind::Not,
        };
        let mut fanins: Vec<_> = fanin_refs.iter().map(|&r| pool[r % pool.len()]).collect();
        // Duplicate pins to one node create two paths with the same gate
        // set — the case Theorem 2 excludes. Keep paths distinct.
        fanins.sort_unstable();
        fanins.dedup();
        if kind == GateKind::Not {
            fanins.truncate(1);
        }
        let delay = DelayBounds::new(Time::from_int(*dmin), Time::from_int(*dmax));
        let id = b
            .gate(kind, &format!("g{g}"), fanins, delay)
            .expect("generated names are unique");
        pool.push(id);
    }
    // The last gate is the single output: one cone keeps the oracle cheap.
    b.output("f", *pool.last().expect("non-empty"));
    b.finish().expect("an output was declared")
}

/// Brute-force 2-vector oracle for fixed delays: max simulated last
/// transition over all (before, after) vector pairs.
fn oracle_fixed(n: &Netlist) -> Time {
    let k = n.inputs().len();
    let delays = max_delays(n); // fixed: min == max
    let mut best = Time::ZERO;
    for pair in 0..(1u32 << (2 * k)) {
        let before: Vec<bool> = (0..k).map(|i| (pair >> i) & 1 == 1).collect();
        let after: Vec<bool> = (0..k).map(|i| (pair >> (k + i)) & 1 == 1).collect();
        let stim = Stimulus::vector_pair(&before, &after);
        let r = simulate(n, &delays, &stim.waveforms(n));
        if let Some(t) = r.last_output_transition(n) {
            best = best.max(t);
        }
    }
    best
}

fn cases(fixed: bool, salt: u64, count: u64) -> impl Iterator<Item = Recipe> {
    regression_recipes()
        .into_iter()
        .chain((0..count).map(move |i| {
            let mut rng = SplitMix64::new(i.wrapping_mul(0x9E3779B9).wrapping_add(salt));
            gen_recipe(&mut rng, fixed)
        }))
}

/// Fixed delays: the engine result IS the brute-force maximum.
#[test]
fn fixed_delay_two_vector_is_exact() {
    for recipe in cases(true, 0xF1A5, 64) {
        let n = build(&recipe);
        let exact = two_vector_delay(&n, &DelayOptions::default())
            .expect("small circuit fits the caps")
            .delay;
        let oracle = oracle_fixed(&n);
        assert_eq!(
            exact, oracle,
            "engine {exact} vs oracle {oracle}: {recipe:?}"
        );
    }
}

/// Bounded delays: sampled simulation never beats the engine, and the
/// engine never beats topology.
#[test]
fn bounded_delay_engine_is_sound() {
    for (case, recipe) in cases(false, 0x50FD, 64).enumerate() {
        let n = build(&recipe);
        let report =
            two_vector_delay(&n, &DelayOptions::default()).expect("small circuit fits the caps");
        assert!(report.delay <= report.topological);
        // 32 sampled delay assignments × 16 sampled vector pairs.
        let k = n.inputs().len();
        let mut state = (case as u64).wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..32 {
            let delays = sample_delays(&n, &mut next);
            for _ in 0..16 {
                let bits = next();
                let before: Vec<bool> = (0..k).map(|i| (bits >> i) & 1 == 1).collect();
                let after: Vec<bool> = (0..k).map(|i| (bits >> (k + i)) & 1 == 1).collect();
                let stim = Stimulus::vector_pair(&before, &after);
                let r = simulate(&n, &delays, &stim.waveforms(&n));
                if let Some(t) = r.last_output_transition(&n) {
                    assert!(
                        t <= report.delay,
                        "simulated {t} beats exact {}: {recipe:?}",
                        report.delay
                    );
                }
            }
        }
    }
}

/// Model ordering D(2) ≤ D(ω⁻) ≤ topological on random circuits.
#[test]
fn model_ordering_holds() {
    for recipe in cases(false, 0x0DE8, 64) {
        let n = build(&recipe);
        let opts = DelayOptions::default();
        let two = two_vector_delay(&n, &opts).expect("fits caps").delay;
        let seq = sequences_delay(&n, &opts).expect("fits caps").delay;
        assert!(two <= seq, "D(2)={two} > D(ω⁻)={seq}: {recipe:?}");
        assert!(seq <= n.topological_delay());
    }
}

/// The symbolic floating-delay engine against the brute-force
/// ternary-simulation oracle — two completely different algorithms
/// must agree exactly.
#[test]
fn floating_engine_matches_ternary_oracle() {
    for recipe in cases(false, 0xF10A, 64) {
        let n = build(&recipe);
        let engine = floating_delay(&n, &DelayOptions::default())
            .expect("fits caps")
            .delay;
        let oracle = floating_delay_oracle(&n).expect("generated cases stay under the oracle cap");
        assert_eq!(
            engine, oracle,
            "engine {engine} vs oracle {oracle}: {recipe:?}"
        );
    }
}

/// Theorem 3 on random circuits: D(ω⁻) ignores the lower bounds as
/// long as delays stay variable.
#[test]
fn theorem3_on_random_circuits() {
    for recipe in cases(false, 0x7E03, 64) {
        let n = build(&recipe);
        // Force genuinely variable delays (dmin strictly below dmax).
        let variable =
            n.map_delays(|d| DelayBounds::new(Time::ZERO.max(d.max - Time::from_int(1)), d.max));
        let opts = DelayOptions::default();
        let base = sequences_delay(&variable, &opts).expect("fits caps").delay;
        let relaxed = variable.map_delays(|d| DelayBounds::unbounded(d.max));
        let relaxed_delay = sequences_delay(&relaxed, &opts).expect("fits caps").delay;
        assert_eq!(base, relaxed_delay, "{recipe:?}");
    }
}
