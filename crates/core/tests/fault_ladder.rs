//! Fault-injection walk of the degradation ladder (requires the
//! `fault-injection` feature).
//!
//! Every injection site is armed in turn and the resulting typed error /
//! ladder rung is checked, always cross-checking that the degraded bounds
//! still contain the fault-free exact delay of the paper's examples.

#![cfg(feature = "fault-injection")]

use tbf_core::fault::{with_plan, FaultPlan, Site};
use tbf_core::{
    analyze, analyze_with_token, two_vector_delay, AnalysisPolicy, CancelToken, DegradeCause,
    DelayError, DelayOptions, OutputStatus,
};
use tbf_logic::generators::adders::paper_bypass_adder;
use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3};
use tbf_logic::{Netlist, Time};

fn t(x: i64) -> Time {
    Time::from_int(x)
}

/// The fault-free exact delay (also pinned against the paper's numbers in
/// the engine tests, so a fault leaking out of a plan would show up here).
fn exact_of(n: &Netlist) -> Time {
    two_vector_delay(n, &DelayOptions::default())
        .expect("fault-free analysis is exact")
        .delay
}

/// Arms `site` with `n` independent one-shot faults, so retries and
/// fallback rungs keep hitting it.
fn armed(site: Site, n: usize) -> FaultPlan {
    (0..n).fold(FaultPlan::new(), |p, _| p.once(site))
}

type ErrorPredicate = fn(&DelayError) -> bool;

#[test]
fn every_capped_error_variant_is_reachable_by_injection() {
    let n = figure4_example3();
    let exact = exact_of(&n);
    let cases: &[(Site, ErrorPredicate)] = &[
        (Site::PathCollect, |e| {
            matches!(e, DelayError::TooManyPaths { .. })
        }),
        (Site::BddOp, |e| matches!(e, DelayError::BddTooLarge { .. })),
        (Site::CubeEnum, |e| {
            matches!(e, DelayError::TooManyCubes { .. })
        }),
        (Site::Breakpoint, |e| {
            matches!(e, DelayError::TimedOut { .. })
        }),
        (Site::XorSat, |e| matches!(e, DelayError::Internal { .. })),
    ];
    for (site, is_expected) in cases {
        let err = with_plan(armed(*site, 1), || {
            two_vector_delay(&n, &DelayOptions::default())
        })
        .expect_err("armed fault must surface as a typed error");
        assert!(is_expected(&err), "site {site:?} produced {err:?}");
        let (lo, hi) = err
            .bounds()
            .unwrap_or_else(|| panic!("{site:?} error carries no bounds: {err:?}"));
        assert!(
            lo <= exact && exact <= hi,
            "site {site:?}: bounds [{lo}, {hi}] exclude exact {exact}"
        );
    }
}

#[test]
fn single_resource_fault_is_healed_by_one_retry() {
    // A one-shot resource fault is exactly what the retry rung exists
    // for: escalate, reset, re-run — and the second attempt is exact.
    let n = figure4_example3();
    let exact = exact_of(&n);
    for site in [Site::PathCollect, Site::BddOp, Site::CubeEnum] {
        let r = with_plan(armed(site, 1), || analyze(&n, &AnalysisPolicy::default()));
        assert!(r.all_exact(), "site {site:?}: {r}");
        assert_eq!(r.exact, Some(exact), "site {site:?}");
        assert_eq!(r.stats.retries, 1, "site {site:?}");
    }
}

#[test]
fn persistent_faults_degrade_each_rung_with_sound_bounds() {
    let n = figure4_example3();
    let exact = exact_of(&n);
    let cases = [
        (Site::PathCollect, DegradeCause::TooManyPaths),
        (Site::BddOp, DegradeCause::BddTooLarge),
        (Site::CubeEnum, DegradeCause::TooManyCubes),
        (Site::Breakpoint, DegradeCause::TimedOut),
        (Site::XorSat, DegradeCause::InternalInvariant),
        (Site::ConeStart, DegradeCause::EnginePanic),
    ];
    for (site, expected_cause) in cases {
        let r = with_plan(armed(site, 32), || analyze(&n, &AnalysisPolicy::default()));
        assert!(!r.all_exact(), "site {site:?} should degrade: {r}");
        assert!(
            r.lower <= exact && exact <= r.upper,
            "site {site:?}: [{}, {}] excludes exact {exact}",
            r.lower,
            r.upper
        );
        let causes: Vec<DegradeCause> = r
            .outputs
            .iter()
            .filter_map(|o| match o.status {
                OutputStatus::Exact => None,
                OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } => {
                    Some(cause)
                }
            })
            .collect();
        assert!(
            causes.contains(&expected_cause),
            "site {site:?}: causes {causes:?} lack {expected_cause:?}"
        );
        if site == Site::ConeStart {
            assert!(r.stats.panics_caught >= 1);
            // A panicking cone falls all the way to the topological
            // bound — no intermediate rung runs on a torn engine.
            assert!(r
                .outputs
                .iter()
                .any(|o| matches!(o.status, OutputStatus::Fallback { .. })));
        }
    }
}

#[test]
fn persistent_faults_never_error_on_multi_output_circuits() {
    for (mk, exact_expected) in [
        (paper_bypass_adder as fn() -> Netlist, t(24)),
        (figure1_three_paths as fn() -> Netlist, t(5)),
    ] {
        let n = mk();
        assert_eq!(exact_of(&n), exact_expected);
        for site in [
            Site::PathCollect,
            Site::BddOp,
            Site::CubeEnum,
            Site::Breakpoint,
            Site::XorSat,
            Site::ConeStart,
        ] {
            let r = with_plan(armed(site, 64), || analyze(&n, &AnalysisPolicy::default()));
            assert!(
                r.lower <= exact_expected && exact_expected <= r.upper,
                "{site:?} on {}-output circuit: [{}, {}] excludes {exact_expected}",
                n.outputs().len(),
                r.lower,
                r.upper
            );
            assert!(r.upper <= n.topological_delay());
        }
    }
}

#[test]
fn lp_interior_fault_falls_back_to_supremum_vertex() {
    // The interior LP solve is an optimization for witness quality; its
    // documented fallback keeps the result exact.
    for n in [figure4_example3(), paper_bypass_adder()] {
        let exact = exact_of(&n);
        let r = with_plan(armed(Site::LpInterior, 64), || {
            two_vector_delay(&n, &DelayOptions::default())
        })
        .expect("LpInterior fault must not fail the analysis");
        assert_eq!(r.delay, exact);
        assert!(r.witness.is_some());
    }
}

#[test]
fn cancellation_walks_the_cancelled_variant() {
    let token = CancelToken::new();
    token.cancel();
    let r = analyze_with_token(&figure4_example3(), &AnalysisPolicy::default(), token);
    assert!(!r.all_exact());
    for o in &r.outputs {
        match o.status {
            OutputStatus::Bounded { cause, .. } | OutputStatus::Fallback { cause } => {
                assert_eq!(cause, DegradeCause::Cancelled);
            }
            OutputStatus::Exact => panic!("cancelled analysis cannot be exact"),
        }
    }
    let exact = exact_of(&figure4_example3());
    assert!(r.lower <= exact && exact <= r.upper);
}

#[test]
fn disarmed_plan_changes_nothing() {
    // An empty plan (and, transitively, the compiled-out harness) must
    // leave results bit-identical to the fault-free run.
    let n = paper_bypass_adder();
    let baseline = analyze(&n, &AnalysisPolicy::default());
    let under_empty_plan = with_plan(FaultPlan::new(), || analyze(&n, &AnalysisPolicy::default()));
    assert_eq!(baseline, under_empty_plan);
    assert_eq!(baseline.exact, Some(t(24)));
}
