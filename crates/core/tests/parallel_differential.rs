//! Differential determinism: the parallel driver must return a
//! byte-identical [`CircuitReport`] — delays, bounds, statuses, output
//! order, witness and stats — for every worker count *and* every
//! [`ReorderPolicy`]. Worker scheduling may reorder the *work*, and
//! sifting may reorder the *BDD variables*, but never the *result*.

use tbf_core::{analyze, AnalysisPolicy, DelayOptions, GcMode, ReorderPolicy};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder, ripple_carry};
use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3};
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::trees::parity_tree;
use tbf_logic::{DelayBounds, Netlist, Time};

const THREAD_COUNTS: [usize; 3] = [2, 4, 0];

/// Every reorder policy the engines accept. The pressure trigger is set
/// absurdly low so on-pressure sifts actually fire mid-build on these
/// small circuits.
fn reorder_policies() -> [ReorderPolicy; 3] {
    [
        ReorderPolicy::None,
        ReorderPolicy::OnPressure {
            trigger_nodes: 64,
            max_growth: 150,
        },
        ReorderPolicy::Manual,
    ]
}

/// Asserts `analyze` is invariant across the full `reorder × threads`
/// grid, against the unreordered sequential baseline.
fn assert_reorder_invariant(netlist: &Netlist, base: &AnalysisPolicy, label: &str) {
    let baseline = analyze(netlist, base);
    for reorder in reorder_policies() {
        for threads in [1, 4] {
            let mut policy = base.clone().with_threads(threads);
            policy.options.reorder = reorder;
            let report = analyze(netlist, &policy);
            assert_eq!(
                baseline, report,
                "{label}: reorder={reorder:?} threads={threads} diverged from baseline"
            );
        }
    }
}

/// Asserts `analyze` under `policy` is invariant across worker counts,
/// returning the sequential report for further checks.
fn assert_thread_invariant(netlist: &Netlist, policy: &AnalysisPolicy, label: &str) {
    let sequential = analyze(netlist, policy);
    for threads in THREAD_COUNTS {
        let parallel = analyze(netlist, &policy.clone().with_threads(threads));
        assert_eq!(
            sequential, parallel,
            "{label}: threads={threads} diverged from sequential"
        );
    }
}

#[test]
fn paper_figures_are_thread_invariant() {
    let policy = AnalysisPolicy::default();
    assert_thread_invariant(&figure4_example3(), &policy, "figure4");
    assert_thread_invariant(&figure1_three_paths(), &policy, "figure1");
}

#[test]
fn bypass_adders_are_thread_invariant() {
    let policy = AnalysisPolicy::default();
    assert_thread_invariant(&paper_bypass_adder(), &policy, "paper bypass adder");
    let unit = DelayBounds::fixed(Time::from_int(1));
    assert_thread_invariant(&carry_bypass(2, 3, unit), &policy, "bypass 2x3");
    assert_thread_invariant(&ripple_carry(6, unit), &policy, "ripple 6");
}

#[test]
fn random_dag_sweep_is_thread_invariant() {
    let policy = AnalysisPolicy::default();
    for seed in [1, 7, 23, 40, 91] {
        let n = random_dag(6, 24, 3, seed);
        assert_thread_invariant(&n, &policy, &format!("random_dag seed {seed}"));
    }
}

#[test]
fn degraded_cones_are_thread_invariant() {
    // Tight caps force the ladder through retries, sequences fallbacks
    // and bounded statuses — the degradation pattern itself must be
    // deterministic across worker counts.
    let policy = AnalysisPolicy::with_options(DelayOptions {
        max_straddling_paths: 4,
        max_cubes: 8,
        ..DelayOptions::default()
    });
    for seed in [3, 17] {
        let n = random_dag(6, 30, 3, seed);
        assert_thread_invariant(&n, &policy, &format!("capped random_dag seed {seed}"));
    }
    assert_thread_invariant(&paper_bypass_adder(), &policy, "capped bypass adder");
}

#[test]
fn paper_figures_are_reorder_invariant() {
    let policy = AnalysisPolicy::default();
    assert_reorder_invariant(&figure4_example3(), &policy, "figure4");
    assert_reorder_invariant(&figure1_three_paths(), &policy, "figure1");
}

#[test]
fn bypass_adders_are_reorder_invariant() {
    let policy = AnalysisPolicy::default();
    assert_reorder_invariant(&paper_bypass_adder(), &policy, "paper bypass adder");
    let unit = DelayBounds::fixed(Time::from_int(1));
    assert_reorder_invariant(&carry_bypass(2, 3, unit), &policy, "bypass 2x3");
    assert_reorder_invariant(&ripple_carry(6, unit), &policy, "ripple 6");
}

#[test]
fn parity_trees_are_reorder_invariant() {
    // XOR-rich cones are the most order-sensitive shape we have; the
    // report must not care.
    let policy = AnalysisPolicy::default();
    let n = parity_tree(
        8,
        DelayBounds::new(Time::from_units(0.9), Time::from_int(1)),
    );
    assert_reorder_invariant(&n, &policy, "parity 8");
}

#[test]
fn random_dag_sweep_is_reorder_invariant() {
    let policy = AnalysisPolicy::default();
    for seed in [1, 7, 23, 40, 91] {
        let n = random_dag(6, 24, 3, seed);
        assert_reorder_invariant(&n, &policy, &format!("random_dag seed {seed}"));
    }
}

#[test]
fn gc_axis_is_cross_config_invariant() {
    // The full ablation grid with the GC axis added: threads × reorder ×
    // complement edges × {gc off, gc on}, every cell against one
    // unreordered sequential append-only baseline. The 4×4 bypass adder
    // crosses the default pressure trigger, so its gc=On cells really
    // sweep mid-build; the parity tree stays under it, pinning the
    // knob's no-op behavior inside the same grid.
    let d = DelayBounds::new(Time::from_units(0.9), Time::from_int(1));
    let circuits = [
        (carry_bypass(4, 4, d), "bypass 4x4"),
        (parity_tree(8, d), "parity 8"),
    ];
    for (netlist, label) in &circuits {
        let baseline = analyze(
            netlist,
            &AnalysisPolicy::with_options(DelayOptions {
                gc: GcMode::Off,
                ..DelayOptions::default()
            }),
        );
        for gc in [GcMode::Off, GcMode::On] {
            // CLI-scale pressure trigger: it fires a handful of times on
            // the adder (a tiny trigger would sift thousands of times on
            // a 100k-node build and drown the suite) and composes with
            // the GC sweeps happening at the same safe points.
            for reorder in [
                ReorderPolicy::None,
                ReorderPolicy::OnPressure {
                    trigger_nodes: 50_000,
                    max_growth: 120,
                },
            ] {
                for complement_edges in [true, false] {
                    for threads in [1, 4] {
                        let policy = AnalysisPolicy::with_options(DelayOptions {
                            gc,
                            reorder,
                            complement_edges,
                            ..DelayOptions::default()
                        })
                        .with_threads(threads);
                        let report = analyze(netlist, &policy);
                        assert_eq!(
                            baseline, report,
                            "{label}: gc={gc:?} reorder={reorder:?} \
                             ce={complement_edges} threads={threads} diverged"
                        );
                    }
                }
            }
        }
    }
}

#[cfg(feature = "fault-injection")]
mod under_faults {
    use super::*;
    use tbf_core::fault::{with_plan, FaultPlan, Site};

    /// Injected faults are snapshotted at `analyze()` entry and re-armed
    /// per cone, so a fault schedule produces the same report whatever
    /// the worker count.
    #[test]
    fn fault_schedules_are_thread_invariant() {
        let sites = [
            Site::BddOp,
            Site::PathCollect,
            Site::CubeEnum,
            Site::Breakpoint,
            Site::ConeStart,
        ];
        let n = paper_bypass_adder();
        for site in sites {
            for after in [0, 2] {
                let plan = || FaultPlan::new().once_at(site, after);
                let sequential = with_plan(plan(), || analyze(&n, &AnalysisPolicy::default()));
                for threads in THREAD_COUNTS {
                    let parallel = with_plan(plan(), || {
                        analyze(&n, &AnalysisPolicy::default().with_threads(threads))
                    });
                    assert_eq!(
                        sequential, parallel,
                        "site {site:?} after {after}: threads={threads} diverged"
                    );
                }
            }
        }
    }

    /// Transient faults (`once_at`) exercise the ladder — including the
    /// reorder-and-retry rung on `BddOp` faults — and the recovered
    /// report must still be identical at every `(reorder, threads)`
    /// cell. (Persistent-pressure scenarios are excluded on purpose:
    /// there the rung legitimately runs once more than an unreordered
    /// ladder would.)
    #[test]
    fn fault_schedules_are_reorder_invariant() {
        let sites = [
            Site::BddOp,
            Site::PathCollect,
            Site::CubeEnum,
            Site::Breakpoint,
            Site::ConeStart,
        ];
        let n = paper_bypass_adder();
        for site in sites {
            for after in [0, 2] {
                let plan = || FaultPlan::new().once_at(site, after);
                let baseline = with_plan(plan(), || analyze(&n, &AnalysisPolicy::default()));
                for reorder in reorder_policies() {
                    for threads in [1, 4] {
                        let mut policy = AnalysisPolicy::default().with_threads(threads);
                        policy.options.reorder = reorder;
                        let report = with_plan(plan(), || analyze(&n, &policy));
                        assert_eq!(
                            baseline, report,
                            "site {site:?} after {after}: reorder={reorder:?} \
                             threads={threads} diverged"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn fault_schedules_stay_sound_in_parallel() {
        let n = paper_bypass_adder();
        let exact = Time::from_int(24);
        for after in 0..8 {
            let r = with_plan(FaultPlan::new().once_at(Site::Breakpoint, after), || {
                analyze(&n, &AnalysisPolicy::default().with_threads(4))
            });
            assert!(
                r.lower <= exact && exact <= r.upper,
                "after={after}: bounds [{}, {}] exclude the exact delay",
                r.lower,
                r.upper
            );
        }
    }
}
