//! Differential determinism: the parallel driver must return a
//! byte-identical [`CircuitReport`] — delays, bounds, statuses, output
//! order, witness and stats — for every worker count. Worker scheduling
//! may reorder the *work*, never the *result*.

use tbf_core::{analyze, AnalysisPolicy, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder, ripple_carry};
use tbf_logic::generators::figures::{figure1_three_paths, figure4_example3};
use tbf_logic::generators::random::random_dag;
use tbf_logic::{DelayBounds, Netlist, Time};

const THREAD_COUNTS: [usize; 3] = [2, 4, 0];

/// Asserts `analyze` under `policy` is invariant across worker counts,
/// returning the sequential report for further checks.
fn assert_thread_invariant(netlist: &Netlist, policy: &AnalysisPolicy, label: &str) {
    let sequential = analyze(netlist, policy);
    for threads in THREAD_COUNTS {
        let parallel = analyze(netlist, &policy.clone().with_threads(threads));
        assert_eq!(
            sequential, parallel,
            "{label}: threads={threads} diverged from sequential"
        );
    }
}

#[test]
fn paper_figures_are_thread_invariant() {
    let policy = AnalysisPolicy::default();
    assert_thread_invariant(&figure4_example3(), &policy, "figure4");
    assert_thread_invariant(&figure1_three_paths(), &policy, "figure1");
}

#[test]
fn bypass_adders_are_thread_invariant() {
    let policy = AnalysisPolicy::default();
    assert_thread_invariant(&paper_bypass_adder(), &policy, "paper bypass adder");
    let unit = DelayBounds::fixed(Time::from_int(1));
    assert_thread_invariant(&carry_bypass(2, 3, unit), &policy, "bypass 2x3");
    assert_thread_invariant(&ripple_carry(6, unit), &policy, "ripple 6");
}

#[test]
fn random_dag_sweep_is_thread_invariant() {
    let policy = AnalysisPolicy::default();
    for seed in [1, 7, 23, 40, 91] {
        let n = random_dag(6, 24, 3, seed);
        assert_thread_invariant(&n, &policy, &format!("random_dag seed {seed}"));
    }
}

#[test]
fn degraded_cones_are_thread_invariant() {
    // Tight caps force the ladder through retries, sequences fallbacks
    // and bounded statuses — the degradation pattern itself must be
    // deterministic across worker counts.
    let policy = AnalysisPolicy::with_options(DelayOptions {
        max_straddling_paths: 4,
        max_cubes: 8,
        ..DelayOptions::default()
    });
    for seed in [3, 17] {
        let n = random_dag(6, 30, 3, seed);
        assert_thread_invariant(&n, &policy, &format!("capped random_dag seed {seed}"));
    }
    assert_thread_invariant(&paper_bypass_adder(), &policy, "capped bypass adder");
}

#[cfg(feature = "fault-injection")]
mod under_faults {
    use super::*;
    use tbf_core::fault::{with_plan, FaultPlan, Site};

    /// Injected faults are snapshotted at `analyze()` entry and re-armed
    /// per cone, so a fault schedule produces the same report whatever
    /// the worker count.
    #[test]
    fn fault_schedules_are_thread_invariant() {
        let sites = [
            Site::BddOp,
            Site::PathCollect,
            Site::CubeEnum,
            Site::Breakpoint,
            Site::ConeStart,
        ];
        let n = paper_bypass_adder();
        for site in sites {
            for after in [0, 2] {
                let plan = || FaultPlan::new().once_at(site, after);
                let sequential = with_plan(plan(), || analyze(&n, &AnalysisPolicy::default()));
                for threads in THREAD_COUNTS {
                    let parallel = with_plan(plan(), || {
                        analyze(&n, &AnalysisPolicy::default().with_threads(threads))
                    });
                    assert_eq!(
                        sequential, parallel,
                        "site {site:?} after {after}: threads={threads} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn fault_schedules_stay_sound_in_parallel() {
        let n = paper_bypass_adder();
        let exact = Time::from_int(24);
        for after in 0..8 {
            let r = with_plan(FaultPlan::new().once_at(Site::Breakpoint, after), || {
                analyze(&n, &AnalysisPolicy::default().with_threads(4))
            });
            assert!(
                r.lower <= exact && exact <= r.upper,
                "after={after}: bounds [{}, {}] exclude the exact delay",
                r.lower,
                r.upper
            );
        }
    }
}
