//! Observability determinism suite (`obs` feature).
//!
//! The contract under test: instrumentation observes the analysis
//! without perturbing it, and everything it records — counter totals,
//! histograms, and the phase tree — is **byte-identical** across worker
//! thread counts and across reorder policies that never fire, because
//! every cone does identical logical work on a fresh engine and the
//! phase subtrees are merged on join in netlist output order.

use tbf_core::obs::{observe, RunObservation};
use tbf_core::{analyze, AnalysisPolicy, DelayOptions, GcMode, ReorderPolicy, TbfCacheMode};
use tbf_logic::generators::adders::{carry_bypass, paper_bypass_adder};
use tbf_logic::generators::figures::figure1_three_paths;
use tbf_logic::generators::trees::parity_tree;
use tbf_logic::{DelayBounds, Netlist, Time};
use tbf_obs::{phase, Metric};

/// A `--reorder pressure`-like policy whose trigger is far above what
/// the test circuits allocate, mirroring the CLI's fixed trigger: the
/// policy is installed but never fires, so counters must not move.
fn pressure() -> ReorderPolicy {
    ReorderPolicy::OnPressure {
        trigger_nodes: 50_000,
        max_growth: 120,
    }
}

fn policy(threads: usize, reorder: ReorderPolicy) -> AnalysisPolicy {
    AnalysisPolicy::with_options(DelayOptions {
        reorder,
        ..DelayOptions::default()
    })
    .with_threads(threads)
}

/// The deterministic fingerprint of one observed run: counter snapshot
/// plus the phase tree's deterministic serialization (no wall times).
fn fingerprint(obs: &RunObservation) -> (Vec<(&'static str, u64)>, String) {
    (
        obs.counters.snapshot(),
        phase::to_value(&obs.phases).to_string(),
    )
}

fn circuits() -> Vec<Netlist> {
    vec![
        paper_bypass_adder(),
        figure1_three_paths(),
        parity_tree(
            6,
            DelayBounds::new(Time::from_units(0.9), Time::from_int(1)),
        ),
    ]
}

#[test]
fn counters_and_phases_identical_across_threads_and_reorder() {
    for netlist in circuits() {
        let (baseline_report, baseline_obs) =
            observe(|| analyze(&netlist, &policy(1, ReorderPolicy::None)));
        let baseline = fingerprint(&baseline_obs);
        assert!(
            baseline_obs.counters.get(Metric::IteCalls) > 0,
            "instrumentation must observe BDD work"
        );
        assert!(
            !baseline_obs.phases.is_empty(),
            "phase tree must be captured"
        );
        for threads in [1, 2, 8] {
            for reorder in [ReorderPolicy::None, pressure()] {
                let (report, obs) = observe(|| analyze(&netlist, &policy(threads, reorder)));
                assert_eq!(
                    report, baseline_report,
                    "report must not depend on threads={threads} reorder={reorder:?}"
                );
                assert_eq!(
                    fingerprint(&obs),
                    baseline,
                    "counters/phases must not depend on threads={threads} reorder={reorder:?}"
                );
            }
        }
    }
}

#[test]
fn observation_does_not_perturb_the_report() {
    for netlist in circuits() {
        let plain = analyze(&netlist, &policy(2, ReorderPolicy::None));
        let (observed, _) = observe(|| analyze(&netlist, &policy(2, ReorderPolicy::None)));
        assert_eq!(plain, observed, "observe() must be a pure wrapper");
    }
}

#[test]
fn cone_subtrees_attach_in_netlist_output_order() {
    let netlist = paper_bypass_adder();
    let outputs: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|(name, _)| format!("cone:{name}"))
        .collect();
    for threads in [1, 4] {
        // The cone subtrees attach directly under the observe root (the
        // CLI nests them under a model phase instead).
        let (_, obs) = observe(|| analyze(&netlist, &policy(threads, ReorderPolicy::None)));
        let cones: Vec<&str> = obs.phases.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(cones, outputs, "threads={threads}");
    }
}

#[test]
fn per_cone_budget_polls_land_in_their_cone_span() {
    let (_, obs) = observe(|| analyze(&paper_bypass_adder(), &policy(1, ReorderPolicy::None)));
    let total: u64 = obs.phases.iter().map(|c| c.budget_polls).sum();
    assert!(total > 0, "cones must record their budget polls");
    assert!(
        total <= obs.counters.get(Metric::BudgetPolls),
        "per-cone polls cannot exceed the registry total"
    );
}

#[test]
fn direct_engines_record_per_output_spans() {
    let netlist = paper_bypass_adder();
    let (result, obs) = observe(|| {
        tbf_core::two_vector_delay(&netlist, &DelayOptions::default()).expect("small circuit")
    });
    assert_eq!(result.delay, Time::from_int(24));
    let names: Vec<&str> = obs.phases.iter().map(|p| p.name.as_str()).collect();
    let expected: Vec<String> = netlist
        .outputs()
        .iter()
        .map(|(name, _)| format!("cone:{name}"))
        .collect();
    assert_eq!(names, expected);
    assert!(obs.phases.iter().any(|p| p.peak_nodes > 0));
}

#[test]
fn gc_knob_is_invisible_until_pressure() {
    // Below the pressure trigger the GC knob must be a pure no-op: not
    // just the report but the *entire* observation — counters (including
    // the gc ones, which stay zero) and the phase tree — is byte-
    // identical across every mode, in every thread count.
    for netlist in circuits() {
        let run = |gc: GcMode, threads: usize| {
            observe(|| {
                analyze(
                    &netlist,
                    &AnalysisPolicy::with_options(DelayOptions {
                        gc,
                        ..DelayOptions::default()
                    })
                    .with_threads(threads),
                )
            })
        };
        let (baseline_report, baseline_obs) = run(GcMode::Off, 1);
        let baseline = fingerprint(&baseline_obs);
        assert_eq!(baseline_obs.counters.get(Metric::GcSweeps), 0);
        assert_eq!(baseline_obs.counters.get(Metric::GcNodesReclaimed), 0);
        for gc in [GcMode::Off, GcMode::On, GcMode::Auto] {
            for threads in [1, 4] {
                let (report, obs) = run(gc, threads);
                assert_eq!(
                    report, baseline_report,
                    "report must not depend on gc={gc:?} threads={threads}"
                );
                assert_eq!(
                    fingerprint(&obs),
                    baseline,
                    "counters/phases must not depend on gc={gc:?} threads={threads}"
                );
            }
        }
    }
}

#[test]
fn gc_sweeps_leave_the_report_identical() {
    // A circuit big enough to cross the pressure trigger: sweeps must
    // actually fire under `On` and reclaim transient garbage, while the
    // report (delays, witnesses, statuses — everything `PartialEq`
    // compares) stays identical to the append-only `Off` arena. Effort
    // telemetry legitimately differs: purged op-cache entries are
    // recomputed, and that is exactly what the gc counters record.
    let netlist = carry_bypass(
        4,
        4,
        DelayBounds::new(Time::from_units(0.9), Time::from_int(1)),
    );
    let run = |gc: GcMode| {
        observe(|| {
            tbf_core::two_vector_delay(
                &netlist,
                &DelayOptions {
                    gc,
                    ..DelayOptions::default()
                },
            )
            .expect("bypass adder stays within default caps")
        })
    };
    let (on, obs_on) = run(GcMode::On);
    let (off, obs_off) = run(GcMode::Off);
    assert_eq!(on, off, "the gc knob must not change the report");
    assert!(
        obs_on.counters.get(Metric::GcSweeps) > 0,
        "the bypass adder must cross the pressure trigger"
    );
    assert!(
        obs_on.counters.get(Metric::GcNodesReclaimed) > 0,
        "sweeps must reclaim transient build garbage"
    );
    assert_eq!(obs_off.counters.get(Metric::GcSweeps), 0);
    assert_eq!(obs_off.counters.get(Metric::GcNodesReclaimed), 0);
    assert!(
        on.stats.peak_arena_nodes < off.stats.peak_arena_nodes,
        "GC must lower the peak arena ({} vs {})",
        on.stats.peak_arena_nodes,
        off.stats.peak_arena_nodes
    );
    assert_eq!(on.stats.gc_sweeps, obs_on.counters.get(Metric::GcSweeps));
}

#[test]
fn timed_node_cache_reuses_instantiations_across_breakpoints() {
    // The PR 5 acceptance story, re-pinned for the PR 7 size gate: the
    // cross-breakpoint instantiation cache must actually fire on the
    // §11 bypass adder when forced `on`, and `off` must cost strictly
    // more gate-BDD builds while leaving the report byte-identical.
    // (The 11-gate adder sits under `TbfCacheMode::TINY_CONE_GATES`,
    // so the `Auto` default bypasses the cache here — asserted below.)
    let netlist = paper_bypass_adder();
    let run = |mode: TbfCacheMode| {
        observe(|| {
            tbf_core::two_vector_delay(
                &netlist,
                &DelayOptions {
                    tbf_cache: mode,
                    ..DelayOptions::default()
                },
            )
            .expect("small circuit")
        })
    };
    let (on, obs_on) = run(TbfCacheMode::On);
    let (off, obs_off) = run(TbfCacheMode::Off);
    assert_eq!(on, off, "the cache knob must not change the report");
    assert_eq!(on.delay, Time::from_int(24));

    let inst_on = obs_on.counters.get(Metric::TbfInstantiations);
    let hits_on = obs_on.counters.get(Metric::TbfCacheHits);
    let inst_off = obs_off.counters.get(Metric::TbfInstantiations);
    let hits_off = obs_off.counters.get(Metric::TbfCacheHits);
    assert!(inst_on > 0, "the sweep must instantiate gate BDDs");
    assert!(
        hits_on > 0,
        "the bypass-adder sweep must reuse timed nodes across breakpoints"
    );
    assert!(
        inst_on < inst_off,
        "cache on must build strictly fewer gate BDDs ({inst_on} vs {inst_off})"
    );
    assert!(
        hits_on > hits_off,
        "cross-breakpoint reuse must add hits over the within-build memo ({hits_on} vs {hits_off})"
    );

    // The PR 7 fix: `Auto` (the default) bypasses the cache on this
    // tiny cone, doing exactly the work `Off` does — same report, same
    // build/hit counters, none of the bookkeeping that made cache-on
    // rows slower than cache-off in the retired PR 5 baseline.
    let (auto, obs_auto) = run(TbfCacheMode::Auto);
    assert_eq!(auto, off, "the size gate must not change the report");
    assert_eq!(
        obs_auto.counters.get(Metric::TbfInstantiations),
        inst_off,
        "Auto must bypass the cross-breakpoint cache on tiny cones"
    );
    assert_eq!(obs_auto.counters.get(Metric::TbfCacheHits), hits_off);
}
