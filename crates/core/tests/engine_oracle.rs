//! Oracle cross-checks for the unified delay-model engine (PR 5).
//!
//! The refactor routed `TwoVector` and `Floating` through one shared
//! compilation pipeline ([`ConeContext`] + the `DelayModel` sweep), so
//! this suite re-derives their answers from first principles with
//! `tbf-sim`:
//!
//! * **2-vector, fixed delays** — the delay assignment is unique, so
//!   exhaustively simulating every `(before, after)` input vector pair
//!   and taking the latest last output transition IS the exact 2-vector
//!   delay. The engine must match it, not just bound it.
//! * **floating** — the `tbf_core::oracle::floating_delay_oracle`
//!   brute-forces the unbounded-delay settle time over all `2ⁿ` input
//!   vectors; Theorems 1–4 make it the ground truth for
//!   [`floating_delay`].
//!
//! Circuits: generated ripple/bypass adders plus seeded random DAGs.
//! Seeds come from a fixed table; set `RANDOM_SEED=<u64>` (decimal or
//! `0x`-hex) to add one more — CI passes its run id, and every failure
//! message carries the seed needed to replay it.

use tbf_core::oracle::floating_delay_oracle;
use tbf_core::{floating_delay, two_vector_delay, DelayOptions};
use tbf_logic::generators::adders::{carry_bypass, ripple_carry};
use tbf_logic::generators::random::random_dag;
use tbf_logic::generators::unit_ninety_percent;
use tbf_logic::{DelayBounds, Netlist, Time};
use tbf_sim::{max_delays, simulate, Stimulus};

/// Fixed seed table used by default and in CI's deterministic jobs.
const SEEDS: [u64; 3] = [0x5EED, 0x9e3779b97f4a7c15, 0xdeadbeefcafef00d];

/// The seed table, plus `RANDOM_SEED` from the environment if present.
fn seeds() -> Vec<u64> {
    let mut s = SEEDS.to_vec();
    if let Ok(raw) = std::env::var("RANDOM_SEED") {
        let parsed = raw
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| raw.parse());
        match parsed {
            Ok(x) => s.push(x),
            Err(e) => panic!("RANDOM_SEED={raw:?} is not a u64: {e}"),
        }
    }
    s
}

/// Pins every gate delay to its maximum, making the assignment unique
/// (the precondition for the exhaustive 2-vector oracle).
fn pin_delays(n: &Netlist) -> Netlist {
    n.map_delays(|d| DelayBounds::new(d.max, d.max))
}

/// Brute-force 2-vector oracle for fixed delays: the maximum simulated
/// last output transition over all `2^(2k)` input vector pairs.
fn oracle_two_vector_fixed(n: &Netlist) -> Time {
    let k = n.inputs().len();
    assert!(k <= 9, "exhaustive pair oracle is 4^k; keep circuits small");
    let delays = max_delays(n); // fixed: min == max
    let mut best = Time::ZERO;
    for pair in 0..(1u32 << (2 * k)) {
        let before: Vec<bool> = (0..k).map(|i| (pair >> i) & 1 == 1).collect();
        let after: Vec<bool> = (0..k).map(|i| (pair >> (k + i)) & 1 == 1).collect();
        let stim = Stimulus::vector_pair(&before, &after);
        let r = simulate(n, &delays, &stim.waveforms(n));
        if let Some(t) = r.last_output_transition(n) {
            best = best.max(t);
        }
    }
    best
}

/// The adder family both oracles can afford: ripple and bypass
/// structures small enough for exhaustive input enumeration.
fn adders() -> Vec<(&'static str, Netlist)> {
    let d = unit_ninety_percent();
    vec![
        ("ripple_carry_2", ripple_carry(2, d)),
        ("carry_bypass_2x2", carry_bypass(2, 2, d)),
    ]
}

/// Seeded random DAGs with few enough inputs for both oracles.
fn random_dags() -> Vec<(String, Netlist)> {
    seeds()
        .into_iter()
        .map(|seed| {
            (
                format!("random_dag(4,16,3,{seed:#x})"),
                random_dag(4, 16, 3, seed),
            )
        })
        .collect()
}

#[test]
fn two_vector_engine_matches_exhaustive_simulation_on_adders() {
    for (name, n) in adders() {
        let n = pin_delays(&n);
        let engine = two_vector_delay(&n, &DelayOptions::default())
            .expect("adders fit the default caps")
            .delay;
        let oracle = oracle_two_vector_fixed(&n);
        assert_eq!(engine, oracle, "{name}: engine {engine} vs oracle {oracle}");
    }
}

#[test]
fn two_vector_engine_matches_exhaustive_simulation_on_random_dags() {
    for (name, n) in random_dags() {
        let n = pin_delays(&n);
        let engine = two_vector_delay(&n, &DelayOptions::default())
            .expect("generated DAGs fit the default caps")
            .delay;
        let oracle = oracle_two_vector_fixed(&n);
        assert_eq!(
            engine, oracle,
            "{name}: engine {engine} vs oracle {oracle} (reproduce with RANDOM_SEED=<seed in name>)"
        );
    }
}

#[test]
fn floating_engine_matches_simulation_oracle_on_adders() {
    for (name, n) in adders() {
        let engine = floating_delay(&n, &DelayOptions::default())
            .expect("adders fit the default caps")
            .delay;
        let oracle = floating_delay_oracle(&n).expect("adders stay under the oracle input cap");
        assert_eq!(engine, oracle, "{name}: engine {engine} vs oracle {oracle}");
    }
}

#[test]
fn floating_engine_matches_simulation_oracle_on_random_dags() {
    for (name, n) in random_dags() {
        let engine = floating_delay(&n, &DelayOptions::default())
            .expect("generated DAGs fit the default caps")
            .delay;
        let oracle =
            floating_delay_oracle(&n).expect("generated DAGs stay under the oracle input cap");
        assert_eq!(
            engine, oracle,
            "{name}: engine {engine} vs oracle {oracle} (reproduce with RANDOM_SEED=<seed in name>)"
        );
    }
}
