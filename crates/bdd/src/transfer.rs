//! Cross-manager function transfer — the reordering primitive.
//!
//! ROBDD size is notoriously order-sensitive (an adder carry is linear
//! under interleaved operands and exponential under separated ones).
//! [`transfer`] rebuilds a function in a *destination* manager whose
//! variables may be laid out in a completely different order, by
//! recursive cofactoring along the destination order. Combined with a
//! candidate-order search this provides rebuild-style reordering without
//! mutating the source manager.

use std::collections::HashMap;

use crate::limit::NodeLimitExceeded;
use crate::manager::BddManager;
use crate::node::{Bdd, Var};

/// Rebuilds `f` (owned by `src`) inside `dst`, renaming variables via
/// `var_map` (`var_map[src_var.index()]` = destination variable).
///
/// Complexity is output-sensitive: roughly the product of the source size
/// and the number of destination levels actually in the support, with
/// memoization on `(source node, destination level)`. The destination
/// manager aborts cleanly past `limit` nodes.
///
/// # Errors
///
/// Returns [`NodeLimitExceeded`] if `dst` outgrows `limit`.
///
/// # Panics
///
/// Panics if `var_map` does not cover every variable in `f`'s support.
///
/// # Example
///
/// ```
/// use tbf_bdd::{BddManager, transfer};
///
/// // f = (a ∧ b) ∨ c under order a, b, c…
/// let mut src = BddManager::new();
/// let (a, b, c) = (src.new_var(), src.new_var(), src.new_var());
/// let (va, vb, vc) = (src.var(a), src.var(b), src.var(c));
/// let ab = src.and(va, vb);
/// let f = src.or(ab, vc);
///
/// // …rebuilt under the reversed order c, b, a.
/// let mut dst = BddManager::new();
/// let (c2, b2, a2) = (dst.new_var(), dst.new_var(), dst.new_var());
/// let g = transfer(&mut src, f, &mut dst, &[a2, b2, c2], 1_000_000)?;
/// // Same function, new order: check all assignments.
/// for bits in 0..8u8 {
///     let s = [bits & 1 != 0, bits & 2 != 0, bits & 4 != 0];
///     // dst order is (c, b, a): positions 0,1,2 = c2,b2,a2.
///     let d = [s[2], s[1], s[0]];
///     assert_eq!(src.eval(f, &s), dst.eval(g, &d));
/// }
/// # Ok::<(), tbf_bdd::NodeLimitExceeded>(())
/// ```
pub fn transfer(
    src: &mut BddManager,
    f: Bdd,
    dst: &mut BddManager,
    var_map: &[Var],
    limit: usize,
) -> Result<Bdd, NodeLimitExceeded> {
    // Destination levels in ascending order, with their source variable.
    let mut dst_levels: Vec<(Var, Var)> = Vec::new(); // (dst var, src var)
    for (src_idx, &dv) in var_map.iter().enumerate() {
        dst_levels.push((dv, Var(src_idx as u32)));
    }
    dst_levels.sort_by_key(|&(dv, _)| dst.level_of(dv));

    let support = src.support(f);
    for v in &support {
        assert!(
            v.index() < var_map.len(),
            "var_map misses source variable {v:?}"
        );
    }

    let mut memo: HashMap<(Bdd, usize), Bdd> = HashMap::new();
    // Recurse along the destination order: at position `pos`, branch on
    // dst_levels[pos] by cofactoring the source function on the matching
    // source variable.
    fn go(
        src: &mut BddManager,
        f: Bdd,
        dst: &mut BddManager,
        levels: &[(Var, Var)],
        pos: usize,
        limit: usize,
        memo: &mut HashMap<(Bdd, usize), Bdd>,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        debug_assert!(pos < levels.len(), "support covered by var_map");
        if let Some(&r) = memo.get(&(f, pos)) {
            return Ok(r);
        }
        let (dst_var, src_var) = levels[pos];
        // Skip variables outside the (remaining) support cheaply: the
        // root test below is sound because restrict is the identity when
        // the variable is absent.
        let f1 = src.restrict(f, src_var, true);
        let f0 = src.restrict(f, src_var, false);
        let r = if f0 == f1 {
            go(src, f, dst, levels, pos + 1, limit, memo)?
        } else {
            let hi = go(src, f1, dst, levels, pos + 1, limit, memo)?;
            let lo = go(src, f0, dst, levels, pos + 1, limit, memo)?;
            let sel = dst.var(dst_var);
            dst.try_ite(sel, hi, lo, limit)?
        };
        memo.insert((f, pos), r);
        Ok(r)
    }
    go(src, f, dst, &dst_levels, 0, limit, &mut memo)
}

/// Greedy order search: evaluates `candidates` (permutations of the
/// source variables, given as `var_map`-shaped index vectors) and returns
/// the one minimizing the total transferred size of `roots`, along with
/// that size. Candidates that blow `limit` are skipped.
///
/// # Panics
///
/// Panics if `candidates` is empty.
pub fn best_order(
    src: &mut BddManager,
    roots: &[Bdd],
    candidates: &[Vec<usize>],
    limit: usize,
) -> (Vec<usize>, usize) {
    assert!(!candidates.is_empty(), "need at least one candidate order");
    let mut best: Option<(Vec<usize>, usize)> = None;
    for cand in candidates {
        let mut dst = BddManager::new();
        // Destination variable `position` for source index i is the rank
        // of i in `cand`.
        let mut dst_vars = vec![Var(0); cand.len()];
        for &src_idx in cand {
            dst_vars[src_idx] = dst.new_var();
        }
        let mut total = 0usize;
        let mut ok = true;
        for &r in roots {
            match transfer(src, r, &mut dst, &dst_vars, limit) {
                Ok(moved) => total += dst.size(moved),
                Err(_) => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && best.as_ref().is_none_or(|(_, b)| total < *b) {
            best = Some((cand.clone(), total));
        }
    }
    best.unwrap_or_else(|| ((0..src.var_count()).collect(), usize::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adder carry over separated operands: exponential this way,
    /// linear interleaved.
    fn separated_carry(m: &mut BddManager, bits: usize) -> (Bdd, usize) {
        let avars: Vec<Var> = (0..bits).map(|_| m.new_var()).collect();
        let bvars: Vec<Var> = (0..bits).map(|_| m.new_var()).collect();
        let mut carry = Bdd::FALSE;
        for i in 0..bits {
            let (va, vb) = (m.var(avars[i]), m.var(bvars[i]));
            let ab = m.and(va, vb);
            let axb = m.or(va, vb);
            let t = m.and(axb, carry);
            carry = m.or(ab, t);
        }
        let size = m.size(carry);
        (carry, size)
    }

    #[test]
    fn transfer_preserves_semantics() {
        let mut src = BddManager::new();
        let (f, _) = separated_carry(&mut src, 3);
        // Interleave: a0 b0 a1 b1 a2 b2 (src order: a0 a1 a2 b0 b1 b2).
        let mut dst = BddManager::new();
        let order = [0usize, 3, 1, 4, 2, 5]; // src indices in dst order
        let mut dst_vars = vec![Var(0); 6];
        for &src_idx in &order {
            dst_vars[src_idx] = dst.new_var();
        }
        let g = transfer(&mut src, f, &mut dst, &dst_vars, 1_000_000).unwrap();
        for bits in 0..64u32 {
            let s: Vec<bool> = (0..6).map(|i| (bits >> i) & 1 == 1).collect();
            let mut d = vec![false; 6];
            for (src_idx, var) in dst_vars.iter().enumerate() {
                d[var.index()] = s[src_idx];
            }
            assert_eq!(src.eval(f, &s), dst.eval(g, &d), "bits {bits:#b}");
        }
    }

    #[test]
    fn interleaving_shrinks_the_carry() {
        let mut src = BddManager::new();
        let bits = 7;
        let (f, separated_size) = separated_carry(&mut src, bits);
        let mut dst = BddManager::new();
        let mut dst_vars = vec![Var(0); 2 * bits];
        // Interleaved destination order a0 b0 a1 b1 …
        for i in 0..bits {
            dst_vars[i] = {
                let v = dst.new_var();
                let w = dst.new_var();
                dst_vars[bits + i] = w;
                v
            };
        }
        let g = transfer(&mut src, f, &mut dst, &dst_vars, 10_000_000).unwrap();
        let interleaved_size = dst.size(g);
        assert!(
            interleaved_size * 4 < separated_size,
            "interleaved {interleaved_size} vs separated {separated_size}"
        );
    }

    #[test]
    fn transfer_respects_limit() {
        let mut src = BddManager::new();
        let (f, _) = separated_carry(&mut src, 8);
        let mut dst = BddManager::new();
        let dst_vars: Vec<Var> = (0..16).map(|_| dst.new_var()).collect();
        let err = transfer(&mut src, f, &mut dst, &dst_vars, 8);
        assert!(matches!(err, Err(NodeLimitExceeded { limit: 8 })));
    }

    #[test]
    fn constants_transfer_trivially() {
        let mut src = BddManager::new();
        let mut dst = BddManager::new();
        assert_eq!(
            transfer(&mut src, Bdd::TRUE, &mut dst, &[], 10).unwrap(),
            Bdd::TRUE
        );
        assert_eq!(
            transfer(&mut src, Bdd::FALSE, &mut dst, &[], 10).unwrap(),
            Bdd::FALSE
        );
    }

    #[test]
    fn best_order_prefers_interleaving() {
        let mut src = BddManager::new();
        let bits = 5;
        let (f, _) = separated_carry(&mut src, bits);
        let separated: Vec<usize> = (0..2 * bits).collect();
        let interleaved: Vec<usize> = (0..bits).flat_map(|i| [i, bits + i]).collect();
        let (winner, size) = best_order(
            &mut src,
            &[f],
            &[separated, interleaved.clone()],
            10_000_000,
        );
        assert_eq!(winner, interleaved);
        assert!(size > 0);
    }
}
