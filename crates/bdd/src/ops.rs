//! Boolean operations: negation, ITE, the derived binary connectives,
//! restriction and quantification.

use crate::manager::BddManager;
use crate::node::{Bdd, Var};

impl BddManager {
    /// Logical negation. A constant-time tag flip under complement
    /// edges; a memoized recursive rebuild in plain mode.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        if self.ce {
            return f.negate();
        }
        if f.is_false() {
            return Bdd::TRUE;
        }
        if f.is_true() {
            return Bdd::FALSE;
        }
        if let Some(&r) = self.not_cache.get(&f) {
            self.obs_cache_hit();
            return r;
        }
        self.obs_cache_miss();
        let n = self.node(f);
        let lo = self.not(n.lo);
        let hi = self.not(n.hi);
        let r = self.mk(n.var, lo, hi);
        self.not_cache.insert(f, r);
        r
    }

    /// If-then-else: `f·g + f̄·h`. The primitive from which the binary
    /// connectives are derived.
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        if self.ce {
            return self.ite_ce(f, g, h);
        }
        self.obs_ite_call();
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return self.not(f);
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.obs_cache_hit();
            return r;
        }
        self.obs_cache_miss();
        // `top` is an order *position*; recursion splits on the variable
        // currently at that position.
        let top = self.blevel(f).min(self.blevel(g)).min(self.blevel(h));
        let top_var = self.level2var[top as usize];
        let cof = |m: &BddManager, b: Bdd, phase: bool| -> Bdd {
            if m.blevel(b) != top {
                b
            } else {
                let n = m.node(b);
                if phase {
                    n.hi
                } else {
                    n.lo
                }
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top_var, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    /// [`ite`](Self::ite) under complement edges: the same recursion, but
    /// with O(1) negation the arguments are first rewritten into a
    /// canonical form — `f` regular and `g` regular — so a cache entry
    /// serves the whole 4-element orbit `{ite(f,g,h), ite(¬f,h,g),
    /// ¬ite(f,¬g,¬h), ¬ite(¬f,¬h,¬g)}`.
    fn ite_ce(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        self.obs_ite_call();
        let (mut g, mut h) = (g, h);
        // Arguments equal (or complementary) to the selector collapse.
        if g == f {
            g = Bdd::TRUE;
        } else if g == f.negate() {
            g = Bdd::FALSE;
        }
        if h == f {
            h = Bdd::FALSE;
        } else if h == f.negate() {
            h = Bdd::TRUE;
        }
        // Terminal cases.
        if f.is_true() {
            return g;
        }
        if f.is_false() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_true() && h.is_false() {
            return f;
        }
        if g.is_false() && h.is_true() {
            return f.negate();
        }
        // Canonicalize: a complemented selector swaps branches; a
        // complemented then-branch factors the negation out of the result.
        let mut f = f;
        if f.is_complemented() {
            f = f.negate();
            std::mem::swap(&mut g, &mut h);
        }
        let neg_result = g.is_complemented();
        if neg_result {
            g = g.negate();
            h = h.negate();
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.obs_cache_hit();
            return if neg_result { r.negate() } else { r };
        }
        self.obs_cache_miss();
        let top = self.blevel(f).min(self.blevel(g)).min(self.blevel(h));
        let top_var = self.level2var[top as usize];
        // Cofactors of the *function*: the complement tag on an argument
        // propagates to its children.
        let cof = |m: &BddManager, b: Bdd, phase: bool| -> Bdd {
            if m.blevel(b) != top {
                b
            } else {
                let (lo, hi) = m.cofactors(b);
                if phase {
                    hi
                } else {
                    lo
                }
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.ite_ce(f0, g0, h0);
        let hi = self.ite_ce(f1, g1, h1);
        let r = self.mk(top_var, lo, hi);
        self.ite_cache.insert(key, r);
        if neg_result {
            r.negate()
        } else {
            r
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd::TRUE, g)
    }

    /// Exclusive or.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Equivalence (XNOR).
    pub fn iff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, g, ng)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd::TRUE)
    }

    /// Negated conjunction.
    pub fn nand(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let a = self.and(f, g);
        self.not(a)
    }

    /// Negated disjunction.
    pub fn nor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let a = self.or(f, g);
        self.not(a)
    }

    /// Conjunction of an iterator of functions (true for empty input).
    pub fn and_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        fs.into_iter().fold(Bdd::TRUE, |acc, f| self.and(acc, f))
    }

    /// Disjunction of an iterator of functions (false for empty input).
    pub fn or_all<I: IntoIterator<Item = Bdd>>(&mut self, fs: I) -> Bdd {
        fs.into_iter().fold(Bdd::FALSE, |acc, f| self.or(acc, f))
    }

    /// Restriction (cofactor) `f|v=value`.
    pub fn restrict(&mut self, f: Bdd, v: Var, value: bool) -> Bdd {
        let g = self.constant(value);
        self.compose(f, v, g)
    }

    /// Existential quantification `∃v. f = f|v=0 + f|v=1`.
    pub fn exists(&mut self, f: Bdd, v: Var) -> Bdd {
        self.quantify(f, v, true)
    }

    /// Universal quantification `∀v. f = f|v=0 · f|v=1`.
    pub fn forall(&mut self, f: Bdd, v: Var) -> Bdd {
        self.quantify(f, v, false)
    }

    /// Existentially quantifies every variable in `vs`.
    pub fn exists_all(&mut self, f: Bdd, vs: &[Var]) -> Bdd {
        vs.iter().fold(f, |acc, &v| self.exists(acc, v))
    }

    fn quantify(&mut self, f: Bdd, v: Var, existential: bool) -> Bdd {
        if f.is_const() {
            return f;
        }
        if f.is_complemented() {
            // ∃v.¬f = ¬∀v.f (and dually): recurse on the regular handle
            // so the cache never stores a complemented key.
            let r = self.quantify(f.negate(), v, !existential);
            return r.negate();
        }
        let n = self.node(f);
        if self.lvl(n.var) > self.lvl(v.0) {
            // v does not occur in f (order property).
            return f;
        }
        let key = (f, v.0, existential);
        if let Some(&r) = self.quant_cache.get(&key) {
            self.obs_cache_hit();
            return r;
        }
        self.obs_cache_miss();
        let r = if n.var == v.0 {
            if existential {
                self.or(n.lo, n.hi)
            } else {
                self.and(n.lo, n.hi)
            }
        } else {
            let lo = self.quantify(n.lo, v, existential);
            let hi = self.quantify(n.hi, v, existential);
            self.mk(n.var, lo, hi)
        };
        self.quant_cache.insert(key, r);
        r
    }

    /// Functional composition `f[v := g]`: substitutes the function `g`
    /// for the variable `v` inside `f`.
    ///
    /// This is the workhorse of TBF manipulation: delay-dependent TBF
    /// variables `x(t−k)` are replaced by the resolvent expression
    /// `s·x(0⁺) + s̄·x(0⁻)` via composition (paper §7.2).
    pub fn compose(&mut self, f: Bdd, v: Var, g: Bdd) -> Bdd {
        if f.is_const() {
            return f;
        }
        if f.is_complemented() {
            // ¬f[v := g] = ¬(f[v := g]): keep cache keys regular.
            let r = self.compose(f.negate(), v, g);
            return r.negate();
        }
        let n = self.node(f);
        if self.lvl(n.var) > self.lvl(v.0) {
            return f;
        }
        let key = (f, v.0, g);
        if let Some(&r) = self.compose_cache.get(&key) {
            self.obs_cache_hit();
            return r;
        }
        self.obs_cache_miss();
        let r = if n.var == v.0 {
            self.ite(g, n.hi, n.lo)
        } else {
            let lo = self.compose(n.lo, v, g);
            let hi = self.compose(n.hi, v, g);
            // Levels may collide with g's support, so rebuild through ite
            // on the root variable to preserve ordering.
            let root = self.var(Var(n.var));
            self.ite(root, hi, lo)
        };
        self.compose_cache.insert(key, r);
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup3() -> (BddManager, Bdd, Bdd, Bdd, Var, Var, Var) {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let (vx, vy, vz) = (m.var(x), m.var(y), m.var(z));
        (m, vx, vy, vz, x, y, z)
    }

    /// Exhaustively compares a BDD against a closure over 3 variables.
    fn assert_tt3(m: &BddManager, f: Bdd, spec: impl Fn(bool, bool, bool) -> bool) {
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            assert_eq!(m.eval(f, &a), spec(a[0], a[1], a[2]), "assignment {a:?}");
        }
    }

    #[test]
    fn binary_connectives_match_truth_tables() {
        let (mut m, vx, vy, _vz, ..) = setup3();
        let and = m.and(vx, vy);
        let or = m.or(vx, vy);
        let xor = m.xor(vx, vy);
        let iff = m.iff(vx, vy);
        let imp = m.implies(vx, vy);
        let nand = m.nand(vx, vy);
        let nor = m.nor(vx, vy);
        assert_tt3(&m, and, |x, y, _| x && y);
        assert_tt3(&m, or, |x, y, _| x || y);
        assert_tt3(&m, xor, |x, y, _| x ^ y);
        assert_tt3(&m, iff, |x, y, _| x == y);
        assert_tt3(&m, imp, |x, y, _| !x || y);
        assert_tt3(&m, nand, |x, y, _| !(x && y));
        assert_tt3(&m, nor, |x, y, _| !(x || y));
    }

    #[test]
    fn not_is_involutive() {
        let (mut m, vx, vy, vz, ..) = setup3();
        let t1 = m.xor(vx, vy);
        let f = m.or(t1, vz);
        let nf = m.not(f);
        let nnf = m.not(nf);
        assert_eq!(f, nnf);
        assert_ne!(f, nf);
    }

    #[test]
    fn ite_terminal_shortcuts() {
        let (mut m, vx, vy, ..) = setup3();
        assert_eq!(m.ite(Bdd::TRUE, vx, vy), vx);
        assert_eq!(m.ite(Bdd::FALSE, vx, vy), vy);
        assert_eq!(m.ite(vx, vy, vy), vy);
        assert_eq!(m.ite(vx, Bdd::TRUE, Bdd::FALSE), vx);
        let nx = m.not(vx);
        assert_eq!(m.ite(vx, Bdd::FALSE, Bdd::TRUE), nx);
    }

    #[test]
    fn and_all_or_all() {
        let (mut m, vx, vy, vz, ..) = setup3();
        let all = m.and_all([vx, vy, vz]);
        assert_tt3(&m, all, |x, y, z| x && y && z);
        let any = m.or_all([vx, vy, vz]);
        assert_tt3(&m, any, |x, y, z| x || y || z);
        assert_eq!(m.and_all([]), Bdd::TRUE);
        assert_eq!(m.or_all([]), Bdd::FALSE);
    }

    #[test]
    fn restrict_cofactors() {
        let (mut m, vx, vy, vz, x, ..) = setup3();
        let xy = m.and(vx, vy);
        let f = m.or(xy, vz); // x·y + z
        let f_x1 = m.restrict(f, x, true);
        let f_x0 = m.restrict(f, x, false);
        assert_tt3(&m, f_x1, |_, y, z| y || z);
        assert_tt3(&m, f_x0, |_, _, z| z);
    }

    #[test]
    fn quantification() {
        let (mut m, vx, vy, vz, x, ..) = setup3();
        let xy = m.and(vx, vy);
        let f = m.or(xy, vz);
        let ex = m.exists(f, x);
        let fa = m.forall(f, x);
        assert_tt3(&m, ex, |_, y, z| y || z);
        assert_tt3(&m, fa, |_, _, z| z);
        // Quantifying a variable outside the support is the identity.
        let w = m.new_var();
        assert_eq!(m.exists(f, w), f);
        assert_eq!(m.forall(f, w), f);
    }

    #[test]
    fn exists_all_removes_support() {
        let (mut m, vx, vy, vz, x, y, _z) = setup3();
        let xy = m.xor(vx, vy);
        let f = m.and(xy, vz); // ∃x∃y (x⊕y)·z = z
        let g = m.exists_all(f, &[x, y]);
        assert_eq!(g, vz);
        assert_eq!(m.support(g), vec![Var(2)]);
    }

    #[test]
    fn compose_substitutes_functions() {
        let (mut m, vx, vy, vz, x, ..) = setup3();
        let f = m.xor(vx, vy); // x ⊕ y
        let g = m.and(vy, vz); // y·z
        let h = m.compose(f, x, g); // (y·z) ⊕ y
        assert_tt3(&m, h, |_, y, z| (y && z) ^ y);
    }

    #[test]
    fn compose_with_lower_ordered_replacement() {
        // Replace a *later* variable with a function of an *earlier* one:
        // exercises the order-preserving rebuild path.
        let (mut m, vx, vy, _vz, _x, y, _z) = setup3();
        let f = m.and(vx, vy);
        let h = m.compose(f, y, vx); // x·x = x
        assert_eq!(h, vx);
    }

    #[test]
    fn compose_on_missing_var_is_identity() {
        let (mut m, vx, vy, _vz, _x, _y, z) = setup3();
        let f = m.and(vx, vy);
        let h = m.compose(f, z, Bdd::TRUE);
        assert_eq!(h, f);
    }

    #[test]
    fn de_morgan_holds_canonically() {
        let (mut m, vx, vy, ..) = setup3();
        let lhs = m.nand(vx, vy);
        let nx = m.not(vx);
        let ny = m.not(vy);
        let rhs = m.or(nx, ny);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn ce_not_is_pointer_involutive_and_free() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let f = m.xor(vx, vy);
        let nodes_before = m.node_count();
        let nf = m.not(f);
        assert_eq!(m.node_count(), nodes_before, "negation allocates nothing");
        assert_eq!(m.not(nf), f, "¬¬f is the same handle");
        assert_ne!(f, nf);
    }

    #[test]
    fn ce_connectives_match_truth_tables() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let (vx, vy, vz) = (m.var(x), m.var(y), m.var(z));
        let t1 = m.nand(vx, vy);
        let f = m.xor(t1, vz);
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            assert_eq!(m.eval(f, &a), !(a[0] && a[1]) ^ a[2], "assignment {a:?}");
        }
        // De Morgan canonically, through tagged handles.
        let lhs = m.nand(vx, vy);
        let nx = m.not(vx);
        let ny = m.not(vy);
        let rhs = m.or(nx, ny);
        assert_eq!(lhs, rhs);
        // Quantification and composition through complemented roots.
        let nf = m.not(f);
        let e1 = m.exists(nf, z);
        let a1 = m.forall(f, z);
        let na1 = m.not(a1);
        assert_eq!(e1, na1, "∃z.¬f = ¬∀z.f");
        let sub = m.compose(nf, x, vz);
        let sub2 = m.compose(f, x, vz);
        assert_eq!(sub, m.not(sub2));
    }

    #[test]
    fn shannon_expansion_reconstructs() {
        let (mut m, vx, vy, vz, x, ..) = setup3();
        let xy = m.and(vx, vy);
        let f = m.xor(xy, vz);
        let f1 = m.restrict(f, x, true);
        let f0 = m.restrict(f, x, false);
        let back = m.ite(vx, f1, f0);
        assert_eq!(back, f);
    }
}
