//! # tbf-bdd — Reduced Ordered Binary Decision Diagrams
//!
//! A self-contained ROBDD package sized for exact timing analysis with
//! [Timed Boolean Functions](https://www2.eecs.berkeley.edu/Pubs/TechRpts/1993/2215.html)
//! (Lam, Brayton, Sangiovanni-Vincentelli, UCB/ERL M93/6, 1993). It plays
//! the role CUDD plays in the original work: the delay algorithms compare a
//! circuit's TBF against its static function by building both as BDDs,
//! XOR-ing them, and enumerating cubes of the difference.
//!
//! The package provides:
//!
//! * a [`BddManager`] with a unique table (canonicity) and operation caches,
//! * the usual Boolean operations ([`BddManager::and`], [`BddManager::or`],
//!   [`BddManager::xor`], [`BddManager::not`], [`BddManager::ite`], ...),
//! * cofactor/restriction, functional [composition](BddManager::compose),
//!   and existential/universal quantification,
//! * model counting, [cube enumeration](BddManager::cubes) and
//!   [support](BddManager::support) extraction,
//! * dynamic variable reordering: in-place adjacent
//!   [swaps](BddManager::swap_levels), Rudell [sifting](BddManager::sift),
//!   and an automatic [`ReorderPolicy`] — all without ever invalidating a
//!   [`Bdd`] handle,
//! * a cache-conscious memory subsystem: per-variable open-addressing
//!   unique subtables over a flat node arena, and optional mark-and-sweep
//!   [garbage collection](BddManager::collect_garbage) under a
//!   [`GcPolicy`] — the one operation that *does* invalidate handles,
//!   but only those not reachable from its declared roots or the
//!   [protected stack](BddManager::protect).
//!
//! # Example
//!
//! ```
//! use tbf_bdd::BddManager;
//!
//! let mut m = BddManager::new();
//! let a = m.new_var();
//! let b = m.new_var();
//! let fa = m.var(a);
//! let fb = m.var(b);
//! // f = a XOR b differs from g = a OR b exactly when a AND b.
//! let f = m.xor(fa, fb);
//! let g = m.or(fa, fb);
//! let diff = m.xor(f, g);
//! let ab = m.and(fa, fb);
//! assert_eq!(diff, ab);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cube;
mod gc;
mod limit;
mod manager;
mod node;
mod obs;
mod ops;
mod reorder;
mod transfer;
mod unique;

pub use cube::{Cube, Cubes};
pub use gc::{GcPolicy, GcStats};
pub use limit::{NodeLimitExceeded, OpAbort, OpBudget};
pub use manager::BddManager;
pub use node::{Bdd, Var};
pub use reorder::{ReorderPolicy, ReorderStats};
pub use transfer::{best_order, transfer};
