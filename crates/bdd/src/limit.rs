//! Node-limit and cancellation support: fallible operation variants that
//! abort cleanly when the manager grows past a configured cap or a
//! cooperative cancel signal fires.
//!
//! A single `xor` or quantification between large BDDs can allocate an
//! unbounded number of nodes *inside* one call — external polling of
//! [`node_count`](BddManager::node_count) between calls cannot bound it.
//! The `try_*` variants check the cap at every node allocation and
//! return [`NodeLimitExceeded`]; the manager stays fully consistent
//! (unique table and caches only ever hold canonical entries), so the
//! caller can clear caches, compact, or give up with typed bounds.
//!
//! The `try_*_b` variants additionally poll an [`OpBudget`]'s cancel
//! callback at the same allocation granularity, so a deadline or
//! user-initiated cancellation interrupts a long-running operation
//! *mid-flight* rather than after it completes.  Rate-limiting of any
//! expensive check (e.g. reading the clock) belongs inside the callback;
//! the manager calls it unconditionally.

use std::fmt;

use crate::manager::BddManager;
use crate::node::{Bdd, Var};

/// The manager grew past the cap passed to a `try_*` operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// The cap that was hit.
    pub limit: usize,
}

impl fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD manager exceeded {} nodes", self.limit)
    }
}

impl std::error::Error for NodeLimitExceeded {}

/// Why a budgeted (`try_*_b`) operation stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OpAbort {
    /// The node cap was hit (see [`NodeLimitExceeded`]).
    NodeLimit(NodeLimitExceeded),
    /// The budget's cancel callback reported cancellation.
    Cancelled,
}

impl fmt::Display for OpAbort {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpAbort::NodeLimit(e) => e.fmt(f),
            OpAbort::Cancelled => write!(f, "BDD operation cancelled"),
        }
    }
}

impl std::error::Error for OpAbort {}

impl From<NodeLimitExceeded> for OpAbort {
    fn from(e: NodeLimitExceeded) -> Self {
        OpAbort::NodeLimit(e)
    }
}

/// A per-operation resource budget: a node cap plus an optional
/// cooperative cancel callback, both polled at node-allocation
/// granularity inside the `try_*_b` operations.
///
/// The callback returns `true` to request cancellation.  It is invoked
/// on every allocation attempt, so it must be cheap — callers that need
/// an expensive check (deadlines reading the clock, atomics shared
/// across threads) should rate-limit inside the callback.
#[derive(Clone, Copy)]
pub struct OpBudget<'a> {
    /// Maximum node count before the operation aborts.
    pub max_nodes: usize,
    /// Optional cancellation probe; `true` means "stop now".
    pub cancel: Option<&'a dyn Fn() -> bool>,
}

impl fmt::Debug for OpBudget<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OpBudget")
            .field("max_nodes", &self.max_nodes)
            .field("cancel", &self.cancel.map(|_| "<fn>"))
            .finish()
    }
}

impl OpBudget<'static> {
    /// A budget with only a node cap and no cancellation.
    #[must_use]
    pub fn nodes_only(max_nodes: usize) -> Self {
        OpBudget {
            max_nodes,
            cancel: None,
        }
    }
}

impl<'a> OpBudget<'a> {
    /// A budget with a node cap and a cancel probe.
    #[must_use]
    pub fn with_cancel(max_nodes: usize, cancel: &'a dyn Fn() -> bool) -> Self {
        OpBudget {
            max_nodes,
            cancel: Some(cancel),
        }
    }

    fn check(&self, node_count: usize) -> Result<(), OpAbort> {
        if let Some(cancel) = self.cancel {
            if cancel() {
                return Err(OpAbort::Cancelled);
            }
        }
        if node_count > self.max_nodes {
            return Err(OpAbort::NodeLimit(NodeLimitExceeded {
                limit: self.max_nodes,
            }));
        }
        Ok(())
    }
}

/// Maps an abort from a cancel-free budget back to the legacy error
/// type.  `Cancelled` cannot occur without a callback; fold it into the
/// node-limit error defensively rather than panicking.
fn abort_to_limit(a: OpAbort, limit: usize) -> NodeLimitExceeded {
    match a {
        OpAbort::NodeLimit(e) => e,
        OpAbort::Cancelled => NodeLimitExceeded { limit },
    }
}

impl BddManager {
    fn mk_budgeted(
        &mut self,
        var: u32,
        lo: Bdd,
        hi: Bdd,
        budget: &OpBudget<'_>,
    ) -> Result<Bdd, OpAbort> {
        budget.check(self.node_count())?;
        Ok(self.mk(var, lo, hi))
    }

    /// Negation that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit; the manager is
    /// left consistent and usable.
    pub fn try_not(&mut self, f: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_not_b(f, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// Negation under a full [`OpBudget`] (node cap + cancellation).
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires;
    /// the manager is left consistent and usable.
    pub fn try_not_b(&mut self, f: Bdd, budget: &OpBudget<'_>) -> Result<Bdd, OpAbort> {
        if self.ce {
            // A tag flip allocates nothing, so it cannot exceed a budget.
            return Ok(f.negate());
        }
        if f.is_false() {
            return Ok(Bdd::TRUE);
        }
        if f.is_true() {
            return Ok(Bdd::FALSE);
        }
        if let Some(&r) = self.not_cache.get(&f) {
            self.obs_cache_hit();
            return Ok(r);
        }
        self.obs_cache_miss();
        let n = self.node(f);
        let lo = self.try_not_b(n.lo, budget)?;
        let hi = self.try_not_b(n.hi, budget)?;
        let r = self.mk_budgeted(n.var, lo, hi, budget)?;
        self.not_cache.insert(f, r);
        Ok(r)
    }

    /// If-then-else that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_ite(
        &mut self,
        f: Bdd,
        g: Bdd,
        h: Bdd,
        limit: usize,
    ) -> Result<Bdd, NodeLimitExceeded> {
        self.try_ite_b(f, g, h, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// If-then-else under a full [`OpBudget`].
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires.
    pub fn try_ite_b(
        &mut self,
        f: Bdd,
        g: Bdd,
        h: Bdd,
        budget: &OpBudget<'_>,
    ) -> Result<Bdd, OpAbort> {
        if self.ce {
            return self.try_ite_ce_b(f, g, h, budget);
        }
        self.obs_ite_call();
        if f.is_true() {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        if g.is_false() && h.is_true() {
            return self.try_not_b(f, budget);
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.obs_cache_hit();
            return Ok(r);
        }
        self.obs_cache_miss();
        // Mirrors `ite`: split on the variable at the topmost order
        // position among the three roots.
        let top = self.blevel(f).min(self.blevel(g)).min(self.blevel(h));
        let top_var = self.level2var[top as usize];
        let cof = |m: &BddManager, b: Bdd, phase: bool| -> Bdd {
            if m.blevel(b) != top {
                b
            } else {
                let n = m.node(b);
                if phase {
                    n.hi
                } else {
                    n.lo
                }
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.try_ite_b(f0, g0, h0, budget)?;
        let hi = self.try_ite_b(f1, g1, h1, budget)?;
        let r = self.mk_budgeted(top_var, lo, hi, budget)?;
        self.ite_cache.insert(key, r);
        Ok(r)
    }

    /// [`try_ite_b`](Self::try_ite_b) under complement edges: the exact
    /// budget discipline of the plain mirror with the canonical argument
    /// rewriting of [`ite`](Self::ite)'s complement-edge path.
    fn try_ite_ce_b(
        &mut self,
        f: Bdd,
        g: Bdd,
        h: Bdd,
        budget: &OpBudget<'_>,
    ) -> Result<Bdd, OpAbort> {
        self.obs_ite_call();
        let (mut g, mut h) = (g, h);
        if g == f {
            g = Bdd::TRUE;
        } else if g == f.negate() {
            g = Bdd::FALSE;
        }
        if h == f {
            h = Bdd::FALSE;
        } else if h == f.negate() {
            h = Bdd::TRUE;
        }
        if f.is_true() {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        if g.is_false() && h.is_true() {
            return Ok(f.negate());
        }
        let mut f = f;
        if f.is_complemented() {
            f = f.negate();
            std::mem::swap(&mut g, &mut h);
        }
        let neg_result = g.is_complemented();
        if neg_result {
            g = g.negate();
            h = h.negate();
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            self.obs_cache_hit();
            return Ok(if neg_result { r.negate() } else { r });
        }
        self.obs_cache_miss();
        let top = self.blevel(f).min(self.blevel(g)).min(self.blevel(h));
        let top_var = self.level2var[top as usize];
        let cof = |m: &BddManager, b: Bdd, phase: bool| -> Bdd {
            if m.blevel(b) != top {
                b
            } else {
                let (lo, hi) = m.cofactors(b);
                if phase {
                    hi
                } else {
                    lo
                }
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.try_ite_ce_b(f0, g0, h0, budget)?;
        let hi = self.try_ite_ce_b(f1, g1, h1, budget)?;
        let r = self.mk_budgeted(top_var, lo, hi, budget)?;
        self.ite_cache.insert(key, r);
        Ok(if neg_result { r.negate() } else { r })
    }

    /// XOR that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_xor(&mut self, f: Bdd, g: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_xor_b(f, g, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// XOR under a full [`OpBudget`].
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires.
    pub fn try_xor_b(&mut self, f: Bdd, g: Bdd, budget: &OpBudget<'_>) -> Result<Bdd, OpAbort> {
        let ng = self.try_not_b(g, budget)?;
        self.try_ite_b(f, ng, g, budget)
    }

    /// Conjunction that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_and(&mut self, f: Bdd, g: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_and_b(f, g, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// Conjunction under a full [`OpBudget`].
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires.
    pub fn try_and_b(&mut self, f: Bdd, g: Bdd, budget: &OpBudget<'_>) -> Result<Bdd, OpAbort> {
        self.try_ite_b(f, g, Bdd::FALSE, budget)
    }

    /// Disjunction that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_or(&mut self, f: Bdd, g: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_or_b(f, g, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// Disjunction under a full [`OpBudget`].
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires.
    pub fn try_or_b(&mut self, f: Bdd, g: Bdd, budget: &OpBudget<'_>) -> Result<Bdd, OpAbort> {
        self.try_ite_b(f, Bdd::TRUE, g, budget)
    }

    /// Existential quantification that aborts once the manager exceeds
    /// `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_exists(&mut self, f: Bdd, v: Var, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_exists_b(f, v, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// Existential quantification under a full [`OpBudget`].
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires.
    pub fn try_exists_b(&mut self, f: Bdd, v: Var, budget: &OpBudget<'_>) -> Result<Bdd, OpAbort> {
        self.try_quantify_b(f, v, true, budget)
    }

    /// Budgeted quantification of either polarity. Complemented handles
    /// recurse through `Qv.¬f = ¬Q̄v.f` so the cache only holds regular
    /// keys (plain mode never reaches that branch).
    fn try_quantify_b(
        &mut self,
        f: Bdd,
        v: Var,
        existential: bool,
        budget: &OpBudget<'_>,
    ) -> Result<Bdd, OpAbort> {
        if f.is_const() {
            return Ok(f);
        }
        if f.is_complemented() {
            let r = self.try_quantify_b(f.negate(), v, !existential, budget)?;
            return Ok(r.negate());
        }
        let n = self.node(f);
        if self.lvl(n.var) > self.lvl(v.0) {
            return Ok(f);
        }
        let key = (f, v.0, existential);
        if let Some(&r) = self.quant_cache.get(&key) {
            self.obs_cache_hit();
            return Ok(r);
        }
        self.obs_cache_miss();
        let r = if n.var == v.0 {
            if existential {
                self.try_or_b(n.lo, n.hi, budget)?
            } else {
                self.try_and_b(n.lo, n.hi, budget)?
            }
        } else {
            let lo = self.try_quantify_b(n.lo, v, existential, budget)?;
            let hi = self.try_quantify_b(n.hi, v, existential, budget)?;
            self.mk_budgeted(n.var, lo, hi, budget)?
        };
        self.quant_cache.insert(key, r);
        Ok(r)
    }

    /// Existentially quantifies every variable in `vs`, clearing the
    /// operation caches whenever they outgrow the node table (they can
    /// dominate memory on long quantification chains).
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_exists_all(
        &mut self,
        f: Bdd,
        vs: &[Var],
        limit: usize,
    ) -> Result<Bdd, NodeLimitExceeded> {
        self.try_exists_all_b(f, vs, &OpBudget::nodes_only(limit))
            .map_err(|a| abort_to_limit(a, limit))
    }

    /// Multi-variable existential quantification under a full
    /// [`OpBudget`], with the same cache-pressure relief as
    /// [`try_exists_all`](BddManager::try_exists_all).
    ///
    /// # Errors
    ///
    /// Returns [`OpAbort`] when the cap is hit or cancellation fires.
    pub fn try_exists_all_b(
        &mut self,
        f: Bdd,
        vs: &[Var],
        budget: &OpBudget<'_>,
    ) -> Result<Bdd, OpAbort> {
        let mut acc = f;
        for &v in vs {
            acc = self.try_exists_b(acc, v, budget)?;
            // Cache entries cost more than nodes; clear well before the
            // caches could rival the node-table budget.
            if self.op_cache_len() > (budget.max_nodes / 4).max(1_000_000) {
                self.clear_op_caches();
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// A function whose BDD is exponential under the chosen (bad)
    /// interleaving: Σ xᵢ·y_{σ(i)} with the x's first and y's last.
    fn hard_function(m: &mut BddManager, n: usize) -> (Bdd, Vec<Var>) {
        let xs: Vec<Var> = (0..n).map(|_| m.new_var()).collect();
        let ys: Vec<Var> = (0..n).map(|_| m.new_var()).collect();
        let mut acc = Bdd::FALSE;
        for i in 0..n {
            let (vx, vy) = (m.var(xs[i]), m.var(ys[n - 1 - i]));
            let t = m.and(vx, vy);
            acc = m.xor(acc, t);
        }
        (acc, ys)
    }

    #[test]
    fn try_ops_match_infallible_under_generous_limit() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let a = m.xor(vx, vy);
        let b = m.try_xor(vx, vy, 1_000_000).unwrap();
        assert_eq!(a, b);
        let c = m.and(vx, vy);
        let d = m.try_and(vx, vy, 1_000_000).unwrap();
        assert_eq!(c, d);
        let e = m.exists(a, x);
        let f = m.try_exists(a, x, 1_000_000).unwrap();
        assert_eq!(e, f);
        let nf = m.not(a);
        let ng = m.try_not(a, 1_000_000).unwrap();
        assert_eq!(nf, ng);
    }

    #[test]
    fn tiny_limit_aborts_cleanly() {
        let mut m = BddManager::new();
        let (f, _) = hard_function(&mut m, 6);
        let baseline = m.node_count();
        let g = {
            let vars: Vec<Var> = (0..12).map(crate::node::Var).collect();
            let mut acc = f;
            for v in vars {
                let r = m.try_exists(acc, v, baseline + 4);
                match r {
                    Ok(x) => acc = x,
                    Err(e) => {
                        assert_eq!(e.limit, baseline + 4);
                        return; // aborted as intended
                    }
                }
            }
            acc
        };
        // If it never aborted the result must still be canonical.
        let _ = g;
    }

    #[test]
    fn manager_stays_usable_after_abort() {
        let mut m = BddManager::new();
        let (f, ys) = hard_function(&mut m, 8);
        let cap = m.node_count() + 2;
        let err = m.try_exists_all(f, &ys, cap);
        if err.is_ok() {
            // Structure happened to stay tiny; force an abort differently.
            return;
        }
        // The manager must still produce correct results afterwards.
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let g = m.and(vx, vy);
        assert!(m.eval(g, &{
            let mut a = vec![false; m.var_count()];
            a[x.index()] = true;
            a[y.index()] = true;
            a
        }));
    }

    #[test]
    fn cancel_interrupts_mid_operation() {
        // The probe fires after a handful of allocations — well before a
        // fresh XOR over two disjoint carry chains could finish — so the
        // abort must happen *inside* the op, not after it.
        let mut m = BddManager::new();
        let (f, _) = hard_function(&mut m, 8);
        let (g, _) = hard_function(&mut m, 8);
        m.clear_op_caches();
        let calls = Cell::new(0usize);
        let probe = || {
            calls.set(calls.get() + 1);
            calls.get() > 5
        };
        let budget = OpBudget::with_cancel(usize::MAX, &probe);
        let r = m.try_xor_b(f, g, &budget);
        assert_eq!(r, Err(OpAbort::Cancelled));
        assert!(calls.get() >= 6, "probe was polled {} times", calls.get());

        // The manager stays usable.
        let x = m.new_var();
        let vx = m.var(x);
        let nx = m.not(vx);
        assert!(m.xor(vx, nx).is_true());
    }

    #[test]
    fn cancel_never_fires_when_probe_is_false() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let probe = || false;
        let budget = OpBudget::with_cancel(1_000_000, &probe);
        let a = m.try_xor_b(vx, vy, &budget).unwrap();
        assert_eq!(a, m.xor(vx, vy));
    }

    #[test]
    fn budgeted_node_limit_matches_legacy() {
        let mut m = BddManager::new();
        let (f, ys) = hard_function(&mut m, 8);
        let cap = m.node_count() + 2;
        let legacy = m.try_exists_all(f, &ys, cap);
        let mut m2 = BddManager::new();
        let (f2, ys2) = hard_function(&mut m2, 8);
        let budgeted = m2.try_exists_all_b(f2, &ys2, &OpBudget::nodes_only(cap));
        match (legacy, budgeted) {
            (Err(e), Err(OpAbort::NodeLimit(e2))) => assert_eq!(e.limit, e2.limit),
            (Ok(a), Ok(b)) => assert_eq!(a, b),
            (a, b) => panic!("divergence: {a:?} vs {b:?}"),
        }
    }
}
