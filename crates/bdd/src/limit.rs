//! Node-limit support: fallible operation variants that abort cleanly
//! when the manager grows past a configured cap.
//!
//! A single `xor` or quantification between large BDDs can allocate an
//! unbounded number of nodes *inside* one call — external polling of
//! [`node_count`](BddManager::node_count) between calls cannot bound it.
//! The `try_*` variants check the cap at every node allocation and
//! return [`NodeLimitExceeded`]; the manager stays fully consistent
//! (unique table and caches only ever hold canonical entries), so the
//! caller can clear caches, compact, or give up with typed bounds.

use std::fmt;

use crate::manager::BddManager;
use crate::node::{Bdd, Var, TERMINAL_LEVEL};

/// The manager grew past the cap passed to a `try_*` operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeLimitExceeded {
    /// The cap that was hit.
    pub limit: usize,
}

impl fmt::Display for NodeLimitExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BDD manager exceeded {} nodes", self.limit)
    }
}

impl std::error::Error for NodeLimitExceeded {}

impl BddManager {
    fn mk_limited(
        &mut self,
        level: u32,
        lo: Bdd,
        hi: Bdd,
        limit: usize,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if self.node_count() > limit {
            return Err(NodeLimitExceeded { limit });
        }
        Ok(self.mk(level, lo, hi))
    }

    /// Negation that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit; the manager is
    /// left consistent and usable.
    pub fn try_not(&mut self, f: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_false() {
            return Ok(Bdd::TRUE);
        }
        if f.is_true() {
            return Ok(Bdd::FALSE);
        }
        if let Some(&r) = self.not_cache.get(&f) {
            return Ok(r);
        }
        let n = self.node(f);
        let lo = self.try_not(n.lo, limit)?;
        let hi = self.try_not(n.hi, limit)?;
        let r = self.mk_limited(n.level, lo, hi, limit)?;
        self.not_cache.insert(f, r);
        Ok(r)
    }

    /// If-then-else that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_ite(
        &mut self,
        f: Bdd,
        g: Bdd,
        h: Bdd,
        limit: usize,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_true() {
            return Ok(g);
        }
        if f.is_false() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g.is_true() && h.is_false() {
            return Ok(f);
        }
        if g.is_false() && h.is_true() {
            return self.try_not(f, limit);
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return Ok(r);
        }
        let level = |m: &BddManager, b: Bdd| -> u32 {
            if b.is_const() {
                TERMINAL_LEVEL
            } else {
                m.node(b).level
            }
        };
        let top = level(self, f).min(level(self, g)).min(level(self, h));
        let cof = |m: &BddManager, b: Bdd, phase: bool| -> Bdd {
            if b.is_const() || m.node(b).level != top {
                b
            } else {
                let n = m.node(b);
                if phase {
                    n.hi
                } else {
                    n.lo
                }
            }
        };
        let (f0, f1) = (cof(self, f, false), cof(self, f, true));
        let (g0, g1) = (cof(self, g, false), cof(self, g, true));
        let (h0, h1) = (cof(self, h, false), cof(self, h, true));
        let lo = self.try_ite(f0, g0, h0, limit)?;
        let hi = self.try_ite(f1, g1, h1, limit)?;
        let r = self.mk_limited(top, lo, hi, limit)?;
        self.ite_cache.insert(key, r);
        Ok(r)
    }

    /// XOR that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_xor(&mut self, f: Bdd, g: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        let ng = self.try_not(g, limit)?;
        self.try_ite(f, ng, g, limit)
    }

    /// Conjunction that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_and(&mut self, f: Bdd, g: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_ite(f, g, Bdd::FALSE, limit)
    }

    /// Disjunction that aborts once the manager exceeds `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_or(&mut self, f: Bdd, g: Bdd, limit: usize) -> Result<Bdd, NodeLimitExceeded> {
        self.try_ite(f, Bdd::TRUE, g, limit)
    }

    /// Existential quantification that aborts once the manager exceeds
    /// `limit` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_exists(
        &mut self,
        f: Bdd,
        v: Var,
        limit: usize,
    ) -> Result<Bdd, NodeLimitExceeded> {
        if f.is_const() {
            return Ok(f);
        }
        let n = self.node(f);
        if n.level > v.0 {
            return Ok(f);
        }
        let key = (f, v.0, true);
        if let Some(&r) = self.quant_cache.get(&key) {
            return Ok(r);
        }
        let r = if n.level == v.0 {
            self.try_or(n.lo, n.hi, limit)?
        } else {
            let lo = self.try_exists(n.lo, v, limit)?;
            let hi = self.try_exists(n.hi, v, limit)?;
            self.mk_limited(n.level, lo, hi, limit)?
        };
        self.quant_cache.insert(key, r);
        Ok(r)
    }

    /// Existentially quantifies every variable in `vs`, clearing the
    /// operation caches whenever they outgrow the node table (they can
    /// dominate memory on long quantification chains).
    ///
    /// # Errors
    ///
    /// Returns [`NodeLimitExceeded`] when the cap is hit.
    pub fn try_exists_all(
        &mut self,
        f: Bdd,
        vs: &[Var],
        limit: usize,
    ) -> Result<Bdd, NodeLimitExceeded> {
        let mut acc = f;
        for &v in vs {
            acc = self.try_exists(acc, v, limit)?;
            // Cache entries cost more than nodes; clear well before the
            // caches could rival the node-table budget.
            if self.op_cache_len() > (limit / 4).max(1_000_000) {
                self.clear_op_caches();
            }
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A function whose BDD is exponential under the chosen (bad)
    /// interleaving: Σ xᵢ·y_{σ(i)} with the x's first and y's last.
    fn hard_function(m: &mut BddManager, n: usize) -> (Bdd, Vec<Var>) {
        let xs: Vec<Var> = (0..n).map(|_| m.new_var()).collect();
        let ys: Vec<Var> = (0..n).map(|_| m.new_var()).collect();
        let mut acc = Bdd::FALSE;
        for i in 0..n {
            let (vx, vy) = (m.var(xs[i]), m.var(ys[n - 1 - i]));
            let t = m.and(vx, vy);
            acc = m.xor(acc, t);
        }
        (acc, ys)
    }

    #[test]
    fn try_ops_match_infallible_under_generous_limit() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let a = m.xor(vx, vy);
        let b = m.try_xor(vx, vy, 1_000_000).unwrap();
        assert_eq!(a, b);
        let c = m.and(vx, vy);
        let d = m.try_and(vx, vy, 1_000_000).unwrap();
        assert_eq!(c, d);
        let e = m.exists(a, x);
        let f = m.try_exists(a, x, 1_000_000).unwrap();
        assert_eq!(e, f);
        let nf = m.not(a);
        let ng = m.try_not(a, 1_000_000).unwrap();
        assert_eq!(nf, ng);
    }

    #[test]
    fn tiny_limit_aborts_cleanly() {
        let mut m = BddManager::new();
        let (f, _) = hard_function(&mut m, 6);
        let baseline = m.node_count();
        let g = {
            let vars: Vec<Var> = (0..12).map(crate::node::Var).collect();
            let mut acc = f;
            for v in vars {
                let r = m.try_exists(acc, v, baseline + 4);
                match r {
                    Ok(x) => acc = x,
                    Err(e) => {
                        assert_eq!(e.limit, baseline + 4);
                        return; // aborted as intended
                    }
                }
            }
            acc
        };
        // If it never aborted the result must still be canonical.
        let _ = g;
    }

    #[test]
    fn manager_stays_usable_after_abort() {
        let mut m = BddManager::new();
        let (f, ys) = hard_function(&mut m, 8);
        let cap = m.node_count() + 2;
        let err = m.try_exists_all(f, &ys, cap);
        if err.is_ok() {
            // Structure happened to stay tiny; force an abort differently.
            return;
        }
        // The manager must still produce correct results afterwards.
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let g = m.and(vx, vy);
        assert!(m.eval(g, &{
            let mut a = vec![false; m.var_count()];
            a[x.index()] = true;
            a[y.index()] = true;
            a
        }));
    }
}
