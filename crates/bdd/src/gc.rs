//! Mark-and-sweep garbage collection over the node arena.
//!
//! The arena was historically append-only: every node ever interned
//! stayed resident until the manager was dropped, so transient garbage
//! from sifting reorders (every [`swap_levels`](crate::BddManager::swap_levels)
//! rewrite orphans split nodes) and from dead query intermediates could
//! only be reclaimed by rebuilding the whole manager. This module adds
//! in-place reclamation:
//!
//! * **Roots.** A sweep keeps exactly the nodes reachable from the
//!   caller-supplied root handles plus the manager's *protected stack*
//!   (see [`protect`](crate::BddManager::protect)) — an explicit
//!   handle registry the engine pushes transient frame results onto
//!   while a build is in flight. Reachability follows regular (untagged)
//!   indices, so a `{f, ¬f}` complement pair is one node and marking is
//!   complement-edge aware for free.
//! * **Sweep.** Dead slots get the [`FREE_LEVEL`] sentinel payload and
//!   go onto a free list that [`mk`](crate::BddManager::mk) pops before
//!   growing the arena; live slots are reinserted into their variable's
//!   unique subtable (right-sizing each one) and re-listed in
//!   `var_nodes`. The operation caches drop every entry touching a dead
//!   node (a freed slot may be reused by a different function) and keep
//!   the all-survivor rest — coherent because canonicity lives in the
//!   unique table, not the memo tables.
//! * **Determinism.** Whether a sweep fires depends only on the policy
//!   and the arena population — logical quantities identical at every
//!   thread count — and slot reuse order is fixed (ascending), so GC
//!   never perturbs report bytes. Handle *values* after a sweep may
//!   differ from a GC-off run, but canonicity is per-manager and no
//!   result is derived from raw slot numbers.

use crate::manager::BddManager;
use crate::node::{Bdd, Node, FREE_LEVEL, TERMINAL_LEVEL};

/// When the manager collects garbage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GcPolicy {
    /// Never collect (the seed behaviour): the arena is append-only and
    /// only a full manager rebuild reclaims memory.
    #[default]
    None,
    /// Sweep at [`maybe_gc`](BddManager::maybe_gc) safe points once the
    /// manager holds at least `trigger_nodes` occupied nodes (live +
    /// not-yet-swept dead); after each sweep the trigger re-arms at four
    /// times the surviving population (never below `trigger_nodes`), so
    /// sweep cost stays amortized against allocation work.
    OnPressure {
        /// Occupied node count at which the next sweep fires.
        trigger_nodes: usize,
    },
}

/// Cumulative garbage-collection effort of one manager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Mark-and-sweep passes run.
    pub sweeps: u64,
    /// Nodes reclaimed across all sweeps.
    pub reclaimed: u64,
}

impl BddManager {
    /// Installs the garbage-collection policy (and arms its trigger).
    pub fn set_gc_policy(&mut self, policy: GcPolicy) {
        self.gc_policy = policy;
        self.gc_trigger = match policy {
            GcPolicy::None => usize::MAX,
            GcPolicy::OnPressure { trigger_nodes } => trigger_nodes.max(1),
        };
    }

    /// The installed garbage-collection policy.
    pub fn gc_policy(&self) -> GcPolicy {
        self.gc_policy
    }

    /// Whether any sweep can ever fire automatically.
    pub fn gc_enabled(&self) -> bool {
        self.gc_policy != GcPolicy::None
    }

    /// Cumulative sweep/reclaim counters.
    pub fn gc_stats(&self) -> GcStats {
        self.gc_stats
    }

    /// Pushes `b` onto the protected stack: the node (and everything it
    /// reaches) survives every sweep until a matching
    /// [`truncate_protected`](Self::truncate_protected). The stack is a
    /// frame discipline, not a refcount — push on entering a scope that
    /// holds handles no root list mentions, truncate on leaving it.
    pub fn protect(&mut self, b: Bdd) {
        self.protected.push(b);
    }

    /// Current protected-stack depth (pair with
    /// [`truncate_protected`](Self::truncate_protected)).
    pub fn protected_len(&self) -> usize {
        self.protected.len()
    }

    /// Pops the protected stack back to `len` (a value previously
    /// returned by [`protected_len`](Self::protected_len)).
    pub fn truncate_protected(&mut self, len: usize) {
        self.protected.truncate(len);
    }

    /// `true` when the policy is `OnPressure` and the arena has reached
    /// the trigger, i.e. the next [`maybe_gc`](Self::maybe_gc) call will
    /// sweep. Lets callers avoid collecting a root set when nothing
    /// would happen.
    pub fn gc_pending(&self) -> bool {
        // Pressure is *occupied* nodes (live + not-yet-swept dead), the
        // same measure the re-arm below is computed from. Arena slots
        // would be wrong: they never shrink across a sweep, so a trigger
        // once crossed would stay crossed and every safe point would
        // sweep again for nothing.
        matches!(self.gc_policy, GcPolicy::OnPressure { .. })
            && self.node_count() >= self.gc_trigger
    }

    /// Runs a sweep if the policy's pressure trigger has fired; returns
    /// the number of nodes reclaimed (0 when no sweep ran). Nodes
    /// reachable from `roots` or the protected stack survive; every
    /// other handle is invalidated.
    pub fn maybe_gc(&mut self, roots: &[Bdd]) -> usize {
        match self.gc_policy {
            GcPolicy::None => 0,
            GcPolicy::OnPressure { trigger_nodes } => {
                if !self.gc_pending() {
                    return 0;
                }
                let reclaimed = self.collect_garbage(roots);
                // Re-arm at twice the survivors: a sweep then only fires
                // when at least half the occupied nodes are garbage, so
                // its O(arena + caches) cost is amortized against real
                // reclamation. (A laxer multiple lets sift garbage pile
                // up and every adjacent swap pays for scanning it — 4×
                // measured an order of magnitude slower under pressure
                // reordering on the bypass-adder corpus rows.)
                self.gc_trigger = trigger_nodes.max(self.node_count().saturating_mul(2));
                reclaimed
            }
        }
    }

    /// Unconditional mark-and-sweep: frees every node not reachable from
    /// `roots` ∪ the protected stack, returning how many were reclaimed.
    ///
    /// Freed slots are reused by later `mk` calls (lowest index first);
    /// the unique subtables are rebuilt to exactly the survivors and the
    /// operation caches are purged of entries touching dead nodes
    /// (all-survivor entries keep their memoized work).
    /// Handles to surviving nodes — including complemented ones — remain
    /// valid and canonical; handles to freed nodes must not be used
    /// again.
    pub fn collect_garbage(&mut self, roots: &[Bdd]) -> usize {
        let arena = self.nodes.len();
        // Mark: arena-index bitmap, complement tags stripped so a {f, ¬f}
        // pair marks its single shared node once.
        let mut mark = vec![false; arena];
        mark[0] = true; // the terminal is always live
        let mut stack: Vec<u32> = Vec::new();
        for &r in roots.iter().chain(self.protected.iter()) {
            let i = r.index();
            if !mark[i] {
                mark[i] = true;
                stack.push(i as u32);
            }
        }
        while let Some(i) = stack.pop() {
            let n = self.nodes[i as usize];
            debug_assert_ne!(n.var, FREE_LEVEL, "root set reaches a freed slot");
            for c in [n.lo, n.hi] {
                let j = c.index();
                if !mark[j] {
                    mark[j] = true;
                    stack.push(j as u32);
                }
            }
        }
        // Sweep: rebuild the subtables and per-variable slot lists from
        // the survivors (ascending arena order — deterministic), collect
        // the dead onto the free list (ascending pop order).
        self.unique.clear_all();
        for list in &mut self.var_nodes {
            list.clear();
        }
        self.free.clear();
        let mut reclaimed = 0usize;
        for (i, &live) in mark.iter().enumerate().skip(1) {
            if live {
                let n = self.nodes[i];
                debug_assert_ne!(n.var, TERMINAL_LEVEL);
                self.unique.insert(n.var, i as u32, &self.nodes);
                self.var_nodes[n.var as usize].push(i as u32);
            } else {
                if self.nodes[i].var != FREE_LEVEL {
                    reclaimed += 1;
                }
                self.nodes[i] = Node {
                    var: FREE_LEVEL,
                    lo: Bdd::TRUE,
                    hi: Bdd::TRUE,
                };
                self.free.push(i as u32);
            }
        }
        // Pop order is LIFO: reverse so reuse fills low slots first.
        self.free.reverse();
        // Op caches: entries whose operands and result all survived stay
        // correct (handles are stable and functions unchanged), and
        // keeping them preserves memoized work across the sweep. Any
        // entry touching a freed slot must go — the slot can be reused
        // by a *different* function, turning a stale hit into a wrong
        // answer. Which entries survive is a deterministic set, so
        // results stay canonical either way.
        let live = |b: Bdd| mark[b.index()];
        self.ite_cache
            .retain(|&(f, g, h), r| live(f) && live(g) && live(h) && live(*r));
        self.not_cache.retain(|&f, r| live(f) && live(*r));
        self.quant_cache.retain(|&(f, _, _), r| live(f) && live(*r));
        self.compose_cache
            .retain(|&(f, _, g), r| live(f) && live(g) && live(*r));
        self.gc_stats.sweeps += 1;
        self.gc_stats.reclaimed += reclaimed as u64;
        self.obs_gc_sweep(reclaimed as u64);
        reclaimed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_reclaims_unreachable_nodes_and_preserves_roots() {
        for ce in [false, true] {
            let mut m = BddManager::with_complement_edges(ce);
            let x = m.new_var();
            let y = m.new_var();
            let z = m.new_var();
            let (vx, vy, vz) = (m.var(x), m.var(y), m.var(z));
            let keep = m.xor(vx, vy);
            let dead = {
                let t = m.and(vy, vz);
                m.or(t, vx)
            };
            assert!(!dead.is_const());
            let before = m.node_count();
            let reclaimed = m.collect_garbage(&[keep]);
            assert!(reclaimed > 0, "ce={ce}: some garbage must exist");
            assert_eq!(m.node_count(), before - reclaimed);
            assert_eq!(m.arena_size(), before, "slots are reused, not dropped");
            // The kept function still evaluates correctly…
            assert!(m.eval(keep, &[true, false, false]));
            assert!(!m.eval(keep, &[true, true, false]));
            // …and canonicity holds: rebuilding it returns the same handle.
            let (vx, vy) = (m.var(x), m.var(y));
            assert_eq!(m.xor(vx, vy), keep);
        }
    }

    #[test]
    fn freed_slots_are_reused_before_the_arena_grows() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let keep = m.and(vx, vy);
        let _dead = m.xor(vx, vy);
        let arena = m.arena_size();
        let reclaimed = m.collect_garbage(&[keep, vx, vy]);
        assert!(reclaimed > 0);
        // Rebuilding a same-size function must fit in the freed slots.
        let (vx, vy) = (m.var(x), m.var(y));
        let _back = m.xor(vx, vy);
        assert_eq!(m.arena_size(), arena, "no growth while free slots exist");
    }

    #[test]
    fn protected_stack_shields_unrooted_handles() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let shielded = m.xor(vx, vy);
        let depth = m.protected_len();
        m.protect(shielded);
        m.collect_garbage(&[]);
        assert!(m.eval(shielded, &[true, false]));
        let (vx, vy) = (m.var(x), m.var(y));
        assert_eq!(m.xor(vx, vy), shielded, "protected node survived");
        m.truncate_protected(depth);
        let reclaimed = m.collect_garbage(&[]);
        assert!(reclaimed > 0, "unprotected now, so it is garbage");
    }

    #[test]
    fn maybe_gc_respects_policy_and_rearms() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let keep = m.and(vx, vy);
        let _dead = m.or(vx, vy);
        // Policy None: never sweeps.
        assert_eq!(m.maybe_gc(&[keep]), 0);
        assert_eq!(m.gc_stats().sweeps, 0);
        // Tiny trigger: sweeps immediately, then re-arms above the
        // current arena so the next call is a no-op.
        m.set_gc_policy(GcPolicy::OnPressure { trigger_nodes: 1 });
        let reclaimed = m.maybe_gc(&[keep, vx, vy]);
        assert!(reclaimed > 0);
        assert_eq!(m.gc_stats().sweeps, 1);
        assert_eq!(m.maybe_gc(&[keep, vx, vy]), 0, "re-armed trigger");
        assert_eq!(m.gc_stats().sweeps, 1);
        assert_eq!(m.gc_stats().reclaimed, reclaimed as u64);
    }

    #[test]
    fn sweep_preserves_complement_pair_sharing() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let f = m.xor(vx, vy);
        let nf = m.not(f);
        // Root only the complemented handle: the shared node must
        // survive and serve both polarities.
        m.collect_garbage(&[nf, vx, vy]);
        assert!(m.eval(f, &[true, false]));
        assert!(!m.eval(nf, &[true, false]));
        let (vx, vy) = (m.var(x), m.var(y));
        assert_eq!(m.xor(vx, vy), f);
    }
}
