//! Cube (implicant) enumeration.
//!
//! The exact-delay algorithms need every cube of the XOR BDD
//! `BDD(f(t)) ⊕ BDD(f(∞))` to derive the linear constraints induced by the
//! resolvent literals it contains (paper §7.2: literal 1 → `t > Σdᵢ`,
//! literal 0 → `t < Σdᵢ`, absent → unconstrained).

use crate::manager::BddManager;
use crate::node::{Bdd, Var};

/// One cube (product term) of a BDD: a partial assignment along a path
/// from the root to the `1` terminal. Variables not mentioned are
/// unconstrained ("literal 2" in the paper's espresso-style notation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cube {
    literals: Vec<(Var, bool)>,
}

impl Cube {
    /// The literals of this cube in ascending variable order.
    pub fn literals(&self) -> &[(Var, bool)] {
        &self.literals
    }

    /// The phase of `v` in this cube, or `None` if unconstrained.
    pub fn phase(&self, v: Var) -> Option<bool> {
        self.literals.iter().find(|(w, _)| *w == v).map(|&(_, p)| p)
    }

    /// Number of constrained variables.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True if no variable is constrained (the tautology cube).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }
}

impl BddManager {
    /// Iterates over the cubes of `f` (one per path to the `1` terminal).
    ///
    /// The union of the returned cubes is exactly `f`; the cubes are
    /// pairwise disjoint. An empty iterator means `f` is unsatisfiable;
    /// a single empty cube means `f` is the tautology.
    ///
    /// # Example
    ///
    /// ```
    /// use tbf_bdd::BddManager;
    /// let mut m = BddManager::new();
    /// let x = m.new_var();
    /// let y = m.new_var();
    /// let (vx, vy) = (m.var(x), m.var(y));
    /// let f = m.xor(vx, vy);
    /// let cubes: Vec<_> = m.cubes(f).collect();
    /// assert_eq!(cubes.len(), 2);
    /// for c in &cubes {
    ///     assert_eq!(c.len(), 2); // both x and y constrained, opposite phases
    ///     assert_ne!(c.phase(x), c.phase(y));
    /// }
    /// ```
    pub fn cubes(&self, f: Bdd) -> Cubes<'_> {
        Cubes {
            manager: self,
            stack: if f.is_false() {
                Vec::new()
            } else {
                vec![(f, Vec::new())]
            },
        }
    }

    /// Returns one satisfying cube of `f`, or `None` if `f` is false.
    ///
    /// Prefers short paths greedily but makes no minimality guarantee.
    /// The result depends on the current variable order; use
    /// [`min_sat_cube`](Self::min_sat_cube) when an order-independent
    /// answer is required.
    pub fn any_sat_cube(&self, f: Bdd) -> Option<Cube> {
        self.cubes(f).next()
    }

    /// The canonical satisfying cube of `f`: constrains every support
    /// variable, choosing `false` wherever a satisfying completion
    /// exists. Extended with `false` defaults
    /// ([`cube_to_assignment`](Self::cube_to_assignment)) it is the
    /// lexicographically smallest satisfying assignment in variable
    /// *identity* order — the same whatever the current variable order.
    pub fn min_sat_cube(&mut self, f: Bdd) -> Option<Cube> {
        if f.is_false() {
            return None;
        }
        let support = self.support(f); // ascending Var::index
        let mut literals = Vec::with_capacity(support.len());
        let mut cur = f;
        for v in support {
            let lo = self.restrict(cur, v, false);
            if lo.is_false() {
                literals.push((v, true));
                cur = self.restrict(cur, v, true);
            } else {
                literals.push((v, false));
                cur = lo;
            }
        }
        debug_assert!(cur.is_true());
        Some(Cube { literals })
    }

    /// Extends a cube to a full assignment over `n_vars` variables, filling
    /// unconstrained positions with `false`.
    ///
    /// # Panics
    ///
    /// Panics if the cube constrains a variable with index `>= n_vars`.
    pub fn cube_to_assignment(&self, cube: &Cube, n_vars: usize) -> Vec<bool> {
        let mut a = vec![false; n_vars];
        for &(v, phase) in cube.literals() {
            a[v.index()] = phase;
        }
        a
    }
}

/// Iterator over the cubes of a BDD. Created by
/// [`BddManager::cubes`].
pub struct Cubes<'a> {
    manager: &'a BddManager,
    stack: Vec<(Bdd, Vec<(Var, bool)>)>,
}

impl Iterator for Cubes<'_> {
    type Item = Cube;

    fn next(&mut self) -> Option<Cube> {
        while let Some((b, path)) = self.stack.pop() {
            if b.is_true() {
                // Paths descend in order-position sequence; sort by
                // variable identity so callers always see ascending
                // `Var::index` regardless of the current order.
                let mut literals = path;
                literals.sort_unstable_by_key(|&(v, _)| v);
                return Some(Cube { literals });
            }
            if b.is_false() {
                continue;
            }
            // `cofactors` pushes the complement tag of `b` down onto the
            // children, so the paths enumerated are those of the denoted
            // function, not of the regular representative.
            let (lo, hi) = self.manager.cofactors(b);
            let v = Var(self.manager.node(b).var);
            if !hi.is_false() {
                let mut p = path.clone();
                p.push((v, true));
                self.stack.push((hi, p));
            }
            if !lo.is_false() {
                let mut p = path;
                p.push((v, false));
                self.stack.push((lo, p));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cubes_of_constants() {
        let m = BddManager::new();
        assert_eq!(m.cubes(Bdd::FALSE).count(), 0);
        let all: Vec<_> = m.cubes(Bdd::TRUE).collect();
        assert_eq!(all.len(), 1);
        assert!(all[0].is_empty());
        assert!(m.any_sat_cube(Bdd::FALSE).is_none());
    }

    #[test]
    fn cubes_partition_the_onset() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let (vx, vy, vz) = (m.var(x), m.var(y), m.var(z));
        let xy = m.and(vx, vy);
        let f = m.or(xy, vz);
        // Verify the union of the cubes is f and cubes are disjoint by
        // evaluating all 8 assignments.
        let cubes: Vec<_> = m.cubes(f).collect();
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let in_f = m.eval(f, &a);
            let covering = cubes
                .iter()
                .filter(|c| c.literals().iter().all(|&(v, phase)| a[v.index()] == phase))
                .count();
            assert_eq!(covering, usize::from(in_f), "assignment {a:?}");
        }
    }

    #[test]
    fn phase_lookup() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let vx = m.var(x);
        let ny = m.nvar(y);
        let f = m.and(vx, ny);
        let c = m.any_sat_cube(f).expect("satisfiable");
        assert_eq!(c.phase(x), Some(true));
        assert_eq!(c.phase(y), Some(false));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cube_to_assignment_fills_defaults() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let _y = m.new_var();
        let z = m.new_var();
        let vx = m.var(x);
        let nz = m.nvar(z);
        let f = m.and(vx, nz);
        let c = m.any_sat_cube(f).expect("satisfiable");
        let a = m.cube_to_assignment(&c, 3);
        assert_eq!(a, vec![true, false, false]);
        assert!(m.eval(f, &a));
    }

    #[test]
    fn every_cube_satisfies_f() {
        let mut m = BddManager::new();
        let vars: Vec<_> = (0..5).map(|_| m.new_var()).collect();
        let lits: Vec<_> = vars.iter().map(|&v| m.var(v)).collect();
        let t0 = m.and(lits[0], lits[1]);
        let t1 = m.xor(lits[2], lits[3]);
        let t2 = m.or(t0, t1);
        let f = m.and(t2, lits[4]);
        for c in m.cubes(f) {
            let a = m.cube_to_assignment(&c, 5);
            assert!(m.eval(f, &a));
        }
    }
}
