//! Per-variable open-addressing unique subtables.
//!
//! The manager's unique table is split into one subtable per variable,
//! each an open-addressing array of **arena slot indices** over the flat
//! node arena. Splitting per variable means:
//!
//! * `mk` probes one small, cache-resident array instead of a global
//!   SipHash map: the key is hashed with a single Fibonacci multiply and
//!   linear probing walks consecutive `u32` slots (one cache line holds
//!   16 of them);
//! * `swap_levels(l)` only ever touches the two subtables of the
//!   swapped variables — the other variables' tables are untouched by
//!   construction, not by accident;
//! * capacity tracks the *live* population of each variable: deletions
//!   use backward-shift compaction (no tombstones), and
//!   [`SubTable::maybe_shrink`] gives memory back after sift churn, so a
//!   subtable's capacity stays bounded by a constant factor of its
//!   entries (`props_reorder`'s repeated-sift regression test pins
//!   this).
//!
//! The subtable stores slot indices only; node payloads `(lo, hi)` live
//! in the arena and every operation takes `&[Node]` to compare keys.
//! This keeps the entry size at 4 bytes and lets the manager
//! borrow-split `self.unique` against `self.nodes`.

use crate::node::{Bdd, Node};

/// Vacant-slot marker. Arena slot 0 is the terminal, which is never
/// interned, so reserving `u32::MAX` costs nothing real.
const EMPTY: u32 = u32::MAX;

/// Smallest non-empty capacity (a power of two).
const MIN_CAP: usize = 8;

/// Fibonacci mix of a node key `(lo, hi)`. The two raw handles are
/// packed into 64 bits and multiplied by 2⁶⁴/φ; the high bits (taken by
/// the caller via a shift) are well distributed even for the
/// consecutive, low-entropy handle values an arena produces.
#[inline]
fn mix(lo: Bdd, hi: Bdd) -> u64 {
    let x = (u64::from(lo.0) << 32) | u64::from(hi.0);
    x.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// One variable's unique subtable: open addressing, linear probing,
/// power-of-two capacity, backward-shift deletion.
pub(crate) struct SubTable {
    /// `slots[i]` is an arena index or [`EMPTY`]. Length is a power of
    /// two (or zero before the first insert).
    slots: Vec<u32>,
    len: usize,
}

impl SubTable {
    pub(crate) const fn new() -> SubTable {
        SubTable {
            slots: Vec::new(),
            len: 0,
        }
    }

    /// Number of interned nodes.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Current slot-array capacity (0 before the first insert).
    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Home bucket of a key for the current capacity.
    #[inline]
    fn bucket(&self, lo: Bdd, hi: Bdd) -> usize {
        // Capacity is a power of two: take the top `log2(cap)` bits of
        // the mix (Fibonacci hashing), which is where the multiply put
        // the entropy.
        debug_assert!(self.slots.len().is_power_of_two());
        let shift = 64 - self.slots.len().trailing_zeros();
        (mix(lo, hi) >> shift) as usize
    }

    /// The arena slot interned for `(lo, hi)`, if any.
    #[inline]
    pub(crate) fn get(&self, lo: Bdd, hi: Bdd, nodes: &[Node]) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(lo, hi);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return None;
            }
            let n = &nodes[s as usize];
            if n.lo == lo && n.hi == hi {
                return Some(s);
            }
            i = (i + 1) & mask;
        }
    }

    /// Interns arena slot `slot` (whose payload in `nodes` carries the
    /// key). The caller guarantees the key is absent.
    pub(crate) fn insert(&mut self, slot: u32, nodes: &[Node]) {
        // Grow at 7/8 load so probe chains stay short.
        if self.slots.is_empty() || (self.len + 1) * 8 > self.slots.len() * 7 {
            self.resize((self.slots.len() * 2).max(MIN_CAP), nodes);
        }
        let mask = self.slots.len() - 1;
        let n = &nodes[slot as usize];
        let mut i = self.bucket(n.lo, n.hi);
        while self.slots[i] != EMPTY {
            debug_assert!(
                {
                    let e = &nodes[self.slots[i] as usize];
                    (e.lo, e.hi) != (n.lo, n.hi)
                },
                "unique subtable: duplicate key"
            );
            i = (i + 1) & mask;
        }
        self.slots[i] = slot;
        self.len += 1;
    }

    /// Removes the entry for `(lo, hi)` with backward-shift compaction
    /// (no tombstones: later entries in the probe chain move back so
    /// `get` never needs to skip deleted slots). Returns `true` if the
    /// key was present.
    pub(crate) fn remove(&mut self, lo: Bdd, hi: Bdd, nodes: &[Node]) -> bool {
        if self.len == 0 {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = self.bucket(lo, hi);
        loop {
            let s = self.slots[i];
            if s == EMPTY {
                return false;
            }
            let n = &nodes[s as usize];
            if n.lo == lo && n.hi == hi {
                break;
            }
            i = (i + 1) & mask;
        }
        // Backward shift: walk the chain after the hole; an entry may
        // move into the hole iff the hole lies on its probe path (its
        // home is at least as far from the current position as the
        // hole is).
        let mut hole = i;
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let s = self.slots[j];
            if s == EMPTY {
                break;
            }
            let n = &nodes[s as usize];
            let home = self.bucket(n.lo, n.hi);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.slots[hole] = s;
                hole = j;
            }
        }
        self.slots[hole] = EMPTY;
        self.len -= 1;
        true
    }

    /// Shrinks sparse tables so capacity stays Θ(len): called after a
    /// swap or sweep, never from the hot `insert` path. A table at or
    /// below 1/8 load drops to the smallest power of two holding its
    /// entries under 1/2 load.
    pub(crate) fn maybe_shrink(&mut self, nodes: &[Node]) {
        if self.slots.len() <= MIN_CAP || self.len * 8 > self.slots.len() {
            return;
        }
        let target = (self.len * 2).next_power_of_two().max(MIN_CAP);
        if target < self.slots.len() {
            self.resize(target, nodes);
        }
    }

    /// Drops all entries *and* the slot storage (a following rebuild
    /// right-sizes from scratch).
    pub(crate) fn clear(&mut self) {
        self.slots = Vec::new();
        self.len = 0;
    }

    fn resize(&mut self, new_cap: usize, nodes: &[Node]) {
        debug_assert!(new_cap.is_power_of_two() && new_cap >= self.len * 2);
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; new_cap]);
        let mask = new_cap - 1;
        for s in old {
            if s == EMPTY {
                continue;
            }
            let n = &nodes[s as usize];
            let mut i = self.bucket(n.lo, n.hi);
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = s;
        }
    }
}

/// The manager's unique table: one [`SubTable`] per declared variable.
pub(crate) struct UniqueTables {
    tables: Vec<SubTable>,
}

impl UniqueTables {
    pub(crate) const fn new() -> UniqueTables {
        UniqueTables { tables: Vec::new() }
    }

    /// Registers a freshly declared variable.
    pub(crate) fn push_var(&mut self) {
        self.tables.push(SubTable::new());
    }

    #[inline]
    pub(crate) fn get(&self, var: u32, lo: Bdd, hi: Bdd, nodes: &[Node]) -> Option<u32> {
        self.tables[var as usize].get(lo, hi, nodes)
    }

    #[inline]
    pub(crate) fn insert(&mut self, var: u32, slot: u32, nodes: &[Node]) {
        self.tables[var as usize].insert(slot, nodes);
    }

    #[inline]
    pub(crate) fn remove(&mut self, var: u32, lo: Bdd, hi: Bdd, nodes: &[Node]) -> bool {
        self.tables[var as usize].remove(lo, hi, nodes)
    }

    pub(crate) fn maybe_shrink(&mut self, var: u32, nodes: &[Node]) {
        self.tables[var as usize].maybe_shrink(nodes);
    }

    /// Drops every entry and every subtable's storage (GC sweep prelude;
    /// the sweep reinserts the survivors, right-sizing each table).
    pub(crate) fn clear_all(&mut self) {
        for t in &mut self.tables {
            t.clear();
        }
    }

    /// `(entries, capacity)` of one variable's subtable.
    pub(crate) fn stats_of(&self, var: u32) -> (usize, usize) {
        let t = &self.tables[var as usize];
        (t.len(), t.capacity())
    }

    /// Total slot-array bytes across all subtables (memory telemetry).
    pub(crate) fn slot_bytes(&self) -> usize {
        self.tables
            .iter()
            .map(|t| t.capacity() * std::mem::size_of::<u32>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a fake arena of single-var chain nodes so subtable ops can
    /// be exercised without a manager.
    fn arena(n: usize) -> Vec<Node> {
        (0..n)
            .map(|i| Node {
                var: 0,
                lo: Bdd(2 * i as u32),
                hi: Bdd(2 * i as u32 + 2),
            })
            .collect()
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let nodes = arena(100);
        let mut t = SubTable::new();
        for i in 1..100u32 {
            t.insert(i, &nodes);
        }
        assert_eq!(t.len(), 99);
        for i in 1..100u32 {
            let n = &nodes[i as usize];
            assert_eq!(t.get(n.lo, n.hi, &nodes), Some(i), "slot {i}");
        }
        let missing = Bdd(9999);
        assert_eq!(t.get(missing, missing, &nodes), None);
        for i in (1..100u32).step_by(2) {
            let n = nodes[i as usize];
            assert!(t.remove(n.lo, n.hi, &nodes));
            assert!(!t.remove(n.lo, n.hi, &nodes), "double remove");
        }
        assert_eq!(t.len(), 49);
        for i in 1..100u32 {
            let n = &nodes[i as usize];
            let got = t.get(n.lo, n.hi, &nodes);
            if i % 2 == 1 {
                assert_eq!(got, None);
            } else {
                assert_eq!(got, Some(i));
            }
        }
    }

    #[test]
    fn shrink_bounds_capacity() {
        let nodes = arena(1000);
        let mut t = SubTable::new();
        for i in 1..1000u32 {
            t.insert(i, &nodes);
        }
        let grown = t.capacity();
        for i in 1..990u32 {
            let n = nodes[i as usize];
            t.remove(n.lo, n.hi, &nodes);
        }
        assert_eq!(t.len(), 10);
        assert_eq!(t.capacity(), grown, "remove alone never shrinks");
        t.maybe_shrink(&nodes);
        assert!(
            t.capacity() <= 8 * t.len().max(MIN_CAP),
            "capacity {} for {} entries",
            t.capacity(),
            t.len()
        );
        for i in 990..1000u32 {
            let n = &nodes[i as usize];
            assert_eq!(t.get(n.lo, n.hi, &nodes), Some(i), "survives shrink");
        }
    }

    #[test]
    fn backward_shift_keeps_chains_probeable() {
        // Dense collisions: force a tiny table and delete from the middle
        // of chains repeatedly.
        let nodes = arena(64);
        let mut t = SubTable::new();
        for i in 1..32u32 {
            t.insert(i, &nodes);
        }
        for i in (1..32u32).rev() {
            let n = nodes[i as usize];
            assert!(t.remove(n.lo, n.hi, &nodes));
            for j in 1..i {
                let m = &nodes[j as usize];
                assert_eq!(t.get(m.lo, m.hi, &nodes), Some(j), "after removing {i}");
            }
        }
        assert_eq!(t.len(), 0);
    }
}
