//! Dynamic variable reordering: adjacent-level swaps and Rudell sifting.
//!
//! Reordering changes only the *representation* of the functions held by
//! the manager — never their meaning. Every [`Bdd`] handle remains valid
//! across a reorder and keeps denoting the same Boolean function, because
//! [`swap_levels`](BddManager::swap_levels) rewrites affected nodes *in
//! place* (same arena index, new `(var, lo, hi)` payload) instead of
//! allocating replacements. Operation caches are keyed on handles, i.e.
//! on functions, so they stay semantically valid too and are never
//! cleared by a swap. A swap touches exactly the two unique subtables of
//! the swapped variables (backward-shift removal from the upper
//! variable's table, reinsertion into the lower's), so the cost of a
//! swap is proportional to the affected layers, never to the whole
//! unique table.
//!
//! Sifting does produce transient garbage — every rewrite orphans the
//! split children it replaced — which historically could only accumulate.
//! With a [`GcPolicy`](crate::GcPolicy) installed, the sift loop calls
//! [`maybe_gc`](BddManager::maybe_gc) between variables (a safe point:
//! no operation is in flight), reclaiming that churn before it can trip
//! [`sift_abort_bound`](BddManager::sift_abort_bound) or a caller's node
//! budget spuriously. A sweep does clear the operation caches; see
//! [`collect_garbage`](BddManager::collect_garbage).
//!
//! Reordering must only run at *safe points*: no BDD operation may be
//! mid-recursion on this manager when a swap happens, since operations
//! capture order positions on their way down. The `tbf-core` engine calls
//! [`check_pressure`](BddManager::check_pressure) strictly between gate
//! constructions.

use std::collections::HashSet;

use crate::manager::BddManager;
use crate::node::{Bdd, Node, Var};

/// When the manager reorders its variables on its own.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ReorderPolicy {
    /// Never reorder automatically (explicit [`BddManager::sift`] calls
    /// still work).
    #[default]
    None,
    /// Sift automatically from [`BddManager::check_pressure`] once the
    /// arena reaches `trigger_nodes`; each per-variable pass aborts when
    /// the live size exceeds `max_growth` percent of its starting value.
    OnPressure {
        /// Arena size (total allocated nodes) at which the first
        /// automatic sift fires.
        trigger_nodes: usize,
        /// Per-variable growth abort, in percent (e.g. `120` allows 20%
        /// transient growth while exploring positions).
        max_growth: usize,
    },
    /// Reorder only when the owning engine decides to (e.g. one sift of
    /// the static functions after layout); never from `check_pressure`.
    Manual,
}

/// Cumulative effort counters for reordering on one manager.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReorderStats {
    /// Completed [`sift`](BddManager::sift) passes.
    pub reorders: usize,
    /// Sum of live sizes measured just before each sift.
    pub nodes_before: usize,
    /// Sum of live sizes measured just after each sift.
    pub nodes_after: usize,
    /// Wall-clock milliseconds spent sifting.
    pub time_ms: u64,
}

impl ReorderStats {
    /// Folds another manager's counters into this one (all fields add).
    pub fn merge(&mut self, other: &ReorderStats) {
        self.reorders += other.reorders;
        self.nodes_before += other.nodes_before;
        self.nodes_after += other.nodes_after;
        self.time_ms += other.time_ms;
    }
}

impl BddManager {
    /// The automatic-reordering policy currently installed.
    pub fn reorder_policy(&self) -> ReorderPolicy {
        self.reorder_policy
    }

    /// Installs an automatic-reordering policy (see
    /// [`check_pressure`](Self::check_pressure)).
    pub fn set_reorder_policy(&mut self, policy: ReorderPolicy) {
        self.reorder_policy = policy;
        self.pressure_trigger = match policy {
            ReorderPolicy::OnPressure { trigger_nodes, .. } => trigger_nodes,
            _ => 0,
        };
    }

    /// Cumulative reordering effort on this manager.
    pub fn reorder_stats(&self) -> ReorderStats {
        self.reorder_stats
    }

    /// `true` when the policy is `OnPressure` and the arena has reached
    /// the trigger, i.e. the next [`check_pressure`](Self::check_pressure)
    /// call will sift. Lets callers avoid collecting roots when nothing
    /// would happen.
    pub fn pressure_pending(&self) -> bool {
        matches!(self.reorder_policy, ReorderPolicy::OnPressure { .. })
            && self.node_count() >= self.pressure_trigger
    }

    /// Under [`ReorderPolicy::OnPressure`], sifts `roots` once the arena
    /// has reached the trigger and returns `true` if a sift ran. Must be
    /// called at a safe point (no BDD operation in flight). With no GC
    /// policy installed, handles held by the caller stay valid whether or
    /// not they are listed in `roots` — `roots` only steers the size
    /// metric. Under [`GcPolicy::OnPressure`](crate::GcPolicy) the sift
    /// loop may also sweep, and then `roots` ∪ the protected stack is the
    /// survival set: unlisted, unprotected handles may be reclaimed.
    pub fn check_pressure(&mut self, roots: &[Bdd]) -> bool {
        let ReorderPolicy::OnPressure { max_growth, .. } = self.reorder_policy else {
            return false;
        };
        if !self.pressure_pending() {
            return false;
        }
        let abort = self.sift_abort_bound(roots);
        self.sift(roots, max_growth, abort);
        // Re-arm well above the new arena size to avoid thrashing — and
        // never below double the trigger that just fired. The second
        // bound matters under GC: the sift loop's sweeps can leave the
        // occupied count *below* the old trigger, and re-arming from it
        // alone would let a live population the sift cannot shrink
        // re-fire a full pass at every safe point. Doubling the trigger
        // restores the geometric backoff the append-only arena gets for
        // free (there post-sift occupied ≥ trigger, so the max is a
        // no-op).
        self.pressure_trigger = self
            .node_count()
            .saturating_mul(2)
            .max(self.pressure_trigger.saturating_mul(2));
        true
    }

    /// Arena-size abort threshold for a bounded sift of `roots`.
    ///
    /// Without garbage collection, swaps only grow the occupied arena
    /// (dead entries linger until the manager is dropped), so an
    /// unbounded sift can inflate it past any caller's node budget all by
    /// itself. Under [`GcPolicy::OnPressure`](crate::GcPolicy) the sift
    /// loop reclaims that transient churn between variables, so this
    /// bound trips only on genuine live growth. Either way, the bound
    /// grants exploration headroom proportional to the *live* size being
    /// optimised (what matters), not to the dead arena: since variables
    /// are sifted biggest-layer-first, the budget is spent on the most
    /// promising variables before the pass stops.
    pub fn sift_abort_bound(&self, roots: &[Bdd]) -> usize {
        let headroom = self.live_size(roots).saturating_mul(8).max(1024);
        self.node_count().saturating_add(headroom)
    }

    /// Swaps the variables at order positions `l` and `l + 1` in place.
    ///
    /// This is the classic unique-table local rewrite: only nodes of the
    /// upper variable `x = level2var[l]` that test `y = level2var[l + 1]`
    /// in a child are rewritten (same arena slot, root variable becomes
    /// `y`); every other node — including every handle held by callers —
    /// is untouched and keeps its meaning. All arena entries at the
    /// affected level are processed, dead or live, so the global order
    /// invariant holds for *any* reachable handle.
    ///
    /// Returns the number of nodes rewritten; `0` means the node DAG is
    /// unchanged (only the order tables moved), so any size measured
    /// before the swap is still current.
    ///
    /// # Panics
    ///
    /// Panics if `l + 1 >= var_count()`.
    pub fn swap_levels(&mut self, l: usize) -> usize {
        assert!(
            l + 1 < self.var_count(),
            "swap_levels: position {l} is not above another level"
        );
        self.obs_sift_swap();
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        // Only nodes rooted at `x` can change, so scan the per-variable
        // index instead of the whole arena. The list may hold stale slots
        // (rewritten away by earlier swaps) and, because a slot can cycle
        // back to `x` while its original entry is still listed, duplicates
        // — compact both here. Sorting also restores ascending arena
        // order, keeping the rewrite sequence identical to a full scan.
        let mut slots = std::mem::take(&mut self.var_nodes[x as usize]);
        slots.sort_unstable();
        slots.dedup();
        slots.retain(|&i| self.nodes[i as usize].var == x);
        // Collect first, rewrite after: `mk` during the rewrite loop must
        // only ever see post-collection state.
        let rewrites: Vec<u32> = slots
            .iter()
            .copied()
            .filter(|&i| {
                let n = self.nodes[i as usize];
                self.child_tests(n.lo, y) || self.child_tests(n.hi, y)
            })
            .collect();
        self.var_nodes[x as usize] = slots;
        let rewritten = rewrites.len();
        for i in rewrites {
            let old = self.nodes[i as usize];
            let (f00, f01) = self.split_on(old.lo, y);
            let (f10, f11) = self.split_on(old.hi, y);
            // The payload at slot `i` is still `old`, so the key compare
            // inside the backward-shift removal sees consistent data.
            let removed = self.unique.remove(x, old.lo, old.hi, &self.nodes);
            debug_assert!(removed, "rewritten node was not interned under x");
            // The new x-children sit below both x and y: their own
            // children are grandchildren of `old`, all at positions
            // strictly below l + 1.
            let h0 = self.mk(x, f00, f10);
            let h1 = self.mk(x, f01, f11);
            debug_assert_ne!(h0, h1, "a node testing y cannot lose y by the swap");
            // Complement-edge canonicity survives the in-place rewrite for
            // free: `old.hi` is regular (canonical then-edge rule), so its
            // split keeps `f11` regular, so `mk` never renormalizes `h1`.
            debug_assert!(
                !self.ce || !h1.is_complemented(),
                "swap must keep the rewritten node's hi edge regular"
            );
            let new = Node {
                var: y,
                lo: h0,
                hi: h1,
            };
            debug_assert!(
                self.unique.get(y, h0, h1, &self.nodes).is_none(),
                "swap produced a duplicate unique-table key"
            );
            self.nodes[i as usize] = new;
            self.var_nodes[y as usize].push(i);
            self.unique.insert(y, i, &self.nodes);
        }
        // Give back slack from this swap's churn: only the two affected
        // subtables can have shrunk, so only they are examined.
        self.unique.maybe_shrink(x, &self.nodes);
        self.unique.maybe_shrink(y, &self.nodes);
        self.var2level[x as usize] = (l + 1) as u32;
        self.var2level[y as usize] = l as u32;
        self.level2var[l] = y;
        self.level2var[l + 1] = x;
        rewritten
    }

    #[inline]
    fn child_tests(&self, b: Bdd, var: u32) -> bool {
        !b.is_const() && self.nodes[b.index()].var == var
    }

    /// Cofactors of `b` on `var` assuming `var` can only appear at the
    /// root of `b`.
    #[inline]
    fn split_on(&self, b: Bdd, var: u32) -> (Bdd, Bdd) {
        if self.child_tests(b, var) {
            let n = self.nodes[b.index()];
            if b.is_complemented() {
                (n.lo.negate(), n.hi.negate())
            } else {
                (n.lo, n.hi)
            }
        } else {
            (b, b)
        }
    }

    /// Moves the variables into `order` (root-first) by adjacent swaps.
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of all declared variables.
    pub fn reorder_to(&mut self, order: &[Var]) {
        assert_eq!(
            order.len(),
            self.var_count(),
            "order must list every variable"
        );
        let mut seen = vec![false; order.len()];
        for v in order {
            assert!(
                v.index() < seen.len() && !seen[v.index()],
                "order must be a permutation of the declared variables"
            );
            seen[v.index()] = true;
        }
        for (target, v) in order.iter().enumerate() {
            let mut cur = self.var2level[v.index()] as usize;
            debug_assert!(cur >= target, "positions above target are already fixed");
            while cur > target {
                self.swap_levels(cur - 1);
                cur -= 1;
            }
        }
    }

    /// Rudell-style sifting: each variable in turn is moved through every
    /// order position by adjacent swaps and parked where the live size
    /// (reachable from `roots`) is smallest.
    ///
    /// Deterministic: variables are processed in descending live-node
    /// count at their starting level (ties by ascending index), and among
    /// equally small positions the one closest to the root wins. A
    /// variable's exploration stops early once the live size exceeds
    /// `max_growth_percent`/100 of its starting value, and the whole pass
    /// stops once it has interned `abort_nodes − node_count()` fresh
    /// nodes (with an append-only arena that is the moment the occupied
    /// arena exceeds `abort_nodes`; under GC the allocation count is
    /// what bounds the pass's *work*, since in-pass sweeps roll the
    /// occupancy back). Under an installed [`GcPolicy`](crate::GcPolicy),
    /// a sweep may run between variables with `roots` ∪ the protected
    /// stack as the survival set. Returns the live size before and
    /// after.
    pub fn sift(
        &mut self,
        roots: &[Bdd],
        max_growth_percent: usize,
        abort_nodes: usize,
    ) -> (usize, usize) {
        let started = std::time::Instant::now();
        let n = self.var_count();
        let before = self.live_size(roots);
        self.obs_sift_live(before);
        // The bound is an arena size, but the pass enforces it against
        // cumulative *allocations*: with GC off the two are the same
        // quantity (occupied never shrinks, so occupied > bound ⇔
        // allocations since entry > bound − entry occupancy), while
        // under GC the in-pass sweeps roll occupied back and an
        // occupancy test would never trip — every pass would sift all
        // n variables through all n positions, orders of magnitude
        // more swap work than the append-only arena ever spends.
        let abort_allocs = self
            .allocated
            .saturating_add(abort_nodes.saturating_sub(self.node_count()));
        if n >= 2 && before > 0 {
            for v in self.vars_by_live_count(roots) {
                self.sift_one(v, roots, max_growth_percent, abort_allocs);
                // Between variables is a safe point: reclaim the swap
                // churn (policy permitting) before moving on, so it
                // cannot inflate the arena across the whole pass.
                self.maybe_gc(roots);
                if self.allocated > abort_allocs {
                    break;
                }
            }
        }
        let after = self.live_size(roots);
        self.reorder_stats.reorders += 1;
        self.reorder_stats.nodes_before += before;
        self.reorder_stats.nodes_after += after;
        self.reorder_stats.time_ms += u64::try_from(started.elapsed().as_millis()).unwrap_or(0);
        (before, after)
    }

    /// Variables with at least one live node, sorted by descending
    /// live-node count (ties by ascending variable index): the classic
    /// biggest-layer-first sweep. Variables no live node tests are
    /// skipped — moving them cannot change the live size, so sifting
    /// them is pure swap cost.
    fn vars_by_live_count(&self, roots: &[Bdd]) -> Vec<u32> {
        let mut per_var = vec![0usize; self.var_count()];
        let mut stack: Vec<Bdd> = roots.iter().map(|b| b.regular()).collect();
        let mut seen = HashSet::new();
        while let Some(b) = stack.pop() {
            if b.is_const() || !seen.insert(b) {
                continue;
            }
            let node = self.node(b);
            per_var[node.var as usize] += 1;
            stack.push(node.lo.regular());
            stack.push(node.hi.regular());
        }
        let mut vars: Vec<u32> = (0..self.var_count() as u32)
            .filter(|&v| per_var[v as usize] > 0)
            .collect();
        vars.sort_by_key(|&v| (std::cmp::Reverse(per_var[v as usize]), v));
        vars
    }

    /// Moves one variable down to the bottom, then up to the top, then to
    /// the best position seen. `abort_allocs` is the pass-wide cap on
    /// [`allocated_total`](BddManager::allocated_total) (see
    /// [`sift`](BddManager::sift)).
    fn sift_one(&mut self, v: u32, roots: &[Bdd], max_growth_percent: usize, abort_allocs: usize) {
        let n = self.var_count();
        let start_size = self.live_size(roots);
        let limit = start_size.saturating_mul(max_growth_percent.max(100)) / 100;
        let l0 = self.var2level[v as usize] as usize;
        let mut cur = l0;
        let mut best = (start_size, l0);
        let track = |size: usize, pos: usize, best: &mut (usize, usize)| {
            if size < best.0 || (size == best.0 && pos < best.1) {
                *best = (size, pos);
            }
        };
        // A swap that rewrites nothing leaves the node DAG untouched, so
        // the last measured size is still exact — only re-traverse after
        // a swap that actually changed nodes.
        let mut s = start_size;
        // Downward phase (toward the leaves).
        while cur + 1 < n {
            if self.swap_levels(cur) > 0 {
                s = self.live_size(roots);
            }
            cur += 1;
            track(s, cur, &mut best);
            if s > limit || self.allocated > abort_allocs {
                break;
            }
        }
        // Upward phase; growth aborts only apply in unexplored territory
        // (above the starting level) — below it we are retracing swaps
        // whose sizes were already accepted on the way down.
        while cur > 0 {
            if self.swap_levels(cur - 1) > 0 {
                s = self.live_size(roots);
            }
            cur -= 1;
            track(s, cur, &mut best);
            if cur < l0 && (s > limit || self.allocated > abort_allocs) {
                break;
            }
        }
        // Park at the best position seen.
        while cur < best.1 {
            self.swap_levels(cur);
            cur += 1;
        }
        while cur > best.1 {
            self.swap_levels(cur - 1);
            cur -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All 2^n evaluations of `f`, with assignment bit `i` = variable `i`.
    fn truth_table(m: &BddManager, f: Bdd, n: usize) -> Vec<bool> {
        (0..1usize << n)
            .map(|bits| {
                let a: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
                m.eval(f, &a)
            })
            .collect()
    }

    fn build_majority() -> (BddManager, Bdd) {
        let mut m = BddManager::new();
        let vars: Vec<Var> = (0..3).map(|_| m.new_var()).collect();
        let lits: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
        let ab = m.and(lits[0], lits[1]);
        let bc = m.and(lits[1], lits[2]);
        let ac = m.and(lits[0], lits[2]);
        let t = m.or(ab, bc);
        let f = m.or(t, ac);
        (m, f)
    }

    #[test]
    fn swap_preserves_semantics_and_handles() {
        let (mut m, f) = build_majority();
        let tt = truth_table(&m, f, 3);
        for l in [0, 1, 0, 1, 1, 0] {
            m.swap_levels(l);
            assert_eq!(truth_table(&m, f, 3), tt);
        }
    }

    #[test]
    fn swap_is_involutive_on_the_order() {
        let (mut m, _f) = build_majority();
        let before = m.current_order();
        m.swap_levels(1);
        assert_ne!(m.current_order(), before);
        m.swap_levels(1);
        assert_eq!(m.current_order(), before);
    }

    #[test]
    fn swap_keeps_ops_working_afterwards() {
        let (mut m, f) = build_majority();
        m.swap_levels(0);
        // New operations on the reordered manager must still be correct
        // and canonical.
        let g = m.not(f);
        let h = m.not(g);
        assert_eq!(h, f);
        let x0 = Var(0);
        let ex = m.exists(f, x0);
        let tt = truth_table(&m, ex, 3);
        // ∃a. maj(a,b,c) = b + c
        for (bits, &val) in tt.iter().enumerate() {
            let (b, c) = (bits >> 1 & 1 == 1, bits >> 2 & 1 == 1);
            assert_eq!(val, b || c);
        }
    }

    #[test]
    fn reorder_to_reaches_any_permutation() {
        let (mut m, f) = build_majority();
        let tt = truth_table(&m, f, 3);
        m.reorder_to(&[Var(2), Var(0), Var(1)]);
        assert_eq!(m.current_order(), vec![Var(2), Var(0), Var(1)]);
        assert_eq!(m.level_of(Var(2)), 0);
        assert!(!m.is_identity_order());
        assert_eq!(truth_table(&m, f, 3), tt);
        m.reorder_to(&[Var(0), Var(1), Var(2)]);
        assert!(m.is_identity_order());
        assert_eq!(truth_table(&m, f, 3), tt);
    }

    /// Σ xᵢ·yᵢ with all the x's declared before all the y's: exponential
    /// in the declaration order, linear once interleaved.
    fn separated_inner_product(m: &mut BddManager, n: usize) -> Bdd {
        let xs: Vec<Var> = (0..n).map(|_| m.new_var()).collect();
        let ys: Vec<Var> = (0..n).map(|_| m.new_var()).collect();
        let mut acc = Bdd::FALSE;
        for i in 0..n {
            let (vx, vy) = (m.var(xs[i]), m.var(ys[i]));
            let t = m.and(vx, vy);
            acc = m.or(acc, t);
        }
        acc
    }

    #[test]
    fn sifting_shrinks_a_separated_inner_product() {
        let mut m = BddManager::new();
        let f = separated_inner_product(&mut m, 6);
        let tt = truth_table(&m, f, 12);
        let (before, after) = m.sift(&[f], 150, usize::MAX);
        assert!(
            after * 2 <= before,
            "sifting should at least halve {before} live nodes, got {after}"
        );
        assert_eq!(truth_table(&m, f, 12), tt);
        assert_eq!(m.reorder_stats().reorders, 1);
        assert_eq!(m.reorder_stats().nodes_before, before);
        assert_eq!(m.reorder_stats().nodes_after, after);
    }

    #[test]
    fn sift_is_deterministic() {
        let run = || {
            let mut m = BddManager::new();
            let f = separated_inner_product(&mut m, 5);
            m.sift(&[f], 150, usize::MAX);
            (m.current_order(), m.live_size(&[f]))
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sift_respects_the_arena_abort() {
        let mut m = BddManager::new();
        let f = separated_inner_product(&mut m, 6);
        let cap = m.node_count() + 8;
        let tt = truth_table(&m, f, 12);
        m.sift(&[f], 150, cap);
        // Aborted or not, semantics and manager consistency must hold.
        assert_eq!(truth_table(&m, f, 12), tt);
        let g = m.not(f);
        let h = m.not(g);
        assert_eq!(h, f);
    }

    #[test]
    fn set_order_on_fresh_manager_matches_reorder_to() {
        let mut a = BddManager::new();
        let mut b = BddManager::new();
        for _ in 0..4 {
            a.new_var();
            b.new_var();
        }
        let order = [Var(3), Var(1), Var(0), Var(2)];
        a.set_order(&order);
        b.reorder_to(&order);
        assert_eq!(a.current_order(), b.current_order());
        assert_eq!(a.level_of(Var(3)), 0);
    }

    #[test]
    #[should_panic(expected = "fresh manager")]
    fn set_order_rejects_populated_managers() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let _ = m.var(x);
        m.set_order(&[x]);
    }

    #[test]
    fn check_pressure_fires_once_and_rearms() {
        let mut m = BddManager::new();
        m.set_reorder_policy(ReorderPolicy::OnPressure {
            trigger_nodes: 8,
            max_growth: 150,
        });
        let f = separated_inner_product(&mut m, 4);
        assert!(m.pressure_pending());
        assert!(m.check_pressure(&[f]));
        assert_eq!(m.reorder_stats().reorders, 1);
        // Re-armed above the post-sift arena: an immediate second call
        // must not thrash.
        assert!(!m.check_pressure(&[f]));
        assert_eq!(m.reorder_stats().reorders, 1);
    }

    #[test]
    fn check_pressure_is_inert_for_other_policies() {
        let mut m = BddManager::new();
        let f = separated_inner_product(&mut m, 4);
        assert!(!m.check_pressure(&[f]));
        m.set_reorder_policy(ReorderPolicy::Manual);
        assert!(!m.check_pressure(&[f]));
        assert_eq!(m.reorder_stats().reorders, 0);
    }

    /// Every stored node in a CE manager must keep its then-edge regular
    /// (the canonical-edge rule); a violation would make {f, ¬f} intern as
    /// two distinct nodes and silently break handle equality.
    fn assert_hi_edges_regular(m: &BddManager) {
        for (i, n) in m.nodes.iter().enumerate().skip(1) {
            if n.var == crate::node::FREE_LEVEL {
                continue;
            }
            assert!(
                !n.hi.is_complemented(),
                "node {i} stores a complemented hi edge after reordering"
            );
        }
    }

    #[test]
    fn ce_swap_and_sift_preserve_semantics_and_canonicity() {
        let mut m = BddManager::new_ce();
        let f = separated_inner_product(&mut m, 4);
        let nf = m.not(f);
        assert_eq!(f.regular(), nf.regular(), "pair must share one node");
        let tt = truth_table(&m, f, 8);
        for l in [0, 3, 1, 6, 2, 0] {
            m.swap_levels(l);
            assert_hi_edges_regular(&m);
            assert_eq!(truth_table(&m, f, 8), tt);
            assert_eq!(m.not(nf), f, "complement pair must survive the swap");
        }
        let (before, after) = m.sift(&[f, nf], 150, usize::MAX);
        assert!(after <= before);
        assert_hi_edges_regular(&m);
        assert_eq!(truth_table(&m, f, 8), tt);
        let tn: Vec<bool> = tt.iter().map(|&b| !b).collect();
        assert_eq!(truth_table(&m, nf, 8), tn);
    }

    #[test]
    fn ce_sift_matches_legacy_order_choice() {
        // Sifting ranks variables by live node count; the complement-pair
        // sharing must not change which order wins on this symmetric
        // benchmark, and both modes must land on an interleaved order.
        let run = |ce: bool| {
            let mut m = BddManager::with_complement_edges(ce);
            let f = separated_inner_product(&mut m, 5);
            m.sift(&[f], 150, usize::MAX);
            m.current_order()
        };
        assert_eq!(run(false), run(true));
    }

    /// Regression for the global-map era: repeated sift cycles used to
    /// leave the unique table (and the arena) at the high-water mark of
    /// the transient churn forever. With per-variable subtables
    /// (backward-shift deletion + shrink at swap exit) and the sweep in
    /// the sift loop, every variable's subtable capacity must stay within
    /// a constant factor of its interned entries.
    #[test]
    fn repeated_sift_cycles_keep_subtable_capacity_bounded() {
        let mut m = BddManager::new_ce();
        m.set_gc_policy(crate::gc::GcPolicy::OnPressure { trigger_nodes: 64 });
        let f = separated_inner_product(&mut m, 6);
        let tt = truth_table(&m, f, 12);
        let natural: Vec<Var> = (0..12u32).map(Var).collect();
        for _ in 0..4 {
            m.sift(&[f], 150, usize::MAX);
            // Drag the order back to the bad separated layout so the next
            // cycle has real work — and real churn — to do.
            m.reorder_to(&natural);
        }
        assert_eq!(truth_table(&m, f, 12), tt);
        for v in 0..12u32 {
            let (entries, cap) = m.unique_subtable_stats(Var(v));
            assert!(
                cap <= (entries * 8).max(8),
                "var {v}: subtable capacity {cap} for {entries} entries"
            );
        }
        assert!(m.gc_stats().sweeps > 0, "pressure sweeps must have fired");
        // A final sweep leaves exactly the survivors interned: the
        // subtables and the occupied arena agree, with no dead residue.
        m.collect_garbage(&[f]);
        let interned: usize = (0..12).map(|v| m.unique_subtable_stats(Var(v)).0).sum();
        assert_eq!(
            interned + 1,
            m.node_count(),
            "interned + terminal = occupied"
        );
    }

    #[test]
    fn new_vars_may_follow_a_reorder() {
        let (mut m, f) = build_majority();
        m.reorder_to(&[Var(1), Var(2), Var(0)]);
        let w = m.new_var();
        assert_eq!(m.level_of(w), 3);
        let vw = m.var(w);
        let g = m.and(f, vw);
        let tt = truth_table(&m, g, 4);
        let tf = truth_table(&m, f, 3);
        for bits in 0..16usize {
            assert_eq!(tt[bits], tf[bits & 7] && bits >> 3 & 1 == 1);
        }
    }
}
