//! Observability shims for the hot paths.
//!
//! Every instrumentation point in the package calls one of the
//! `#[inline(always)]` methods below. With the `obs` feature disabled
//! (the default) each body is empty and the call compiles away — tier-1
//! performance is untouched. With the feature enabled, the shims bump
//! the [`tbf_obs::Counters`] registry installed via
//! [`BddManager::set_counters`]; managers with no registry installed
//! still pay only a `None` check.
//!
//! The counters record *logical work* (which is deterministic), never
//! wall time, so totals are byte-identical across thread counts.

use crate::manager::BddManager;

impl BddManager {
    /// Installs the shared counter registry this manager reports into.
    #[cfg(feature = "obs")]
    pub fn set_counters(&mut self, counters: std::sync::Arc<tbf_obs::Counters>) {
        self.counters = Some(counters);
    }

    /// The counter registry installed on this manager, if any.
    #[cfg(feature = "obs")]
    pub fn counters(&self) -> Option<&std::sync::Arc<tbf_obs::Counters>> {
        self.counters.as_ref()
    }

    #[cfg(feature = "obs")]
    #[inline(always)]
    fn obs_bump(&self, metric: tbf_obs::Metric) {
        if let Some(c) = &self.counters {
            c.bump(metric);
        }
    }

    /// One entry into the `ite`/`try_ite_b` recursion.
    #[inline(always)]
    pub(crate) fn obs_ite_call(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::IteCalls);
    }

    /// One hit in any operation cache (ite, not, quantify, compose).
    #[inline(always)]
    pub(crate) fn obs_cache_hit(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::CacheHits);
    }

    /// One miss in any operation cache.
    #[inline(always)]
    pub(crate) fn obs_cache_miss(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::CacheMisses);
    }

    /// One unique-table probe in [`BddManager::mk`].
    #[inline(always)]
    pub(crate) fn obs_unique_probe(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::UniqueTableProbes);
    }

    /// A probe that found an interned node (probes = hits + misses).
    #[inline(always)]
    pub(crate) fn obs_unique_hit(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::UniqueTableHits);
    }

    /// A probe that fell through to an allocation.
    #[inline(always)]
    pub(crate) fn obs_unique_miss(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::UniqueTableMisses);
    }

    /// One freshly allocated arena node.
    #[inline(always)]
    pub(crate) fn obs_node_alloc(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::NodesAllocated);
    }

    /// One operation-cache flush (the package's GC analogue).
    #[inline(always)]
    pub(crate) fn obs_gc_run(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::GcRuns);
    }

    /// One mark-and-sweep pass reclaiming `_reclaimed` nodes.
    #[inline(always)]
    pub(crate) fn obs_gc_sweep(&self, _reclaimed: u64) {
        #[cfg(feature = "obs")]
        if let Some(c) = &self.counters {
            c.bump(tbf_obs::Metric::GcSweeps);
            c.add(tbf_obs::Metric::GcNodesReclaimed, _reclaimed);
        }
    }

    /// One adjacent-level swap while sifting.
    #[inline(always)]
    pub(crate) fn obs_sift_swap(&self) {
        #[cfg(feature = "obs")]
        self.obs_bump(tbf_obs::Metric::SiftSwaps);
    }

    /// Live-size observation at the start of a sifting pass.
    #[inline(always)]
    pub(crate) fn obs_sift_live(&self, _live: usize) {
        #[cfg(feature = "obs")]
        if let Some(c) = &self.counters {
            c.observe(tbf_obs::HistMetric::SiftLiveNodes, _live as u64);
        }
    }
}

#[cfg(all(test, feature = "obs"))]
mod tests {
    use crate::BddManager;
    use tbf_obs::{Counters, Metric};

    #[test]
    fn counters_record_bdd_work() {
        let c = Counters::shared();
        let mut m = BddManager::new();
        m.set_counters(std::sync::Arc::clone(&c));
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let _f = m.and(vx, vy);
        assert!(c.get(Metric::IteCalls) > 0, "ite recursion counted");
        assert!(c.get(Metric::NodesAllocated) >= 3, "x, y, and x∧y nodes");
        assert!(
            c.get(Metric::UniqueTableProbes) >= c.get(Metric::NodesAllocated),
            "every allocation follows a probe"
        );
        assert_eq!(
            c.get(Metric::UniqueTableProbes),
            c.get(Metric::UniqueTableHits) + c.get(Metric::UniqueTableMisses),
            "probes split exactly into hits and misses"
        );
        assert_eq!(
            c.get(Metric::UniqueTableMisses),
            c.get(Metric::NodesAllocated)
        );
        m.clear_op_caches();
        assert_eq!(c.get(Metric::GcRuns), 1);
        assert_eq!(c.get(Metric::GcSweeps), 0, "no mark-and-sweep ran");
        // A forced sweep records its pass and reclaim count.
        let reclaimed = m.collect_garbage(&[]);
        assert!(reclaimed > 0);
        assert_eq!(c.get(Metric::GcSweeps), 1);
        assert_eq!(c.get(Metric::GcNodesReclaimed), reclaimed as u64);
    }

    #[test]
    fn uninstrumented_manager_is_silent() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let _ = m.var(x);
        assert!(m.counters().is_none());
    }
}
