//! Handle types for BDD nodes and variables.

use std::fmt;

/// A handle to a BDD node owned by a [`BddManager`](crate::BddManager).
///
/// Handles are *tagged* indices: the low bit is a complement tag and the
/// remaining bits index the manager's node arena, so handles stay cheap
/// to copy, hash and compare while negation can be a constant-time tag
/// flip. Two handles from the *same* manager are equal if and only if
/// they denote the same Boolean function (ROBDDs with a canonical
/// then-edge rule are canonical). Mixing handles across managers is a
/// logic error; the manager panics on out-of-range indices.
///
/// Both constants share one terminal node at arena index 0:
/// [`Bdd::TRUE`] is the plain handle, [`Bdd::FALSE`] its complement.
///
/// # Example
///
/// ```
/// use tbf_bdd::BddManager;
/// let mut m = BddManager::new();
/// let x = m.new_var();
/// let f = m.var(x);
/// let g = m.var(x);
/// assert_eq!(f, g); // canonical
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// The constant-true function: the terminal node, untagged.
    pub const TRUE: Bdd = Bdd(0);
    /// The constant-false function: the complement of the terminal.
    pub const FALSE: Bdd = Bdd(1);

    /// Returns `true` if this handle is the constant-false function.
    #[inline]
    pub fn is_false(self) -> bool {
        self == Bdd::FALSE
    }

    /// Returns `true` if this handle is the constant-true function.
    #[inline]
    pub fn is_true(self) -> bool {
        self == Bdd::TRUE
    }

    /// Returns `true` if this handle is one of the two constants.
    #[inline]
    pub fn is_const(self) -> bool {
        self.0 < 2
    }

    /// The arena index of the node this handle references (complement
    /// tag stripped).
    #[inline]
    pub fn index(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// Whether the complement tag is set on this handle.
    #[inline]
    pub(crate) fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same node with the complement tag flipped (¬f, in O(1)).
    #[inline]
    pub(crate) fn negate(self) -> Bdd {
        Bdd(self.0 ^ 1)
    }

    /// The same node with the complement tag cleared (the "regular"
    /// representative of the {f, ¬f} pair).
    #[inline]
    pub(crate) fn regular(self) -> Bdd {
        Bdd(self.0 & !1)
    }

    /// The tagged handle for arena index `i` with no complement bit.
    #[inline]
    pub(crate) fn from_index(i: usize) -> Bdd {
        Bdd(u32::try_from(i << 1).expect("BDD node index overflow"))
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Bdd::FALSE => write!(f, "Bdd(FALSE)"),
            Bdd::TRUE => write!(f, "Bdd(TRUE)"),
            Bdd(raw) => {
                let i = raw >> 1;
                if raw & 1 == 1 {
                    write!(f, "Bdd(!{i})")
                } else {
                    write!(f, "Bdd({i})")
                }
            }
        }
    }
}

/// A BDD variable.
///
/// A `Var` is a *stable identity*: it names the variable for the lifetime
/// of the manager, whatever its current position (level) in the order.
/// Freshly created managers use the identity order (the first
/// [`new_var`](crate::BddManager::new_var) is tested closest to the
/// root); dynamic reordering ([`swap_levels`](crate::BddManager::swap_levels),
/// [`sift`](crate::BddManager::sift)) moves levels around without ever
/// invalidating a `Var` or a [`Bdd`] handle. Query the current position
/// with [`level_of`](crate::BddManager::level_of).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Zero-based creation index of this variable (its stable identity,
    /// *not* its current order position).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

/// Internal node representation: `(var, lo, hi)` with `lo` taken when the
/// tested variable is 0. The field stores the variable's stable *identity*;
/// its current order position comes from the manager's `var2level` table.
/// The single terminal lives at arena index 0 with a sentinel variable so
/// that every internal node sorts strictly above it. In complement-edge
/// mode the stored `hi` edge is always regular (canonical then-edge rule).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct Node {
    pub var: u32,
    pub lo: Bdd,
    pub hi: Bdd,
}

/// Sentinel marking the terminal node; also used as the "below every
/// variable" level (larger than any variable index or order position).
pub(crate) const TERMINAL_LEVEL: u32 = u32::MAX;

/// Sentinel `var` payload of a *freed* arena slot (reclaimed by
/// mark-and-sweep GC, awaiting reuse through the manager's free list).
/// Distinct from [`TERMINAL_LEVEL`] so the terminal can never be confused
/// with garbage, and larger than any real variable index so freed slots
/// fall out of every `var == v` scan (e.g. the per-variable candidate
/// retain in `swap_levels`).
pub(crate) const FREE_LEVEL: u32 = u32::MAX - 1;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_distinct_and_const() {
        assert!(Bdd::FALSE.is_false());
        assert!(Bdd::TRUE.is_true());
        assert!(Bdd::FALSE.is_const());
        assert!(Bdd::TRUE.is_const());
        assert_ne!(Bdd::FALSE, Bdd::TRUE);
        assert!(!Bdd::TRUE.is_false());
        assert!(!Bdd::FALSE.is_true());
    }

    #[test]
    fn constants_are_one_complement_pair() {
        assert_eq!(Bdd::TRUE.negate(), Bdd::FALSE);
        assert_eq!(Bdd::FALSE.negate(), Bdd::TRUE);
        assert_eq!(Bdd::FALSE.regular(), Bdd::TRUE);
        assert_eq!(Bdd::TRUE.index(), Bdd::FALSE.index());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", Bdd::FALSE), "Bdd(FALSE)");
        assert_eq!(format!("{:?}", Bdd::TRUE), "Bdd(TRUE)");
        assert_eq!(format!("{:?}", Bdd(14)), "Bdd(7)");
        assert_eq!(format!("{:?}", Bdd(15)), "Bdd(!7)");
        assert_eq!(format!("{:?}", Var(3)), "Var(3)");
    }

    #[test]
    fn index_strips_the_tag() {
        assert_eq!(Var(11).index(), 11);
        assert_eq!(Bdd(22).index(), 11);
        assert_eq!(Bdd(23).index(), 11);
        assert_eq!(Bdd::from_index(11), Bdd(22));
    }
}
