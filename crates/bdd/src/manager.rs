//! The BDD manager: node arena, per-variable unique subtables, free
//! list, and variable registry.

use std::collections::HashMap;

use crate::node::{Bdd, Node, Var, TERMINAL_LEVEL};
use crate::unique::UniqueTables;

/// Owner of all BDD nodes.
///
/// The manager interns nodes in a unique table so that structurally equal
/// functions share one handle (canonicity), and memoizes the results of
/// Boolean operations. All operations that combine BDDs are methods on the
/// manager and take handles by value.
///
/// A manager runs in one of two modes, fixed at construction:
///
/// * **Plain mode** ([`new`](Self::new)): edges are untagged except for
///   the [`Bdd::FALSE`] constant, negation is a recursive (memoized)
///   operation, and a function and its complement occupy separate nodes.
/// * **Complement-edge mode** ([`new_ce`](Self::new_ce)): any edge may
///   carry a complement tag, negation is a constant-time tag flip, and a
///   function shares every node with its complement — roughly halving
///   unique-table and arena sizes. Canonicity is kept by the *canonical
///   then-edge rule*: a stored node's `hi` edge is never complemented
///   (`mk` renormalizes and returns a tagged handle instead).
///
/// Both modes expose the same API and compute the same functions; only
/// representation size and negation cost differ.
///
/// Nodes live in a flat arena; each variable owns an open-addressing
/// unique subtable over it (see `unique.rs`), so interning probes one
/// small cache-resident array and an adjacent-level swap touches exactly
/// two subtables. By default the arena is append-only, but installing a
/// [`GcPolicy`](crate::GcPolicy) lets
/// [`maybe_gc`](Self::maybe_gc)/[`collect_garbage`](Self::collect_garbage)
/// reclaim unreachable nodes in place through a free list (see `gc.rs`).
/// The exact-delay search in `tbf-core` polls
/// [`node_count`](Self::node_count) between operations to bound growth.
///
/// Variables are *identities*, decoupled from their order position via the
/// `var2level`/`level2var` tables; dynamic reordering (see
/// [`swap_levels`](Self::swap_levels) and [`sift`](Self::sift)) permutes
/// levels without invalidating any [`Bdd`] handle or [`Var`].
///
/// # Example
///
/// ```
/// use tbf_bdd::BddManager;
/// let mut m = BddManager::new();
/// let x = m.new_named_var("x");
/// let y = m.new_named_var("y");
/// let f = {
///     let (vx, vy) = (m.var(x), m.var(y));
///     m.and(vx, vy)
/// };
/// assert_eq!(m.var_name(x), "x");
/// assert!(m.eval(f, &[true, true]));
/// assert!(!m.eval(f, &[true, false]));
/// ```
pub struct BddManager {
    pub(crate) nodes: Vec<Node>,
    pub(crate) unique: UniqueTables,
    /// Freed arena slots awaiting reuse (a stack; the GC sweep fills it
    /// so that `pop` hands out the lowest index first).
    pub(crate) free: Vec<u32>,
    /// Handles pinned against garbage collection (frame discipline, see
    /// [`protect`](Self::protect)).
    pub(crate) protected: Vec<Bdd>,
    pub(crate) gc_policy: crate::gc::GcPolicy,
    /// Arena size at which the next [`maybe_gc`](Self::maybe_gc) sweep
    /// fires (`usize::MAX` when the policy is `None`).
    pub(crate) gc_trigger: usize,
    pub(crate) gc_stats: crate::gc::GcStats,
    /// High-water mark of the arena length (slots ever resident at
    /// once). Unlike [`node_count`](Self::node_count) this includes dead
    /// slots, so it measures what GC saves.
    pub(crate) peak_arena: usize,
    /// Monotone count of nodes ever interned (arena growth *and*
    /// freed-slot reuse). Work budgets measure against this rather than
    /// [`node_count`](Self::node_count) because a GC sweep cannot roll
    /// it back.
    pub(crate) allocated: usize,
    pub(crate) ite_cache: HashMap<(Bdd, Bdd, Bdd), Bdd>,
    pub(crate) not_cache: HashMap<Bdd, Bdd>,
    pub(crate) quant_cache: HashMap<(Bdd, u32, bool), Bdd>,
    pub(crate) compose_cache: HashMap<(Bdd, u32, Bdd), Bdd>,
    /// Complement-edge mode flag (fixed at construction).
    pub(crate) ce: bool,
    var_names: Vec<String>,
    /// `var2level[v]` = current order position of variable `v`.
    pub(crate) var2level: Vec<u32>,
    /// `level2var[l]` = variable currently at order position `l`.
    pub(crate) level2var: Vec<u32>,
    pub(crate) reorder_policy: crate::reorder::ReorderPolicy,
    /// Next arena size at which [`check_pressure`](Self::check_pressure)
    /// fires; doubled after each automatic sift to avoid thrashing.
    pub(crate) pressure_trigger: usize,
    /// Per-variable arena index: `var_nodes[v]` holds every arena slot
    /// whose root variable is (or once was) `v`. Entries go stale when a
    /// [`swap_levels`](Self::swap_levels) rewrite changes a slot's root;
    /// swaps compact their own variable's list lazily. This turns the
    /// per-swap candidate scan from O(arena) into O(nodes of one var).
    pub(crate) var_nodes: Vec<Vec<u32>>,
    pub(crate) reorder_stats: crate::reorder::ReorderStats,
    /// Shared effort-counter registry (see [`crate::obs`]); `None` until
    /// [`set_counters`](Self::set_counters) installs one.
    #[cfg(feature = "obs")]
    pub(crate) counters: Option<std::sync::Arc<tbf_obs::Counters>>,
}

impl BddManager {
    /// Creates an empty plain-mode manager with no variables.
    pub fn new() -> Self {
        Self::with_complement_edges(false)
    }

    /// Creates an empty complement-edge manager with no variables.
    pub fn new_ce() -> Self {
        Self::with_complement_edges(true)
    }

    /// Creates an empty manager in the requested mode (`true` enables
    /// complement edges).
    pub fn with_complement_edges(ce: bool) -> Self {
        BddManager {
            // One terminal at arena index 0: TRUE is the plain handle,
            // FALSE its complement. The payload is a sentinel and never
            // interned in the unique table.
            nodes: vec![Node {
                var: TERMINAL_LEVEL,
                lo: Bdd::TRUE,
                hi: Bdd::TRUE,
            }],
            unique: UniqueTables::new(),
            free: Vec::new(),
            protected: Vec::new(),
            gc_policy: crate::gc::GcPolicy::None,
            gc_trigger: usize::MAX,
            gc_stats: crate::gc::GcStats::default(),
            peak_arena: 1,
            allocated: 0,
            ite_cache: HashMap::new(),
            not_cache: HashMap::new(),
            quant_cache: HashMap::new(),
            compose_cache: HashMap::new(),
            ce,
            var_names: Vec::new(),
            var2level: Vec::new(),
            level2var: Vec::new(),
            reorder_policy: crate::reorder::ReorderPolicy::None,
            pressure_trigger: 0,
            var_nodes: Vec::new(),
            reorder_stats: crate::reorder::ReorderStats::default(),
            #[cfg(feature = "obs")]
            counters: None,
        }
    }

    /// Whether this manager runs in complement-edge mode.
    pub fn complement_edges(&self) -> bool {
        self.ce
    }

    /// Declares a fresh variable at the end of the current order.
    pub fn new_var(&mut self) -> Var {
        let idx = self.var_names.len() as u32;
        self.var_names.push(format!("v{idx}"));
        self.var2level.push(idx);
        self.level2var.push(idx);
        self.var_nodes.push(Vec::new());
        self.unique.push_var();
        Var(idx)
    }

    /// Declares a fresh variable with a debugging name.
    pub fn new_named_var(&mut self, name: &str) -> Var {
        let v = self.new_var();
        self.var_names[v.index()] = name.to_owned();
        v
    }

    /// The name given to `v` at creation (or a generated `v<N>` default).
    ///
    /// # Panics
    ///
    /// Panics if `v` was not created by this manager.
    pub fn var_name(&self, v: Var) -> &str {
        &self.var_names[v.index()]
    }

    /// Number of declared variables.
    pub fn var_count(&self) -> usize {
        self.var_names.len()
    }

    /// Number of *occupied* nodes (including the terminal): arena slots
    /// minus the free list. With garbage collection off this equals the
    /// total allocated, as before; a sweep shrinks it, so node budgets
    /// and pressure triggers measure resident nodes, not historic churn.
    pub fn node_count(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Total arena slots (occupied + freed): the footprint actually
    /// resident in memory.
    pub fn arena_size(&self) -> usize {
        self.nodes.len()
    }

    /// High-water mark of [`arena_size`](Self::arena_size) over the
    /// manager's life — what peak memory looked like, whatever GC
    /// reclaimed since.
    pub fn peak_arena(&self) -> usize {
        self.peak_arena
    }

    /// Nodes ever interned over the manager's life, counting freed-slot
    /// reuse. Monotone: a GC sweep shrinks [`node_count`](Self::node_count)
    /// but never this, which makes it the right base for bounding the
    /// *work* of a sift pass independently of how much of its churn the
    /// in-pass sweeps reclaim.
    pub fn allocated_total(&self) -> usize {
        self.allocated
    }

    /// Approximate resident bytes of the node arena plus the unique
    /// subtables' slot arrays (memory telemetry for benches).
    pub fn arena_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>() + self.unique.slot_bytes()
    }

    /// `(entries, capacity)` of variable `v`'s unique subtable —
    /// diagnostics for the capacity-stays-bounded regression tests.
    pub fn unique_subtable_stats(&self, v: Var) -> (usize, usize) {
        self.unique.stats_of(v.0)
    }

    /// The function that is true exactly when `v` is true.
    pub fn var(&mut self, v: Var) -> Bdd {
        self.mk(v.0, Bdd::FALSE, Bdd::TRUE)
    }

    /// The function that is true exactly when `v` is false.
    pub fn nvar(&mut self, v: Var) -> Bdd {
        self.mk(v.0, Bdd::TRUE, Bdd::FALSE)
    }

    /// A literal: `var(v)` if `positive`, else `nvar(v)`.
    pub fn literal(&mut self, v: Var, positive: bool) -> Bdd {
        if positive {
            self.var(v)
        } else {
            self.nvar(v)
        }
    }

    /// The constant function for `value`.
    pub fn constant(&self, value: bool) -> Bdd {
        if value {
            Bdd::TRUE
        } else {
            Bdd::FALSE
        }
    }

    /// Interns a node, enforcing the no-redundant-test and sharing rules.
    /// In complement-edge mode a complemented `hi` edge is renormalized
    /// (both children negated, result handle tagged) so that stored nodes
    /// always satisfy the canonical then-edge rule.
    pub(crate) fn mk(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        if lo == hi {
            return lo;
        }
        if self.ce && hi.is_complemented() {
            return self.mk_regular(var, lo.negate(), hi.negate()).negate();
        }
        self.mk_regular(var, lo, hi)
    }

    /// [`mk`](Self::mk) after then-edge normalization: interns `(var, lo,
    /// hi)` as stored and returns the plain (untagged) handle.
    fn mk_regular(&mut self, var: u32, lo: Bdd, hi: Bdd) -> Bdd {
        debug_assert!(!self.ce || !hi.is_complemented(), "hi edge must be regular");
        self.obs_unique_probe();
        if let Some(slot) = self.unique.get(var, lo, hi, &self.nodes) {
            self.obs_unique_hit();
            return Bdd::from_index(slot as usize);
        }
        self.obs_unique_miss();
        self.obs_node_alloc();
        self.allocated += 1;
        let node = Node { var, lo, hi };
        // Reuse a GC-freed slot before growing the arena.
        let slot = match self.free.pop() {
            Some(s) => {
                debug_assert_eq!(self.nodes[s as usize].var, crate::node::FREE_LEVEL);
                self.nodes[s as usize] = node;
                s as usize
            }
            None => {
                let s = self.nodes.len();
                self.nodes.push(node);
                self.peak_arena = self.peak_arena.max(self.nodes.len());
                s
            }
        };
        self.unique.insert(var, slot as u32, &self.nodes);
        self.var_nodes[var as usize].push(slot as u32);
        Bdd::from_index(slot)
    }

    #[inline]
    pub(crate) fn node(&self, b: Bdd) -> Node {
        self.nodes[b.index()]
    }

    /// The cofactors of `b` at its root node, with the complement tag of
    /// `b` propagated onto the children (so they denote the cofactors of
    /// the *function*, not of the stored node).
    #[inline]
    pub(crate) fn cofactors(&self, b: Bdd) -> (Bdd, Bdd) {
        let n = self.node(b);
        if b.is_complemented() {
            (n.lo.negate(), n.hi.negate())
        } else {
            (n.lo, n.hi)
        }
    }

    /// Current order position of variable index `var` (internal shorthand).
    #[inline]
    pub(crate) fn lvl(&self, var: u32) -> u32 {
        self.var2level[var as usize]
    }

    /// Order position of the root of `b`: the root variable's level, or
    /// [`TERMINAL_LEVEL`] for constants (below every variable).
    #[inline]
    pub(crate) fn blevel(&self, b: Bdd) -> u32 {
        if b.is_const() {
            TERMINAL_LEVEL
        } else {
            self.lvl(self.node(b).var)
        }
    }

    /// Current order position of `v` (0 = tested first / closest to root).
    pub fn level_of(&self, v: Var) -> usize {
        self.var2level[v.index()] as usize
    }

    /// The variable currently at order position `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= var_count()`.
    pub fn var_at_level(&self, level: usize) -> Var {
        Var(self.level2var[level])
    }

    /// The current variable order, root-first.
    pub fn current_order(&self) -> Vec<Var> {
        self.level2var.iter().map(|&v| Var(v)).collect()
    }

    /// `true` when every variable sits at its creation position (the order
    /// a fresh manager starts with).
    pub fn is_identity_order(&self) -> bool {
        self.var2level
            .iter()
            .enumerate()
            .all(|(i, &l)| l as usize == i)
    }

    /// Installs a variable order on a *fresh* manager (no nodes built yet).
    /// `order[l]` is the variable to place at level `l`.
    ///
    /// # Panics
    ///
    /// Panics if any node has been interned already, or if `order` is not a
    /// permutation of all declared variables. Use
    /// [`reorder_to`](Self::reorder_to) on a populated manager instead.
    pub fn set_order(&mut self, order: &[Var]) {
        assert_eq!(
            self.nodes.len(),
            1,
            "set_order requires a fresh manager; use reorder_to instead"
        );
        assert_eq!(
            order.len(),
            self.var_count(),
            "order must list every variable"
        );
        let mut seen = vec![false; order.len()];
        for v in order {
            assert!(
                v.index() < seen.len() && !seen[v.index()],
                "order must be a permutation of the declared variables"
            );
            seen[v.index()] = true;
        }
        for (l, v) in order.iter().enumerate() {
            self.level2var[l] = v.0;
            self.var2level[v.index()] = l as u32;
        }
    }

    /// The variable tested at the root of `b`, or `None` for constants.
    pub fn root_var(&self, b: Bdd) -> Option<Var> {
        if b.is_const() {
            None
        } else {
            Some(Var(self.node(b).var))
        }
    }

    /// The two cofactors `(f|v=0, f|v=1)` with respect to the *root*
    /// variable of `b`.
    ///
    /// # Panics
    ///
    /// Panics if `b` is a constant.
    pub fn root_cofactors(&self, b: Bdd) -> (Bdd, Bdd) {
        assert!(!b.is_const(), "constants have no cofactors");
        self.cofactors(b)
    }

    /// Evaluates `b` under a full assignment indexed by variable *identity*
    /// ([`Var::index`]), so the result does not depend on the current order.
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than some variable tested in `b`.
    pub fn eval(&self, b: Bdd, assignment: &[bool]) -> bool {
        // One walk serves both modes: accumulate complement-tag parity on
        // the way down; the terminal is reached as TRUE once the tag is
        // stripped, so the answer is the parity itself.
        let mut cur = b;
        let mut neg = false;
        loop {
            if cur.is_complemented() {
                neg = !neg;
                cur = cur.negate();
            }
            if cur.is_const() {
                return !neg;
            }
            let n = self.node(cur);
            cur = if assignment[n.var as usize] {
                n.hi
            } else {
                n.lo
            };
        }
    }

    /// Number of satisfying assignments over `n_vars` variables.
    ///
    /// Counted as `f64` so it stays useful beyond 64 variables (at reduced
    /// precision).
    ///
    /// # Panics
    ///
    /// Panics if `b` tests a variable with index `>= n_vars`.
    pub fn sat_count(&self, b: Bdd, n_vars: usize) -> f64 {
        if b.is_false() {
            return 0.0;
        }
        if b.is_true() {
            return 2f64.powi(n_vars as i32);
        }
        assert!(
            self.max_tested_level(b) < n_vars,
            "sat_count: BDD tests a variable outside the first n_vars levels"
        );
        // Level-aware recursion: `go(b, level)` counts assignments of the
        // variables at positions `level..n_vars` that satisfy `b`. A
        // complemented handle counts via |¬f| = 2^k − |f|, so the memo
        // only ever holds regular handles.
        fn go(
            m: &BddManager,
            b: Bdd,
            level: usize,
            n_vars: usize,
            memo: &mut HashMap<(Bdd, usize), f64>,
        ) -> f64 {
            if b.is_complemented() {
                return 2f64.powi((n_vars - level) as i32) - go(m, b.negate(), level, n_vars, memo);
            }
            if b.is_const() {
                return 2f64.powi((n_vars - level) as i32);
            }
            if let Some(&c) = memo.get(&(b, level)) {
                return c;
            }
            let n = m.node(b);
            let node_level = m.lvl(n.var) as usize;
            let skipped = node_level - level;
            let lo = go(m, n.lo, node_level + 1, n_vars, memo);
            let hi = go(m, n.hi, node_level + 1, n_vars, memo);
            let c = 2f64.powi(skipped as i32) * (lo + hi);
            memo.insert((b, level), c);
            c
        }
        let mut memo: HashMap<(Bdd, usize), f64> = HashMap::new();
        go(self, b, 0, n_vars, &mut memo)
    }

    /// Largest order position tested anywhere in `b`, or 0 for constants.
    fn max_tested_level(&self, b: Bdd) -> usize {
        // Track regular handles so a node reached both plain and
        // complemented is visited once.
        let mut stack = vec![b.regular()];
        let mut seen = std::collections::HashSet::new();
        let mut max = 0usize;
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x) {
                continue;
            }
            let n = self.node(x);
            max = max.max(self.lvl(n.var) as usize);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        max
    }

    /// The set of variables tested in `b`, in ascending [`Var::index`]
    /// order (independent of the current variable order).
    pub fn support(&self, b: Bdd) -> Vec<Var> {
        let mut stack = vec![b.regular()];
        let mut seen = std::collections::HashSet::new();
        let mut vars = std::collections::BTreeSet::new();
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x) {
                continue;
            }
            let n = self.node(x);
            vars.insert(n.var);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        vars.into_iter().map(Var).collect()
    }

    /// Number of internal nodes reachable from `roots` (the *live* size,
    /// as opposed to [`node_count`](Self::node_count), which also counts
    /// occupied-but-unreachable entries — dead until a GC sweep or a
    /// manager rebuild reclaims them).
    pub fn live_size(&self, roots: &[Bdd]) -> usize {
        // Sifting calls this after every adjacent swap, so the visited
        // set is a plain arena-indexed bitmap rather than a hash set.
        // `index()` strips the complement tag, so a node referenced both
        // plain and complemented is counted once — the {f, ¬f} pair *is*
        // one node under complement edges.
        let mut stack: Vec<Bdd> = roots.to_vec();
        let mut seen = vec![false; self.nodes.len()];
        let mut count = 0usize;
        while let Some(x) = stack.pop() {
            if x.is_const() || std::mem::replace(&mut seen[x.index()], true) {
                continue;
            }
            count += 1;
            let n = self.node(x);
            stack.push(n.lo);
            stack.push(n.hi);
        }
        count
    }

    /// Number of (shared) nodes reachable from `b`, terminals excluded.
    pub fn size(&self, b: Bdd) -> usize {
        let mut stack = vec![b.regular()];
        let mut seen = std::collections::HashSet::new();
        let mut count = 0usize;
        while let Some(x) = stack.pop() {
            if x.is_const() || !seen.insert(x) {
                continue;
            }
            count += 1;
            let n = self.node(x);
            stack.push(n.lo.regular());
            stack.push(n.hi.regular());
        }
        count
    }

    /// Total entries across the operation caches (memory pressure gauge).
    pub fn op_cache_len(&self) -> usize {
        self.ite_cache.len()
            + self.not_cache.len()
            + self.quant_cache.len()
            + self.compose_cache.len()
    }

    /// Clears all operation caches (unique table is kept, canonicity is
    /// unaffected). Useful to bound memory between delay-search intervals.
    pub fn clear_op_caches(&mut self) {
        self.obs_gc_run();
        self.ite_cache.clear();
        self.not_cache.clear();
        self.quant_cache.clear();
        self.compose_cache.clear();
    }
}

impl Default for BddManager {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for BddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BddManager")
            .field("vars", &self.var_names.len())
            .field("nodes", &self.node_count())
            .field("free", &self.free.len())
            .field("ce", &self.ce)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_manager_has_one_terminal_node() {
        let m = BddManager::new();
        assert_eq!(m.node_count(), 1);
        assert_eq!(m.var_count(), 0);
        let c = BddManager::new_ce();
        assert_eq!(c.node_count(), 1);
        assert!(c.complement_edges());
        assert!(!m.complement_edges());
    }

    #[test]
    fn var_nodes_are_shared() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let a = m.var(x);
        let b = m.var(x);
        assert_eq!(a, b);
        assert_eq!(m.node_count(), 2);
    }

    #[test]
    fn ce_literals_share_one_node() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let pos = m.var(x);
        let neg = m.nvar(x);
        assert_eq!(m.node_count(), 2, "x and ¬x share one node");
        assert_eq!(neg, m.not(pos));
        assert_ne!(pos, neg);
        assert!(m.eval(pos, &[true]));
        assert!(!m.eval(neg, &[true]));
    }

    #[test]
    fn named_vars_report_names() {
        let mut m = BddManager::new();
        let x = m.new_named_var("clk");
        let y = m.new_var();
        assert_eq!(m.var_name(x), "clk");
        assert_eq!(m.var_name(y), "v1");
    }

    #[test]
    fn eval_follows_assignment() {
        for ce in [false, true] {
            let mut m = BddManager::with_complement_edges(ce);
            let x = m.new_var();
            let y = m.new_var();
            let (vx, vy) = (m.var(x), m.var(y));
            let f = m.and(vx, vy);
            assert!(m.eval(f, &[true, true]));
            assert!(!m.eval(f, &[true, false]));
            assert!(!m.eval(f, &[false, true]));
        }
    }

    #[test]
    fn sat_count_matches_truth_table() {
        for ce in [false, true] {
            let mut m = BddManager::with_complement_edges(ce);
            let x = m.new_var();
            let y = m.new_var();
            let z = m.new_var();
            let (vx, vy, vz) = (m.var(x), m.var(y), m.var(z));
            let xy = m.and(vx, vy);
            let f = m.or(xy, vz); // 5 of 8 assignments
            assert_eq!(m.sat_count(f, 3), 5.0);
            let nf = m.not(f);
            assert_eq!(m.sat_count(nf, 3), 3.0);
            assert_eq!(m.sat_count(Bdd::TRUE, 3), 8.0);
            assert_eq!(m.sat_count(Bdd::FALSE, 3), 0.0);
        }
    }

    #[test]
    fn sat_count_with_gap_levels() {
        let mut m = BddManager::new();
        let _a = m.new_var();
        let b = m.new_var();
        let _c = m.new_var();
        let f = m.var(b); // vars a, c free
        assert_eq!(m.sat_count(f, 3), 4.0);
    }

    #[test]
    fn support_and_size() {
        for ce in [false, true] {
            let mut m = BddManager::with_complement_edges(ce);
            let x = m.new_var();
            let y = m.new_var();
            let z = m.new_var();
            let (vx, vz) = (m.var(x), m.var(z));
            let f = m.or(vx, vz);
            assert_eq!(m.support(f), vec![x, z]);
            assert!(!m.support(f).contains(&y));
            assert_eq!(m.size(f), 2);
            assert_eq!(m.size(Bdd::TRUE), 0);
            let nf = m.not(f);
            assert_eq!(m.size(nf), 2, "complement shares the same nodes");
        }
    }

    #[test]
    fn root_accessors() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let f = m.var(x);
        assert_eq!(m.root_var(f), Some(x));
        assert_eq!(m.root_var(Bdd::TRUE), None);
        let (lo, hi) = m.root_cofactors(f);
        assert_eq!(lo, Bdd::FALSE);
        assert_eq!(hi, Bdd::TRUE);
    }

    #[test]
    fn ce_root_cofactors_propagate_the_tag() {
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let f = m.var(x);
        let nf = m.not(f);
        assert_eq!(m.root_var(nf), Some(x));
        let (lo, hi) = m.root_cofactors(nf);
        assert_eq!(lo, Bdd::TRUE);
        assert_eq!(hi, Bdd::FALSE);
    }

    #[test]
    #[should_panic(expected = "constants have no cofactors")]
    fn root_cofactors_of_constant_panics() {
        let m = BddManager::new();
        let _ = m.root_cofactors(Bdd::TRUE);
    }

    #[test]
    fn clear_op_caches_preserves_results() {
        let mut m = BddManager::new();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let f1 = m.xor(vx, vy);
        m.clear_op_caches();
        let f2 = m.xor(vx, vy);
        assert_eq!(f1, f2);
    }

    #[test]
    fn ce_live_size_counts_complement_pairs_once() {
        // A {f, ¬f} pair is one physical node under complement edges. A
        // handle-keyed visited set would count the pair twice (and with it
        // every node reached both plain and complemented); the arena-index
        // bitmap must not.
        let mut m = BddManager::new_ce();
        let x = m.new_var();
        let y = m.new_var();
        let (vx, vy) = (m.var(x), m.var(y));
        let f = m.xor(vx, vy);
        let nf = m.not(f);
        assert_eq!(f.regular(), nf.regular(), "pair must share one node");
        assert_ne!(f, nf);
        let plain = m.live_size(&[f]);
        assert_eq!(m.live_size(&[f, nf]), plain);
        assert_eq!(m.live_size(&[nf]), plain);
        // xor reaches the y-literal both plain (x̄-branch) and complemented
        // (x-branch): 2 physical nodes, not 3 as a handle-keyed count (or
        // the legacy no-sharing representation) would report.
        assert_eq!(plain, 2);
        assert_eq!(m.size(f), plain);
        let mut legacy = BddManager::new();
        let x = legacy.new_var();
        let y = legacy.new_var();
        let (vx, vy) = (legacy.var(x), legacy.var(y));
        let g = legacy.xor(vx, vy);
        assert_eq!(legacy.live_size(&[g]), 3);
    }
}
