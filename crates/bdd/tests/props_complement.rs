//! Seeded property tests: complement edges never change semantics.
//!
//! Random expression DAGs (xorshift-seeded, no external deps) are built
//! twice from the same seed — once in a complement-edged manager, once
//! in a legacy one — and compared by exhaustive 2^n evaluation,
//! `sat_count` and `support`. On the complement-edged side the handle
//! algebra itself is checked: negation is a constant-time tag flip that
//! allocates nothing, double negation is pointer-identical, and
//! De Morgan-equivalent constructions meet at the same handle (the
//! canonical then-edge rule at work). Reordering is exercised on the
//! complement-edged manager to confirm the two features compose.
//!
//! Seeds come from the same fixed table as `props_reorder`; set
//! `RANDOM_SEED=<u64>` (decimal or `0x`-hex) to add one more. Failures
//! report the seed and parameters needed to reproduce.

use tbf_bdd::{Bdd, BddManager, Var};

/// Fixed seed table used by default and in CI's deterministic jobs.
const SEEDS: [u64; 3] = [0x9e3779b97f4a7c15, 0xdeadbeefcafef00d, 0x0123456789abcdef];

/// xorshift64* — tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One random connective applied to pool members, deterministically
/// driven by `rng` — callable against any manager so the same seed
/// replays the same construction in both modes.
fn random_step(m: &mut BddManager, rng: &mut XorShift, pool: &mut Vec<Bdd>) {
    let a = pool[rng.below(pool.len())];
    let b = pool[rng.below(pool.len())];
    let g = match rng.below(6) {
        0 => m.and(a, b),
        1 => m.or(a, b),
        2 => m.xor(a, b),
        3 => m.nand(a, b),
        4 => m.not(a),
        _ => {
            let c = pool[rng.below(pool.len())];
            m.ite(a, b, c)
        }
    };
    pool.push(g);
}

/// Builds the same random DAG in `m`, returning every subfunction.
fn random_dag(
    m: &mut BddManager,
    seed: u64,
    n_vars: usize,
    n_gates: usize,
) -> (Vec<Bdd>, Vec<Var>) {
    let mut rng = XorShift::new(seed);
    let vars: Vec<Var> = (0..n_vars).map(|_| m.new_var()).collect();
    let mut pool: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    for _ in 0..n_gates {
        random_step(m, &mut rng, &mut pool);
    }
    (pool, vars)
}

/// All 2^n evaluations, assignment bit `i` = variable identity `i`.
fn truth_table(m: &BddManager, f: Bdd, n_vars: usize) -> Vec<bool> {
    (0..1usize << n_vars)
        .map(|bits| {
            let a: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
            m.eval(f, &a)
        })
        .collect()
}

/// One full property case. Returns a failure description on mismatch.
fn run_case(seed: u64, n_vars: usize, n_gates: usize) -> Result<(), String> {
    let mut ce = BddManager::new_ce();
    let mut legacy = BddManager::with_complement_edges(false);
    let (ce_pool, _) = random_dag(&mut ce, seed, n_vars, n_gates);
    let (legacy_pool, _) = random_dag(&mut legacy, seed, n_vars, n_gates);

    for (i, (&f, &g)) in ce_pool.iter().zip(&legacy_pool).enumerate() {
        let tt_ce = truth_table(&ce, f, n_vars);
        if tt_ce != truth_table(&legacy, g, n_vars) {
            return Err(format!(
                "subfunction #{i}: CE and legacy truth tables differ"
            ));
        }
        let (sc, sl) = (ce.sat_count(f, n_vars), legacy.sat_count(g, n_vars));
        if sc != sl {
            return Err(format!("subfunction #{i}: sat_count {sc} vs legacy {sl}"));
        }
        if ce.support(f) != legacy.support(g) {
            return Err(format!("subfunction #{i}: support differs"));
        }

        // Handle algebra on the complement-edged side: ¬ is a tag flip
        // on the same arena node, so it allocates nothing and ¬¬f is
        // pointer-identical to f.
        let before = ce.node_count();
        let nf = ce.not(f);
        if ce.node_count() != before {
            return Err(format!("subfunction #{i}: negation allocated nodes"));
        }
        if nf == f || nf.index() != f.index() {
            return Err(format!(
                "subfunction #{i}: ¬f must be the complement tag on f's node ({nf:?} vs {f:?})"
            ));
        }
        if ce.not(nf) != f {
            return Err(format!("subfunction #{i}: ¬¬f is not pointer-equal to f"));
        }
        // Negation must also be semantically the complement.
        if truth_table(&ce, nf, n_vars)
            .iter()
            .zip(&tt_ce)
            .any(|(a, b)| a == b)
        {
            return Err(format!("subfunction #{i}: ¬f agrees with f somewhere"));
        }
    }

    // Canonicity across construction routes: De Morgan pairs meet at
    // the same handle (this is what the canonical then-edge rule buys).
    let mut rng = XorShift::new(seed ^ 0x5ca1ab1e);
    for round in 0..8 {
        let a = ce_pool[rng.below(ce_pool.len())];
        let b = ce_pool[rng.below(ce_pool.len())];
        let via_nand = ce.nand(a, b);
        let (na, nb) = (ce.not(a), ce.not(b));
        let via_or = ce.or(na, nb);
        if via_nand != via_or {
            return Err(format!(
                "round {round}: ¬(a∧b) and ¬a∨¬b built distinct handles"
            ));
        }
        let and_back = ce.and(a, b);
        if ce.not(via_nand) != and_back {
            return Err(format!("round {round}: ¬¬(a∧b) differs from a∧b"));
        }
    }

    // Complement edges must never be the larger representation.
    let (ce_live, legacy_live) = (ce.live_size(&ce_pool), legacy.live_size(&legacy_pool));
    if ce_live > legacy_live {
        return Err(format!(
            "CE live size {ce_live} exceeds legacy {legacy_live}"
        ));
    }

    // Reordering composes with complement edges: a sift preserves every
    // subfunction's semantics.
    let last = *ce_pool.last().expect("pool is non-empty");
    let tt = truth_table(&ce, last, n_vars);
    ce.sift(&ce_pool, 150, usize::MAX);
    if truth_table(&ce, last, n_vars) != tt {
        return Err("sift changed a CE-managed function".into());
    }
    Ok(())
}

/// Shrinks a failing case: halve the gate count while it still fails,
/// then halve the variable count, and report the smallest failure.
fn shrink_and_report(seed: u64, n_vars: usize, n_gates: usize, first_error: String) -> String {
    let (mut best_vars, mut best_gates, mut best_err) = (n_vars, n_gates, first_error);
    let mut gates = n_gates / 2;
    while gates >= 1 {
        match run_case(seed, best_vars, gates) {
            Err(e) => {
                best_gates = gates;
                best_err = e;
                gates /= 2;
            }
            Ok(()) => break,
        }
    }
    let mut vars = best_vars / 2;
    while vars >= 2 {
        match run_case(seed, vars, best_gates) {
            Err(e) => {
                best_vars = vars;
                best_err = e;
                vars /= 2;
            }
            Ok(()) => break,
        }
    }
    format!(
        "complement-edge property failed: seed={seed:#x} n_vars={best_vars} \
         n_gates={best_gates}: {best_err} (reproduce with RANDOM_SEED={seed})"
    )
}

/// The seed table, plus `RANDOM_SEED` from the environment if present.
fn seeds() -> Vec<u64> {
    let mut s = SEEDS.to_vec();
    if let Ok(raw) = std::env::var("RANDOM_SEED") {
        let parsed = raw
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| raw.parse());
        match parsed {
            Ok(x) => s.push(x),
            Err(e) => panic!("RANDOM_SEED={raw:?} is not a u64: {e}"),
        }
    }
    s
}

#[test]
fn complement_edges_preserve_semantics_on_random_dags() {
    for seed in seeds() {
        let mut rng = XorShift::new(seed ^ 0xa5a5a5a5a5a5a5a5);
        for case in 0..6u64 {
            // 3..=12 variables (exhaustive evaluation stays ≤ 4096 rows).
            let n_vars = 3 + rng.below(10);
            let n_gates = 4 + rng.below(28);
            let case_seed = seed.wrapping_add(case.wrapping_mul(0x9e3779b97f4a7c15));
            if let Err(e) = run_case(case_seed, n_vars, n_gates) {
                panic!("{}", shrink_and_report(case_seed, n_vars, n_gates, e));
            }
        }
    }
}

#[test]
fn constants_are_a_tagged_pair_in_both_modes() {
    for ce in [true, false] {
        let mut m = BddManager::with_complement_edges(ce);
        let t = m.constant(true);
        let f = m.constant(false);
        assert_eq!(t, Bdd::TRUE);
        assert_eq!(f, Bdd::FALSE);
        assert_eq!(m.not(t), f, "ce={ce}");
        assert_eq!(m.not(f), t, "ce={ce}");
    }
}
