//! Seeded property tests: mark-and-sweep GC never changes semantics.
//!
//! Random expression DAGs (xorshift-seeded, no external deps) are built
//! over up to 12 variables; a random subset of the constructed functions
//! is kept live and the rest abandoned. Each sweep is checked against
//! pre-sweep snapshots: exhaustive 2^n evaluation, `support`, and a
//! structural descriptor of every reachable node (handles stay valid
//! across a sweep, so the comparison is direct). Further cases compose
//! GC with sifting, adjacent swaps, and random permutations under a low
//! pressure trigger, and verify a sweep never frees a node reachable
//! from a live handle. Everything runs in both plain and
//! complement-edged managers.
//!
//! Seeds come from a fixed table; set `RANDOM_SEED=<u64>` (decimal or
//! `0x`-hex) to add one more. A failing case is shrunk (fewer gates,
//! then fewer variables) and reported with the seed and parameters
//! needed to reproduce it.

use tbf_bdd::{Bdd, BddManager, GcPolicy, Var};

/// Fixed seed table used by default and in CI's deterministic jobs.
const SEEDS: [u64; 3] = [0x9e3779b97f4a7c15, 0xdeadbeefcafef00d, 0x0123456789abcdef];

/// xorshift64* — tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn shuffled(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            v.swap(i, self.below(i + 1));
        }
        v
    }
}

/// Builds a random expression DAG over `n_vars` variables with `n_gates`
/// random binary/unary connectives, returning every subfunction built
/// (literals first) and the declared variables.
fn random_dag(
    m: &mut BddManager,
    rng: &mut XorShift,
    n_vars: usize,
    n_gates: usize,
) -> (Vec<Bdd>, Vec<Var>) {
    let vars: Vec<Var> = (0..n_vars).map(|_| m.new_var()).collect();
    let mut pool: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    for _ in 0..n_gates {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let g = match rng.below(6) {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            3 => m.nand(a, b),
            4 => m.not(a),
            _ => {
                let c = pool[rng.below(pool.len())];
                m.ite(a, b, c)
            }
        };
        pool.push(g);
    }
    (pool, vars)
}

/// All 2^n evaluations, assignment bit `i` = variable identity `i`.
fn truth_table(m: &BddManager, f: Bdd, n_vars: usize) -> Vec<bool> {
    (0..1usize << n_vars)
        .map(|bits| {
            let a: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
            m.eval(f, &a)
        })
        .collect()
}

/// Structural descriptor of the graph reachable from `b`: a recursive
/// `(var lo hi)` dump in variable identities. Complement tags and
/// terminals are rendered explicitly, so two handles describe the same
/// string iff the reachable structure (not just the function) matches.
fn describe(m: &BddManager, b: Bdd, out: &mut String) {
    if b.is_const() {
        out.push(if b.is_true() { '1' } else { '0' });
        return;
    }
    let v = m
        .root_var(b)
        .expect("non-constant node has a root variable");
    let (lo, hi) = m.root_cofactors(b);
    out.push('(');
    out.push_str(&v.index().to_string());
    out.push(' ');
    describe(m, lo, out);
    out.push(' ');
    describe(m, hi, out);
    out.push(')');
}

fn descriptor(m: &BddManager, b: Bdd) -> String {
    let mut s = String::new();
    describe(m, b, &mut s);
    s
}

/// Per-root snapshot taken before a sweep or a reorder round.
struct Snapshot {
    tt: Vec<bool>,
    support: Vec<Var>,
    shape: String,
    size: usize,
}

fn snapshot(m: &BddManager, roots: &[Bdd], n_vars: usize) -> Vec<Snapshot> {
    roots
        .iter()
        .map(|&f| Snapshot {
            tt: truth_table(m, f, n_vars),
            support: m.support(f),
            shape: descriptor(m, f),
            size: m.size(f),
        })
        .collect()
}

/// Compares live roots against their snapshots; shapes are only required
/// to match when the variable order has not changed since the snapshot.
fn check_roots(
    m: &BddManager,
    roots: &[Bdd],
    snaps: &[Snapshot],
    n_vars: usize,
    same_order: bool,
    stage: &str,
) -> Result<(), String> {
    for (i, (&f, snap)) in roots.iter().zip(snaps).enumerate() {
        if truth_table(m, f, n_vars) != snap.tt {
            return Err(format!("{stage}: root #{i} truth table changed"));
        }
        if m.support(f) != snap.support {
            return Err(format!("{stage}: root #{i} support changed"));
        }
        if same_order {
            if descriptor(m, f) != snap.shape {
                return Err(format!("{stage}: root #{i} reachable structure changed"));
            }
            if m.size(f) != snap.size {
                return Err(format!("{stage}: root #{i} node count changed"));
            }
        }
    }
    Ok(())
}

/// One sweep-focused property case: abandon a random subset of the
/// pool, sweep, and require the live remainder untouched, the arena
/// right-sized, and the manager fully usable afterwards.
fn run_sweep_case(seed: u64, n_vars: usize, n_gates: usize, ce: bool) -> Result<(), String> {
    let mut rng = XorShift::new(seed);
    let mut m = BddManager::with_complement_edges(ce);
    let (pool, _) = random_dag(&mut m, &mut rng, n_vars, n_gates);

    // Keep a random ~half of the pool live; the rest becomes garbage.
    let live: Vec<Bdd> = pool.iter().copied().filter(|_| rng.below(2) == 0).collect();
    let snaps = snapshot(&m, &live, n_vars);
    let live_before = m.live_size(&live);

    let reclaimed = m.collect_garbage(&live);
    if m.node_count() != live_before + 1 {
        return Err(format!(
            "sweep kept {} occupied nodes, want {} live + terminal",
            m.node_count(),
            live_before
        ));
    }
    if m.live_size(&live) != live_before {
        return Err("sweep changed the live reachable set".into());
    }
    check_roots(&m, &live, &snaps, n_vars, true, "after sweep")?;

    // A second sweep with the same roots has nothing left to find.
    if m.collect_garbage(&live) != 0 {
        return Err("second sweep over unchanged roots reclaimed nodes".into());
    }

    // The manager stays fully usable: new gates over survivors must
    // agree with pointwise combination of the snapshot tables.
    if live.len() >= 2 {
        for round in 0..4 {
            let i = rng.below(live.len());
            let j = rng.below(live.len());
            let g = m.and(live[i], live[j]);
            let want: Vec<bool> = snaps[i]
                .tt
                .iter()
                .zip(&snaps[j].tt)
                .map(|(&a, &b)| a && b)
                .collect();
            if truth_table(&m, g, n_vars) != want {
                return Err(format!("post-sweep AND #{round} is wrong"));
            }
            let g = m.xor(live[i], live[j]);
            let want: Vec<bool> = snaps[i]
                .tt
                .iter()
                .zip(&snaps[j].tt)
                .map(|(&a, &b)| a != b)
                .collect();
            if truth_table(&m, g, n_vars) != want {
                return Err(format!("post-sweep XOR #{round} is wrong"));
            }
        }
        check_roots(&m, &live, &snaps, n_vars, true, "after post-sweep builds")?;
    }

    // Never-frees-reachable, degenerate direction: rooting *everything*
    // must preserve every pool function (only op-cache intermediates and
    // constructed-then-superseded nodes may go).
    let mut m2 = BddManager::with_complement_edges(ce);
    let mut rng2 = XorShift::new(seed);
    let (pool2, _) = random_dag(&mut m2, &mut rng2, n_vars, n_gates);
    let snaps2 = snapshot(&m2, &pool2, n_vars);
    m2.collect_garbage(&pool2);
    check_roots(&m2, &pool2, &snaps2, n_vars, true, "all-roots sweep")?;
    // Stats are monotone bookkeeping; both sweeps above must count.
    if m.gc_stats().sweeps != 2 || m.gc_stats().reclaimed != reclaimed as u64 {
        return Err("gc_stats disagree with the sweeps performed".into());
    }
    Ok(())
}

/// One reorder-composition case: with a low pressure trigger, pressure
/// sweeps fire *inside* sifting and between explicit reorder rounds, and
/// none of it may disturb the live root.
fn run_reorder_case(seed: u64, n_vars: usize, n_gates: usize, ce: bool) -> Result<(), String> {
    let mut rng = XorShift::new(seed);
    let mut m = BddManager::with_complement_edges(ce);
    m.set_gc_policy(GcPolicy::OnPressure { trigger_nodes: 24 });
    let (pool, vars) = random_dag(&mut m, &mut rng, n_vars, n_gates);
    let f = *pool.last().expect("pool starts non-empty");
    let snaps = snapshot(&m, &[f], n_vars);

    // Adjacent swaps with interleaved pressure sweeps.
    for step in 0..2 * n_vars {
        m.swap_levels(rng.below(n_vars - 1));
        m.maybe_gc(&[f]);
        check_roots(&m, &[f], &snaps, n_vars, false, &format!("swap #{step}"))?;
    }

    // Full sifting (sweeps fire inside the sift loop), then random
    // permutations with a sweep after each.
    m.sift(&[f], 150, usize::MAX);
    check_roots(&m, &[f], &snaps, n_vars, false, "after sift")?;
    for round in 0..3 {
        let perm: Vec<Var> = rng.shuffled(n_vars).into_iter().map(|i| vars[i]).collect();
        m.reorder_to(&perm);
        m.collect_garbage(&[f]);
        if m.node_count() != m.live_size(&[f]) + 1 {
            return Err(format!("perm #{round}: sweep left unreachable nodes"));
        }
        check_roots(&m, &[f], &snaps, n_vars, false, &format!("perm #{round}"))?;
    }

    // Back at the identity order the structure must be the original one:
    // sweeps reclaim garbage, never rewrite reachable nodes.
    m.reorder_to(&vars);
    check_roots(&m, &[f], &snaps, n_vars, true, "back at identity")
}

fn run_case(seed: u64, n_vars: usize, n_gates: usize) -> Result<(), String> {
    for ce in [false, true] {
        run_sweep_case(seed, n_vars, n_gates, ce)
            .map_err(|e| format!("{e} (complement_edges={ce})"))?;
        run_reorder_case(seed, n_vars, n_gates, ce)
            .map_err(|e| format!("{e} (complement_edges={ce})"))?;
    }
    Ok(())
}

/// Shrinks a failing case: halve the gate count while it still fails,
/// then halve the variable count, and report the smallest failure.
fn shrink_and_report(seed: u64, n_vars: usize, n_gates: usize, first_error: String) -> String {
    let (mut best_vars, mut best_gates, mut best_err) = (n_vars, n_gates, first_error);
    let mut gates = n_gates / 2;
    while gates >= 1 {
        match run_case(seed, best_vars, gates) {
            Err(e) => {
                best_gates = gates;
                best_err = e;
                gates /= 2;
            }
            Ok(()) => break,
        }
    }
    let mut vars = best_vars / 2;
    while vars >= 2 {
        match run_case(seed, vars, best_gates) {
            Err(e) => {
                best_vars = vars;
                best_err = e;
                vars /= 2;
            }
            Ok(()) => break,
        }
    }
    format!(
        "gc property failed: seed={seed:#x} n_vars={best_vars} n_gates={best_gates}: \
         {best_err} (reproduce with RANDOM_SEED={seed})"
    )
}

/// The seed table, plus `RANDOM_SEED` from the environment if present.
fn seeds() -> Vec<u64> {
    let mut s = SEEDS.to_vec();
    if let Ok(raw) = std::env::var("RANDOM_SEED") {
        let parsed = raw
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| raw.parse());
        match parsed {
            Ok(x) => s.push(x),
            Err(e) => panic!("RANDOM_SEED={raw:?} is not a u64: {e}"),
        }
    }
    s
}

#[test]
fn gc_preserves_semantics_on_random_dags() {
    for seed in seeds() {
        let mut rng = XorShift::new(seed ^ 0xa5a5a5a5a5a5a5a5);
        for case in 0..6u64 {
            // 3..=12 variables (exhaustive evaluation stays ≤ 4096 rows).
            let n_vars = 3 + rng.below(10);
            let n_gates = 4 + rng.below(28);
            let case_seed = seed.wrapping_add(case.wrapping_mul(0x9e3779b97f4a7c15));
            if let Err(e) = run_case(case_seed, n_vars, n_gates) {
                panic!("{}", shrink_and_report(case_seed, n_vars, n_gates, e));
            }
        }
    }
}

#[test]
fn shrinking_finds_small_reproductions() {
    // The shrinker itself must be sound: a case that "fails" for every
    // parameter choice shrinks to the floor without losing the seed info.
    let msg = shrink_and_report(42, 8, 16, "synthetic".into());
    assert!(msg.contains("seed=0x2a"), "{msg}");
    assert!(msg.contains("RANDOM_SEED=42"), "{msg}");
}
