//! Property-based tests: BDDs vs. a brute-force truth-table oracle on
//! randomly generated Boolean expressions.
//!
//! Cases are generated from a deterministic in-repo SplitMix64 stream so
//! the suite is hermetic (no external PRNG/property-test crates) and
//! bit-stable across platforms.

use tbf_bdd::{Bdd, BddManager, Var};

/// Deterministic SplitMix64 (mirrors `tbf_logic::generators::random`,
/// inlined here because `tbf-bdd` sits below `tbf-logic`).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// A small expression AST used as the oracle.
#[derive(Clone, Debug)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            Expr::Var(i) => a[*i],
            Expr::Not(e) => !e.eval(a),
            Expr::And(l, r) => l.eval(a) && r.eval(a),
            Expr::Or(l, r) => l.eval(a) || r.eval(a),
            Expr::Xor(l, r) => l.eval(a) ^ r.eval(a),
        }
    }

    fn build(&self, m: &mut BddManager, vars: &[Var]) -> Bdd {
        match self {
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => {
                let b = e.build(m, vars);
                m.not(b)
            }
            Expr::And(l, r) => {
                let (bl, br) = (l.build(m, vars), r.build(m, vars));
                m.and(bl, br)
            }
            Expr::Or(l, r) => {
                let (bl, br) = (l.build(m, vars), r.build(m, vars));
                m.or(bl, br)
            }
            Expr::Xor(l, r) => {
                let (bl, br) = (l.build(m, vars), r.build(m, vars));
                m.xor(bl, br)
            }
        }
    }
}

const N_VARS: usize = 6;
const CASES: u64 = 128;

/// Random expression of bounded depth.
fn gen_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.below(4) == 0 {
        return Expr::Var(rng.below(N_VARS));
    }
    match rng.below(4) {
        0 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
        1 => Expr::And(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        2 => Expr::Or(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
        _ => Expr::Xor(
            Box::new(gen_expr(rng, depth - 1)),
            Box::new(gen_expr(rng, depth - 1)),
        ),
    }
}

fn setup() -> (BddManager, Vec<Var>) {
    let mut m = BddManager::new();
    let vars = (0..N_VARS).map(|_| m.new_var()).collect();
    (m, vars)
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << N_VARS)).map(|i| (0..N_VARS).map(|j| (i >> j) & 1 == 1).collect())
}

#[test]
fn bdd_matches_expression_semantics() {
    for case in 0..CASES {
        let mut rng = Rng(case);
        let e = gen_expr(&mut rng, 5);
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        for a in assignments() {
            assert_eq!(m.eval(f, &a), e.eval(&a), "case {case}: {e:?}");
        }
    }
}

#[test]
fn canonicity_equal_functions_get_equal_handles() {
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_mul(0x5851F42D4C957F2D));
        let e1 = gen_expr(&mut rng, 5);
        let e2 = gen_expr(&mut rng, 5);
        let (mut m, vars) = setup();
        let f1 = e1.build(&mut m, &vars);
        let f2 = e2.build(&mut m, &vars);
        let semantically_equal = assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        assert_eq!(f1 == f2, semantically_equal, "case {case}");
    }
}

#[test]
fn xor_detects_inequality() {
    // The core delay algorithm's equality test: f(t) ≠ f(∞) iff the
    // XOR BDD is non-false, and every cube of it is a witness.
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_add(0xDEAD));
        let e1 = gen_expr(&mut rng, 5);
        let e2 = gen_expr(&mut rng, 5);
        let (mut m, vars) = setup();
        let f1 = e1.build(&mut m, &vars);
        let f2 = e2.build(&mut m, &vars);
        let diff = m.xor(f1, f2);
        let semantically_equal = assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        assert_eq!(diff.is_false(), semantically_equal, "case {case}");
        for cube in m.cubes(diff) {
            let a = m.cube_to_assignment(&cube, N_VARS);
            assert_ne!(e1.eval(&a), e2.eval(&a), "case {case}");
        }
    }
}

#[test]
fn sat_count_matches_truth_table() {
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_add(0xC0FFEE));
        let e = gen_expr(&mut rng, 5);
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let expected = assignments().filter(|a| e.eval(a)).count() as f64;
        assert_eq!(m.sat_count(f, N_VARS), expected, "case {case}");
    }
}

#[test]
fn quantification_semantics() {
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_add(0xBEEF00));
        let e = gen_expr(&mut rng, 5);
        let v = rng.below(N_VARS);
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let ex = m.exists(f, vars[v]);
        let fa = m.forall(f, vars[v]);
        for a in assignments() {
            let mut a1 = a.clone();
            a1[v] = true;
            let mut a0 = a.clone();
            a0[v] = false;
            let (e1, e0) = (e.eval(&a1), e.eval(&a0));
            assert_eq!(m.eval(ex, &a), e1 || e0, "case {case}");
            assert_eq!(m.eval(fa, &a), e1 && e0, "case {case}");
        }
    }
}

#[test]
fn compose_semantics() {
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_add(0xABCD));
        let e = gen_expr(&mut rng, 4);
        let g = gen_expr(&mut rng, 4);
        let v = rng.below(N_VARS);
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let gb = g.build(&mut m, &vars);
        let h = m.compose(f, vars[v], gb);
        for a in assignments() {
            let mut subst = a.clone();
            subst[v] = g.eval(&a);
            assert_eq!(m.eval(h, &a), e.eval(&subst), "case {case}");
        }
    }
}

#[test]
fn support_is_sound() {
    // Variables outside the support never affect the function value.
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_add(0x51CA5));
        let e = gen_expr(&mut rng, 5);
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let support = m.support(f);
        for v in 0..N_VARS {
            if support.contains(&vars[v]) {
                continue;
            }
            for a in assignments() {
                let mut flipped = a.clone();
                flipped[v] = !flipped[v];
                assert_eq!(m.eval(f, &a), m.eval(f, &flipped), "case {case}");
            }
        }
    }
}

#[test]
fn cubes_partition_onset() {
    for case in 0..CASES {
        let mut rng = Rng(case.wrapping_add(0xF00D));
        let e = gen_expr(&mut rng, 5);
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let cubes: Vec<_> = m.cubes(f).collect();
        for a in assignments() {
            let covering = cubes
                .iter()
                .filter(|c| c.literals().iter().all(|&(v, p)| a[v.index()] == p))
                .count();
            assert_eq!(covering, usize::from(e.eval(&a)), "case {case}");
        }
    }
}
