//! Property-based tests: BDDs vs. a brute-force truth-table oracle on
//! randomly generated Boolean expressions.

use proptest::prelude::*;
use tbf_bdd::{Bdd, BddManager, Var};

/// A small expression AST used as the oracle.
#[derive(Clone, Debug)]
enum Expr {
    Var(usize),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, a: &[bool]) -> bool {
        match self {
            Expr::Var(i) => a[*i],
            Expr::Not(e) => !e.eval(a),
            Expr::And(l, r) => l.eval(a) && r.eval(a),
            Expr::Or(l, r) => l.eval(a) || r.eval(a),
            Expr::Xor(l, r) => l.eval(a) ^ r.eval(a),
        }
    }

    fn build(&self, m: &mut BddManager, vars: &[Var]) -> Bdd {
        match self {
            Expr::Var(i) => m.var(vars[*i]),
            Expr::Not(e) => {
                let b = e.build(m, vars);
                m.not(b)
            }
            Expr::And(l, r) => {
                let (bl, br) = (l.build(m, vars), r.build(m, vars));
                m.and(bl, br)
            }
            Expr::Or(l, r) => {
                let (bl, br) = (l.build(m, vars), r.build(m, vars));
                m.or(bl, br)
            }
            Expr::Xor(l, r) => {
                let (bl, br) = (l.build(m, vars), r.build(m, vars));
                m.xor(bl, br)
            }
        }
    }
}

const N_VARS: usize = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..N_VARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| Expr::Or(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| Expr::Xor(Box::new(l), Box::new(r))),
        ]
    })
}

fn setup() -> (BddManager, Vec<Var>) {
    let mut m = BddManager::new();
    let vars = (0..N_VARS).map(|_| m.new_var()).collect();
    (m, vars)
}

fn assignments() -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << N_VARS)).map(|i| (0..N_VARS).map(|j| (i >> j) & 1 == 1).collect())
}

proptest! {
    #[test]
    fn bdd_matches_expression_semantics(e in arb_expr()) {
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        for a in assignments() {
            prop_assert_eq!(m.eval(f, &a), e.eval(&a));
        }
    }

    #[test]
    fn canonicity_equal_functions_get_equal_handles(e1 in arb_expr(), e2 in arb_expr()) {
        let (mut m, vars) = setup();
        let f1 = e1.build(&mut m, &vars);
        let f2 = e2.build(&mut m, &vars);
        let semantically_equal = assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        prop_assert_eq!(f1 == f2, semantically_equal);
    }

    #[test]
    fn xor_detects_inequality(e1 in arb_expr(), e2 in arb_expr()) {
        // The core delay algorithm's equality test: f(t) ≠ f(∞) iff the
        // XOR BDD is non-false, and every cube of it is a witness.
        let (mut m, vars) = setup();
        let f1 = e1.build(&mut m, &vars);
        let f2 = e2.build(&mut m, &vars);
        let diff = m.xor(f1, f2);
        let semantically_equal = assignments().all(|a| e1.eval(&a) == e2.eval(&a));
        prop_assert_eq!(diff.is_false(), semantically_equal);
        for cube in m.cubes(diff) {
            let a = m.cube_to_assignment(&cube, N_VARS);
            prop_assert_ne!(e1.eval(&a), e2.eval(&a));
        }
    }

    #[test]
    fn sat_count_matches_truth_table(e in arb_expr()) {
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let expected = assignments().filter(|a| e.eval(a)).count() as f64;
        prop_assert_eq!(m.sat_count(f, N_VARS), expected);
    }

    #[test]
    fn quantification_semantics(e in arb_expr(), v in 0..N_VARS) {
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let ex = m.exists(f, vars[v]);
        let fa = m.forall(f, vars[v]);
        for a in assignments() {
            let mut a1 = a.clone();
            a1[v] = true;
            let mut a0 = a.clone();
            a0[v] = false;
            let (e1, e0) = (e.eval(&a1), e.eval(&a0));
            prop_assert_eq!(m.eval(ex, &a), e1 || e0);
            prop_assert_eq!(m.eval(fa, &a), e1 && e0);
        }
    }

    #[test]
    fn compose_semantics(e in arb_expr(), g in arb_expr(), v in 0..N_VARS) {
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let gb = g.build(&mut m, &vars);
        let h = m.compose(f, vars[v], gb);
        for a in assignments() {
            let mut subst = a.clone();
            subst[v] = g.eval(&a);
            prop_assert_eq!(m.eval(h, &a), e.eval(&subst));
        }
    }

    #[test]
    fn support_is_sound(e in arb_expr()) {
        // Variables outside the support never affect the function value.
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let support = m.support(f);
        for v in 0..N_VARS {
            if support.contains(&vars[v]) {
                continue;
            }
            for a in assignments() {
                let mut flipped = a.clone();
                flipped[v] = !flipped[v];
                prop_assert_eq!(m.eval(f, &a), m.eval(f, &flipped));
            }
        }
    }

    #[test]
    fn cubes_partition_onset(e in arb_expr()) {
        let (mut m, vars) = setup();
        let f = e.build(&mut m, &vars);
        let cubes: Vec<_> = m.cubes(f).collect();
        for a in assignments() {
            let covering = cubes
                .iter()
                .filter(|c| c.literals().iter().all(|&(v, p)| a[v.index()] == p))
                .count();
            prop_assert_eq!(covering, usize::from(e.eval(&a)));
        }
    }
}
