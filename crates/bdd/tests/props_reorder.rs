//! Seeded property tests: dynamic reordering never changes semantics.
//!
//! Random expression DAGs (xorshift-seeded, no external deps) are built
//! over up to 12 variables, then exercised under adjacent swaps, full
//! sifting, and random permutations. Each step is checked by exhaustive
//! 2^n evaluation against the pre-reorder truth table, plus `support`,
//! `sat_count`, cube and `min_sat_cube` canonicity.
//!
//! Seeds come from a fixed table; set `RANDOM_SEED=<u64>` (decimal or
//! `0x`-hex) to add one more. A failing case is shrunk (fewer gates, then
//! fewer variables) and reported with the seed and parameters needed to
//! reproduce it.

use tbf_bdd::{Bdd, BddManager, Var};

/// Fixed seed table used by default and in CI's deterministic jobs.
const SEEDS: [u64; 3] = [0x9e3779b97f4a7c15, 0xdeadbeefcafef00d, 0x0123456789abcdef];

/// xorshift64* — tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn shuffled(&mut self, n: usize) -> Vec<usize> {
        let mut v: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            v.swap(i, self.below(i + 1));
        }
        v
    }
}

/// Builds a random expression DAG over `n_vars` variables with `n_gates`
/// random binary/unary connectives, returning the last subfunction built
/// and the declared variables.
fn random_dag(
    m: &mut BddManager,
    rng: &mut XorShift,
    n_vars: usize,
    n_gates: usize,
) -> (Bdd, Vec<Var>) {
    let vars: Vec<Var> = (0..n_vars).map(|_| m.new_var()).collect();
    let mut pool: Vec<Bdd> = vars.iter().map(|&v| m.var(v)).collect();
    for _ in 0..n_gates {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let g = match rng.below(6) {
            0 => m.and(a, b),
            1 => m.or(a, b),
            2 => m.xor(a, b),
            3 => m.nand(a, b),
            4 => m.not(a),
            _ => {
                let c = pool[rng.below(pool.len())];
                m.ite(a, b, c)
            }
        };
        pool.push(g);
    }
    (*pool.last().expect("pool starts non-empty"), vars)
}

/// All 2^n evaluations, assignment bit `i` = variable identity `i` — this
/// indexing is order-independent by construction.
fn truth_table(m: &BddManager, f: Bdd, n_vars: usize) -> Vec<bool> {
    (0..1usize << n_vars)
        .map(|bits| {
            let a: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
            m.eval(f, &a)
        })
        .collect()
}

/// Checks everything that must be invariant under reordering, against
/// snapshots taken before any reorder.
fn check_invariants(
    m: &mut BddManager,
    f: Bdd,
    n_vars: usize,
    tt: &[bool],
    support: &[Var],
    min_sat: &Option<Vec<bool>>,
    stage: &str,
) -> Result<(), String> {
    if truth_table(m, f, n_vars) != tt {
        return Err(format!("{stage}: truth table changed"));
    }
    if m.support(f) != support {
        return Err(format!("{stage}: support changed"));
    }
    let expected_count = tt.iter().filter(|&&b| b).count() as f64;
    if m.sat_count(f, n_vars) != expected_count {
        return Err(format!("{stage}: sat_count changed"));
    }
    // Cube canonicity: the cubes partition the onset exactly, and every
    // cube lists its literals in ascending variable-identity order.
    let cubes: Vec<_> = m.cubes(f).collect();
    for c in &cubes {
        if !c.literals().windows(2).all(|w| w[0].0 < w[1].0) {
            return Err(format!("{stage}: cube literals not sorted by identity"));
        }
    }
    for (bits, &on) in tt.iter().enumerate() {
        let a: Vec<bool> = (0..n_vars).map(|i| bits >> i & 1 == 1).collect();
        let covering = cubes
            .iter()
            .filter(|c| c.literals().iter().all(|&(v, p)| a[v.index()] == p))
            .count();
        if covering != usize::from(on) {
            return Err(format!(
                "{stage}: cubes cover assignment {bits:#b} {covering} times, want {}",
                usize::from(on)
            ));
        }
    }
    // min_sat_cube is the lexicographically smallest satisfying
    // assignment in identity order, whatever the current order.
    let got = m.min_sat_cube(f).map(|c| m.cube_to_assignment(&c, n_vars));
    if got != *min_sat {
        return Err(format!(
            "{stage}: min_sat_cube changed ({got:?} vs {min_sat:?})"
        ));
    }
    Ok(())
}

/// One full property case. Returns a stage description on failure.
fn run_case(seed: u64, n_vars: usize, n_gates: usize) -> Result<(), String> {
    let mut rng = XorShift::new(seed);
    let mut m = BddManager::new();
    let (f, vars) = random_dag(&mut m, &mut rng, n_vars, n_gates);
    let tt = truth_table(&m, f, n_vars);
    let support = m.support(f);
    // Reference lex-min satisfying assignment by brute force.
    let brute_min = tt
        .iter()
        .enumerate()
        .filter(|&(_, &on)| on)
        .map(|(bits, _)| {
            (0..n_vars)
                .map(|i| bits >> i & 1 == 1)
                .collect::<Vec<bool>>()
        })
        .min();
    let min_sat = m.min_sat_cube(f).map(|c| m.cube_to_assignment(&c, n_vars));
    if min_sat != brute_min {
        return Err(format!(
            "min_sat_cube disagrees with brute force ({min_sat:?} vs {brute_min:?})"
        ));
    }

    // 1. Random adjacent swaps, checked after every swap.
    for step in 0..3 * n_vars {
        m.swap_levels(rng.below(n_vars - 1));
        check_invariants(
            &mut m,
            f,
            n_vars,
            &tt,
            &support,
            &min_sat,
            &format!("swap #{step}"),
        )?;
    }

    // 2. Full sifting from wherever the swaps left the order.
    m.sift(&[f], 150, usize::MAX);
    check_invariants(&mut m, f, n_vars, &tt, &support, &min_sat, "after sift")?;

    // 3. Random permutations via reorder_to.
    for round in 0..3 {
        let perm: Vec<Var> = rng.shuffled(n_vars).into_iter().map(|i| vars[i]).collect();
        m.reorder_to(&perm);
        if m.current_order() != perm {
            return Err(format!("perm #{round}: reorder_to missed the target order"));
        }
        check_invariants(
            &mut m,
            f,
            n_vars,
            &tt,
            &support,
            &min_sat,
            &format!("perm #{round}"),
        )?;
    }

    // 4. Back to identity: the manager must agree it is there.
    m.reorder_to(&vars);
    if !m.is_identity_order() {
        return Err("return to identity not detected".into());
    }
    check_invariants(&mut m, f, n_vars, &tt, &support, &min_sat, "identity")
}

/// Shrinks a failing case: halve the gate count while it still fails,
/// then halve the variable count, and report the smallest failure.
fn shrink_and_report(seed: u64, n_vars: usize, n_gates: usize, first_error: String) -> String {
    let (mut best_vars, mut best_gates, mut best_err) = (n_vars, n_gates, first_error);
    let mut gates = n_gates / 2;
    while gates >= 1 {
        match run_case(seed, best_vars, gates) {
            Err(e) => {
                best_gates = gates;
                best_err = e;
                gates /= 2;
            }
            Ok(()) => break,
        }
    }
    let mut vars = best_vars / 2;
    while vars >= 2 {
        match run_case(seed, vars, best_gates) {
            Err(e) => {
                best_vars = vars;
                best_err = e;
                vars /= 2;
            }
            Ok(()) => break,
        }
    }
    format!(
        "reorder property failed: seed={seed:#x} n_vars={best_vars} n_gates={best_gates}: \
         {best_err} (reproduce with RANDOM_SEED={seed})"
    )
}

/// The seed table, plus `RANDOM_SEED` from the environment if present.
fn seeds() -> Vec<u64> {
    let mut s = SEEDS.to_vec();
    if let Ok(raw) = std::env::var("RANDOM_SEED") {
        let parsed = raw
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| raw.parse());
        match parsed {
            Ok(x) => s.push(x),
            Err(e) => panic!("RANDOM_SEED={raw:?} is not a u64: {e}"),
        }
    }
    s
}

#[test]
fn reordering_preserves_semantics_on_random_dags() {
    for seed in seeds() {
        let mut rng = XorShift::new(seed ^ 0xa5a5a5a5a5a5a5a5);
        for case in 0..6u64 {
            // 3..=12 variables (exhaustive evaluation stays ≤ 4096 rows).
            let n_vars = 3 + rng.below(10);
            let n_gates = 4 + rng.below(28);
            let case_seed = seed.wrapping_add(case.wrapping_mul(0x9e3779b97f4a7c15));
            if let Err(e) = run_case(case_seed, n_vars, n_gates) {
                panic!("{}", shrink_and_report(case_seed, n_vars, n_gates, e));
            }
        }
    }
}

#[test]
fn shrinking_finds_small_reproductions() {
    // The shrinker itself must be sound: a case that "fails" for every
    // parameter choice shrinks to the floor without losing the seed info.
    let msg = shrink_and_report(42, 8, 16, "synthetic".into());
    assert!(msg.contains("seed=0x2a"), "{msg}");
    assert!(msg.contains("RANDOM_SEED=42"), "{msg}");
}
