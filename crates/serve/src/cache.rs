//! The session's warm result cache, keyed by structural signature.
//!
//! A long-running `tbf serve` process amortizes TBF compilation across
//! requests: the first analysis of a circuit is expensive, re-queries of
//! the *same structure* (gate names and request ids excluded — see
//! [`Netlist::structural_signature`](tbf_logic::Netlist::structural_signature))
//! are answered from here. Only **all-exact** reports are cached: an
//! exact delay is a property of the structure and delay model alone, so
//! it stays correct whatever per-request caps or deadlines the next
//! asker brings. Degraded reports are cap-dependent and are recomputed.
//!
//! Eviction is deterministic: every lookup/insert advances a logical
//! epoch, and when the cache is full the least-recently-touched entry
//! goes. No wall clock, no hasher-order iteration — replaying the same
//! request sequence replays the same hit/miss/eviction sequence.
//!
//! Quarantine: a request that panics or trips an injected fault calls
//! [`WarmCache::poison`] with its own key, evicting only that entry.
//! The rest of the warm state survives; the poisoned circuit is rebuilt
//! from scratch on its next request instead of served possibly-torn
//! state.

use std::collections::HashMap;

use tbf_obs::json::Value;

/// Hit/miss/eviction counters for the session artifact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that missed (including opt-outs never reach here).
    pub misses: u64,
    /// Results stored.
    pub insertions: u64,
    /// Entries displaced by capacity pressure.
    pub evictions: u64,
    /// Entries quarantined after a panic or injected fault.
    pub poisons: u64,
}

struct Entry {
    result: Value,
    last_touch: u64,
}

/// A bounded, deterministically-evicting map from structural cache key
/// to rendered `result` JSON.
pub struct WarmCache {
    capacity: usize,
    epoch: u64,
    entries: HashMap<Vec<u8>, Entry>,
    /// Effort counters (read by the session artifact).
    pub stats: CacheStats,
}

impl WarmCache {
    /// An empty cache holding at most `capacity` results (a capacity of
    /// zero disables caching entirely).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        WarmCache {
            capacity,
            epoch: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up `key`, counting a hit or miss and refreshing the entry's
    /// recency on a hit.
    pub fn lookup(&mut self, key: &[u8]) -> Option<Value> {
        self.epoch += 1;
        match self.entries.get_mut(key) {
            Some(e) => {
                e.last_touch = self.epoch;
                self.stats.hits += 1;
                Some(e.result.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Stores `result` under `key`, evicting the least-recently-touched
    /// entry if the cache is full. Touch epochs are unique, so the
    /// eviction victim is deterministic.
    pub fn insert(&mut self, key: Vec<u8>, result: Value) {
        if self.capacity == 0 {
            return;
        }
        self.epoch += 1;
        if !self.entries.contains_key(&key) && self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_touch)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.stats.insertions += 1;
        self.entries.insert(
            key,
            Entry {
                result,
                last_touch: self.epoch,
            },
        );
    }

    /// Quarantines `key`: drops the entry (if present) so the circuit is
    /// rebuilt rather than served possibly-poisoned state. Returns
    /// whether an entry was actually evicted.
    pub fn poison(&mut self, key: &[u8]) -> bool {
        let hit = self.entries.remove(key).is_some();
        if hit {
            self.stats.poisons += 1;
        }
        hit
    }

    /// Live entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> Vec<u8> {
        vec![n]
    }

    #[test]
    fn hits_after_insert_misses_before() {
        let mut c = WarmCache::new(4);
        assert!(c.lookup(&key(1)).is_none());
        c.insert(key(1), Value::u64(42));
        assert_eq!(c.lookup(&key(1)), Some(Value::u64(42)));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn eviction_is_lru_and_deterministic() {
        let mut c = WarmCache::new(2);
        c.insert(key(1), Value::u64(1));
        c.insert(key(2), Value::u64(2));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.lookup(&key(1)).is_some());
        c.insert(key(3), Value::u64(3));
        assert_eq!(c.stats.evictions, 1);
        assert!(c.lookup(&key(2)).is_none(), "the LRU entry was evicted");
        assert!(c.lookup(&key(1)).is_some());
        assert!(c.lookup(&key(3)).is_some());
    }

    #[test]
    fn poison_evicts_only_its_entry() {
        let mut c = WarmCache::new(4);
        c.insert(key(1), Value::u64(1));
        c.insert(key(2), Value::u64(2));
        assert!(c.poison(&key(1)));
        assert!(!c.poison(&key(1)), "already gone");
        assert_eq!(c.stats.poisons, 1);
        assert!(c.lookup(&key(1)).is_none());
        assert!(c.lookup(&key(2)).is_some(), "the neighbor survives");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = WarmCache::new(0);
        c.insert(key(1), Value::u64(1));
        assert!(c.lookup(&key(1)).is_none());
        assert!(c.is_empty());
    }
}
