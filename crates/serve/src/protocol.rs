//! The wire protocol of `tbf serve`: line-delimited JSON requests in,
//! line-delimited schema-versioned JSON responses out.
//!
//! Every request is one line; every response is one line. The response
//! schema follows the `tbf-obs` artifact convention (a `schema` header
//! with `name`/`version` as the first member), compacted onto a single
//! line. Hostile input never unwinds out of this module: every decode
//! failure is a typed [`ServeError`] that renders as a one-line error
//! response, and the session stays alive to serve the next frame.
//!
//! # Request shape
//!
//! ```json
//! {"id":"r1","circuit":"INPUT(a)\n...","format":"bench","model":"anytime",
//!  "deadline_ms":100,"options":{"max_paths":20000,"reorder":"pressure"}}
//! ```
//!
//! * `id` — required string, echoed in the response.
//! * `circuit` (inline netlist text) **or** `path` (file to read) —
//!   exactly one must be present.
//! * `format` — `bench`, `blif`, `aiger` (aliases `aag`/`aig`) or
//!   `verilog` (alias `v`); inferred from a `path` extension (then
//!   content sniffing) when absent, defaulting to `bench`. Inline
//!   `circuit` text can carry any of the three text formats; binary
//!   AIGER must come in via `path` (JSON strings cannot carry it).
//! * `delays` — `mcnc` (default) or `unit`.
//! * `model` — only `anytime` in schema v1.
//! * `deadline_ms` — per-request wall-clock budget; the effective
//!   deadline is the earlier of this and the session deadline.
//! * `options` — engine caps: `max_paths`, `max_bdd`, `max_cubes`,
//!   `reorder` (`off`/`manual`/`pressure`), `tbf_cache`
//!   (`auto`/`on`/`off`, or a legacy bool: `true` = `on`),
//!   `complement_edges` (bool), and `cache` (bool: per-request opt-out
//!   of the session's warm cache).
//! * `session` — optional ECO session name. On an analyze request it
//!   establishes (or re-bases) the named incremental session; see
//!   [`crate::workspace`].
//! * `kind` — `analyze` (default) or `eco`. An `eco` request must name
//!   a `session` established earlier; it is answered incrementally by
//!   diffing its netlist against the session base at cone granularity.
//! * `schema` — optional; either the integer `1` or the artifact-style
//!   object `{"name":"tbf-serve-request","version":1}`. Unknown versions
//!   are rejected with a typed error.
//!
//! # Response shape
//!
//! ```json
//! {"schema":{"name":"tbf-serve-response","version":1},"id":"r1",
//!  "status":"ok","result":{...},"effort":{...}}
//! ```
//!
//! The `result` member is **deterministic**: byte-identical across
//! worker-thread counts, reorder policies, and recovered injected
//! faults. The `effort` member carries retry/cache telemetry that may
//! legitimately differ between a cold and a warm (or fault-injected)
//! run; consumers comparing runs drop it (see
//! [`deterministic_view`]).

use std::fmt;

use tbf_core::{CircuitReport, DelayOptions, GcMode, OutputStatus, ReorderPolicy, TbfCacheMode};
use tbf_logic::parsers::{mcnc_like_delays, unit_delays};
use tbf_logic::{Format, Netlist};
use tbf_obs::json::Value;

/// Schema name stamped into every response line.
pub const RESPONSE_SCHEMA: &str = "tbf-serve-response";

/// Schema name accepted in a request's `schema` object.
pub const REQUEST_SCHEMA: &str = "tbf-serve-request";

/// Current protocol version (bumped on breaking key changes only).
pub const SCHEMA_VERSION: u64 = 1;

/// The `--reorder pressure` trigger mirrored from the CLI defaults.
const PRESSURE_TRIGGER_NODES: usize = 50_000;

/// The `--reorder pressure` growth tolerance (percent).
const PRESSURE_MAX_GROWTH: usize = 120;

/// A typed request-boundary failure. Each variant renders as a one-line
/// error response with a stable `kind` tag; none of them terminate the
/// session.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The frame is not a well-formed protocol object (bad JSON, raw
    /// control bytes, missing `id`, not an object, …).
    MalformedFrame {
        /// What was wrong, deterministically worded.
        detail: String,
    },
    /// The frame exceeds the session's byte cap; it was not parsed.
    FrameTooLarge {
        /// Frame length in bytes.
        bytes: usize,
        /// The configured cap.
        cap: usize,
    },
    /// The request names a schema this server does not speak.
    UnsupportedSchema {
        /// The offending schema name/version.
        detail: String,
    },
    /// The frame is well-formed but the request is not servable
    /// (unknown model, unparsable netlist, missing circuit, …).
    BadRequest {
        /// What was wrong, deterministically worded.
        detail: String,
    },
    /// Admission control rejected the request up front instead of
    /// queuing it: the session is at its concurrency cap, over its
    /// request budget, past its deadline, or the circuit exceeds the
    /// admission size cap.
    Overloaded {
        /// Which limit rejected the request.
        detail: String,
    },
    /// The session is draining for shutdown and accepts no new work.
    ShuttingDown,
    /// The request handler panicked; the panic was isolated to this
    /// request and the session's affected cache entries quarantined.
    InternalPanic {
        /// The panic payload when it was a string, else a fixed tag.
        detail: String,
    },
}

impl ServeError {
    /// The stable `snake_case` wire tag of this error kind.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::MalformedFrame { .. } => "malformed_frame",
            ServeError::FrameTooLarge { .. } => "frame_too_large",
            ServeError::UnsupportedSchema { .. } => "unsupported_schema",
            ServeError::BadRequest { .. } => "bad_request",
            ServeError::Overloaded { .. } => "overloaded",
            ServeError::ShuttingDown => "shutting_down",
            ServeError::InternalPanic { .. } => "internal_panic",
        }
    }

    /// The human-readable detail line.
    pub fn detail(&self) -> String {
        match self {
            ServeError::MalformedFrame { detail }
            | ServeError::UnsupportedSchema { detail }
            | ServeError::BadRequest { detail }
            | ServeError::Overloaded { detail }
            | ServeError::InternalPanic { detail } => detail.clone(),
            ServeError::FrameTooLarge { bytes, cap } => {
                format!("frame is {bytes} bytes, cap is {cap}")
            }
            ServeError::ShuttingDown => "session is draining for shutdown".to_owned(),
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind(), self.detail())
    }
}

/// A decoded, admission-ready request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Client-chosen request id, echoed in the response.
    pub id: String,
    /// The parsed circuit.
    pub netlist: Netlist,
    /// Warm-cache key: the netlist's structural signature plus the
    /// delay-model tag (results are exact, so engine caps are not part
    /// of the key — an exact answer is cap-independent).
    pub cache_key: Vec<u8>,
    /// Engine caps and per-request deadline.
    pub options: DelayOptions,
    /// Per-request worker-thread override (`None` = session default).
    pub threads: Option<usize>,
    /// Whether this request may be answered from / stored into the
    /// session's warm cache.
    pub use_cache: bool,
    /// Whether the request carries an explicit `deadline_ms`.
    /// Deadline-limited requests never *read* the warm cache: a cached
    /// exact answer the request's own budget could not have computed
    /// would make the response depend on session history, breaking the
    /// restart-determinism contract. They still *write* the cache when
    /// they finish exact — exactness, once reached, is cap-independent.
    pub has_deadline: bool,
    /// The named ECO session this request establishes (`kind` absent or
    /// `analyze`) or queries incrementally (`kind":"eco"`). Session
    /// requests bypass the warm result cache: their reuse happens at
    /// cone granularity in the workspace instead.
    pub session: Option<String>,
    /// Whether this is a `"kind":"eco"` request (requires `session`).
    pub eco: bool,
    /// The engine-option fingerprint (delay-model tag, timed-node cache
    /// mode, complement edges, reorder policy) — the non-structural
    /// suffix of `cache_key`. Sessions pin this at establishment.
    pub options_key: Vec<u8>,
}

/// Frame-level limits consulted before a byte of JSON is parsed.
#[derive(Clone, Copy, Debug)]
pub struct FrameLimits {
    /// Longest accepted frame, in bytes.
    pub max_frame_bytes: usize,
}

/// Decodes one request line. On failure, returns the request `id` when
/// it could still be recovered (so the error response can echo it)
/// alongside the typed error.
///
/// `defaults` seeds the engine caps; request `options` override
/// individual fields.
pub fn parse_request(
    line: &str,
    limits: &FrameLimits,
    defaults: &DelayOptions,
) -> Result<Request, (Option<String>, ServeError)> {
    if line.len() > limits.max_frame_bytes {
        return Err((
            None,
            ServeError::FrameTooLarge {
                bytes: line.len(),
                cap: limits.max_frame_bytes,
            },
        ));
    }
    // Raw control bytes are illegal inside JSON strings and illegal as
    // framing here (frames are `\n`-delimited; a stray `\r` means the
    // client framed with CRLF). Rejecting them up front gives CRLF and
    // NUL input a typed error instead of a confusing parse failure.
    if line.bytes().any(|b| b == 0) {
        return Err((
            None,
            ServeError::MalformedFrame {
                detail: "frame contains a raw NUL byte".to_owned(),
            },
        ));
    }
    if line.bytes().any(|b| b == b'\r') {
        return Err((
            None,
            ServeError::MalformedFrame {
                detail: "frame contains a raw carriage return (CRLF framing? frames are \
                         LF-delimited)"
                    .to_owned(),
            },
        ));
    }
    if tbf_core::fault::trip(tbf_core::fault::Site::FrameParse) {
        return Err((
            None,
            ServeError::MalformedFrame {
                detail: "injected frame-decode fault".to_owned(),
            },
        ));
    }
    let doc = Value::parse(line).map_err(|e| {
        (
            None,
            ServeError::MalformedFrame {
                detail: format!("invalid JSON: {e}"),
            },
        )
    })?;
    if doc.as_object().is_none() {
        return Err((
            None,
            ServeError::MalformedFrame {
                detail: "request must be a JSON object".to_owned(),
            },
        ));
    }
    let id = match doc.get("id").and_then(Value::as_str) {
        Some(s) if !s.is_empty() => s.to_owned(),
        _ => {
            return Err((
                None,
                ServeError::MalformedFrame {
                    detail: "missing non-empty string member `id`".to_owned(),
                },
            ))
        }
    };
    let fail = |e: ServeError| (Some(id.clone()), e);

    // Schema negotiation: absent means v1; an integer or an
    // artifact-style object are both accepted.
    if let Some(schema) = doc.get("schema") {
        let version = match schema {
            Value::Num(_) => schema.as_u64(),
            Value::Obj(_) => {
                match schema.get("name").and_then(Value::as_str) {
                    Some(REQUEST_SCHEMA) | None => {}
                    Some(other) => {
                        return Err(fail(ServeError::UnsupportedSchema {
                            detail: format!("unknown schema name `{other}`"),
                        }))
                    }
                }
                schema.get("version").and_then(Value::as_u64)
            }
            _ => None,
        };
        match version {
            Some(v) if v <= SCHEMA_VERSION => {}
            Some(v) => {
                return Err(fail(ServeError::UnsupportedSchema {
                    detail: format!("schema version {v} is newer than {SCHEMA_VERSION}"),
                }))
            }
            None => {
                return Err(fail(ServeError::UnsupportedSchema {
                    detail: "schema member carries no integer version".to_owned(),
                }))
            }
        }
    }

    match doc.get("model").and_then(Value::as_str) {
        None | Some("anytime") => {}
        Some(other) => {
            return Err(fail(ServeError::BadRequest {
                detail: format!("unsupported model `{other}` (schema v1 serves `anytime`)"),
            }))
        }
    }

    let eco = match doc.get("kind") {
        None => false,
        Some(v) => match v.as_str() {
            Some("analyze") => false,
            Some("eco") => true,
            _ => {
                return Err(fail(ServeError::BadRequest {
                    detail: "`kind` must be analyze|eco".to_owned(),
                }))
            }
        },
    };
    let session = match doc.get("session") {
        None => None,
        Some(v) => match v.as_str() {
            Some(s) if !s.is_empty() => Some(s.to_owned()),
            _ => {
                return Err(fail(ServeError::BadRequest {
                    detail: "`session` must be a non-empty string".to_owned(),
                }))
            }
        },
    };
    if eco && session.is_none() {
        return Err(fail(ServeError::BadRequest {
            detail: "an eco request must name the `session` whose base it edits".to_owned(),
        }));
    }

    let inline = doc.get("circuit").and_then(Value::as_str);
    let path = doc.get("path").and_then(Value::as_str);
    let (bytes, inferred) = match (inline, path) {
        (Some(_), Some(_)) => {
            return Err(fail(ServeError::BadRequest {
                detail: "request carries both `circuit` and `path`; send exactly one".to_owned(),
            }))
        }
        (None, None) => {
            return Err(fail(ServeError::BadRequest {
                detail: "request carries neither `circuit` (inline) nor `path`".to_owned(),
            }))
        }
        (Some(text), None) => {
            let bytes = text.as_bytes().to_vec();
            let inferred = Format::sniff(&bytes);
            (bytes, inferred)
        }
        (None, Some(p)) => {
            // Binary (`aig`) AIGER is legal here, so the read must not
            // insist on UTF-8.
            let bytes = std::fs::read(p).map_err(|e| {
                fail(ServeError::BadRequest {
                    detail: format!("cannot read `{p}`: {}", e.kind()),
                })
            })?;
            let inferred =
                Format::from_extension(std::path::Path::new(p)).or_else(|| Format::sniff(&bytes));
            (bytes, inferred)
        }
    };
    let format = match doc.get("format").and_then(Value::as_str) {
        None => inferred.unwrap_or(Format::Bench),
        Some(name) => match Format::from_name(name) {
            Some(f) => f,
            None => {
                return Err(fail(ServeError::BadRequest {
                    detail: format!("unknown format `{name}` (bench|blif|aiger|verilog)"),
                }))
            }
        },
    };
    let delays = match doc.get("delays").and_then(Value::as_str) {
        None => "mcnc",
        Some(d @ ("mcnc" | "unit")) => d,
        Some(other) => {
            return Err(fail(ServeError::BadRequest {
                detail: format!("unknown delay model `{other}` (mcnc|unit)"),
            }))
        }
    };
    let delay_fn = match delays {
        "unit" => unit_delays as fn(_, _) -> _,
        _ => mcnc_like_delays as fn(_, _) -> _,
    };
    let netlist = tbf_logic::parse_netlist(format, &bytes, delay_fn).map_err(|e| {
        fail(ServeError::BadRequest {
            detail: format!("netlist does not parse: {e}"),
        })
    })?;

    let mut options = defaults.clone();
    let mut has_deadline = false;
    if let Some(ms) = doc.get("deadline_ms").and_then(Value::as_u64) {
        options.time_budget = Some(std::time::Duration::from_millis(ms));
        has_deadline = true;
    }
    let mut threads = None;
    let mut use_cache = true;
    if let Some(opts) = doc.get("options") {
        if opts.as_object().is_none() {
            return Err(fail(ServeError::BadRequest {
                detail: "`options` must be an object".to_owned(),
            }));
        }
        let cap = |name: &str| -> Result<Option<usize>, (Option<String>, ServeError)> {
            match opts.get(name) {
                None => Ok(None),
                Some(v) => v.as_u64().map(|n| Some(n as usize)).ok_or_else(|| {
                    (
                        Some(id.clone()),
                        ServeError::BadRequest {
                            detail: format!("`options.{name}` must be an unsigned integer"),
                        },
                    )
                }),
            }
        };
        if let Some(n) = cap("max_paths")? {
            options.max_straddling_paths = n;
        }
        if let Some(n) = cap("max_bdd")? {
            options.max_bdd_nodes = n;
        }
        if let Some(n) = cap("max_cubes")? {
            options.max_cubes = n;
        }
        if let Some(n) = cap("threads")? {
            threads = Some(n);
        }
        if let Some(v) = opts.get("tbf_cache") {
            // Booleans are the legacy wire spelling (`true` = always on,
            // `false` = off); strings name the tri-state mode.
            let mode = match v {
                Value::Bool(true) => Some(TbfCacheMode::On),
                Value::Bool(false) => Some(TbfCacheMode::Off),
                Value::Str(s) => TbfCacheMode::parse(s),
                _ => None,
            };
            options.tbf_cache = mode.ok_or_else(|| {
                fail(ServeError::BadRequest {
                    detail: "`options.tbf_cache` must be auto|on|off or a boolean".to_owned(),
                })
            })?;
        }
        if let Some(v) = opts.get("complement_edges") {
            match v {
                Value::Bool(b) => options.complement_edges = *b,
                _ => {
                    return Err(fail(ServeError::BadRequest {
                        detail: "`options.complement_edges` must be a boolean".to_owned(),
                    }))
                }
            }
        }
        if let Some(v) = opts.get("cache") {
            match v {
                Value::Bool(b) => use_cache = *b,
                _ => {
                    return Err(fail(ServeError::BadRequest {
                        detail: "`options.cache` must be a boolean".to_owned(),
                    }))
                }
            }
        }
        if let Some(v) = opts.get("gc") {
            // Booleans are the boolean wire spelling (`true` = on,
            // `false` = off); strings name the tri-state mode.
            let mode = match v {
                Value::Bool(true) => Some(GcMode::On),
                Value::Bool(false) => Some(GcMode::Off),
                Value::Str(s) => GcMode::parse(s),
                _ => None,
            };
            options.gc = mode.ok_or_else(|| {
                fail(ServeError::BadRequest {
                    detail: "`options.gc` must be auto|on|off or a boolean".to_owned(),
                })
            })?;
        }
        if let Some(r) = opts.get("reorder") {
            options.reorder = match r.as_str() {
                Some("off") => ReorderPolicy::None,
                Some("manual") => ReorderPolicy::Manual,
                Some("pressure") => ReorderPolicy::OnPressure {
                    trigger_nodes: PRESSURE_TRIGGER_NODES,
                    max_growth: PRESSURE_MAX_GROWTH,
                },
                _ => {
                    return Err(fail(ServeError::BadRequest {
                        detail: "`options.reorder` must be off|manual|pressure".to_owned(),
                    }))
                }
            };
        }
    }

    // Exact results are delay-model- and structure-determined; the caps
    // only decide whether exactness is *reached*, so they stay out of
    // the key (only all-exact reports are ever cached). The ablation
    // modes (timed-node cache, complement edges, reorder policy, arena
    // GC) ARE keyed: a warm hit must only ever be served to a request that would
    // have recomputed it under the same engine configuration, so an A/B
    // ablation run through a warm server measures what it claims to.
    // The same fingerprint pins an ECO session's engine configuration:
    // retained per-cone results are exactly as configuration-dependent
    // as warm whole-circuit results, so the session key must agree.
    let mut options_key = vec![0xFE];
    options_key.extend_from_slice(delays.as_bytes());
    options_key.push(0xFD);
    options_key.push(match options.tbf_cache {
        TbfCacheMode::Auto => 0,
        TbfCacheMode::On => 1,
        TbfCacheMode::Off => 2,
    });
    options_key.push(u8::from(options.complement_edges));
    options_key.push(match options.reorder {
        ReorderPolicy::None => 0,
        ReorderPolicy::Manual => 1,
        ReorderPolicy::OnPressure { .. } => 2,
    });
    options_key.push(match options.gc {
        GcMode::Auto => 0,
        GcMode::On => 1,
        GcMode::Off => 2,
    });
    let mut cache_key = netlist.structural_signature();
    cache_key.extend_from_slice(&options_key);
    Ok(Request {
        id,
        netlist,
        cache_key,
        options,
        threads,
        use_cache,
        has_deadline,
        session,
        eco,
        options_key,
    })
}

/// The deterministic `result` member of an OK response.
pub fn report_value(r: &CircuitReport) -> Value {
    let rung = if r.all_exact() {
        "exact"
    } else if r
        .outputs
        .iter()
        .any(|o| matches!(o.status, OutputStatus::Fallback { .. }))
    {
        "fallback"
    } else {
        "bounded"
    };
    let outputs = r
        .outputs
        .iter()
        .map(|o| {
            let status = match o.status {
                OutputStatus::Exact => Value::str("exact"),
                OutputStatus::Bounded {
                    lower,
                    upper,
                    cause,
                } => Value::Obj(vec![
                    ("kind".to_owned(), Value::str("bounded")),
                    ("lower".to_owned(), Value::str(lower.to_string())),
                    ("upper".to_owned(), Value::str(upper.to_string())),
                    ("cause".to_owned(), Value::str(cause.to_string())),
                ]),
                OutputStatus::Fallback { cause } => Value::Obj(vec![
                    ("kind".to_owned(), Value::str("fallback")),
                    ("cause".to_owned(), Value::str(cause.to_string())),
                ]),
            };
            Value::Obj(vec![
                ("name".to_owned(), Value::str(&o.name)),
                ("delay".to_owned(), Value::str(o.delay.to_string())),
                (
                    "topological".to_owned(),
                    Value::str(o.topological.to_string()),
                ),
                ("status".to_owned(), status),
            ])
        })
        .collect();
    Value::Obj(vec![
        ("lower".to_owned(), Value::str(r.lower.to_string())),
        ("upper".to_owned(), Value::str(r.upper.to_string())),
        (
            "exact".to_owned(),
            match r.exact {
                Some(d) => Value::str(d.to_string()),
                None => Value::Null,
            },
        ),
        (
            "topological".to_owned(),
            Value::str(r.topological.to_string()),
        ),
        ("rung".to_owned(), Value::str(rung)),
        ("outputs".to_owned(), Value::Arr(outputs)),
    ])
}

/// The incremental-effort member of a session-bound response: how much
/// of the answer was merged from retained cones vs recomputed, and (for
/// `eco` requests) how many cones the base diff flagged as edited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EcoEffort {
    /// Cones answered from the session's retained results.
    pub reused: u64,
    /// Cones that ran the ladder this request.
    pub recomputed: u64,
    /// Cones the explicit base diff flagged as edited (`eco` only).
    pub changed: Option<u64>,
}

/// Effort telemetry attached to an OK response (excluded from
/// determinism comparisons — see [`deterministic_view`]). `eco` is
/// present exactly on session-bound responses.
pub fn effort_value(
    cached: bool,
    attempts: u64,
    ladder_retries: u64,
    panics_caught: u64,
    eco: Option<EcoEffort>,
) -> Value {
    let mut pairs = vec![
        ("cached".to_owned(), Value::Bool(cached)),
        ("attempts".to_owned(), Value::u64(attempts)),
        ("ladder_retries".to_owned(), Value::u64(ladder_retries)),
        ("panics_caught".to_owned(), Value::u64(panics_caught)),
    ];
    if let Some(e) = eco {
        let mut obj = vec![
            ("reused".to_owned(), Value::u64(e.reused)),
            ("recomputed".to_owned(), Value::u64(e.recomputed)),
        ];
        if let Some(c) = e.changed {
            obj.push(("changed".to_owned(), Value::u64(c)));
        }
        pairs.push(("eco".to_owned(), Value::Obj(obj)));
    }
    Value::Obj(pairs)
}

fn schema_header() -> (String, Value) {
    (
        "schema".to_owned(),
        Value::Obj(vec![
            ("name".to_owned(), Value::str(RESPONSE_SCHEMA)),
            ("version".to_owned(), Value::u64(SCHEMA_VERSION)),
        ]),
    )
}

/// Renders a one-line OK response.
pub fn ok_response(id: &str, result: Value, effort: Value) -> String {
    Value::Obj(vec![
        schema_header(),
        ("id".to_owned(), Value::str(id)),
        ("status".to_owned(), Value::str("ok")),
        ("result".to_owned(), result),
        ("effort".to_owned(), effort),
    ])
    .to_string()
}

/// Renders a one-line error response; `id` is `null` when the frame was
/// too broken to recover one.
pub fn error_response(id: Option<&str>, err: &ServeError) -> String {
    Value::Obj(vec![
        schema_header(),
        (
            "id".to_owned(),
            match id {
                Some(s) => Value::str(s),
                None => Value::Null,
            },
        ),
        ("status".to_owned(), Value::str("error")),
        (
            "error".to_owned(),
            Value::Obj(vec![
                ("kind".to_owned(), Value::str(err.kind())),
                ("detail".to_owned(), Value::str(err.detail())),
            ]),
        ),
    ])
    .to_string()
}

/// Parses a response line and checks its schema header. Returns the
/// document — the soak harness's "every response is schema-valid" gate.
pub fn validate_response(line: &str) -> Result<Value, String> {
    let doc = Value::parse(line)?;
    let obj = doc.as_object().ok_or("response is not an object")?;
    match obj.first() {
        Some((k, _)) if k == "schema" => {}
        _ => return Err("`schema` must be the first member".to_owned()),
    }
    let schema = doc.get("schema").ok_or("missing schema")?;
    match schema.get("name").and_then(Value::as_str) {
        Some(RESPONSE_SCHEMA) => {}
        other => return Err(format!("unexpected schema name {other:?}")),
    }
    match schema.get("version").and_then(Value::as_u64) {
        Some(v) if v <= SCHEMA_VERSION => {}
        other => return Err(format!("unsupported schema version {other:?}")),
    }
    match doc.get("status").and_then(Value::as_str) {
        Some("ok") => doc
            .get("result")
            .map(|_| ())
            .ok_or("ok response without `result`")?,
        Some("error") => doc
            .get("error")
            .and_then(|e| e.get("kind"))
            .map(|_| ())
            .ok_or("error response without `error.kind`")?,
        other => return Err(format!("unexpected status {other:?}")),
    }
    Ok(doc)
}

/// Strips the volatile `effort` member from a parsed response, leaving
/// the parts that must be byte-identical across equivalent runs (cold
/// vs. warm cache, fault-injected-then-recovered vs. clean, restarted
/// mid-batch vs. straight through).
pub fn deterministic_view(doc: &Value) -> Value {
    match doc {
        Value::Obj(pairs) => Value::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "effort")
                .cloned()
                .collect(),
        ),
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TINY: &str = "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n";

    fn limits() -> FrameLimits {
        FrameLimits {
            max_frame_bytes: 4096,
        }
    }

    fn parse(line: &str) -> Result<Request, (Option<String>, ServeError)> {
        parse_request(line, &limits(), &DelayOptions::default())
    }

    fn req_line(id: &str) -> String {
        format!(r#"{{"id":"{id}","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}}"#)
    }

    #[test]
    fn good_request_parses() {
        let r = parse(&req_line("r1")).expect("parses");
        assert_eq!(r.id, "r1");
        assert_eq!(r.netlist.gate_count(), 1);
        assert!(r.use_cache);
        assert!(r.threads.is_none());
    }

    #[test]
    fn options_override_defaults() {
        let line = format!(
            r#"{{"id":"r","circuit":"{}","deadline_ms":50,"options":{{"max_paths":7,"threads":4,"cache":false,"reorder":"manual"}}}}"#,
            TINY.replace('\n', "\\n")
        );
        let r = parse(&line).expect("parses");
        assert_eq!(r.options.max_straddling_paths, 7);
        assert_eq!(
            r.options.time_budget,
            Some(std::time::Duration::from_millis(50))
        );
        assert_eq!(r.threads, Some(4));
        assert!(!r.use_cache);
        assert_eq!(r.options.reorder, ReorderPolicy::Manual);
    }

    #[test]
    fn cache_key_tracks_structure_and_delays() {
        let a = parse(&req_line("a")).expect("parses");
        let b = parse(&req_line("b")).expect("parses");
        assert_eq!(a.cache_key, b.cache_key, "ids are not part of the key");
        let unit =
            parse(r#"{"id":"c","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n","delays":"unit"}"#)
                .expect("parses");
        assert_ne!(a.cache_key, unit.cache_key, "delay model is");
    }

    #[test]
    fn inline_requests_negotiate_text_formats() {
        // Inline BLIF via the `format` member.
        let blif = parse(
            r#"{"id":"b","format":"blif","circuit":".model t\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n"}"#,
        )
        .expect("blif parses");
        // Inline ASCII AIGER under its `aag` alias.
        let aag = parse(r#"{"id":"a","format":"aag","circuit":"aag 1 1 0 1 0\n2\n3\n"}"#)
            .expect("aag parses");
        assert_eq!(aag.netlist.outputs().len(), 1);
        // Inline structural Verilog under its `v` alias.
        let verilog = parse(
            r#"{"id":"v","format":"v","circuit":"module t(a, f); input a; output f; not(f, a); endmodule\n"}"#,
        )
        .expect("verilog parses");
        assert_eq!(verilog.netlist.gate_count(), 1);
        // All three encode the same inverter.
        for input in [false, true] {
            for r in [&blif, &aag, &verilog] {
                assert_eq!(r.netlist.evaluate_outputs(&[input]), vec![!input]);
            }
        }
        // Without a `format` member, inline text is content-sniffed —
        // the `.model` directive and `module` keyword are unambiguous.
        let sniffed_blif = parse(
            r#"{"id":"sb","circuit":".model t\n.inputs a\n.outputs f\n.names a f\n0 1\n.end\n"}"#,
        )
        .expect("format-less inline BLIF sniffs");
        let sniffed_verilog = parse(
            r#"{"id":"sv","circuit":"module t(a, f); input a; output f; not(f, a); endmodule\n"}"#,
        )
        .expect("format-less inline Verilog sniffs");
        for input in [false, true] {
            for r in [&sniffed_blif, &sniffed_verilog] {
                assert_eq!(r.netlist.evaluate_outputs(&[input]), vec![!input]);
            }
        }
        // Unknown format names are a typed error, not a panic.
        let (_, err) = parse(r#"{"id":"x","format":"edif","circuit":"x"}"#).expect_err("rejected");
        assert_eq!(err.kind(), "bad_request");
    }

    #[test]
    fn path_requests_infer_format_and_accept_binary() {
        // A binary AIGER inverter: one implicit input (variable 1),
        // output literal 3, no ANDs.
        let dir = std::env::temp_dir().join(format!("tbf-serve-fmt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("inv.aig");
        std::fs::write(&path, b"aig 1 1 0 1 0\n3\n").expect("write");
        let line = format!(r#"{{"id":"p","path":"{}"}}"#, path.display());
        let r = parse(&line).expect("binary aig parses via path inference");
        assert_eq!(r.netlist.outputs().len(), 1);

        // Extension-less path falls back to content sniffing.
        let sniffed = dir.join("inv_no_ext");
        std::fs::write(&sniffed, b"aag 1 1 0 1 0\n2\n3\n").expect("write");
        let line = format!(r#"{{"id":"s","path":"{}"}}"#, sniffed.display());
        let r = parse(&line).expect("sniffed aag parses");
        assert_eq!(r.netlist.outputs().len(), 1);

        // An explicit `format` member overrides the extension.
        let mislabeled = dir.join("bench_in_disguise.blif");
        std::fs::write(&mislabeled, b"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n").expect("write");
        let line = format!(
            r#"{{"id":"o","format":"bench","path":"{}"}}"#,
            mislabeled.display()
        );
        let r = parse(&line).expect("explicit format overrides extension");
        assert_eq!(r.netlist.gate_count(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn error_kinds_are_stable() {
        let cases: Vec<(&str, &str)> = vec![
            ("not json", "malformed_frame"),
            ("[1,2]", "malformed_frame"),
            (r#"{"circuit":"x"}"#, "malformed_frame"),
            (
                r#"{"id":"r","schema":9,"circuit":"x"}"#,
                "unsupported_schema",
            ),
            (
                r#"{"id":"r","model":"floating","circuit":"x"}"#,
                "bad_request",
            ),
            (r#"{"id":"r"}"#, "bad_request"),
            (r#"{"id":"r","circuit":"x","path":"y"}"#, "bad_request"),
            (r#"{"id":"r","circuit":"not a netlist"}"#, "bad_request"),
        ];
        for (line, kind) in cases {
            let (_, err) = parse(line).expect_err(line);
            assert_eq!(err.kind(), kind, "{line}");
        }
    }

    #[test]
    fn session_and_kind_members_parse() {
        let plain = parse(&req_line("p")).expect("parses");
        assert!(plain.session.is_none());
        assert!(!plain.eco);
        let establish =
            parse(r#"{"id":"e","session":"s1","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}"#)
                .expect("parses");
        assert_eq!(establish.session.as_deref(), Some("s1"));
        assert!(!establish.eco);
        let eco = parse(
            r#"{"id":"q","kind":"eco","session":"s1","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}"#,
        )
        .expect("parses");
        assert!(eco.eco);
        assert_eq!(
            establish.options_key, eco.options_key,
            "same options, same fingerprint"
        );
        assert!(
            establish.cache_key.ends_with(&establish.options_key),
            "the fingerprint is the cache key's non-structural suffix"
        );
        for (line, kind) in [
            (
                r#"{"id":"r","kind":"eco","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}"#,
                "bad_request",
            ),
            (
                r#"{"id":"r","kind":"mystery","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}"#,
                "bad_request",
            ),
            (
                r#"{"id":"r","session":"","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}"#,
                "bad_request",
            ),
        ] {
            let (_, err) = parse(line).expect_err(line);
            assert_eq!(err.kind(), kind, "{line}");
        }
    }

    #[test]
    fn eco_effort_renders_only_on_session_responses() {
        let eco = EcoEffort {
            reused: 3,
            recomputed: 1,
            changed: Some(1),
        };
        let with = effort_value(false, 1, 0, 0, Some(eco));
        assert_eq!(
            with.get("eco").and_then(|e| e.get("reused")),
            Some(&Value::u64(3))
        );
        assert_eq!(
            with.get("eco").and_then(|e| e.get("changed")),
            Some(&Value::u64(1))
        );
        let without = effort_value(false, 1, 0, 0, None);
        assert!(without.get("eco").is_none());
    }

    #[test]
    fn responses_validate_and_strip_effort() {
        let ok = ok_response("r1", Value::Obj(vec![]), effort_value(true, 1, 0, 0, None));
        let doc = validate_response(&ok).expect("valid");
        assert!(doc.get("effort").is_some());
        assert!(deterministic_view(&doc).get("effort").is_none());
        let err = error_response(None, &ServeError::ShuttingDown);
        let doc = validate_response(&err).expect("valid");
        assert_eq!(doc.get("id"), Some(&Value::Null));
        assert!(validate_response("{}").is_err());
        assert!(validate_response("garbage").is_err());
    }
}
