//! `tbf-serve` — the resilient long-running analysis service behind
//! `tbf serve`.
//!
//! The paper's exact TBF algorithms are expensive to set up but cheap to
//! re-query; that trade only pays off when one warm process answers many
//! requests. This crate is that process: a line-delimited JSON request
//! loop (stdin/stdout, or a `--listen` unix socket) in front of the
//! anytime driver, built so that hostile input, deadline pressure, and
//! injected faults degrade *requests*, never the *session*.
//!
//! # Architecture
//!
//! | module | job |
//! |---|---|
//! | [`protocol`] | frame decoding with typed errors, schema-versioned response rendering |
//! | [`cache`] | the warm result cache: structural-signature keys, deterministic LRU, poison quarantine |
//! | [`session`] | admission control, the per-request retry ladder, panic quarantine, session metrics |
//! | [`workspace`] | the persistent ECO workspace: named incremental sessions, cone-slice keyed retention |
//! | [`runner`] | stdio/socket loops, SIGTERM/EOF drain, the final session artifact |
//!
//! # Robustness pillars
//!
//! * **Quarantine** — warm state is keyed by structural signature; a
//!   request that panics or trips an injected fault poisons only its own
//!   key, which is evicted and rebuilt. Panics are caught per cone (in
//!   the driver) and again per request (here); nothing unwinds past a
//!   frame boundary.
//! * **Admission control** — a concurrent-slot cap, a session
//!   wall-clock/request budget forked from
//!   [`AnalysisBudget`](tbf_core::AnalysisBudget), and a gate-count cap
//!   reject over-budget work up front with a typed `overloaded` response
//!   instead of queuing unboundedly.
//! * **Bounded retry** — transient failures (engine panics, internal
//!   invariants) re-enter the degradation ladder under exponential
//!   backoff; the response's `effort` member records attempts and ladder
//!   retries.
//! * **Graceful shutdown** — SIGTERM/EOF stops intake, drains received
//!   frames under a drain deadline, cancels the remainder via
//!   [`CancelToken`](tbf_core::CancelToken), and emits a final
//!   session-metrics artifact; a drained session exits 0.
//!
//! # Determinism
//!
//! The `result` member of every response depends only on the request
//! batch prefix before it — not on thread count, reorder pressure,
//! recovered faults, or mid-batch restarts. Volatile telemetry is
//! confined to the `effort` member, which
//! [`protocol::deterministic_view`] strips for comparisons.
//!
//! ```
//! use tbf_serve::runner::run_lines;
//! use tbf_serve::session::{ServeConfig, Session};
//!
//! let mut session = Session::new(ServeConfig::default());
//! let mut out = Vec::new();
//! run_lines(
//!     &mut session,
//!     [r#"{"id":"r1","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"}"#],
//!     &mut out,
//! )
//! .unwrap();
//! let line = String::from_utf8(out).unwrap();
//! let doc = tbf_serve::protocol::validate_response(line.trim()).unwrap();
//! assert_eq!(
//!     doc.get("status").and_then(tbf_obs::json::Value::as_str),
//!     Some("ok")
//! );
//! ```

#![deny(unsafe_code)] // one audited exception: runner::signal's signal(2) binding
#![deny(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used))]
#![deny(clippy::large_enum_variant)]
#![deny(clippy::result_large_err)]

pub mod cache;
pub mod protocol;
pub mod runner;
pub mod session;
pub mod workspace;

pub use protocol::{Request, ServeError};
pub use runner::{run_lines, serve_stdio, serve_unix_socket, RunnerConfig};
pub use session::{ServeConfig, Session, SessionMetrics};
pub use workspace::{SessionWorkspace, WorkspaceStats};
// Re-exported so servers can build `ServeConfig::defaults` without
// depending on tbf-core directly.
pub use tbf_core::{DelayOptions, ReorderPolicy};
