//! A serve session: warm state, admission control, the per-request
//! retry ladder, and the final session-metrics artifact.
//!
//! One [`Session`] owns everything that survives between requests — the
//! [`WarmCache`], the session-level [`AnalysisBudget`] (whose deadline
//! cuts across every request it admits), the shutdown [`CancelToken`],
//! and the metrics the final artifact reports. [`Session::handle_line`]
//! is the whole request lifecycle: decode → admit → (cache lookup) →
//! analyze with bounded retry → respond; every failure mode inside it
//! becomes a typed one-line error response, never a dead session.
//!
//! # Panic quarantine
//!
//! The analysis runs under `catch_unwind` at two layers: per-cone inside
//! the anytime driver (a cone panic degrades that cone), and per-request
//! here (anything escaping the driver is caught, the request's
//! warm-cache entry is poisoned, and the client gets a typed
//! `internal_panic` response). A poisoned entry is rebuilt from scratch
//! on the circuit's next request — the blast radius of one bad request
//! is exactly its own cache key.
//!
//! # Determinism contract
//!
//! The `result` member of every response depends only on the request
//! batch prefix that precedes it (through the warm cache) — not on
//! worker-thread count, reorder policy pressure, recovered injected
//! faults, or whether the session restarted mid-batch. Volatile
//! telemetry lives in the `effort` member, which consumers strip (see
//! [`crate::protocol::deterministic_view`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tbf_core::{AnalysisBudget, AnalysisPolicy, CancelToken, ConeStore, DelayOptions, EcoStats};
use tbf_logic::Netlist;
use tbf_obs::json::Value;
use tbf_obs::RunArtifact;

use crate::cache::WarmCache;
use crate::protocol::{
    effort_value, error_response, ok_response, parse_request, report_value, EcoEffort, FrameLimits,
    Request, ServeError,
};
use crate::workspace::{SessionWorkspace, WorkspaceStats};

/// Session-level knobs, all settable from the `tbf serve` CLI.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads per analysis (the `AnalysisPolicy::threads`
    /// default; requests may override).
    pub threads: usize,
    /// Admission cap on concurrently in-flight requests (meaningful
    /// under `--listen`, where multiple clients share the session).
    pub max_in_flight: usize,
    /// Admission cap on circuit size, in gates (0 = unlimited).
    pub max_gates: usize,
    /// Longest accepted request frame, in bytes.
    pub max_frame_bytes: usize,
    /// Session wall-clock budget: once spent, every further request is
    /// rejected `overloaded` (`None` = run forever).
    pub session_time_budget: Option<Duration>,
    /// Total request budget (admitted analyses; 0 = unlimited).
    pub max_requests: u64,
    /// Attempts per request (1 = no retry) for transient failures.
    pub max_attempts: u32,
    /// Base backoff between attempts; attempt `k` waits
    /// `backoff_ms << (k-1)`, capped by `max_backoff_ms`.
    pub backoff_ms: u64,
    /// Backoff ceiling.
    pub max_backoff_ms: u64,
    /// Warm-cache capacity in results (0 disables the cache).
    pub cache_capacity: usize,
    /// Live ECO sessions the workspace retains (LRU beyond it).
    pub max_sessions: usize,
    /// How long shutdown lets in-flight/queued work drain before
    /// cancelling the rest.
    pub drain: Duration,
    /// Engine-cap defaults applied to requests that don't override them.
    pub defaults: DelayOptions,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            threads: 1,
            max_in_flight: 4,
            max_gates: 0,
            max_frame_bytes: 1 << 20,
            session_time_budget: None,
            max_requests: 0,
            max_attempts: 3,
            backoff_ms: 0,
            max_backoff_ms: 100,
            cache_capacity: 1024,
            max_sessions: 8,
            drain: Duration::from_millis(2000),
            defaults: DelayOptions::default(),
        }
    }
}

/// Whole-session effort totals, reported in the final artifact.
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionMetrics {
    /// Frames received (every line, good or bad).
    pub frames: u64,
    /// OK responses sent.
    pub ok: u64,
    /// Error responses sent (all kinds).
    pub errors: u64,
    /// Requests rejected by admission control (`overloaded`).
    pub rejected_overloaded: u64,
    /// Requests refused because the session was draining.
    pub rejected_shutdown: u64,
    /// Analysis attempts beyond the first (retry ladder re-entries).
    pub retries: u64,
    /// Request-level panics caught and quarantined.
    pub panics_caught: u64,
    /// Requests cancelled mid-flight (shutdown or injected).
    pub cancelled: u64,
}

/// In-flight request slots, shared with listener threads. An RAII guard
/// ([`SlotGuard`]) releases on drop, so a panicking handler can never
/// leak a slot.
#[derive(Clone, Debug, Default)]
pub struct InFlight(Arc<AtomicU64>);

/// Releases its [`InFlight`] slot on drop.
pub struct SlotGuard(Arc<AtomicU64>);

impl InFlight {
    /// Tries to claim one of `cap` slots.
    pub fn try_admit(&self, cap: usize) -> Option<SlotGuard> {
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            if cur >= cap as u64 {
                return None;
            }
            match self
                .0
                .compare_exchange_weak(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
            {
                Ok(_) => return Some(SlotGuard(Arc::clone(&self.0))),
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Drop for SlotGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::AcqRel);
    }
}

/// One warm serve session. Not `Sync` — the stdio/socket runners funnel
/// frames into the single session thread; only admission slots and
/// cancel tokens cross threads.
pub struct Session {
    config: ServeConfig,
    cache: WarmCache,
    /// The persistent ECO workspace: named incremental sessions whose
    /// per-cone engines and retained results survive across requests.
    workspace: SessionWorkspace,
    /// The session budget: its deadline bounds every request's, its
    /// counters catch unobserved work.
    budget: AnalysisBudget,
    /// Cancelling this token starts refusing new work.
    shutdown: CancelToken,
    /// The in-flight request's cancel handle, for the drain watchdog.
    live_token: Arc<Mutex<Option<CancelToken>>>,
    /// Concurrency slots (shared with the socket listener).
    in_flight: InFlight,
    metrics: SessionMetrics,
    /// Admitted analyses, for the `max_requests` budget.
    admitted: u64,
    /// Per-request artifact rows.
    rows: Vec<Value>,
}

/// How one analysis attempt ended, before retry classification.
enum AttemptOutcome {
    Report(Box<tbf_core::CircuitReport>, EcoStats),
    Panicked(String),
}

/// What [`Session::analyze_request`] hands back: the response line plus
/// the artifact-row facts `(status, attempts, error_kind)`.
type RequestOutcome = (String, (&'static str, u64, Option<&'static str>));

impl Session {
    /// A fresh session; the session clock starts now.
    #[must_use]
    pub fn new(config: ServeConfig) -> Self {
        let session_options = DelayOptions {
            time_budget: config.session_time_budget,
            ..config.defaults.clone()
        };
        Session {
            cache: WarmCache::new(config.cache_capacity),
            workspace: SessionWorkspace::new(config.max_sessions),
            budget: AnalysisBudget::from_options(&session_options),
            shutdown: CancelToken::new(),
            live_token: Arc::new(Mutex::new(None)),
            in_flight: InFlight::default(),
            metrics: SessionMetrics::default(),
            admitted: 0,
            rows: Vec::new(),
            config,
        }
    }

    /// The shutdown handle: cancel it (from a signal hook or the drain
    /// watchdog) and the session refuses new requests.
    #[must_use]
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// A handle that cancels whatever request is in flight *right now* —
    /// the drain watchdog fires this when the drain deadline passes.
    #[must_use]
    pub fn live_request_handle(&self) -> Arc<Mutex<Option<CancelToken>>> {
        Arc::clone(&self.live_token)
    }

    /// The admission slot pool (shared with socket listener threads).
    #[must_use]
    pub fn in_flight(&self) -> InFlight {
        self.in_flight.clone()
    }

    /// Session totals so far.
    #[must_use]
    pub fn metrics(&self) -> SessionMetrics {
        self.metrics
    }

    /// Warm-cache counters so far.
    #[must_use]
    pub fn cache_stats(&self) -> crate::cache::CacheStats {
        self.cache.stats
    }

    /// ECO workspace totals so far.
    #[must_use]
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats
    }

    /// Live ECO sessions right now.
    #[must_use]
    pub fn workspace_len(&self) -> usize {
        self.workspace.len()
    }

    /// Handles one request frame end-to-end and returns the one-line
    /// response. Never panics outward; never leaves the session dead.
    pub fn handle_line(&mut self, line: &str) -> String {
        self.metrics.frames += 1;
        let limits = FrameLimits {
            max_frame_bytes: self.config.max_frame_bytes,
        };
        let request = match parse_request(line, &limits, &self.config.defaults) {
            Ok(r) => r,
            Err((id, err)) => return self.refuse(id.as_deref(), err),
        };
        if let Err(err) = self.admit(&request) {
            return self.refuse(Some(&request.id), err);
        }
        let _slot = match self.in_flight.try_admit(self.config.max_in_flight) {
            Some(g) => g,
            None => {
                return self.refuse(
                    Some(&request.id),
                    ServeError::Overloaded {
                        detail: format!("all {} request slots are busy", self.config.max_in_flight),
                    },
                )
            }
        };
        self.admitted += 1;

        // Session routing: an analyze request carrying `session`
        // establishes (or re-bases) the named ECO session; an `eco`
        // request must hit an existing one under matching options.
        // Either way the warm result cache is bypassed below — session
        // reuse happens at cone granularity in the workspace.
        if let Some(name) = request.session.clone() {
            let routed = if request.eco {
                self.workspace.route_eco(&name, &request.options_key)
            } else {
                self.workspace
                    .establish(&name, &request.netlist, &request.options_key);
                Ok(())
            };
            if let Err(detail) = routed {
                return self.refuse(Some(&request.id), ServeError::BadRequest { detail });
            }
        }

        // Warm path: an exact answer for the same structure and delay
        // model is cap-independent, so any earlier caps the cached
        // result was computed under still apply to this asker.
        // Deadline-limited requests skip the read (never the write): a
        // cold restart could not reproduce a borrowed exact answer
        // inside the request's own budget, and restart determinism
        // outranks the shortcut.
        if request.use_cache && !request.has_deadline && request.session.is_none() {
            if let Some(result) = self.cache.lookup(&request.cache_key) {
                self.metrics.ok += 1;
                let response = ok_response(&request.id, result, effort_value(true, 0, 0, 0, None));
                self.push_row(&request.id, "ok", true, 0, None, None);
                return response;
            }
        }

        let ((response, (status, attempts, error_kind)), obs_row) = self.analyze_observed(&request);
        self.push_row(&request.id, status, false, attempts, error_kind, obs_row);
        response
    }

    /// Runs the analysis path under a *per-request* observability
    /// session (`obs` feature): every counter and phase span recorded
    /// belongs to this request alone, so a warm process emits honest
    /// per-request rows instead of one session-cumulative smear.
    #[cfg(feature = "obs")]
    fn analyze_observed(&mut self, request: &Request) -> (RequestOutcome, Option<Value>) {
        let (outcome, obs) = tbf_core::obs::observe(|| self.analyze_request(request));
        let counters: Vec<(String, Value)> = obs
            .counters
            .snapshot()
            .into_iter()
            .filter(|(_, v)| *v > 0)
            .map(|(k, v)| (k.to_owned(), Value::u64(v)))
            .collect();
        (outcome, Some(Value::Obj(counters)))
    }

    /// See the `obs` variant; without the feature there is nothing to
    /// scope.
    #[cfg(not(feature = "obs"))]
    fn analyze_observed(&mut self, request: &Request) -> (RequestOutcome, Option<Value>) {
        (self.analyze_request(request), None)
    }

    /// Admission control: reject up front rather than queue unboundedly.
    fn admit(&self, request: &Request) -> Result<(), ServeError> {
        if self.shutdown.is_cancelled() {
            return Err(ServeError::ShuttingDown);
        }
        if let Some(budget) = self.budget.time_budget() {
            if self.budget.elapsed_ms() >= budget.as_millis() as u64 {
                return Err(ServeError::Overloaded {
                    detail: format!("session time budget of {} ms is spent", budget.as_millis()),
                });
            }
        }
        if self.config.max_requests != 0 && self.admitted >= self.config.max_requests {
            return Err(ServeError::Overloaded {
                detail: format!(
                    "session request budget of {} is spent",
                    self.config.max_requests
                ),
            });
        }
        if self.config.max_gates != 0 && request.netlist.gate_count() > self.config.max_gates {
            return Err(ServeError::Overloaded {
                detail: format!(
                    "circuit has {} gates, admission cap is {}",
                    request.netlist.gate_count(),
                    self.config.max_gates
                ),
            });
        }
        Ok(())
    }

    /// The analysis path: bounded retry around the degradation ladder,
    /// per-request panic quarantine, warm-cache fill.
    ///
    /// Returns the response line plus `(status, attempts, error_kind)`
    /// for the artifact row.
    fn analyze_request(&mut self, request: &Request) -> RequestOutcome {
        let policy = AnalysisPolicy {
            options: request.options.clone(),
            threads: request.threads.unwrap_or(self.config.threads),
            ..AnalysisPolicy::default()
        };
        // The explicit cone-granular diff against the session base, for
        // the effort telemetry. Computed before the base is
        // re-committed, so it describes what this edit changed.
        let eco_changed = match (&request.session, request.eco) {
            (Some(name), true) => self.workspace.changed_cones(name, &request.netlist),
            _ => None,
        };
        let mut attempts: u64 = 0;
        let mut panics: u64 = 0;
        let max_attempts = self.config.max_attempts.max(1) as u64;
        loop {
            attempts += 1;
            let token = CancelToken::new();
            if let Ok(mut live) = self.live_token.lock() {
                *live = Some(token.clone());
            }
            // An injected mid-request cancel: fires the request token
            // before the analysis starts, exercising the same drain path
            // a shutdown watchdog uses.
            if tbf_core::fault::trip(tbf_core::fault::Site::RequestCancel) {
                token.cancel();
            }
            let budget = self.budget.fork_request(&request.options, token).shared();
            let outcome = match request.session.as_deref() {
                None => run_attempt(&request.netlist, &policy, budget, attempts == 1, None),
                Some(name) => {
                    // Deadline-limited session requests recompute every
                    // cone — merging a retained result a cold restart
                    // could not have afforded inside the same budget
                    // would break restart determinism — but they still
                    // *retain* what they solve exactly.
                    let reuse = !request.has_deadline;
                    match self.workspace.session_mut(name) {
                        Some(sess) => run_attempt(
                            &request.netlist,
                            &policy,
                            budget,
                            attempts == 1,
                            Some((sess.store_mut(), reuse)),
                        ),
                        None => run_attempt(&request.netlist, &policy, budget, attempts == 1, None),
                    }
                }
            };
            if let Ok(mut live) = self.live_token.lock() {
                *live = None;
            }
            match outcome {
                AttemptOutcome::Report(report, eco) => {
                    if report_is_transient(&report) && attempts < max_attempts {
                        self.metrics.retries += 1;
                        self.backoff(attempts);
                        continue;
                    }
                    if report
                        .outputs
                        .iter()
                        .any(|o| cause_of(o) == Some(tbf_core::DegradeCause::Cancelled))
                    {
                        self.metrics.cancelled += 1;
                    }
                    let result = report_value(&report);
                    let poisoned = tbf_core::fault::trip(tbf_core::fault::Site::CachePoison);
                    if poisoned {
                        // The injected fault says this request's warm
                        // state is suspect: quarantine its key only.
                        self.cache.poison(&request.cache_key);
                    } else if request.use_cache && report.all_exact() && request.session.is_none() {
                        self.cache.insert(request.cache_key.clone(), result.clone());
                    }
                    let eco_effort = request.session.as_deref().map(|name| {
                        // The answered netlist becomes the base the next
                        // eco request diffs against.
                        self.workspace.commit(name, &request.netlist);
                        self.workspace.record(eco);
                        EcoEffort {
                            reused: eco.reused as u64,
                            recomputed: eco.recomputed as u64,
                            changed: eco_changed,
                        }
                    });
                    self.metrics.ok += 1;
                    let ladder_retries = report.stats.retries as u64;
                    let response = ok_response(
                        &request.id,
                        result,
                        effort_value(false, attempts, ladder_retries, panics, eco_effort),
                    );
                    return (response, ("ok", attempts, None));
                }
                AttemptOutcome::Panicked(detail) => {
                    self.metrics.panics_caught += 1;
                    panics += 1;
                    // Whatever warm state this request touched is
                    // suspect; evict its own entry, leave the rest. A
                    // session request additionally drops its session's
                    // retained cones — the workspace stays unpoisoned
                    // and the next request rebuilds from cold.
                    self.cache.poison(&request.cache_key);
                    if let Some(name) = request.session.as_deref() {
                        self.workspace.clear_session(name);
                    }
                    if attempts < max_attempts {
                        self.metrics.retries += 1;
                        self.backoff(attempts);
                        continue;
                    }
                    let err = ServeError::InternalPanic { detail };
                    return (
                        self.refuse(Some(&request.id), err),
                        ("error", attempts, Some("internal_panic")),
                    );
                }
            }
        }
    }

    /// Bounded exponential backoff before attempt `next` (1-based count
    /// of attempts already made).
    fn backoff(&self, attempts_made: u64) {
        if self.config.backoff_ms == 0 {
            return;
        }
        let shift = (attempts_made - 1).min(16) as u32;
        let wait = self
            .config
            .backoff_ms
            .saturating_mul(1u64 << shift)
            .min(self.config.max_backoff_ms);
        std::thread::sleep(Duration::from_millis(wait));
    }

    fn refuse(&mut self, id: Option<&str>, err: ServeError) -> String {
        self.metrics.errors += 1;
        match err {
            ServeError::Overloaded { .. } => self.metrics.rejected_overloaded += 1,
            ServeError::ShuttingDown => self.metrics.rejected_shutdown += 1,
            _ => {}
        }
        if !matches!(err, ServeError::InternalPanic { .. }) {
            self.push_row(id.unwrap_or("-"), "error", false, 0, Some(err.kind()), None);
        }
        error_response(id, &err)
    }

    /// Records one per-request artifact row.
    fn push_row(
        &mut self,
        id: &str,
        status: &str,
        cached: bool,
        attempts: u64,
        error_kind: Option<&str>,
        counters: Option<Value>,
    ) {
        let mut row = vec![
            ("id".to_owned(), Value::str(id)),
            ("status".to_owned(), Value::str(status)),
            ("cached".to_owned(), Value::Bool(cached)),
            ("attempts".to_owned(), Value::u64(attempts)),
        ];
        if let Some(kind) = error_kind {
            row.push(("error_kind".to_owned(), Value::str(kind)));
        }
        if let Some(c) = counters {
            row.push(("counters".to_owned(), c));
        }
        self.rows.push(Value::Obj(row));
    }

    /// Renders the final session-metrics artifact (emitted on shutdown).
    #[must_use]
    pub fn final_artifact(&self) -> RunArtifact {
        let m = self.metrics;
        let c = self.cache.stats;
        let mut artifact = RunArtifact::new();
        artifact.section("kind", Value::str("tbf-serve-session"));
        artifact.section(
            "session",
            Value::Obj(vec![
                ("frames".to_owned(), Value::u64(m.frames)),
                ("ok".to_owned(), Value::u64(m.ok)),
                ("errors".to_owned(), Value::u64(m.errors)),
                (
                    "rejected_overloaded".to_owned(),
                    Value::u64(m.rejected_overloaded),
                ),
                (
                    "rejected_shutdown".to_owned(),
                    Value::u64(m.rejected_shutdown),
                ),
                ("retries".to_owned(), Value::u64(m.retries)),
                ("panics_caught".to_owned(), Value::u64(m.panics_caught)),
                ("cancelled".to_owned(), Value::u64(m.cancelled)),
            ]),
        );
        artifact.section(
            "warm_cache",
            Value::Obj(vec![
                ("hits".to_owned(), Value::u64(c.hits)),
                ("misses".to_owned(), Value::u64(c.misses)),
                ("insertions".to_owned(), Value::u64(c.insertions)),
                ("evictions".to_owned(), Value::u64(c.evictions)),
                ("poisons".to_owned(), Value::u64(c.poisons)),
                ("entries".to_owned(), Value::u64(self.cache.len() as u64)),
            ]),
        );
        let w = self.workspace.stats;
        artifact.section(
            "workspace",
            Value::Obj(vec![
                (
                    "sessions".to_owned(),
                    Value::u64(self.workspace.len() as u64),
                ),
                (
                    "sessions_created".to_owned(),
                    Value::u64(w.sessions_created),
                ),
                (
                    "sessions_evicted".to_owned(),
                    Value::u64(w.sessions_evicted),
                ),
                ("resets".to_owned(), Value::u64(w.resets)),
                ("eco_cones_reused".to_owned(), Value::u64(w.cones_reused)),
                (
                    "eco_cones_recomputed".to_owned(),
                    Value::u64(w.cones_recomputed),
                ),
            ]),
        );
        artifact.section(
            "config",
            Value::Obj(vec![
                ("threads".to_owned(), Value::u64(self.config.threads as u64)),
                (
                    "max_in_flight".to_owned(),
                    Value::u64(self.config.max_in_flight as u64),
                ),
                (
                    "max_frame_bytes".to_owned(),
                    Value::u64(self.config.max_frame_bytes as u64),
                ),
                (
                    "cache_capacity".to_owned(),
                    Value::u64(self.config.cache_capacity as u64),
                ),
                (
                    "max_sessions".to_owned(),
                    Value::u64(self.config.max_sessions as u64),
                ),
                (
                    "max_attempts".to_owned(),
                    Value::u64(u64::from(self.config.max_attempts)),
                ),
                (
                    "drain_ms".to_owned(),
                    Value::u64(self.config.drain.as_millis() as u64),
                ),
            ]),
        );
        artifact.section("requests", Value::Arr(self.rows.clone()));
        artifact
    }
}

/// The degrade cause of one output, if it degraded.
fn cause_of(o: &tbf_core::OutputDelay) -> Option<tbf_core::DegradeCause> {
    match o.status {
        tbf_core::OutputStatus::Exact => None,
        tbf_core::OutputStatus::Bounded { cause, .. }
        | tbf_core::OutputStatus::Fallback { cause } => Some(cause),
    }
}

/// Whether a degraded report is worth retrying: engine panics and typed
/// internal-invariant failures are transient (a rebuilt engine may
/// succeed — and under fault injection the retry runs fault-free);
/// deadline/cancel/cap degradations are not (the same caps produce the
/// same rung).
fn report_is_transient(report: &tbf_core::CircuitReport) -> bool {
    use tbf_core::DegradeCause::{EnginePanic, InternalInvariant};
    report
        .outputs
        .iter()
        .any(|o| matches!(cause_of(o), Some(EnginePanic | InternalInvariant)))
}

/// One analysis attempt under per-request panic quarantine.
///
/// Fault-plan scoping: the first attempt re-arms a snapshot of the
/// session's armed (not-yet-fired) engine faults, so a seeded plan hits
/// the request deterministically; retries run under an empty plan, so a
/// fault injected into attempt 1 cannot re-fire forever and the retry
/// actually recovers. Serve-level sites (`FrameParse`, `RequestCancel`,
/// `CachePoison`) trip on the session thread's own plan instead and are
/// one-shot per session.
fn run_attempt(
    netlist: &Netlist,
    policy: &AnalysisPolicy,
    budget: Arc<AnalysisBudget>,
    first_attempt: bool,
    eco: Option<(&mut ConeStore, bool)>,
) -> AttemptOutcome {
    let run = move || {
        with_attempt_plan(first_attempt, move || match eco {
            None => (
                tbf_core::analyze_with_budget(netlist, policy, budget),
                EcoStats::default(),
            ),
            Some((store, reuse_results)) => {
                tbf_core::analyze_eco(netlist, policy, budget, store, reuse_results)
            }
        })
    };
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok((report, eco)) => AttemptOutcome::Report(Box::new(report), eco),
        Err(payload) => {
            let detail = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_owned())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".to_owned());
            AttemptOutcome::Panicked(detail)
        }
    }
}

#[cfg(feature = "fault-injection")]
fn with_attempt_plan<R>(first_attempt: bool, f: impl FnOnce() -> R) -> R {
    let plan = if first_attempt {
        tbf_core::fault::snapshot()
    } else {
        tbf_core::fault::FaultPlan::new()
    };
    tbf_core::fault::with_plan(plan, f)
}

#[cfg(not(feature = "fault-injection"))]
fn with_attempt_plan<R>(_first_attempt: bool, f: impl FnOnce() -> R) -> R {
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::validate_response;

    fn req(id: &str) -> String {
        format!(r#"{{"id":"{id}","circuit":"INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n"}}"#)
    }

    #[test]
    fn repeated_circuit_hits_the_warm_cache() {
        let mut s = Session::new(ServeConfig::default());
        let first = s.handle_line(&req("r1"));
        let second = s.handle_line(&req("r2"));
        assert_eq!(s.cache_stats().hits, 1, "second request is a warm hit");
        let a = validate_response(&first).expect("valid");
        let b = validate_response(&second).expect("valid");
        assert_eq!(
            a.get("result"),
            b.get("result"),
            "cached result is byte-identical"
        );
        assert_eq!(
            b.get("effort").and_then(|e| e.get("cached")),
            Some(&Value::Bool(true))
        );
    }

    #[test]
    fn ablation_options_partition_the_warm_cache() {
        // Every result-affecting engine option is part of the warm-cache
        // key: an A/B ablation served by one warm process must never be
        // answered from the other arm's entry. Each configuration below
        // is a cold miss even though the circuit never changes; its
        // exact repeat is a hit.
        let mut s = Session::new(ServeConfig::default());
        let variants = [
            r#"{}"#,
            r#"{"tbf_cache":"on"}"#,
            r#"{"tbf_cache":"off"}"#,
            r#"{"complement_edges":false}"#,
            r#"{"reorder":"pressure"}"#,
            r#"{"reorder":"manual"}"#,
            r#"{"gc":"off"}"#,
            r#"{"gc":"on"}"#,
        ];
        for (i, opts) in variants.iter().enumerate() {
            let line = |id: &str| {
                format!(
                    r#"{{"id":"{id}","circuit":"INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n","options":{opts}}}"#
                )
            };
            let cold = s.handle_line(&line(&format!("c{i}")));
            assert_eq!(
                s.cache_stats().hits,
                i as u64,
                "variant {opts} read another configuration's warm entry"
            );
            let warm = s.handle_line(&line(&format!("w{i}")));
            assert_eq!(
                s.cache_stats().hits,
                i as u64 + 1,
                "exact repeat of {opts} missed the warm cache"
            );
            let a = validate_response(&cold).expect("valid");
            let b = validate_response(&warm).expect("valid");
            assert_eq!(a.get("result"), b.get("result"), "{opts}");
        }
        assert_eq!(s.cache_stats().insertions, variants.len() as u64);
    }

    #[test]
    fn cache_opt_out_recomputes() {
        let mut s = Session::new(ServeConfig::default());
        let line =
            r#"{"id":"r","circuit":"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n","options":{"cache":false}}"#;
        let _ = s.handle_line(line);
        let _ = s.handle_line(line);
        assert_eq!(s.cache_stats().hits, 0);
        assert_eq!(s.cache_stats().insertions, 0);
    }

    #[test]
    fn admission_rejects_when_draining() {
        let mut s = Session::new(ServeConfig::default());
        s.shutdown_token().cancel();
        let resp = s.handle_line(&req("r1"));
        let doc = validate_response(&resp).expect("valid");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Value::str("shutting_down"))
        );
        assert_eq!(s.metrics().rejected_shutdown, 1);
    }

    #[test]
    fn admission_rejects_oversized_circuits_and_spent_budgets() {
        let mut s = Session::new(ServeConfig {
            max_gates: 0,
            max_requests: 1,
            ..ServeConfig::default()
        });
        let ok = s.handle_line(&req("r1"));
        assert!(validate_response(&ok)
            .expect("valid")
            .get("result")
            .is_some());
        let rejected = s.handle_line(&req("r2"));
        let doc = validate_response(&rejected).expect("valid");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Value::str("overloaded"))
        );

        let mut tiny = Session::new(ServeConfig {
            max_gates: 1,
            ..ServeConfig::default()
        });
        let line = r#"{"id":"big","circuit":"INPUT(a)\nINPUT(b)\nOUTPUT(f)\nx = AND(a, b)\nf = OR(x, a)\n"}"#;
        let doc = validate_response(&tiny.handle_line(line)).expect("valid");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Value::str("overloaded"))
        );
    }

    #[test]
    fn malformed_frames_leave_the_session_alive() {
        let mut s = Session::new(ServeConfig::default());
        let bad = s.handle_line("}{ not json");
        let doc = validate_response(&bad).expect("valid error line");
        assert_eq!(doc.get("id"), Some(&Value::Null));
        let good = s.handle_line(&req("after"));
        assert!(validate_response(&good)
            .expect("valid")
            .get("result")
            .is_some());
        assert_eq!(s.metrics().frames, 2);
        assert_eq!(s.metrics().errors, 1);
        assert_eq!(s.metrics().ok, 1);
    }

    #[test]
    fn per_request_deadline_degrades_instead_of_erroring() {
        let mut s = Session::new(ServeConfig::default());
        let line = r#"{"id":"d","circuit":"INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n","deadline_ms":0}"#;
        let doc = validate_response(&s.handle_line(line)).expect("valid");
        assert_eq!(doc.get("status"), Some(&Value::str("ok")));
        let rung = doc
            .get("result")
            .and_then(|r| r.get("rung"))
            .and_then(Value::as_str)
            .expect("rung");
        assert_ne!(rung, "exact", "a zero deadline cannot reach exactness");
        // Degraded results must not poison the warm cache.
        assert_eq!(s.cache_stats().insertions, 0);
    }

    #[test]
    fn final_artifact_validates() {
        let mut s = Session::new(ServeConfig::default());
        let _ = s.handle_line(&req("r1"));
        let _ = s.handle_line("garbage");
        let artifact = s.final_artifact();
        let rendered = artifact.render();
        tbf_obs::RunArtifact::validate(&rendered).expect("artifact schema-valid");
        let doc = Value::parse(&rendered).expect("parses");
        assert_eq!(
            doc.get("session").and_then(|v| v.get("frames")),
            Some(&Value::u64(2))
        );
        assert_eq!(
            doc.get("requests")
                .and_then(Value::as_array)
                .map(<[Value]>::len),
            Some(2)
        );
    }

    const BASE2: &str = "INPUT(a)\\nINPUT(b)\\nINPUT(c)\\nOUTPUT(f1)\\nOUTPUT(f2)\\n\
                         g1 = AND(a, b)\\ng2 = OR(b, c)\\nf1 = NOT(g1)\\nf2 = NOT(g2)\\n";
    const EDIT2: &str = "INPUT(a)\\nINPUT(b)\\nINPUT(c)\\nOUTPUT(f1)\\nOUTPUT(f2)\\n\
                         g1 = AND(a, b)\\ng2 = XOR(b, c)\\nf1 = NOT(g1)\\nf2 = NOT(g2)\\n";

    fn eco_counter(doc: &Value, key: &str) -> Option<u64> {
        doc.get("effort")
            .and_then(|e| e.get("eco"))
            .and_then(|e| e.get(key))
            .and_then(Value::as_u64)
    }

    #[test]
    fn eco_requests_reuse_unchanged_cones_and_match_cold_results() {
        let mut warm = Session::new(ServeConfig::default());
        let establish = format!(r#"{{"id":"e","session":"s","circuit":"{BASE2}"}}"#);
        let doc = validate_response(&warm.handle_line(&establish)).expect("valid");
        assert_eq!(doc.get("status"), Some(&Value::str("ok")));
        assert_eq!(eco_counter(&doc, "reused"), Some(0));
        assert_eq!(eco_counter(&doc, "recomputed"), Some(2));

        // One-gate edit: only f2's cone changed, so only it recomputes.
        let eco = format!(r#"{{"id":"q","kind":"eco","session":"s","circuit":"{EDIT2}"}}"#);
        let incremental = validate_response(&warm.handle_line(&eco)).expect("valid");
        assert_eq!(incremental.get("status"), Some(&Value::str("ok")));
        assert_eq!(eco_counter(&incremental, "reused"), Some(1));
        assert_eq!(eco_counter(&incremental, "recomputed"), Some(1));
        assert_eq!(eco_counter(&incremental, "changed"), Some(1));

        // Byte-identical to a cold session analyzing the edited netlist.
        let mut cold = Session::new(ServeConfig::default());
        let plain = format!(r#"{{"id":"q","circuit":"{EDIT2}"}}"#);
        let fresh = validate_response(&cold.handle_line(&plain)).expect("valid");
        assert_eq!(
            crate::protocol::deterministic_view(&incremental),
            crate::protocol::deterministic_view(&fresh),
            "incremental result must be byte-identical to a cold run"
        );

        // Session requests bypass the warm result cache entirely.
        assert_eq!(warm.cache_stats().hits + warm.cache_stats().insertions, 0);
        assert_eq!(warm.workspace_stats().cones_reused, 1);
        assert_eq!(warm.workspace_stats().cones_recomputed, 3);
    }

    #[test]
    fn eco_against_an_unknown_session_is_a_bad_request() {
        let mut s = Session::new(ServeConfig::default());
        let eco = format!(r#"{{"id":"q","kind":"eco","session":"nope","circuit":"{BASE2}"}}"#);
        let doc = validate_response(&s.handle_line(&eco)).expect("valid");
        assert_eq!(
            doc.get("error").and_then(|e| e.get("kind")),
            Some(&Value::str("bad_request"))
        );
        let after = s.handle_line(&req("after"));
        assert!(validate_response(&after)
            .expect("valid")
            .get("result")
            .is_some());
    }

    #[test]
    fn deadline_session_requests_recompute_everything_but_still_retain() {
        let mut s = Session::new(ServeConfig::default());
        let establish = format!(r#"{{"id":"e","session":"s","circuit":"{BASE2}"}}"#);
        let _ = s.handle_line(&establish);
        // A deadline request never merges retained results (restart
        // determinism) — everything recomputes...
        let eco = format!(
            r#"{{"id":"d","kind":"eco","session":"s","deadline_ms":60000,"circuit":"{BASE2}"}}"#
        );
        let doc = validate_response(&s.handle_line(&eco)).expect("valid");
        assert_eq!(eco_counter(&doc, "reused"), Some(0));
        assert_eq!(eco_counter(&doc, "recomputed"), Some(2));
        // ...but what it solved exactly stays retained for the next
        // deadline-free request.
        let eco2 = format!(r#"{{"id":"q","kind":"eco","session":"s","circuit":"{BASE2}"}}"#);
        let doc2 = validate_response(&s.handle_line(&eco2)).expect("valid");
        assert_eq!(eco_counter(&doc2, "reused"), Some(2));
        assert_eq!(eco_counter(&doc2, "recomputed"), Some(0));
    }

    #[test]
    fn in_flight_slots_are_bounded_and_released() {
        let pool = InFlight::default();
        let a = pool.try_admit(2).expect("slot 1");
        let _b = pool.try_admit(2).expect("slot 2");
        assert!(pool.try_admit(2).is_none(), "cap enforced");
        drop(a);
        assert!(pool.try_admit(2).is_some(), "slot released on drop");
    }
}
