//! The persistent ECO workspace: named incremental sessions that
//! survive across requests.
//!
//! A plain `tbf serve` request is stateless — its cone engines and
//! retained results die with the response. An **ECO session** keeps
//! them alive: an analyze request carrying `"session":"NAME"`
//! establishes (or re-bases) the named session, snapshotting the
//! request's netlist as the session *base* and retaining every
//! exactly-solved cone in a [`ConeStore`] keyed by cone slice
//! signature ([`Netlist::cone_signature`]). A follow-up
//! `"kind":"eco"` request against the same name is then answered
//! incrementally: the incoming netlist is diffed against the base at
//! cone granularity, only the cones whose slice signature changed are
//! recomputed, and the merged [`CircuitReport`](tbf_core::CircuitReport)
//! is byte-identical to what a cold run over the edited netlist would
//! report.
//!
//! # Invalidation rules
//!
//! * The unit of retention is the **cone slice**: gate kinds, fanin
//!   wiring, scaled delay annotations and the output name, renumbered
//!   canonically. An edit inside a cone always flips its signature; an
//!   edit outside never does; adding or removing an unrelated output
//!   is invisible to the others.
//! * Engine options (delay model tag, timed-node cache mode,
//!   complement edges, reorder policy) are pinned per session at
//!   establishment. An `eco` request whose options disagree is a
//!   `bad_request`; re-establishing with different options resets the
//!   store (a fresh session under the same name).
//! * A request-level panic inside an ECO attempt clears the session's
//!   store — post-panic hygiene mirrors the warm result cache's poison
//!   quarantine, with the session's own store as the blast radius.
//!
//! Sessions are evicted least-recently-used once `capacity` names are
//! live; the warm result cache is bypassed entirely for session-bound
//! requests (their reuse happens at cone granularity here instead).

use std::collections::HashMap;

use tbf_core::{ConeStore, EcoStats};
use tbf_logic::Netlist;

/// Retained cones per session. Generous relative to suite circuits;
/// the per-session [`ConeStore`] evicts LRU beyond it.
pub const ECO_STORE_CAPACITY: usize = 256;

/// One named incremental session: the base netlist the next `eco`
/// request diffs against, the retained cone engines/results, and the
/// options fingerprint every request to this session must match.
pub struct EcoSession {
    base: Netlist,
    options_key: Vec<u8>,
    store: ConeStore,
    touched: u64,
}

impl EcoSession {
    /// The netlist the next `eco` request is diffed against (the last
    /// successfully analyzed one).
    #[must_use]
    pub fn base(&self) -> &Netlist {
        &self.base
    }

    /// The retained cone store, for the incremental analysis call.
    pub fn store_mut(&mut self) -> &mut ConeStore {
        &mut self.store
    }
}

/// Whole-workspace effort totals, reported in the final artifact.
#[derive(Clone, Copy, Debug, Default)]
pub struct WorkspaceStats {
    /// Sessions established (first establishment per name).
    pub sessions_created: u64,
    /// Sessions evicted by the LRU capacity bound.
    pub sessions_evicted: u64,
    /// Stores cleared for post-panic hygiene or option re-basing.
    pub resets: u64,
    /// Cones answered from retained results, across all sessions.
    pub cones_reused: u64,
    /// Cones that ran the ladder, across all sessions.
    pub cones_recomputed: u64,
}

/// The workspace: every live [`EcoSession`] by name, LRU-bounded.
pub struct SessionWorkspace {
    sessions: HashMap<String, EcoSession>,
    epoch: u64,
    capacity: usize,
    /// Workspace-wide effort totals.
    pub stats: WorkspaceStats,
}

impl SessionWorkspace {
    /// An empty workspace holding at most `capacity` sessions (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> SessionWorkspace {
        SessionWorkspace {
            sessions: HashMap::new(),
            epoch: 0,
            capacity: capacity.max(1),
            stats: WorkspaceStats::default(),
        }
    }

    /// Number of live sessions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sessions.len()
    }

    /// Whether no session is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sessions.is_empty()
    }

    /// Establishes (or refreshes) the named session for an analyze
    /// request: the request's netlist becomes the base. Matching
    /// options keep the retained store (unchanged cones stay warm
    /// across a re-base); different options reset it — retained
    /// results computed under another engine configuration must never
    /// be merged into this one's reports.
    pub fn establish(&mut self, name: &str, base: &Netlist, options_key: &[u8]) {
        self.epoch += 1;
        let epoch = self.epoch;
        match self.sessions.get_mut(name) {
            Some(sess) => {
                if sess.options_key != options_key {
                    sess.store.clear();
                    sess.options_key = options_key.to_owned();
                    self.stats.resets += 1;
                }
                sess.base = base.clone();
                sess.touched = epoch;
            }
            None => {
                self.stats.sessions_created += 1;
                self.sessions.insert(
                    name.to_owned(),
                    EcoSession {
                        base: base.clone(),
                        options_key: options_key.to_owned(),
                        store: ConeStore::new(ECO_STORE_CAPACITY),
                        touched: epoch,
                    },
                );
                self.evict_over_capacity();
            }
        }
    }

    /// Routes an `eco` request: the named session must already exist
    /// and must have been established under the same engine options.
    /// Returns a deterministically worded rejection detail otherwise.
    pub fn route_eco(&mut self, name: &str, options_key: &[u8]) -> Result<(), String> {
        self.epoch += 1;
        let epoch = self.epoch;
        match self.sessions.get_mut(name) {
            None => Err(format!(
                "eco request names unknown session `{name}`; establish it first with an \
                 analyze request carrying `session`"
            )),
            Some(sess) if sess.options_key != options_key => Err(format!(
                "eco request options disagree with session `{name}`'s; re-establish the \
                 session to change engine options"
            )),
            Some(sess) => {
                sess.touched = epoch;
                Ok(())
            }
        }
    }

    /// The named session, for the analysis path. `None` only if the
    /// name was never routed (a caller bug, not a client one).
    pub fn session_mut(&mut self, name: &str) -> Option<&mut EcoSession> {
        self.sessions.get_mut(name)
    }

    /// The cone-granular diff of `edited` against the session's base:
    /// how many of `edited`'s output cones have no signature-identical
    /// counterpart among the base's. This is what the incremental path
    /// will recompute (modulo same-request duplicate cones).
    #[must_use]
    pub fn changed_cones(&self, name: &str, edited: &Netlist) -> Option<u64> {
        let sess = self.sessions.get(name)?;
        let base_sigs: Vec<Vec<u8>> = (0..sess.base.outputs().len())
            .map(|i| sess.base.cone_signature(i))
            .collect();
        let changed = (0..edited.outputs().len())
            .filter(|&i| !base_sigs.contains(&edited.cone_signature(i)))
            .count();
        Some(changed as u64)
    }

    /// Commits a successful request's netlist as the session's new
    /// base, so the next `eco` diffs against what was last answered.
    pub fn commit(&mut self, name: &str, netlist: &Netlist) {
        if let Some(sess) = self.sessions.get_mut(name) {
            sess.base = netlist.clone();
        }
    }

    /// Folds one request's incremental effort into the totals.
    pub fn record(&mut self, eco: EcoStats) {
        self.stats.cones_reused += eco.reused as u64;
        self.stats.cones_recomputed += eco.recomputed as u64;
    }

    /// Post-panic hygiene: clears the named session's retained store
    /// (base and options survive — the client can retry immediately).
    pub fn clear_session(&mut self, name: &str) {
        if let Some(sess) = self.sessions.get_mut(name) {
            sess.store.clear();
            self.stats.resets += 1;
        }
    }

    /// Deterministic LRU eviction: drop the stalest (then
    /// lexicographically first) names beyond capacity.
    fn evict_over_capacity(&mut self) {
        while self.sessions.len() > self.capacity {
            let Some(name) = self
                .sessions
                .iter()
                .min_by(|a, b| (a.1.touched, a.0).cmp(&(b.1.touched, b.0)))
                .map(|(name, _)| name.clone())
            else {
                return;
            };
            self.sessions.remove(&name);
            self.stats.sessions_evicted += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tbf_logic::parsers::bench::parse_bench;
    use tbf_logic::parsers::mcnc_like_delays;

    fn net(text: &str) -> Netlist {
        parse_bench(text, mcnc_like_delays).expect("parses")
    }

    const TWO: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nOUTPUT(g)\n\
                       f = AND(a, b)\ng = OR(b, c)\n";
    const TWO_EDIT: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nOUTPUT(g)\n\
                            f = AND(a, b)\ng = XOR(b, c)\n";

    #[test]
    fn eco_requires_an_established_matching_session() {
        let mut ws = SessionWorkspace::new(4);
        assert!(ws.route_eco("s", b"k").is_err(), "unknown session");
        ws.establish("s", &net(TWO), b"k");
        assert!(ws.route_eco("s", b"k").is_ok());
        assert!(ws.route_eco("s", b"other").is_err(), "options mismatch");
        assert_eq!(ws.stats.sessions_created, 1);
    }

    #[test]
    fn changed_cones_counts_only_edited_slices() {
        let mut ws = SessionWorkspace::new(4);
        ws.establish("s", &net(TWO), b"k");
        assert_eq!(ws.changed_cones("s", &net(TWO)), Some(0));
        assert_eq!(ws.changed_cones("s", &net(TWO_EDIT)), Some(1));
    }

    #[test]
    fn rebasing_with_other_options_resets_the_store() {
        let mut ws = SessionWorkspace::new(4);
        ws.establish("s", &net(TWO), b"k");
        ws.establish("s", &net(TWO), b"k2");
        assert_eq!(ws.stats.resets, 1);
        assert_eq!(ws.stats.sessions_created, 1, "same name, same session");
    }

    #[test]
    fn capacity_evicts_the_stalest_session() {
        let mut ws = SessionWorkspace::new(2);
        ws.establish("a", &net(TWO), b"k");
        ws.establish("b", &net(TWO), b"k");
        ws.establish("a", &net(TWO), b"k"); // refresh a
        ws.establish("c", &net(TWO), b"k"); // evicts b
        assert_eq!(ws.len(), 2);
        assert!(ws.session_mut("b").is_none());
        assert!(ws.session_mut("a").is_some());
        assert_eq!(ws.stats.sessions_evicted, 1);
    }
}
