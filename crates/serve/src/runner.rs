//! Session runners: the synchronous line loop (tests, batch mode), the
//! signal-aware stdio loop, and the `--listen` unix-socket front end.
//!
//! All runners funnel frames into **one** session thread — the warm
//! cache and session budget are single-owner state — and differ only in
//! where frames come from and where responses go. Graceful shutdown is
//! the same everywhere:
//!
//! 1. EOF on stdin (or SIGTERM/SIGINT) stops intake.
//! 2. Frames already received keep draining, each answered normally.
//! 3. A watchdog thread arms on the first shutdown signal; when the
//!    drain deadline passes it cancels the session's shutdown token
//!    (new admissions now refuse with `shutting_down`) **and** the
//!    in-flight request's own [`tbf_core::CancelToken`], degrading it to sound
//!    bounds at the next budget poll instead of blocking exit.
//! 4. The final session-metrics artifact is emitted, and the process
//!    exits 0 — a drained EOF is a success, not a crash.

use std::io::{self, BufRead, Write};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::thread;
use std::time::Duration;

use crate::session::{ServeConfig, Session};

/// Runner-level (not per-request) settings from the CLI.
#[derive(Clone, Debug, Default)]
pub struct RunnerConfig {
    /// Serve a unix socket at this path instead of stdin/stdout.
    pub listen: Option<String>,
    /// Write the final session artifact here (pretty JSON).
    pub emit_metrics: Option<String>,
    /// Suppress the shutdown summary on stderr.
    pub quiet: bool,
}

/// Runs a batch of frames through `session` synchronously, writing one
/// response line per non-empty frame. Blank frames are skipped (they
/// are keep-alives, not requests). This is the deterministic core the
/// stdio/socket runners and every test drive.
///
/// # Errors
/// Propagates write failures on `out`; request-level failures become
/// error response lines instead.
pub fn run_lines<I>(session: &mut Session, lines: I, out: &mut dyn Write) -> io::Result<()>
where
    I: IntoIterator,
    I::Item: AsRef<str>,
{
    for line in lines {
        let line = line.as_ref();
        if line.trim().is_empty() {
            continue;
        }
        let response = session.handle_line(line);
        writeln!(out, "{response}")?;
    }
    out.flush()
}

/// How often the session loop wakes to poll the shutdown flag while
/// idle. Short enough that SIGTERM feels immediate, long enough to cost
/// nothing.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Arms the drain watchdog: when `drain` expires, refuse new work and
/// cancel whatever request is still in flight.
fn arm_drain_watchdog(session: &Session, drain: Duration) {
    let shutdown = session.shutdown_token();
    let live = session.live_request_handle();
    thread::spawn(move || {
        thread::sleep(drain);
        shutdown.cancel();
        if let Ok(guard) = live.lock() {
            if let Some(token) = guard.as_ref() {
                token.cancel();
            }
        }
    });
}

/// Emits the final artifact and shutdown summary.
fn finish(session: &Session, runner: &RunnerConfig) -> io::Result<()> {
    let artifact = session.final_artifact();
    if let Some(path) = &runner.emit_metrics {
        std::fs::write(path, artifact.to_value().to_pretty())?;
    }
    if !runner.quiet {
        let m = session.metrics();
        let c = session.cache_stats();
        eprintln!(
            "tbf serve: drained after {} frames ({} ok, {} errors, {} retries, {} panics caught, \
             cache {}/{} hits)",
            m.frames,
            m.ok,
            m.errors,
            m.retries,
            m.panics_caught,
            c.hits,
            c.hits + c.misses
        );
    }
    Ok(())
}

/// The stdin/stdout request loop: frames in on stdin, responses out on
/// stdout, shutdown on EOF or SIGTERM/SIGINT, exit code as the process
/// exit status (always 0 for a drained session).
///
/// # Errors
/// Propagates stdout/metrics write failures; everything request-shaped
/// is answered in-band.
pub fn serve_stdio(config: ServeConfig, runner: &RunnerConfig) -> io::Result<i32> {
    let drain = config.drain;
    let mut session = Session::new(config);
    signal::install();

    // stdin reads cannot be interrupted portably, so a reader thread
    // owns the blocking reads and the session thread owns the clock:
    // `recv_timeout` bounds every wait, keeping the loop responsive to
    // signals even when no input arrives. Dropping the receiver on exit
    // unblocks nothing — the reader dies with the process, which is
    // fine because by then every received frame has been answered.
    let (frames_tx, frames_rx) = mpsc::channel::<String>();
    thread::spawn(move || {
        let stdin = io::stdin();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if frames_tx.send(line).is_err() {
                break;
            }
        }
    });

    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut draining = false;
    loop {
        if signal::triggered() && !draining {
            draining = true;
            arm_drain_watchdog(&session, drain);
        }
        match frames_rx.recv_timeout(IDLE_POLL) {
            Ok(line) => {
                if line.trim().is_empty() {
                    continue;
                }
                let response = session.handle_line(&line);
                writeln!(out, "{response}")?;
                out.flush()?;
            }
            Err(RecvTimeoutError::Disconnected) => break, // EOF: drained
            Err(RecvTimeoutError::Timeout) => {
                if draining {
                    // Signal received and the queue is empty: done.
                    break;
                }
            }
        }
    }
    finish(&session, runner)?;
    Ok(0)
}

/// The `--listen` unix-socket front end: accepts connections, reads
/// LF-delimited frames from each, and answers on the same stream.
/// Frames from all connections funnel into the single session thread,
/// so warm state is shared and responses are totally ordered by arrival.
///
/// # Errors
/// Fails on bind errors; per-connection I/O errors drop that connection
/// only.
#[cfg(unix)]
pub fn serve_unix_socket(
    config: ServeConfig,
    runner: &RunnerConfig,
    path: &str,
) -> io::Result<i32> {
    use std::os::unix::net::UnixListener;

    let drain = config.drain;
    let mut session = Session::new(config);
    signal::install();
    // A stale socket from a previous run would fail the bind.
    let _ = std::fs::remove_file(path);
    let listener = UnixListener::bind(path)?;

    type Frame = (String, mpsc::Sender<String>);
    let (frames_tx, frames_rx) = mpsc::channel::<Frame>();
    thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let frames_tx = frames_tx.clone();
            thread::spawn(move || {
                let Ok(read_half) = stream.try_clone() else {
                    return;
                };
                let mut write_half = stream;
                let reader = io::BufReader::new(read_half);
                for line in reader.lines() {
                    let Ok(line) = line else { break };
                    if line.trim().is_empty() {
                        continue;
                    }
                    let (reply_tx, reply_rx) = mpsc::channel();
                    if frames_tx.send((line, reply_tx)).is_err() {
                        break; // session is gone; drop the connection
                    }
                    let Ok(response) = reply_rx.recv() else { break };
                    if writeln!(write_half, "{response}").is_err() {
                        break;
                    }
                    let _ = write_half.flush();
                }
            });
        }
    });

    let mut draining = false;
    loop {
        if signal::triggered() && !draining {
            draining = true;
            arm_drain_watchdog(&session, drain);
        }
        match frames_rx.recv_timeout(IDLE_POLL) {
            Ok((line, reply_tx)) => {
                let response = session.handle_line(&line);
                // A client that hung up mid-request just loses its
                // response; the session carries on.
                let _ = reply_tx.send(response);
            }
            Err(RecvTimeoutError::Disconnected) => break,
            Err(RecvTimeoutError::Timeout) => {
                if draining && session.shutdown_token().is_cancelled() {
                    // Drain deadline passed and the queue is idle.
                    break;
                }
            }
        }
    }
    finish(&session, runner)?;
    let _ = std::fs::remove_file(path);
    Ok(0)
}

/// Stub for non-unix targets: `--listen` is a unix-socket feature.
#[cfg(not(unix))]
pub fn serve_unix_socket(
    _config: ServeConfig,
    _runner: &RunnerConfig,
    _path: &str,
) -> io::Result<i32> {
    Err(io::Error::new(
        io::ErrorKind::Unsupported,
        "--listen requires a unix target",
    ))
}

/// SIGTERM/SIGINT latch. The handler only stores an atomic flag — the
/// session loop polls it between frames — because almost nothing else
/// is async-signal-safe.
#[cfg(unix)]
#[allow(unsafe_code)]
mod signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TRIGGERED: AtomicBool = AtomicBool::new(false);

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::SeqCst);
    }

    /// Installs the latch for SIGTERM and SIGINT. Idempotent.
    pub fn install() {
        extern "C" {
            // libc's classic `signal(2)`: takes and returns a handler
            // pointer; declared pointer-sized so no libc crate is
            // needed. The return value (the previous handler) is unused.
            fn signal(signum: i32, handler: usize) -> usize;
        }
        unsafe {
            signal(SIGINT, on_signal as extern "C" fn(i32) as usize);
            signal(SIGTERM, on_signal as extern "C" fn(i32) as usize);
        }
    }

    /// Whether a shutdown signal has arrived.
    pub fn triggered() -> bool {
        TRIGGERED.load(Ordering::SeqCst)
    }
}

/// No-signal stub for non-unix targets: only EOF drains the session.
#[cfg(not(unix))]
mod signal {
    /// No-op.
    pub fn install() {}

    /// Always `false`.
    pub fn triggered() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::validate_response;

    #[test]
    fn run_lines_answers_every_nonempty_frame() {
        let mut session = Session::new(ServeConfig::default());
        let frames = [
            r#"{"id":"a","circuit":"INPUT(x)\nOUTPUT(f)\nf = NOT(x)\n"}"#,
            "",
            "   ",
            "not json",
            r#"{"id":"b","circuit":"INPUT(x)\nOUTPUT(f)\nf = NOT(x)\n"}"#,
        ];
        let mut out = Vec::new();
        run_lines(&mut session, frames, &mut out).expect("writes");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "blank frames are skipped, not answered");
        for line in &lines {
            validate_response(line).expect("schema-valid");
        }
        assert_eq!(session.metrics().ok, 2);
        assert_eq!(session.metrics().errors, 1);
    }
}
