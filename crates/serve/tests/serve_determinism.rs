//! Response determinism across execution strategies.
//!
//! The serve contract: the same request batch yields
//!
//! * **byte-identical response lines** across worker-thread counts
//!   ({1, 4}) and reorder policies ({off, pressure}) — nothing in a
//!   response may leak scheduling or representation choices;
//! * **identical `result` members** when recoverable faults are seeded
//!   (the `effort` member may differ — that is its job) — compared via
//!   [`deterministic_view`];
//! * **identical `result` members** when the session is killed
//!   mid-batch and a fresh session re-answers the remaining requests —
//!   a restart loses the warm cache, never the answers.

use tbf_obs::json::Value;
use tbf_serve::protocol::{deterministic_view, validate_response};
use tbf_serve::session::{ServeConfig, Session};
use tbf_serve::ReorderPolicy;

const C17: &str = "INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)\nOUTPUT(g22)\nOUTPUT(g23)\ng10 = NAND(g1, g3)\ng11 = NAND(g3, g6)\ng16 = NAND(g2, g11)\ng19 = NAND(g11, g7)\ng22 = NAND(g10, g16)\ng23 = NAND(g16, g19)\n";

const XOR_TREE: &str = "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nx = XOR(a, b)\nf = XOR(x, c)\n";

const NOT1: &str = "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n";

fn request(id: &str, circuit: &str) -> String {
    format!(
        r#"{{"id":"{id}","circuit":"{}"}}"#,
        circuit.replace('\n', "\\n")
    )
}

/// A mixed batch: distinct circuits, repeats (warm hits), a unit-delay
/// variant (distinct cache key), a zero-deadline request (deterministic
/// degradation), and hostile frames (typed errors) interleaved.
fn batch() -> Vec<String> {
    vec![
        request("r01", C17),
        request("r02", XOR_TREE),
        "definitely not json".to_owned(),
        request("r03", C17), // repeat: warm hit
        format!(
            r#"{{"id":"r04","circuit":"{}","delays":"unit"}}"#,
            C17.replace('\n', "\\n")
        ),
        format!(
            r#"{{"id":"r05","circuit":"{}","deadline_ms":0}}"#,
            C17.replace('\n', "\\n")
        ),
        r#"{"id":"r06","schema":404,"circuit":"x"}"#.to_owned(),
        request("r07", NOT1),
        request("r08", XOR_TREE), // repeat: warm hit
        r#"{"id":"r09","circuit":"not a netlist"}"#.to_owned(),
        request("r10", C17), // repeat: warm hit
    ]
}

fn run_batch(threads: usize, reorder: ReorderPolicy) -> Vec<String> {
    let config = ServeConfig {
        threads,
        defaults: tbf_serve::DelayOptions {
            reorder,
            ..tbf_serve::DelayOptions::default()
        },
        ..ServeConfig::default()
    };
    let mut session = Session::new(config);
    let responses: Vec<String> = batch().iter().map(|l| session.handle_line(l)).collect();
    for r in &responses {
        validate_response(r).expect("schema-valid");
    }
    assert!(
        session.cache_stats().hits > 0,
        "the batch repeats circuits, so the warm cache must hit"
    );
    responses
}

#[test]
fn responses_are_byte_identical_across_threads_and_reorder() {
    let pressure = ReorderPolicy::OnPressure {
        trigger_nodes: 50_000,
        max_growth: 120,
    };
    let baseline = run_batch(1, ReorderPolicy::None);
    for (threads, reorder, label) in [
        (4, ReorderPolicy::None, "threads=4 reorder=off"),
        (1, pressure, "threads=1 reorder=pressure"),
        (4, pressure, "threads=4 reorder=pressure"),
    ] {
        let other = run_batch(threads, reorder);
        assert_eq!(
            baseline, other,
            "{label} must produce byte-identical response lines"
        );
    }
}

#[test]
fn rerunning_the_same_batch_is_byte_identical() {
    assert_eq!(
        run_batch(1, ReorderPolicy::None),
        run_batch(1, ReorderPolicy::None)
    );
}

#[test]
fn kill_mid_batch_and_restart_reanswers_identically() {
    let frames = batch();
    let straight: Vec<Value> = {
        let mut session = Session::new(ServeConfig::default());
        frames
            .iter()
            .map(|l| {
                deterministic_view(&validate_response(&session.handle_line(l)).expect("valid"))
            })
            .collect()
    };
    // "Kill" after every possible prefix: session A answers the prefix,
    // a cold session B re-answers the rest. Results (effort stripped —
    // a restarted session is legitimately colder) must match the
    // straight run at every split point.
    for split in 0..=frames.len() {
        let mut a = Session::new(ServeConfig::default());
        let mut restarted: Vec<Value> = frames[..split]
            .iter()
            .map(|l| deterministic_view(&validate_response(&a.handle_line(l)).expect("valid")))
            .collect();
        drop(a); // the kill: warm cache, budget, metrics all lost
        let mut b = Session::new(ServeConfig::default());
        restarted.extend(
            frames[split..]
                .iter()
                .map(|l| deterministic_view(&validate_response(&b.handle_line(l)).expect("valid"))),
        );
        assert_eq!(
            straight, restarted,
            "restart after frame {split} changed an answer"
        );
    }
}

/// Seeded recoverable faults change effort, never results. (The
/// unrecoverable sites — `RequestCancel` on a live request — are
/// exercised in `fault_path.rs`; they change results in *typed*,
/// documented ways and so stay out of a byte-equality suite.)
#[cfg(feature = "fault-injection")]
#[test]
fn seeded_faults_leave_results_identical() {
    use tbf_core::fault::{with_plan, FaultPlan, Site};

    let run = |plan: FaultPlan| -> Vec<Value> {
        let mut session = Session::new(ServeConfig::default());
        with_plan(plan, || {
            batch()
                .iter()
                .map(|l| {
                    deterministic_view(&validate_response(&session.handle_line(l)).expect("valid"))
                })
                .collect()
        })
    };
    let clean = run(FaultPlan::new());
    let seeded = run(FaultPlan::new()
        .once(Site::ConeStart)
        .once(Site::CachePoison));
    assert_eq!(clean, seeded);
    // And the seeded run itself is reproducible byte-for-byte.
    let run_full = |plan: FaultPlan| -> Vec<String> {
        let mut session = Session::new(ServeConfig::default());
        with_plan(plan, || {
            batch().iter().map(|l| session.handle_line(l)).collect()
        })
    };
    assert_eq!(
        run_full(FaultPlan::new().once(Site::ConeStart)),
        run_full(FaultPlan::new().once(Site::ConeStart)),
        "a seeded fault schedule replays byte-identically"
    );
}
