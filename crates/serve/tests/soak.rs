//! Session soak: hundreds of mixed good/bad/deadline-limited requests
//! through one warm session, with seeded fault injection when the
//! `fault-injection` feature is on.
//!
//! Seeds come from a fixed table; set `RANDOM_SEED=<u64>` (decimal or
//! `0x`-hex) to add a seed — the same harness contract as the engine's
//! property suites, so CI's seeded jobs exercise the serve loop too.
//!
//! Pass criteria (the CI soak job pipes a comparable batch through the
//! real binary): zero panics escape the request boundary (the test
//! completing *is* the assertion — `handle_line` never unwinds), every
//! response is schema-valid, exactly one response per frame, and the
//! warm cache reports hits after the first repeated circuit.

use tbf_obs::json::Value;
use tbf_serve::protocol::validate_response;
use tbf_serve::runner::run_lines;
use tbf_serve::session::{ServeConfig, Session};

/// Fixed seed table used by default and in CI's deterministic jobs.
const SEEDS: [u64; 2] = [0x5EED, 0x9e3779b97f4a7c15];

/// The seed table, plus `RANDOM_SEED` from the environment if present.
fn seeds() -> Vec<u64> {
    let mut s = SEEDS.to_vec();
    if let Ok(raw) = std::env::var("RANDOM_SEED") {
        let parsed = raw
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| raw.parse());
        match parsed {
            Ok(x) => s.push(x),
            Err(e) => panic!("RANDOM_SEED={raw:?} is not a u64: {e}"),
        }
    }
    s
}

/// splitmix64 — tiny, deterministic, good enough to shuffle a soak.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const C17: &str = "INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)\nOUTPUT(g22)\nOUTPUT(g23)\ng10 = NAND(g1, g3)\ng11 = NAND(g3, g6)\ng16 = NAND(g2, g11)\ng19 = NAND(g11, g7)\ng22 = NAND(g10, g16)\ng23 = NAND(g16, g19)\n";

const CIRCUITS: [&str; 4] = [
    "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n",
    "INPUT(a)\nINPUT(b)\nOUTPUT(f)\nf = AND(a, b)\n",
    "INPUT(a)\nINPUT(b)\nINPUT(c)\nOUTPUT(f)\nx = XOR(a, b)\nf = XOR(x, c)\n",
    C17,
];

/// One deterministic pseudo-random frame. The mix: ~60% good requests
/// over a small circuit pool (so repeats hammer the warm cache), ~10%
/// deadline-limited, ~30% hostile in six different ways.
fn frame(rng: &mut Rng, i: usize) -> String {
    let circuit = CIRCUITS[rng.below(CIRCUITS.len() as u64) as usize].replace('\n', "\\n");
    match rng.below(20) {
        0 => "total garbage".to_owned(),
        1 => format!(r#"{{"id":"r{i}","circuit":"{circuit}"}}"#).replace('}', "»"),
        2 => format!(r#"{{"id":"r{i}","circuit":"{}"}}"#, "x".repeat(5000)),
        3 => format!(r#"{{"id":"r{i}","schema":77,"circuit":"{circuit}"}}"#),
        4 => format!(r#"{{"id":"r{i}","circuit":"{circuit}"}}{}"#, "\r"),
        5 => format!(r#"{{"id":"r{i}","circuit":"broken netlist"}}"#),
        6 | 7 => format!(r#"{{"id":"r{i}","circuit":"{circuit}","deadline_ms":0}}"#),
        8 => format!(r#"{{"id":"r{i}","circuit":"{circuit}","delays":"unit"}}"#),
        9 => format!(r#"{{"id":"r{i}","circuit":"{circuit}","options":{{"cache":false}}}}"#),
        10 => format!(r#"{{"id":"r{i}","circuit":"{circuit}","options":{{"reorder":"manual"}}}}"#),
        _ => format!(r#"{{"id":"r{i}","circuit":"{circuit}"}}"#),
    }
}

fn soak_config() -> ServeConfig {
    ServeConfig {
        // Tight enough that case 2 above (a 5000-byte frame) trips the
        // oversize rejection; the good requests stay well under it.
        max_frame_bytes: 4096,
        ..ServeConfig::default()
    }
}

/// Runs one seeded soak batch and returns (responses, session).
fn run_soak(seed: u64, frames: usize) -> (Vec<String>, Session) {
    let mut rng = Rng(seed);
    let batch: Vec<String> = (0..frames).map(|i| frame(&mut rng, i)).collect();
    let mut session = Session::new(soak_config());
    let mut out = Vec::new();
    run_soak_inner(&mut session, &batch, &mut out);
    let text = String::from_utf8(out).expect("responses are UTF-8");
    (text.lines().map(str::to_owned).collect(), session)
}

#[cfg(feature = "fault-injection")]
fn run_soak_inner(session: &mut Session, batch: &[String], out: &mut Vec<u8>) {
    use tbf_core::fault::{FaultPlan, Site};
    // A hostile-but-recoverable fault schedule: repeated cone panics,
    // frame-decode trips, cache poisons, and one mid-request cancel,
    // spread across the batch.
    let mut plan = FaultPlan::new();
    for k in 0..10 {
        plan = plan
            .once_at(Site::ConeStart, k * 7)
            .once_at(Site::FrameParse, k * 11)
            .once_at(Site::CachePoison, k * 13);
    }
    plan = plan.once_at(Site::RequestCancel, 3);
    tbf_core::fault::with_plan(plan, || {
        run_lines(session, batch, out).expect("writes to a Vec cannot fail");
    });
}

#[cfg(not(feature = "fault-injection"))]
fn run_soak_inner(session: &mut Session, batch: &[String], out: &mut Vec<u8>) {
    run_lines(session, batch, out).expect("writes to a Vec cannot fail");
}

#[test]
fn soak_500_mixed_requests_per_seed() {
    for seed in seeds() {
        let (responses, session) = run_soak(seed, 520);
        assert_eq!(
            responses.len(),
            520,
            "seed {seed:#x}: exactly one response per frame"
        );
        let mut ok = 0u64;
        let mut errors = 0u64;
        for line in &responses {
            let doc = validate_response(line)
                .unwrap_or_else(|e| panic!("seed {seed:#x}: invalid response {line:?}: {e}"));
            match doc.get("status").and_then(Value::as_str) {
                Some("ok") => ok += 1,
                Some("error") => errors += 1,
                other => panic!("seed {seed:#x}: unexpected status {other:?}"),
            }
        }
        let m = session.metrics();
        assert_eq!(m.frames, 520, "seed {seed:#x}");
        assert_eq!(m.ok, ok, "seed {seed:#x}: metrics agree with responses");
        assert_eq!(m.errors, errors, "seed {seed:#x}");
        assert!(ok > 0 && errors > 0, "seed {seed:#x}: the mix mixed");
        let c = session.cache_stats();
        assert!(
            c.hits > 0,
            "seed {seed:#x}: repeated circuits must produce warm-cache hits \
             (hits={}, misses={})",
            c.hits,
            c.misses
        );
        // The final artifact the runner would emit is schema-valid too.
        let artifact = session.final_artifact().render();
        tbf_obs::RunArtifact::validate(&artifact)
            .unwrap_or_else(|e| panic!("seed {seed:#x}: invalid artifact: {e}"));
    }
}

#[test]
fn soak_is_deterministic_per_seed() {
    let (a, _) = run_soak(SEEDS[0], 260);
    let (b, _) = run_soak(SEEDS[0], 260);
    assert_eq!(a, b, "same seed, same batch, same bytes");
}
