//! Deterministic fault injection on the serve request path (requires
//! the `fault-injection` feature).
//!
//! The same harness that walks the engine's degradation ladder
//! (`crates/core/tests/fault_ladder.rs`) drives the service loop here:
//! each request-path site — frame decode, mid-request cancel, cache
//! poison — plus the engine's cone-panic site is armed in turn, and the
//! session must isolate the fault to one request, quarantine only that
//! request's warm state, and keep answering.

#![cfg(feature = "fault-injection")]

use tbf_core::fault::{with_plan, FaultPlan, Site};
use tbf_obs::json::Value;
use tbf_serve::protocol::{deterministic_view, validate_response};
use tbf_serve::session::{ServeConfig, Session};

const C17: &str = "INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)\nOUTPUT(g22)\nOUTPUT(g23)\ng10 = NAND(g1, g3)\ng11 = NAND(g3, g6)\ng16 = NAND(g2, g11)\ng19 = NAND(g11, g7)\ng22 = NAND(g10, g16)\ng23 = NAND(g16, g19)\n";

const NOT1: &str = "INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n";

fn request(id: &str, circuit: &str) -> String {
    format!(
        r#"{{"id":"{id}","circuit":"{}"}}"#,
        circuit.replace('\n', "\\n")
    )
}

fn request_no_cache(id: &str, circuit: &str) -> String {
    format!(
        r#"{{"id":"{id}","circuit":"{}","options":{{"cache":false}}}}"#,
        circuit.replace('\n', "\\n")
    )
}

fn error_kind(response: &str) -> String {
    let doc = validate_response(response).expect("schema-valid");
    doc.get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .unwrap_or("<ok>")
        .to_owned()
}

fn result_of(response: &str) -> Value {
    let doc = validate_response(response).expect("schema-valid");
    doc.get("result").expect("ok response").clone()
}

/// The fault-free answer for cross-checking recovered runs.
fn clean_result(circuit: &str) -> Value {
    let mut session = Session::new(ServeConfig::default());
    result_of(&session.handle_line(&request("clean", circuit)))
}

#[test]
fn frame_parse_fault_rejects_one_frame_and_session_survives() {
    let mut session = Session::new(ServeConfig::default());
    with_plan(FaultPlan::new().once(Site::FrameParse), || {
        let hit = session.handle_line(&request("r1", C17));
        assert_eq!(error_kind(&hit), "malformed_frame", "{hit}");
        // The fault is one-shot per session: the identical frame now
        // parses and analyzes.
        let ok = session.handle_line(&request("r2", C17));
        assert_eq!(error_kind(&ok), "<ok>", "{ok}");
        assert_eq!(result_of(&ok), clean_result(C17));
    });
}

#[test]
fn mid_request_cancel_degrades_that_request_only() {
    let mut session = Session::new(ServeConfig::default());
    with_plan(FaultPlan::new().once(Site::RequestCancel), || {
        let cancelled = session.handle_line(&request("r1", C17));
        let doc = validate_response(&cancelled).expect("schema-valid");
        assert_eq!(
            doc.get("status").and_then(Value::as_str),
            Some("ok"),
            "a cancelled request degrades to sound bounds, not an error: {cancelled}"
        );
        let rung = doc
            .get("result")
            .and_then(|r| r.get("rung"))
            .and_then(Value::as_str)
            .expect("rung");
        assert_ne!(rung, "exact", "{cancelled}");
        // The degraded result must not have been cached; the repeat
        // recomputes and lands exact.
        let repeat = session.handle_line(&request("r2", C17));
        assert_eq!(result_of(&repeat), clean_result(C17));
    });
    assert_eq!(session.metrics().cancelled, 1);
}

#[test]
fn cache_poison_quarantines_one_key_and_rebuilds() {
    let mut session = Session::new(ServeConfig::default());
    // Fires on the *second* analysis (hit index 1): r1 caches normally,
    // then r2's completion poisons its own key.
    with_plan(FaultPlan::new().once_at(Site::CachePoison, 1), || {
        let r1 = session.handle_line(&request("r1", C17)); // analysis 0: cached
        let _ = session.handle_line(&request_no_cache("r2", C17)); // analysis 1: poisons
        assert_eq!(session.cache_stats().poisons, 1, "the key was quarantined");
        // Bystander entries were untouched and the poisoned circuit is
        // rebuilt from scratch with the same answer.
        let r3 = session.handle_line(&request("r3", C17));
        assert_eq!(
            result_of(&r3),
            result_of(&r1),
            "rebuilt result is identical"
        );
        let r4 = session.handle_line(&request("r4", C17));
        assert_eq!(result_of(&r4), result_of(&r1));
    });
    let stats = session.cache_stats();
    assert!(
        stats.hits >= 1,
        "the rebuilt entry serves warm hits again: {stats:?}"
    );
    assert_eq!(stats.insertions, 2, "cached once, poisoned, cached again");
}

#[test]
fn cone_panic_is_retried_to_the_clean_answer() {
    let mut session = Session::new(ServeConfig::default());
    with_plan(FaultPlan::new().once(Site::ConeStart), || {
        let recovered = session.handle_line(&request_no_cache("r1", C17));
        let doc = validate_response(&recovered).expect("schema-valid");
        assert_eq!(doc.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            result_of(&recovered),
            clean_result(C17),
            "the retry after a cone panic must reach the fault-free answer"
        );
        let attempts = doc
            .get("effort")
            .and_then(|e| e.get("attempts"))
            .and_then(Value::as_u64)
            .expect("attempts");
        assert!(
            attempts >= 2,
            "recovery took a serve-level retry: {recovered}"
        );
    });
    assert!(session.metrics().retries >= 1);
}

/// g19 swapped NAND -> NOR: only g23's cone is affected, g22's is not.
const C17_EDIT: &str = "INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)\nOUTPUT(g22)\nOUTPUT(g23)\ng10 = NAND(g1, g3)\ng11 = NAND(g3, g6)\ng16 = NAND(g2, g11)\ng19 = NOR(g11, g7)\ng22 = NAND(g10, g16)\ng23 = NAND(g16, g19)\n";

fn establish(id: &str, session: &str, circuit: &str) -> String {
    format!(
        r#"{{"id":"{id}","session":"{session}","circuit":"{}"}}"#,
        circuit.replace('\n', "\\n")
    )
}

fn eco_frame(id: &str, session: &str, circuit: &str) -> String {
    format!(
        r#"{{"id":"{id}","kind":"eco","session":"{session}","circuit":"{}"}}"#,
        circuit.replace('\n', "\\n")
    )
}

fn eco_counter(response: &str, key: &str) -> u64 {
    let doc = validate_response(response).expect("schema-valid");
    doc.get("effort")
        .and_then(|e| e.get("eco"))
        .and_then(|e| e.get(key))
        .and_then(Value::as_u64)
        .expect("eco effort counters")
}

#[test]
fn frame_parse_fault_on_an_eco_frame_leaves_the_workspace_unpoisoned() {
    let oracle = clean_result(C17_EDIT);
    let mut session = Session::new(ServeConfig::default());
    let based = session.handle_line(&establish("e1", "eco", C17));
    assert_eq!(error_kind(&based), "<ok>", "{based}");
    with_plan(FaultPlan::new().once(Site::FrameParse), || {
        let hit = session.handle_line(&eco_frame("e2", "eco", C17_EDIT));
        assert_eq!(error_kind(&hit), "malformed_frame", "{hit}");
        // The dropped frame neither advanced the session's base nor
        // touched its retained cones: the retry diffs against the
        // original C17, reuses g22's cone, and recomputes only g23's.
        let retry = session.handle_line(&eco_frame("e3", "eco", C17_EDIT));
        assert_eq!(error_kind(&retry), "<ok>", "{retry}");
        assert_eq!(result_of(&retry), oracle);
        assert_eq!(eco_counter(&retry, "reused"), 1, "{retry}");
        assert_eq!(eco_counter(&retry, "recomputed"), 1, "{retry}");
    });
    assert_eq!(session.workspace_len(), 1, "the session outlives the fault");
}

#[test]
fn mid_eco_cancel_degrades_one_request_and_the_next_eco_lands_exact() {
    let oracle = clean_result(C17_EDIT);
    let mut session = Session::new(ServeConfig::default());
    let based = session.handle_line(&establish("e1", "eco", C17));
    assert_eq!(error_kind(&based), "<ok>", "{based}");
    with_plan(FaultPlan::new().once(Site::RequestCancel), || {
        let cancelled = session.handle_line(&eco_frame("e2", "eco", C17_EDIT));
        let doc = validate_response(&cancelled).expect("schema-valid");
        assert_eq!(
            doc.get("status").and_then(Value::as_str),
            Some("ok"),
            "a cancelled eco degrades to sound bounds, not an error: {cancelled}"
        );
        let rung = doc
            .get("result")
            .and_then(|r| r.get("rung"))
            .and_then(Value::as_str)
            .expect("rung");
        assert_ne!(rung, "exact", "{cancelled}");
        // Degraded cones were never retained; the repeat edit recomputes
        // them to the exact answer while the untouched cone stays warm.
        let repeat = session.handle_line(&eco_frame("e3", "eco", C17_EDIT));
        assert_eq!(error_kind(&repeat), "<ok>", "{repeat}");
        assert_eq!(result_of(&repeat), oracle);
    });
    assert_eq!(
        session.workspace_len(),
        1,
        "mid-edit cancellation never tears down the session"
    );
    assert_eq!(session.metrics().cancelled, 1);
}

#[test]
fn cone_panic_during_an_eco_degrades_one_recompute_and_the_store_stays_warm() {
    let oracle_edit = clean_result(C17_EDIT);
    let oracle_base = clean_result(C17);
    let mut session = Session::new(ServeConfig::default());
    let based = session.handle_line(&establish("e1", "eco", C17));
    assert_eq!(error_kind(&based), "<ok>", "{based}");
    with_plan(FaultPlan::new().once(Site::ConeStart), || {
        // The panic hits only the recomputed cone (the reused one never
        // runs the engine, so it cannot trip the fault); the engine
        // catches it, the degraded attempt is judged transient and never
        // retained, and the retry reuses the warm cone while recomputing
        // the panicked one to the exact answer.
        let recovered = session.handle_line(&eco_frame("e2", "eco", C17_EDIT));
        assert_eq!(error_kind(&recovered), "<ok>", "{recovered}");
        assert_eq!(result_of(&recovered), oracle_edit);
        assert_eq!(eco_counter(&recovered, "reused"), 1, "{recovered}");
        assert_eq!(eco_counter(&recovered, "recomputed"), 1, "{recovered}");
        let doc = validate_response(&recovered).expect("schema-valid");
        let attempts = doc
            .get("effort")
            .and_then(|e| e.get("attempts"))
            .and_then(Value::as_u64)
            .expect("attempts");
        assert!(attempts >= 2, "{recovered}");
    });
    assert!(session.metrics().retries >= 1);
    assert_eq!(session.workspace_len(), 1, "the session itself survives");
    // The panic evicted nothing: the original g23 cone from the
    // establish is still retained under its own slice key, so reverting
    // the edit reuses *both* cones without running the engine at all.
    let revert = session.handle_line(&eco_frame("e3", "eco", C17));
    assert_eq!(error_kind(&revert), "<ok>", "{revert}");
    assert_eq!(result_of(&revert), oracle_base);
    assert_eq!(eco_counter(&revert, "reused"), 2, "{revert}");
    assert_eq!(eco_counter(&revert, "recomputed"), 0, "{revert}");
}

#[test]
fn recovered_faults_leave_response_results_identical_to_clean_runs() {
    let batch = [
        request("a", C17),
        request("b", NOT1),
        request("c", C17), // warm hit in the clean run, maybe not under faults
    ];
    let run = |plan: FaultPlan| -> Vec<Value> {
        let mut session = Session::new(ServeConfig::default());
        with_plan(plan, || {
            batch
                .iter()
                .map(|line| {
                    let doc = validate_response(&session.handle_line(line)).expect("valid");
                    deterministic_view(&doc)
                })
                .collect()
        })
    };
    let clean = run(FaultPlan::new());
    let faulted = run(FaultPlan::new()
        .once(Site::ConeStart)
        .once_at(Site::CachePoison, 0));
    assert_eq!(
        clean, faulted,
        "recoverable faults may change effort, never results"
    );
}
