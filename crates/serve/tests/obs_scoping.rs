//! Per-request observability scoping (requires the `obs` feature).
//!
//! The regression this pins: a warm process used to report one
//! session-cumulative counter registry, so the artifact row for request
//! N included all the work of requests 1..N-1. With per-request
//! `observe` scoping, two identical back-to-back requests must record
//! *identical* (and individually complete) counter rows.

use tbf_obs::json::Value;
use tbf_serve::session::{ServeConfig, Session};

const C17: &str = "INPUT(g1)\nINPUT(g2)\nINPUT(g3)\nINPUT(g6)\nINPUT(g7)\nOUTPUT(g22)\nOUTPUT(g23)\ng10 = NAND(g1, g3)\ng11 = NAND(g3, g6)\ng16 = NAND(g2, g11)\ng19 = NAND(g11, g7)\ng22 = NAND(g10, g16)\ng23 = NAND(g16, g19)\n";

fn request(id: &str) -> String {
    format!(
        r#"{{"id":"{id}","circuit":"{}","options":{{"cache":false}}}}"#,
        C17.replace('\n', "\\n")
    )
}

fn counter_rows(session: &Session) -> Vec<Value> {
    let rendered = session.final_artifact().render();
    let doc = Value::parse(&rendered).expect("artifact parses");
    doc.get("requests")
        .and_then(Value::as_array)
        .expect("requests section")
        .iter()
        .map(|row| row.get("counters").expect("per-request counters").clone())
        .collect()
}

#[test]
fn back_to_back_requests_record_identical_counters() {
    let mut session = Session::new(ServeConfig::default());
    let first = session.handle_line(&request("r1"));
    let second = session.handle_line(&request("r2"));
    assert!(first.contains(r#""status":"ok""#), "{first}");
    assert!(second.contains(r#""status":"ok""#), "{second}");

    let rows = counter_rows(&session);
    assert_eq!(rows.len(), 2);
    let some_effort = rows[0]
        .as_object()
        .expect("counters object")
        .iter()
        .any(|(_, v)| v.as_u64().unwrap_or(0) > 0);
    assert!(some_effort, "an analysis must record nonzero counters");
    assert_eq!(
        rows[0], rows[1],
        "identical requests must record identical per-request counters — \
         inequality means the session accumulated across requests"
    );
}

#[test]
fn cached_requests_record_no_analysis_counters() {
    let mut session = Session::new(ServeConfig::default());
    let warm = format!(r#"{{"id":"w1","circuit":"{}"}}"#, C17.replace('\n', "\\n"));
    let _ = session.handle_line(&warm);
    let warm2 = format!(r#"{{"id":"w2","circuit":"{}"}}"#, C17.replace('\n', "\\n"));
    let response = session.handle_line(&warm2);
    assert!(response.contains(r#""cached":true"#), "{response}");

    let rendered = session.final_artifact().render();
    let doc = Value::parse(&rendered).expect("artifact parses");
    let rows = doc
        .get("requests")
        .and_then(Value::as_array)
        .expect("requests section");
    assert!(
        rows[1].get("counters").is_none(),
        "a warm hit runs no analysis, so its row carries no counters"
    );
}
