//! Table-driven request-parsing hardening: every class of hostile frame
//! yields exactly one typed error line, and the session keeps serving.

use tbf_obs::json::Value;
use tbf_serve::protocol::validate_response;
use tbf_serve::session::{ServeConfig, Session};

const NOT1: &str = r#"INPUT(a)\nOUTPUT(f)\nf = NOT(a)\n"#;

fn good(id: &str) -> String {
    format!(r#"{{"id":"{id}","circuit":"{NOT1}"}}"#)
}

fn kind_of(response: &str) -> (Option<String>, String) {
    let doc = validate_response(response).expect("even hostile input gets a schema-valid line");
    let id = doc.get("id").and_then(Value::as_str).map(str::to_owned);
    let kind = doc
        .get("error")
        .and_then(|e| e.get("kind"))
        .and_then(Value::as_str)
        .expect("error kind")
        .to_owned();
    (id, kind)
}

#[test]
fn hostile_frames_get_typed_errors_and_the_session_survives() {
    // (frame, expected kind, expect the id to be echoed)
    let cases: Vec<(String, &str, bool)> = vec![
        // Not JSON at all.
        ("garbage".to_owned(), "malformed_frame", false),
        // Valid JSON, wrong shape.
        ("[1,2,3]".to_owned(), "malformed_frame", false),
        (r#""just a string""#.to_owned(), "malformed_frame", false),
        // Missing / bad id.
        (
            format!(r#"{{"circuit":"{NOT1}"}}"#),
            "malformed_frame",
            false,
        ),
        (
            format!(r#"{{"id":"","circuit":"{NOT1}"}}"#),
            "malformed_frame",
            false,
        ),
        (
            format!(r#"{{"id":7,"circuit":"{NOT1}"}}"#),
            "malformed_frame",
            false,
        ),
        // Raw control bytes: NUL and CRLF framing.
        (format!("{}\u{0}", good("nul")), "malformed_frame", false),
        (format!("{}\r", good("crlf")), "malformed_frame", false),
        // Unknown schema versions and names.
        (
            format!(r#"{{"id":"s1","schema":99,"circuit":"{NOT1}"}}"#),
            "unsupported_schema",
            true,
        ),
        (
            format!(
                r#"{{"id":"s2","schema":{{"name":"tbf-serve-request","version":42}},"circuit":"{NOT1}"}}"#
            ),
            "unsupported_schema",
            true,
        ),
        (
            format!(
                r#"{{"id":"s3","schema":{{"name":"something-else","version":1}},"circuit":"{NOT1}"}}"#
            ),
            "unsupported_schema",
            true,
        ),
        (
            format!(r#"{{"id":"s4","schema":true,"circuit":"{NOT1}"}}"#),
            "unsupported_schema",
            true,
        ),
        // Semantically broken requests.
        (r#"{"id":"b1"}"#.to_owned(), "bad_request", true),
        (
            format!(r#"{{"id":"b2","circuit":"{NOT1}","path":"x.bench"}}"#),
            "bad_request",
            true,
        ),
        (
            r#"{"id":"b3","path":"/nonexistent/definitely-missing.bench"}"#.to_owned(),
            "bad_request",
            true,
        ),
        (
            r#"{"id":"b4","circuit":"this is not a netlist"}"#.to_owned(),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b5","circuit":"{NOT1}","model":"statistical"}}"#),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b6","circuit":"{NOT1}","format":"verilog"}}"#),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b7","circuit":"{NOT1}","delays":"gaussian"}}"#),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b8","circuit":"{NOT1}","options":7}}"#),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b9","circuit":"{NOT1}","options":{{"max_paths":"lots"}}}}"#),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b10","circuit":"{NOT1}","options":{{"reorder":"sometimes"}}}}"#),
            "bad_request",
            true,
        ),
        (
            format!(r#"{{"id":"b11","circuit":"{NOT1}","options":{{"cache":"yes"}}}}"#),
            "bad_request",
            true,
        ),
    ];

    let mut session = Session::new(ServeConfig::default());
    for (frame, expected_kind, id_echoed) in &cases {
        let response = session.handle_line(frame);
        let (id, kind) = kind_of(&response);
        assert_eq!(&kind, expected_kind, "frame: {frame:?} → {response}");
        assert_eq!(
            id.is_some(),
            *id_echoed,
            "id echo mismatch for {frame:?} → {response}"
        );
        // One line, no raw control characters, valid UTF-8 by construction.
        assert!(!response.contains('\n'), "responses are single lines");
    }

    // After the whole gauntlet the session still answers.
    let ok = session.handle_line(&good("alive"));
    let doc = validate_response(&ok).expect("valid");
    assert_eq!(doc.get("status"), Some(&Value::str("ok")), "{ok}");
    assert_eq!(session.metrics().frames, cases.len() as u64 + 1);
    assert_eq!(session.metrics().errors, cases.len() as u64);
    assert_eq!(session.metrics().ok, 1);
}

#[test]
fn oversized_frames_are_rejected_before_parsing() {
    let mut session = Session::new(ServeConfig {
        max_frame_bytes: 256,
        ..ServeConfig::default()
    });
    let huge = format!(r#"{{"id":"big","circuit":"{}"}}"#, "x".repeat(1024));
    let (id, kind) = kind_of(&session.handle_line(&huge));
    assert_eq!(kind, "frame_too_large");
    assert!(id.is_none(), "an unparsed frame cannot echo an id");
    // A frame exactly at the cap is fine.
    let ok = session.handle_line(&good("fits"));
    assert!(ok.contains(r#""status":"ok""#), "{ok}");
}

#[test]
fn error_details_are_deterministic() {
    // Two sessions, same hostile frame, byte-identical error lines —
    // the determinism suite relies on this for mixed batches.
    let frame = r#"{"id":"x","circuit":"not a netlist"}"#;
    let a = Session::new(ServeConfig::default()).handle_line(frame);
    let b = Session::new(ServeConfig::default()).handle_line(frame);
    assert_eq!(a, b);
}
