//! The ECO differential harness: seeded random edit scripts, replayed
//! incrementally and from cold, must agree byte-for-byte.
//!
//! Each case generates a random circuit, establishes it as an ECO
//! session base, then applies a random chain of ECO edits — gate-kind
//! swaps (which re-annotate delays under the MCNC-like model), fanin
//! rewires, gate additions, output additions and removals. After every
//! edit the warm session answers a `"kind":"eco"` request
//! incrementally; a **fresh cold session** answers the same netlist
//! with a plain analyze request. The deterministic `result` members
//! must be byte-identical at every prefix of the script, and the whole
//! response-line transcript must be byte-identical across worker-thread
//! counts, reorder policies and the complement-edges ablation.
//!
//! Seeds come from a fixed table; set `RANDOM_SEED=<u64>` (decimal or
//! `0x`-hex) to add one more (CI's soak job passes its run id).

use tbf_obs::json::Value;
use tbf_serve::protocol::{deterministic_view, validate_response};
use tbf_serve::session::{ServeConfig, Session};
use tbf_serve::ReorderPolicy;

/// Fixed seed table used by default and in CI's deterministic jobs.
const SEEDS: [u64; 3] = [0x9e3779b97f4a7c15, 0xdeadbeefcafef00d, 0x0123456789abcdef];

/// Edits per script: long enough to chain invalidations, short enough
/// that the full cell matrix stays quick in debug builds.
const SCRIPT_LEN: usize = 6;

/// xorshift64* — tiny, deterministic, dependency-free.
struct XorShift(u64);

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

fn seeds() -> Vec<u64> {
    let mut s: Vec<u64> = SEEDS.to_vec();
    if let Ok(v) = std::env::var("RANDOM_SEED") {
        let parsed = v
            .strip_prefix("0x")
            .map(|h| u64::from_str_radix(h, 16))
            .unwrap_or_else(|| v.parse());
        if let Ok(seed) = parsed {
            s.push(seed);
        }
    }
    s
}

const BINARY_KINDS: [&str; 5] = ["AND", "OR", "NAND", "NOR", "XOR"];

/// The fuzzer's editable circuit model, serialized to `.bench` text for
/// the wire.
#[derive(Clone)]
struct Gate {
    name: String,
    kind: &'static str,
    fanins: Vec<String>,
}

#[derive(Clone)]
struct Circuit {
    inputs: Vec<String>,
    gates: Vec<Gate>,
    outputs: Vec<String>,
    next_id: usize,
}

impl Circuit {
    fn random(rng: &mut XorShift) -> Circuit {
        let n_inputs = 3 + rng.below(3);
        let n_gates = 4 + rng.below(5);
        let inputs: Vec<String> = (0..n_inputs).map(|i| format!("i{i}")).collect();
        let mut c = Circuit {
            inputs,
            gates: Vec::new(),
            outputs: Vec::new(),
            next_id: 0,
        };
        for _ in 0..n_gates {
            c.append_gate(rng);
        }
        // Expose a couple of distinct late gates as outputs (outputs are
        // what ECO cones hang off).
        let n_outputs = 2 + rng.below(2);
        for _ in 0..n_outputs {
            let candidates: Vec<String> = c
                .gates
                .iter()
                .map(|g| g.name.clone())
                .filter(|n| !c.outputs.contains(n))
                .collect();
            if let Some(name) = pick(rng, &candidates) {
                c.outputs.push(name);
            }
        }
        c
    }

    /// Signals a gate at position `idx` may legally read (all inputs,
    /// plus gates defined earlier — acyclic by construction).
    fn signals_before(&self, idx: usize) -> Vec<String> {
        self.inputs
            .iter()
            .cloned()
            .chain(self.gates[..idx].iter().map(|g| g.name.clone()))
            .collect()
    }

    fn append_gate(&mut self, rng: &mut XorShift) -> String {
        let name = format!("g{}", self.next_id);
        self.next_id += 1;
        let pool = self.signals_before(self.gates.len());
        let kind = BINARY_KINDS[rng.below(BINARY_KINDS.len())];
        let a = pool[rng.below(pool.len())].clone();
        let b = pool[rng.below(pool.len())].clone();
        let (kind, fanins) = if rng.below(5) == 0 {
            ("NOT", vec![a])
        } else {
            (kind, vec![a, b])
        };
        self.gates.push(Gate {
            name: name.clone(),
            kind,
            fanins,
        });
        name
    }

    fn bench(&self) -> String {
        let mut text = String::new();
        for i in &self.inputs {
            text.push_str(&format!("INPUT({i})\n"));
        }
        for o in &self.outputs {
            text.push_str(&format!("OUTPUT({o})\n"));
        }
        for g in &self.gates {
            text.push_str(&format!(
                "{} = {}({})\n",
                g.name,
                g.kind,
                g.fanins.join(", ")
            ));
        }
        text
    }

    /// How many outputs' fanin cones contain `signal` — the set of
    /// cones a 1-gate edit at `signal` must invalidate.
    fn outputs_reaching(&self, signal: &str) -> usize {
        let reaches = |output: &str| -> bool {
            let mut stack = vec![output.to_owned()];
            let mut seen = Vec::new();
            while let Some(s) = stack.pop() {
                if s == signal {
                    return true;
                }
                if seen.contains(&s) {
                    continue;
                }
                if let Some(g) = self.gates.iter().find(|g| g.name == s) {
                    stack.extend(g.fanins.iter().cloned());
                }
                seen.push(s);
            }
            false
        };
        self.outputs.iter().filter(|o| reaches(o)).count()
    }

    /// Applies one random edit, returning a label for failure reports.
    /// Every edit changes the serialized netlist.
    fn edit(&mut self, rng: &mut XorShift) -> String {
        loop {
            match rng.below(5) {
                // Gate-kind swap (also a delay re-annotation: the MCNC
                // delay model is kind-dependent).
                0 => {
                    let binaries: Vec<usize> = (0..self.gates.len())
                        .filter(|&i| self.gates[i].fanins.len() == 2)
                        .collect();
                    let Some(&i) = pick_ref(rng, &binaries) else {
                        continue;
                    };
                    let old = self.gates[i].kind;
                    let replacement = loop {
                        let k = BINARY_KINDS[rng.below(BINARY_KINDS.len())];
                        if k != old {
                            break k;
                        }
                    };
                    self.gates[i].kind = replacement;
                    return format!("swap {} {old}->{replacement}", self.gates[i].name);
                }
                // Fanin rewire to a different (still earlier) signal.
                1 => {
                    let i = rng.below(self.gates.len());
                    let pool = self.signals_before(i);
                    let slot = rng.below(self.gates[i].fanins.len());
                    let old = self.gates[i].fanins[slot].clone();
                    let others: Vec<String> = pool.into_iter().filter(|s| *s != old).collect();
                    let Some(new) = pick(rng, &others) else {
                        continue;
                    };
                    self.gates[i].fanins[slot] = new.clone();
                    return format!("rewire {}[{slot}] {old}->{new}", self.gates[i].name);
                }
                // Add a gate; sometimes expose it as a fresh output
                // (otherwise it is dead and no cone may recompute).
                2 => {
                    let name = self.append_gate(rng);
                    if rng.coin() {
                        self.outputs.push(name.clone());
                        return format!("add-gate {name} (exposed)");
                    }
                    return format!("add-gate {name} (dangling)");
                }
                // Expose an existing gate as a new output.
                3 => {
                    let hidden: Vec<String> = self
                        .gates
                        .iter()
                        .map(|g| g.name.clone())
                        .filter(|n| !self.outputs.contains(n))
                        .collect();
                    let Some(name) = pick(rng, &hidden) else {
                        continue;
                    };
                    self.outputs.push(name.clone());
                    return format!("add-output {name}");
                }
                // Remove an output (keep at least one).
                _ => {
                    if self.outputs.len() < 2 {
                        continue;
                    }
                    let i = rng.below(self.outputs.len());
                    let name = self.outputs.remove(i);
                    return format!("remove-output {name}");
                }
            }
        }
    }
}

fn pick(rng: &mut XorShift, pool: &[String]) -> Option<String> {
    if pool.is_empty() {
        None
    } else {
        Some(pool[rng.below(pool.len())].clone())
    }
}

fn pick_ref<'a, T>(rng: &mut XorShift, pool: &'a [T]) -> Option<&'a T> {
    if pool.is_empty() {
        None
    } else {
        Some(&pool[rng.below(pool.len())])
    }
}

fn frame(id: &str, kind: Option<&str>, session: Option<&str>, circuit: &str) -> String {
    let mut f = format!(r#"{{"id":"{id}""#);
    if let Some(k) = kind {
        f.push_str(&format!(r#","kind":"{k}""#));
    }
    if let Some(s) = session {
        f.push_str(&format!(r#","session":"{s}""#));
    }
    f.push_str(&format!(
        r#","circuit":"{}"}}"#,
        circuit.replace('\n', "\\n")
    ));
    f
}

fn config(threads: usize, reorder: ReorderPolicy, complement_edges: bool) -> ServeConfig {
    ServeConfig {
        threads,
        defaults: tbf_serve::DelayOptions {
            reorder,
            complement_edges,
            ..tbf_serve::DelayOptions::default()
        },
        ..ServeConfig::default()
    }
}

fn eco_counter(doc: &Value, key: &str) -> u64 {
    doc.get("effort")
        .and_then(|e| e.get("eco"))
        .and_then(|e| e.get(key))
        .and_then(Value::as_u64)
        .unwrap_or_else(|| panic!("missing effort.eco.{key}"))
}

/// Replays one seeded edit script in one configuration cell: the warm
/// session's incremental answers must match a cold session's at every
/// prefix. Returns the warm session's full response transcript (for
/// cross-cell byte comparison) plus its final reuse totals.
fn replay(seed: u64, cfg: &ServeConfig) -> (Vec<String>, u64, u64) {
    let mut rng = XorShift::new(seed);
    let mut circuit = Circuit::random(&mut rng);
    let mut warm = Session::new(cfg.clone());
    let mut transcript = Vec::new();

    let establish = warm.handle_line(&frame("e0", None, Some("eco"), &circuit.bench()));
    validate_response(&establish).expect("establish response valid");
    transcript.push(establish);

    for step in 0..SCRIPT_LEN {
        let label = circuit.edit(&mut rng);
        let text = circuit.bench();
        let incremental =
            warm.handle_line(&frame(&format!("q{step}"), Some("eco"), Some("eco"), &text));
        let inc_doc = validate_response(&incremental)
            .unwrap_or_else(|e| panic!("seed {seed:#x} step {step} ({label}): {e}"));
        transcript.push(incremental);

        // The cold oracle: a fresh session, a plain analyze request.
        let mut cold = Session::new(cfg.clone());
        let fresh = cold.handle_line(&frame(&format!("q{step}"), None, None, &text));
        let fresh_doc = validate_response(&fresh).expect("cold response valid");
        assert_eq!(
            deterministic_view(&inc_doc),
            deterministic_view(&fresh_doc),
            "seed {seed:#x} step {step} ({label}): incremental result diverged from cold\n{text}"
        );

        // Conservation and diff-bounding of the reuse counters: every
        // output cone is either merged from the store or recomputed,
        // and only cones the base diff flagged as edited may recompute
        // (an undo can recompute even fewer, via older retained cones).
        let reused = eco_counter(&inc_doc, "reused");
        let recomputed = eco_counter(&inc_doc, "recomputed");
        let changed = eco_counter(&inc_doc, "changed");
        assert_eq!(
            reused + recomputed,
            circuit.outputs.len() as u64,
            "seed {seed:#x} step {step} ({label}): counters must cover every output cone"
        );
        assert!(
            recomputed <= changed,
            "seed {seed:#x} step {step} ({label}): recomputed {recomputed} cones but the \
             base diff only flagged {changed}"
        );
    }
    let totals = warm.workspace_stats();
    (transcript, totals.cones_reused, totals.cones_recomputed)
}

#[test]
fn edit_scripts_match_cold_runs_at_every_prefix() {
    for seed in seeds() {
        let (_, reused, recomputed) = replay(seed, &config(1, ReorderPolicy::None, true));
        assert!(
            reused > 0,
            "seed {seed:#x}: a {SCRIPT_LEN}-edit script never reused a cone — the \
             incremental path is not incremental"
        );
        assert!(recomputed > 0, "seed {seed:#x}: nothing ever recomputed");
    }
}

#[test]
fn transcripts_are_byte_identical_across_threads_reorder_and_complement() {
    let pressure = ReorderPolicy::OnPressure {
        trigger_nodes: 50_000,
        max_growth: 120,
    };
    for seed in seeds() {
        let (baseline, ..) = replay(seed, &config(1, ReorderPolicy::None, true));
        for (cfg, label) in [
            (config(4, ReorderPolicy::None, true), "threads=4"),
            (config(1, pressure, true), "reorder=pressure"),
            (config(1, ReorderPolicy::None, false), "complement=off"),
            (
                config(4, pressure, false),
                "threads=4 pressure complement=off",
            ),
        ] {
            let (other, ..) = replay(seed, &cfg);
            assert_eq!(
                baseline, other,
                "seed {seed:#x}: {label} changed the incremental transcript"
            );
        }
    }
}

/// The acceptance criterion pinned exactly: a single gate-kind swap
/// recomputes precisely the cones whose fanin contains the edited gate
/// and reuses every other retained cone, and the counters say so.
#[test]
fn one_gate_edit_recomputes_exactly_the_affected_cone_set() {
    for seed in seeds() {
        let mut rng = XorShift::new(seed.rotate_left(17));
        let mut circuit = Circuit::random(&mut rng);
        let mut warm = Session::new(ServeConfig::default());
        let est = warm.handle_line(&frame("e", None, Some("s"), &circuit.bench()));
        validate_response(&est).expect("valid");

        // Swap one binary gate's kind (guaranteed to exist: generation
        // makes NOT gates only 1-in-5).
        let Some(i) = (0..circuit.gates.len()).find(|&i| circuit.gates[i].fanins.len() == 2) else {
            continue;
        };
        let old = circuit.gates[i].kind;
        circuit.gates[i].kind = BINARY_KINDS
            .iter()
            .find(|k| **k != old)
            .expect("five kinds");
        let edited_gate = circuit.gates[i].name.clone();
        let affected = circuit.outputs_reaching(&edited_gate) as u64;
        let total = circuit.outputs.len() as u64;

        let doc = validate_response(&warm.handle_line(&frame(
            "q",
            Some("eco"),
            Some("s"),
            &circuit.bench(),
        )))
        .expect("valid");
        assert_eq!(
            eco_counter(&doc, "recomputed"),
            affected,
            "seed {seed:#x}: swapping {edited_gate} must recompute exactly its fanout cones"
        );
        assert_eq!(
            eco_counter(&doc, "reused"),
            total - affected,
            "seed {seed:#x}: unaffected cones must all be reused"
        );
        assert_eq!(eco_counter(&doc, "changed"), affected);
    }
}
