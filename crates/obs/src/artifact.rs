//! Schema-versioned, machine-readable run artifacts.
//!
//! A [`RunArtifact`] is the JSON document `tbf --emit-metrics` writes
//! and the benches adopt for longitudinal tracking. Its layout contract:
//!
//! * the first member is always the `schema` header
//!   `{"name": "tbf-run-artifact", "version": 1}`;
//! * every other section appears in the order the producer added it,
//!   **except** `timing`, which is always serialized last;
//! * every section except `timing` is deterministic — byte-identical
//!   across thread counts, reorder policies, machines, and runs — so a
//!   consumer may diff artifacts after dropping the final `timing`
//!   member (see [`RunArtifact::deterministic_view`]).
//!
//! Versioning policy: `version` bumps on any change that removes or
//! re-types an existing key; purely additive keys keep the version.
//!
//! # Example
//!
//! ```
//! use tbf_obs::{json::Value, RunArtifact};
//! let mut a = RunArtifact::new();
//! a.section("circuit", Value::Obj(vec![("gates".into(), Value::u64(6))]));
//! let text = a.render();
//! let doc = RunArtifact::validate(&text).expect("schema-valid");
//! assert_eq!(doc.get("circuit").and_then(|c| c.get("gates")).and_then(Value::as_u64), Some(6));
//! ```

use crate::counters::{Counters, HistMetric};
use crate::json::Value;

/// The schema identifier stamped into every artifact.
pub const SCHEMA_NAME: &str = "tbf-run-artifact";

/// The current schema version (bumped on breaking key changes only).
pub const SCHEMA_VERSION: u64 = 1;

/// An in-construction run artifact. See the [module docs](self) for the
/// layout contract.
#[derive(Clone, Debug, Default)]
pub struct RunArtifact {
    sections: Vec<(String, Value)>,
}

impl RunArtifact {
    /// An empty artifact (schema header added at render time).
    pub fn new() -> RunArtifact {
        RunArtifact::default()
    }

    /// Adds (or replaces) a named section. Insertion order is
    /// serialization order; the `timing` section always renders last.
    pub fn section(&mut self, name: &str, value: Value) {
        if let Some(slot) = self.sections.iter_mut().find(|(k, _)| k == name) {
            slot.1 = value;
        } else {
            self.sections.push((name.to_owned(), value));
        }
    }

    /// Assembles the document `Value`: schema header first, `timing`
    /// last, everything else in insertion order.
    pub fn to_value(&self) -> Value {
        let mut pairs = vec![(
            "schema".to_owned(),
            Value::Obj(vec![
                ("name".to_owned(), Value::str(SCHEMA_NAME)),
                ("version".to_owned(), Value::u64(SCHEMA_VERSION)),
            ]),
        )];
        for (k, v) in &self.sections {
            if k != "timing" {
                pairs.push((k.clone(), v.clone()));
            }
        }
        if let Some((k, v)) = self.sections.iter().find(|(k, _)| k == "timing") {
            pairs.push((k.clone(), v.clone()));
        }
        Value::Obj(pairs)
    }

    /// Renders the pretty-printed artifact text.
    pub fn render(&self) -> String {
        self.to_value().to_pretty()
    }

    /// Parses artifact text and checks the schema header. Returns the
    /// document on success.
    pub fn validate(text: &str) -> Result<Value, String> {
        let doc = Value::parse(text)?;
        let schema = doc.get("schema").ok_or("missing `schema` section")?;
        let (first_key, _) = doc
            .as_object()
            .and_then(|o| o.first())
            .ok_or("artifact is not an object")?;
        if first_key != "schema" {
            return Err("`schema` must be the first member".to_owned());
        }
        match schema.get("name").and_then(Value::as_str) {
            Some(SCHEMA_NAME) => {}
            other => return Err(format!("unexpected schema name {other:?}")),
        }
        match schema.get("version").and_then(Value::as_u64) {
            Some(v) if v <= SCHEMA_VERSION => {}
            other => return Err(format!("unsupported schema version {other:?}")),
        }
        Ok(doc)
    }

    /// Strips the volatile `timing` member from a parsed artifact,
    /// leaving only the sections that must be byte-identical across
    /// equivalent runs.
    pub fn deterministic_view(doc: &Value) -> Value {
        match doc {
            Value::Obj(pairs) => Value::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| k != "timing")
                    .cloned()
                    .collect(),
            ),
            other => other.clone(),
        }
    }
}

/// The `counters` section of a registry: `{name: total, …}` in registry
/// order.
pub fn counters_section(counters: &Counters) -> Value {
    Value::Obj(
        counters
            .snapshot()
            .into_iter()
            .map(|(name, v)| (name.to_owned(), Value::u64(v)))
            .collect(),
    )
}

/// The `histograms` section of a registry: per histogram `{count, sum,
/// buckets}` where `buckets` is a list of `[lo, hi, count]` value-range
/// triples (empty buckets omitted).
pub fn histograms_section(counters: &Counters) -> Value {
    Value::Obj(
        HistMetric::ALL
            .iter()
            .map(|&m| {
                let h = counters.histogram(m);
                let buckets = h
                    .nonzero_buckets()
                    .into_iter()
                    .map(|(lo, hi, n)| {
                        Value::Arr(vec![Value::u64(lo), Value::u64(hi), Value::u64(n)])
                    })
                    .collect();
                (
                    m.name().to_owned(),
                    Value::Obj(vec![
                        ("count".to_owned(), Value::u64(h.count())),
                        ("sum".to_owned(), Value::u64(h.sum())),
                        ("buckets".to_owned(), Value::Arr(buckets)),
                    ]),
                )
            })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_header_is_first_and_timing_last() {
        let mut a = RunArtifact::new();
        a.section("timing", Value::Arr(vec![]));
        a.section("counters", Value::Obj(vec![]));
        let doc = a.to_value();
        let keys: Vec<_> = doc
            .as_object()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["schema", "counters", "timing"]);
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        assert!(RunArtifact::validate("{}").is_err());
        assert!(RunArtifact::validate(r#"{"schema":{"name":"other","version":1}}"#).is_err());
        assert!(
            RunArtifact::validate(r#"{"schema":{"name":"tbf-run-artifact","version":99}}"#)
                .is_err()
        );
        let ok = RunArtifact::new().render();
        assert!(RunArtifact::validate(&ok).is_ok());
    }

    #[test]
    fn deterministic_view_drops_timing_only() {
        let mut a = RunArtifact::new();
        a.section("counters", Value::Obj(vec![("x".into(), Value::u64(1))]));
        a.section("timing", Value::Arr(vec![Value::u64(123)]));
        let doc = RunArtifact::validate(&a.render()).expect("valid");
        let det = RunArtifact::deterministic_view(&doc);
        assert!(det.get("counters").is_some());
        assert!(det.get("timing").is_none());
    }

    #[test]
    fn section_replaces_in_place() {
        let mut a = RunArtifact::new();
        a.section("counters", Value::u64(1));
        a.section("report", Value::u64(2));
        a.section("counters", Value::u64(3));
        let doc = a.to_value();
        let keys: Vec<_> = doc
            .as_object()
            .expect("object")
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, ["schema", "counters", "report"]);
        assert_eq!(doc.get("counters").and_then(Value::as_u64), Some(3));
    }
}
