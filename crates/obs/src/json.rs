//! A minimal JSON value with a stable-key-order writer and a strict
//! recursive-descent parser.
//!
//! The workspace is dependency-free by design, so this module replaces
//! serde for the one job the suite needs: emitting and re-reading
//! [`RunArtifact`](crate::RunArtifact)s deterministically. Objects are
//! ordered vectors of pairs — serialization order is **exactly insertion
//! order**, which is what makes artifact diffs stable. Numbers are kept
//! as their literal token (no float round-tripping), so a parsed value
//! re-serializes byte-identically.
//!
//! # Example
//!
//! ```
//! use tbf_obs::json::Value;
//! let v = Value::Obj(vec![
//!     ("b".to_owned(), Value::u64(2)),
//!     ("a".to_owned(), Value::str("x")),
//! ]);
//! let text = v.to_string();
//! assert_eq!(text, r#"{"b":2,"a":"x"}"#);
//! let back = Value::parse(&text).unwrap();
//! assert_eq!(back, v);
//! ```

use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its literal token so round-trips are exact.
    Num(String),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object: key/value pairs **in insertion order**.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// A number value from a `u64`.
    pub fn u64(v: u64) -> Value {
        Value::Num(v.to_string())
    }

    /// A number value from an `i64`.
    pub fn i64(v: i64) -> Value {
        Value::Num(v.to_string())
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number parsed as `u64`, if this is an unsigned integer token.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the artifact file format.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        write_pretty(self, 0, &mut out);
        out.push('\n');
        out
    }

    /// Parses a complete JSON document (trailing whitespace allowed,
    /// anything else is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => out.push_str(n),
        Value::Str(s) => escape_into(s, out),
        Value::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Obj(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                escape_into(k, out);
                out.push(':');
                write_compact(item, out);
            }
            out.push('}');
        }
    }
}

fn write_pretty(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Arr(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_pretty(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Obj(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                out.push_str(&pad_in);
                escape_into(k, out);
                out.push_str(": ");
                write_pretty(item, indent + 1, out);
                if i + 1 < pairs.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
        other => write_compact(other, out),
    }
}

impl fmt::Display for Value {
    /// Compact single-line serialization, stable key order.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        write_compact(self, &mut s);
        f.write_str(&s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", char::from(b), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Parser<'a>| {
            let s = p.pos;
            while p.peek().is_some_and(|b| b.is_ascii_digit()) {
                p.pos += 1;
            }
            p.pos > s
        };
        if !digits(self) {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-UTF-8 number".to_owned())?;
        Ok(Value::Num(token.to_owned()))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| "truncated \\u escape".to_owned())?;
        let s = std::str::from_utf8(slice).map_err(|_| "non-UTF-8 escape".to_owned())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "non-UTF-8 string".to_owned())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let scalar = if (0xD800..0xDC00).contains(&hi)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(char::from_u32(scalar).unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_owned()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_order_and_tokens() {
        let text = r#"{"z":1,"a":[true,null,-2.5e3],"s":"q\"\\\n"}"#;
        let v = Value::parse(text).expect("parses");
        assert_eq!(v.to_string(), text);
        assert_eq!(v.get("z").and_then(Value::as_u64), Some(1));
    }

    #[test]
    fn pretty_round_trips() {
        let v = Value::Obj(vec![
            ("schema".to_owned(), Value::str("x")),
            (
                "rows".to_owned(),
                Value::Arr(vec![Value::u64(1), Value::u64(2)]),
            ),
            ("empty".to_owned(), Value::Arr(vec![])),
        ]);
        let pretty = v.to_pretty();
        assert!(pretty.contains("\"schema\": \"x\""));
        assert_eq!(Value::parse(&pretty).expect("parses"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Value::parse("{").is_err());
        assert!(Value::parse("[1,]").is_err());
        assert!(Value::parse("12 34").is_err());
        assert!(Value::parse("'single'").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = Value::parse(r#""aé😀b""#).expect("parses");
        assert_eq!(v.as_str(), Some("aé😀b"));
    }
}
