//! Lock-free named counters and log₂ histograms.
//!
//! A [`Counters`] registry is a fixed array of `AtomicU64`s indexed by
//! the [`Metric`] enum plus a fixed array of [`Histogram`]s indexed by
//! [`HistMetric`]. All updates are `Ordering::Relaxed` — the registry
//! records *totals of deterministic work*, so no ordering between
//! threads is ever needed: u64 sums are commutative and the engines do
//! the same logical work at every thread count.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named effort counters instrumented throughout the workspace.
///
/// The variant set is the metric *registry*: adding a variant (and its
/// [`Metric::name`]) is the only step needed to introduce a new counter.
/// Names are `snake_case` and appear verbatim in the `counters` section
/// of a [`RunArtifact`](crate::RunArtifact).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Entries into the BDD `ite` / `try_ite_b` recursion (terminal
    /// cases included).
    IteCalls,
    /// Hits in any BDD operation cache (ite, not, quantify, compose).
    CacheHits,
    /// Misses in any BDD operation cache.
    CacheMisses,
    /// Probes of the unique table in `BddManager::mk`.
    UniqueTableProbes,
    /// BDD nodes freshly allocated (unique-table misses).
    NodesAllocated,
    /// Operation-cache flushes (`clear_op_caches`). Arena-level
    /// mark-and-sweep passes are counted separately as `GcSweeps`.
    GcRuns,
    /// Adjacent-level swaps performed while sifting.
    SiftSwaps,
    /// Budget cancellation probes (`AnalysisBudget::poll`).
    BudgetPolls,
    /// Timed-function BDD builds actually performed (misses of the
    /// cross-breakpoint timed-node cache in the delay-model engine).
    TbfInstantiations,
    /// Timed-function BDD builds skipped because a previous breakpoint's
    /// instantiation was still valid (hits of the timed-node cache).
    TbfCacheHits,
    /// Timed-node cache entries dropped by the epoch-based staleness
    /// sweep (long-running engines bound their cache memory this way).
    TbfCacheEvictions,
    /// Cones answered from the incremental (ECO) retention store
    /// without recomputation — their slice signature was unchanged.
    EcoConesReused,
    /// Cones the incremental engine actually ran: changed slices,
    /// never-seen slices, or every cone on a volatile request.
    EcoConesRecomputed,
    /// Unique-table probes that found an interned node (probes = hits +
    /// misses; appended after the ECO metrics to keep registry order
    /// stable).
    UniqueTableHits,
    /// Unique-table probes that fell through to an allocation.
    UniqueTableMisses,
    /// Mark-and-sweep garbage-collection passes over the node arena
    /// (distinct from `GcRuns`, the op-cache flushes).
    GcSweeps,
    /// Arena nodes reclaimed by mark-and-sweep passes.
    GcNodesReclaimed,
}

impl Metric {
    /// Every metric, in registry (serialization) order.
    pub const ALL: [Metric; 17] = [
        Metric::IteCalls,
        Metric::CacheHits,
        Metric::CacheMisses,
        Metric::UniqueTableProbes,
        Metric::NodesAllocated,
        Metric::GcRuns,
        Metric::SiftSwaps,
        Metric::BudgetPolls,
        Metric::TbfInstantiations,
        Metric::TbfCacheHits,
        Metric::TbfCacheEvictions,
        Metric::EcoConesReused,
        Metric::EcoConesRecomputed,
        Metric::UniqueTableHits,
        Metric::UniqueTableMisses,
        Metric::GcSweeps,
        Metric::GcNodesReclaimed,
    ];

    /// The metric's stable `snake_case` name, as serialized.
    pub fn name(self) -> &'static str {
        match self {
            Metric::IteCalls => "ite_calls",
            Metric::CacheHits => "cache_hits",
            Metric::CacheMisses => "cache_misses",
            Metric::UniqueTableProbes => "unique_table_probes",
            Metric::NodesAllocated => "nodes_allocated",
            Metric::GcRuns => "gc_runs",
            Metric::SiftSwaps => "sift_swaps",
            Metric::BudgetPolls => "budget_polls",
            Metric::TbfInstantiations => "tbf_instantiations",
            Metric::TbfCacheHits => "tbf_cache_hits",
            Metric::TbfCacheEvictions => "tbf_cache_evictions",
            Metric::EcoConesReused => "eco_cones_reused",
            Metric::EcoConesRecomputed => "eco_cones_recomputed",
            Metric::UniqueTableHits => "unique_table_hits",
            Metric::UniqueTableMisses => "unique_table_misses",
            Metric::GcSweeps => "gc_sweeps",
            Metric::GcNodesReclaimed => "gc_nodes_reclaimed",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Named log₂-bucket histograms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistMetric {
    /// Live BDD node count observed at the start of each sifting pass.
    SiftLiveNodes,
    /// Breakpoints visited per analyzed cone.
    ConeBreakpoints,
}

impl HistMetric {
    /// Every histogram metric, in registry (serialization) order.
    pub const ALL: [HistMetric; 2] = [HistMetric::SiftLiveNodes, HistMetric::ConeBreakpoints];

    /// The histogram's stable `snake_case` name, as serialized.
    pub fn name(self) -> &'static str {
        match self {
            HistMetric::SiftLiveNodes => "sift_live_nodes",
            HistMetric::ConeBreakpoints => "cone_breakpoints",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

const N_BUCKETS: usize = 65;

/// A lock-free histogram with log₂ buckets: bucket 0 holds the value 0
/// and bucket `i ≥ 1` holds values in `[2^(i−1), 2^i − 1]`.
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

#[allow(clippy::declare_interior_mutable_const)]
const ZERO: AtomicU64 = AtomicU64::new(0);

impl Histogram {
    fn new() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [ZERO; N_BUCKETS],
        }
    }

    fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            (64 - value.leading_zeros()) as usize
        }
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.buckets[Histogram::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// The non-empty buckets as `(lo, hi, count)` value-range triples,
    /// in ascending order.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            let (lo, hi) = if i == 0 {
                (0, 0)
            } else {
                (
                    1u64 << (i - 1),
                    (1u64 << (i - 1)).wrapping_mul(2).wrapping_sub(1),
                )
            };
            out.push((lo, hi, n));
        }
        out
    }
}

/// The lock-free counter registry shared (via [`Arc`]) by every BDD
/// manager, budget, and worker thread of one observed run.
///
/// # Example
///
/// ```
/// use tbf_obs::{Counters, HistMetric, Metric};
/// let c = Counters::new();
/// c.bump(Metric::SiftSwaps);
/// c.observe(HistMetric::SiftLiveNodes, 1000);
/// assert_eq!(c.get(Metric::SiftSwaps), 1);
/// assert_eq!(c.histogram(HistMetric::SiftLiveNodes).count(), 1);
/// ```
#[derive(Debug)]
pub struct Counters {
    vals: [AtomicU64; Metric::ALL.len()],
    hists: [Histogram; HistMetric::ALL.len()],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            vals: [ZERO; Metric::ALL.len()],
            hists: [Histogram::new(), Histogram::new()],
        }
    }
}

impl Counters {
    /// A fresh registry with every counter at zero.
    pub fn new() -> Counters {
        Counters::default()
    }

    /// A fresh registry behind an [`Arc`], ready to share.
    pub fn shared() -> Arc<Counters> {
        Arc::new(Counters::new())
    }

    /// Increments `metric` by one.
    #[inline]
    pub fn bump(&self, metric: Metric) {
        self.vals[metric.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Increments `metric` by `n`.
    #[inline]
    pub fn add(&self, metric: Metric, n: u64) {
        self.vals[metric.index()].fetch_add(n, Ordering::Relaxed);
    }

    /// The current total of `metric`.
    pub fn get(&self, metric: Metric) -> u64 {
        self.vals[metric.index()].load(Ordering::Relaxed)
    }

    /// Records one observation into `metric`'s histogram.
    #[inline]
    pub fn observe(&self, metric: HistMetric, value: u64) {
        self.hists[metric.index()].observe(value);
    }

    /// The named histogram.
    pub fn histogram(&self, metric: HistMetric) -> &Histogram {
        &self.hists[metric.index()]
    }

    /// All counter totals as `(name, value)` pairs in registry order.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        Metric::ALL
            .iter()
            .map(|&m| (m.name(), self.get(m)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let c = Counters::new();
        for _ in 0..5 {
            c.bump(Metric::CacheHits);
        }
        c.add(Metric::CacheHits, 10);
        assert_eq!(c.get(Metric::CacheHits), 15);
        assert_eq!(c.get(Metric::CacheMisses), 0);
    }

    #[test]
    fn snapshot_is_in_registry_order() {
        let c = Counters::new();
        c.bump(Metric::GcRuns);
        let snap = c.snapshot();
        assert_eq!(snap.len(), Metric::ALL.len());
        assert_eq!(snap[0].0, "ite_calls");
        assert_eq!(snap[5], ("gc_runs", 1));
        assert_eq!(snap[15].0, "gc_sweeps");
        assert_eq!(snap[16].0, "gc_nodes_reclaimed");
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let h = Histogram::new();
        h.observe(0);
        h.observe(1);
        h.observe(2);
        h.observe(3);
        h.observe(1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(
            h.nonzero_buckets(),
            vec![(0, 0, 1), (1, 1, 1), (2, 3, 2), (1024, 2047, 1)]
        );
    }

    #[test]
    fn shared_counters_sum_across_threads() {
        let c = Counters::shared();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.bump(Metric::IteCalls);
                    }
                });
            }
        });
        assert_eq!(c.get(Metric::IteCalls), 4000);
    }
}
