//! RAII phase spans building a deterministic per-run phase tree.
//!
//! A *phase* is a named region of work (`"two_vector_exact"`,
//! `"cone:G17"`, …). Phases nest: entering a phase while another is open
//! makes it a child. Each thread keeps its own span stack in TLS;
//! nothing is recorded until a root is installed — either by
//! [`capture`] (worker threads, one capture per cone job) or by the
//! driver's top-level `observe` wrapper.
//!
//! **Merge-on-join determinism.** Worker threads never write to a shared
//! tree. Each cone job runs under its own [`capture`]; the resulting
//! subtree travels back to the coordinating thread inside the job's
//! outcome, and the coordinator [`attach`]es the subtrees **in netlist
//! output order** after all workers join. Same-named siblings are folded
//! together (counts and effort counters add, peaks take the max), so the
//! final tree depends only on *what work ran*, never on which worker ran
//! it or when — the tree is byte-identical at every thread count.
//!
//! Wall-clock time is recorded per node but serialized into a separate
//! volatile artifact section (see [`timing_rows`]); the deterministic
//! view ([`to_value`]) omits it.
//!
//! # Example
//!
//! ```
//! use tbf_obs::phase;
//! let ((), tree) = phase::capture(|| {
//!     let _outer = phase::Phase::enter("ladder");
//!     {
//!         let _rung = phase::Phase::enter("two_vector_exact");
//!         phase::record_peak_nodes(42);
//!     }
//!     let _rung = phase::Phase::enter("two_vector_exact"); // folded in
//! });
//! assert_eq!(tree.len(), 1);
//! assert_eq!(tree[0].name, "ladder");
//! assert_eq!(tree[0].children[0].count, 2);
//! assert_eq!(tree[0].children[0].peak_nodes, 42);
//! ```

use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

use crate::json::Value;

/// One aggregated node of the phase tree.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseNode {
    /// The phase's name (stable across runs).
    pub name: String,
    /// How many spans were folded into this node.
    pub count: u64,
    /// Total wall time across the folded spans, nanoseconds.
    /// **Volatile** — excluded from the deterministic serialization.
    pub wall_ns: u64,
    /// Maximum live-BDD-node figure recorded inside any folded span.
    pub peak_nodes: u64,
    /// Budget cancellation probes consumed inside the folded spans.
    pub budget_polls: u64,
    /// Child phases, in first-entered order.
    pub children: Vec<PhaseNode>,
}

struct Frame {
    name: String,
    started: Instant,
    peak_nodes: u64,
    budget_polls: u64,
    children: Vec<PhaseNode>,
}

impl Frame {
    fn new(name: &str) -> Frame {
        Frame {
            name: name.to_owned(),
            started: Instant::now(),
            peak_nodes: 0,
            budget_polls: 0,
            children: Vec::new(),
        }
    }
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// Folds `node` into `siblings`: an existing same-named sibling absorbs
/// it (recursively), otherwise it is appended.
fn fold(siblings: &mut Vec<PhaseNode>, node: PhaseNode) {
    if let Some(existing) = siblings.iter_mut().find(|s| s.name == node.name) {
        existing.count += node.count;
        existing.wall_ns += node.wall_ns;
        existing.peak_nodes = existing.peak_nodes.max(node.peak_nodes);
        existing.budget_polls += node.budget_polls;
        for child in node.children {
            fold(&mut existing.children, child);
        }
    } else {
        siblings.push(node);
    }
}

/// An RAII phase span. Created by [`Phase::enter`]; closing (dropping)
/// the guard folds the span into its parent.
#[must_use = "a phase span records nothing unless held for the region's duration"]
pub struct Phase {
    active: bool,
    // Spans must close on the thread that opened them (TLS stack).
    _not_send: PhantomData<*const ()>,
}

impl Phase {
    /// Opens a span named `name` under the innermost open span.
    ///
    /// When no root is installed on this thread (the run is not being
    /// observed), this is a no-op returning an inert guard — the only
    /// cost is one TLS read.
    pub fn enter(name: &str) -> Phase {
        let active = STACK.with(|s| {
            let mut s = s.borrow_mut();
            if s.is_empty() {
                false
            } else {
                s.push(Frame::new(name));
                true
            }
        });
        Phase {
            active,
            _not_send: PhantomData,
        }
    }
}

impl Drop for Phase {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        STACK.with(|s| {
            let mut s = s.borrow_mut();
            // The root frame below us is popped only by its capture
            // guard, so an active span always finds its own frame.
            if s.len() < 2 {
                return;
            }
            let frame = s.pop().expect("active span has a frame");
            let node = PhaseNode {
                name: frame.name,
                count: 1,
                wall_ns: frame.started.elapsed().as_nanos() as u64,
                peak_nodes: frame.peak_nodes,
                budget_polls: frame.budget_polls,
                children: frame.children,
            };
            let parent = s.last_mut().expect("root frame remains");
            fold(&mut parent.children, node);
        });
    }
}

/// Raises the innermost open span's `peak_nodes` to at least `nodes`.
/// No-op when no span is open.
pub fn record_peak_nodes(nodes: u64) {
    STACK.with(|s| {
        if let Some(f) = s.borrow_mut().last_mut() {
            f.peak_nodes = f.peak_nodes.max(nodes);
        }
    });
}

/// Adds `polls` budget probes to the innermost open span. No-op when no
/// span is open.
pub fn record_budget_polls(polls: u64) {
    STACK.with(|s| {
        if let Some(f) = s.borrow_mut().last_mut() {
            f.budget_polls += polls;
        }
    });
}

/// Removes the capture root (and any frames orphaned above it) when `f`
/// unwinds, so a caught panic inside a captured region cannot corrupt
/// enclosing spans. Disarmed (`mem::forget`) on the normal path.
struct UnwindGuard {
    depth: usize,
}

impl Drop for UnwindGuard {
    fn drop(&mut self) {
        let depth = self.depth;
        STACK.with(|s| s.borrow_mut().truncate(depth));
    }
}

/// Runs `f` under a fresh capture root and returns its result together
/// with the phase subtree recorded on **this thread** during `f`.
///
/// Captures nest: inside an enclosing capture (or observe root) the
/// inner capture temporarily shadows it, and the caller is expected to
/// [`attach`] the returned subtree wherever determinism demands — for
/// cone jobs, on the coordinating thread in output order.
pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<PhaseNode>) {
    let depth = STACK.with(|s| {
        let mut s = s.borrow_mut();
        s.push(Frame::new("<capture>"));
        s.len() - 1
    });
    let guard = UnwindGuard { depth };
    let r = f();
    std::mem::forget(guard);
    let children = STACK.with(|s| {
        let mut s = s.borrow_mut();
        // Keep exactly our root on top, then harvest its children.
        s.truncate(depth + 1);
        match s.pop() {
            Some(root) => root.children,
            None => Vec::new(),
        }
    });
    (r, children)
}

/// Folds a previously captured subtree into the innermost open span on
/// this thread. No-op when no span is open (the run is not observed).
pub fn attach(nodes: Vec<PhaseNode>) {
    STACK.with(|s| {
        if let Some(f) = s.borrow_mut().last_mut() {
            for node in nodes {
                fold(&mut f.children, node);
            }
        }
    });
}

fn node_value(node: &PhaseNode) -> Value {
    let mut obj = vec![
        ("name".to_owned(), Value::str(&node.name)),
        ("count".to_owned(), Value::u64(node.count)),
        ("peak_nodes".to_owned(), Value::u64(node.peak_nodes)),
        ("budget_polls".to_owned(), Value::u64(node.budget_polls)),
    ];
    if !node.children.is_empty() {
        obj.push(("children".to_owned(), to_value(&node.children)));
    }
    Value::Obj(obj)
}

/// The deterministic JSON view of a phase tree: names, counts, peaks,
/// and budget polls — **no wall times**.
pub fn to_value(nodes: &[PhaseNode]) -> Value {
    Value::Arr(nodes.iter().map(node_value).collect())
}

fn push_timing(rows: &mut Vec<Value>, prefix: &str, node: &PhaseNode) {
    let path = if prefix.is_empty() {
        node.name.clone()
    } else {
        format!("{prefix}/{}", node.name)
    };
    rows.push(Value::Obj(vec![
        ("path".to_owned(), Value::str(&path)),
        ("us".to_owned(), Value::u64(node.wall_ns / 1_000)),
    ]));
    for child in &node.children {
        push_timing(rows, &path, child);
    }
}

/// The volatile wall-clock view: flat `{path, us}` rows in tree
/// (pre-)order, microsecond resolution. Serialized as the artifact's
/// trailing `timing` section, never compared across runs.
pub fn timing_rows(nodes: &[PhaseNode]) -> Value {
    let mut rows = Vec::new();
    for node in nodes {
        push_timing(&mut rows, "", node);
    }
    Value::Arr(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_outside_a_root_are_inert() {
        let g = Phase::enter("orphan");
        drop(g);
        let ((), tree) = capture(|| {});
        assert!(tree.is_empty());
    }

    #[test]
    fn nesting_and_folding() {
        let ((), tree) = capture(|| {
            for _ in 0..3 {
                let _cone = Phase::enter("cone");
                let _rung = Phase::enter("exact");
                record_budget_polls(7);
            }
        });
        assert_eq!(tree.len(), 1);
        assert_eq!(tree[0].count, 3);
        assert_eq!(tree[0].children.len(), 1);
        assert_eq!(tree[0].children[0].count, 3);
        assert_eq!(tree[0].children[0].budget_polls, 21);
    }

    #[test]
    fn attach_merges_in_call_order() {
        let ((), sub_a) = capture(|| {
            let _p = Phase::enter("a");
        });
        let ((), sub_b) = capture(|| {
            let _p = Phase::enter("b");
        });
        let ((), tree) = capture(|| {
            let _root = Phase::enter("run");
            attach(sub_b.clone());
            attach(sub_a.clone());
        });
        let names: Vec<_> = tree[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["b", "a"], "attach order decides sibling order");
    }

    #[test]
    fn capture_survives_unwinding() {
        let ((), tree) = capture(|| {
            let _outer = Phase::enter("outer");
            let caught = std::panic::catch_unwind(|| {
                let (_, _) = capture(|| {
                    let _inner = Phase::enter("inner");
                    panic!("boom");
                });
            });
            assert!(caught.is_err());
            let _after = Phase::enter("after");
        });
        assert_eq!(tree.len(), 1);
        let names: Vec<_> = tree[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["after"], "unwound capture leaves no debris");
    }

    #[test]
    fn deterministic_view_has_no_wall_times() {
        let ((), tree) = capture(|| {
            let _p = Phase::enter("p");
        });
        let v = to_value(&tree).to_string();
        assert!(v.contains("\"name\":\"p\""));
        assert!(!v.contains("wall"), "deterministic view must omit timing");
        let t = timing_rows(&tree).to_string();
        assert!(t.contains("\"path\":\"p\""));
        assert!(t.contains("\"us\":"));
    }
}
