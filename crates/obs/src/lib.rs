//! # tbf-obs — observability substrate for the TBF delay suite
//!
//! A zero-dependency metrics layer shared by every crate in the
//! workspace. It deliberately separates two kinds of telemetry:
//!
//! * **Deterministic effort counters** ([`Counters`], [`Metric`],
//!   [`Histogram`]) — lock-free atomic tallies of *logical work*
//!   (ITE calls, cache hits, nodes allocated, sift swaps). Because the
//!   engines' work is deterministic and u64 addition is commutative,
//!   counter totals are byte-identical at every thread count and every
//!   reordering policy that performs the same logical work.
//! * **Volatile timing** — wall-clock figures attached to the phase
//!   tree ([`phase`]), kept in a separate artifact section so the
//!   deterministic sections of a [`RunArtifact`] can be diffed across
//!   runs, machines, and thread counts.
//!
//! The [`phase`] module provides RAII spans
//! (`Phase::enter("two_vector_exact")`) building a per-thread tree;
//! worker threads record into a local tree via [`phase::capture`] and
//! the driver attaches each cone's tree to the main tree **in netlist
//! output order** (merge-on-join), so the tree structure is independent
//! of scheduling.
//!
//! The [`json`] module is a minimal, hand-rolled JSON value
//! (parser + stable-key-order writer) used by the [`artifact`] emitter —
//! the workspace is dependency-free by design, so no serde.
//!
//! # Example
//!
//! ```
//! use tbf_obs::{Counters, Metric};
//! let c = Counters::new();
//! c.bump(Metric::IteCalls);
//! c.add(Metric::NodesAllocated, 3);
//! assert_eq!(c.get(Metric::IteCalls), 1);
//! assert_eq!(c.get(Metric::NodesAllocated), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod counters;
pub mod diag;
pub mod json;
pub mod phase;

pub use artifact::RunArtifact;
pub use counters::{Counters, HistMetric, Histogram, Metric};
pub use json::Value;
pub use phase::{Phase, PhaseNode};
