//! Diagnostic stderr channel with a process-wide quiet switch.
//!
//! All human-facing diagnostics in the suite's binaries route through
//! [`diag!`](crate::diag!) instead of raw `eprintln!`, so `--quiet` (and
//! `--emit-metrics -`, which streams the artifact to stdout) can silence
//! them without touching machine-readable output.
//!
//! # Example
//!
//! ```
//! tbf_obs::diag::set_quiet(true);
//! tbf_obs::diag!("this line is suppressed {}", 42);
//! assert!(tbf_obs::diag::is_quiet());
//! tbf_obs::diag::set_quiet(false);
//! ```

use std::sync::atomic::{AtomicBool, Ordering};

static QUIET: AtomicBool = AtomicBool::new(false);

/// Turns diagnostic output off (`true`) or back on (`false`).
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Whether diagnostics are currently suppressed.
pub fn is_quiet() -> bool {
    QUIET.load(Ordering::Relaxed)
}

/// Writes one diagnostic line to stderr unless quieted. Prefer the
/// [`diag!`](crate::diag!) macro over calling this directly.
pub fn emit(args: std::fmt::Arguments<'_>) {
    if !is_quiet() {
        eprintln!("{args}");
    }
}

/// `eprintln!`-alike honoring [`diag::set_quiet`](set_quiet).
#[macro_export]
macro_rules! diag {
    ($($t:tt)*) => {
        $crate::diag::emit(::core::format_args!($($t)*))
    };
}
