//! Explicit path manipulation: breakpoint search and straddling-path
//! enumeration.
//!
//! The exact-delay search (paper §6.2) walks the breakpoints `{kᵢᵐᵃˣ}` —
//! the distinct maximum path lengths — in descending order, and at each
//! breakpoint `b` needs exactly the *delay-dependent* paths: those with
//! `kᵐⁱⁿ < b ≤ kᵐᵃˣ` ("straddling" the query time `t = b⁻`). Both
//! queries are answered here without global path enumeration, by
//! branch-and-bound over the netlist DAG with arrival-bound pruning —
//! this is what lets the algorithm "consider a subset of paths at one
//! time".

use std::collections::HashMap;

use crate::delay::Time;
use crate::netlist::{Netlist, NodeId};

/// A single input-to-output path, stored in forward (input-first) order.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Path {
    nodes: Vec<NodeId>,
}

impl Path {
    /// The nodes of the path, input first.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// The primary input the path starts at.
    pub fn input(&self) -> NodeId {
        self.nodes[0]
    }

    /// The output node the path ends at.
    pub fn output(&self) -> NodeId {
        *self.nodes.last().expect("paths are non-empty")
    }

    /// The gates along the path (every node except the leading input).
    pub fn gates(&self) -> &[NodeId] {
        &self.nodes[1..]
    }

    /// Sum of maximum gate delays along the path (`kᵐᵃˣ`).
    pub fn length_max(&self, netlist: &Netlist) -> Time {
        self.gates()
            .iter()
            .map(|g| netlist.node(*g).delay().max)
            .sum()
    }

    /// Sum of minimum gate delays along the path (`kᵐⁱⁿ`).
    pub fn length_min(&self, netlist: &Netlist) -> Time {
        self.gates()
            .iter()
            .map(|g| netlist.node(*g).delay().min)
            .sum()
    }

    /// True if the path straddles the query point `t = b⁻`:
    /// `kᵐⁱⁿ < b ≤ kᵐᵃˣ`.
    pub fn straddles(&self, netlist: &Netlist, b: Time) -> bool {
        self.length_min(netlist) < b && b <= self.length_max(netlist)
    }
}

/// The straddling-path cap was exceeded; the exact answer would require
/// expanding more simultaneously delay-dependent paths than allowed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PathLimitExceeded {
    /// The configured cap that was hit.
    pub limit: usize,
}

impl std::fmt::Display for PathLimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "more than {} simultaneously delay-dependent paths",
            self.limit
        )
    }
}

impl std::error::Error for PathLimitExceeded {}

/// Largest maximum path length to `output` strictly below `below`
/// (the "next `Kᵢᵐᵃˣ`" of the search loop), or `None` if no path is
/// shorter.
///
/// Runs in (memoized) time proportional to the number of distinct
/// `(node, residual)` pairs actually reachable — near-critical regions
/// only, never a full path enumeration.
///
/// # Example
///
/// ```
/// use tbf_logic::{GateKind, Netlist, DelayBounds, Time};
/// use tbf_logic::paths::next_breakpoint;
///
/// let mut b = Netlist::builder();
/// let a = b.input("a");
/// let d = |x| DelayBounds::fixed(Time::from_int(x));
/// let g1 = b.gate(GateKind::Buf, "g1", vec![a], d(5))?;
/// let g2 = b.gate(GateKind::Not, "g2", vec![a], d(2))?;
/// let g3 = b.gate(GateKind::And, "g3", vec![g1, g2], d(1))?;
/// b.output("f", g3);
/// let n = b.finish()?;
/// let out = n.find("g3").unwrap();
/// // Path lengths: 6 (via g1) and 3 (via g2).
/// assert_eq!(next_breakpoint(&n, out, Time::from_int(100)), Some(Time::from_int(6)));
/// assert_eq!(next_breakpoint(&n, out, Time::from_int(6)), Some(Time::from_int(3)));
/// assert_eq!(next_breakpoint(&n, out, Time::from_int(3)), None);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn next_breakpoint(netlist: &Netlist, output: NodeId, below: Time) -> Option<Time> {
    Breakpoints::from_output(netlist, output).next_below(below)
}

/// The descending sweep through a cone's distinct maximum path lengths
/// `{Kᵢᵐᵃˣ}` — the shared breakpoint enumeration every delay model
/// walks.
///
/// Construct one per analyzed output and reuse it for the whole sweep:
/// the arrival profile is computed once and the `(node, residual)` memo
/// persists across queries, so descending through all breakpoints costs
/// one memoized traversal total instead of one per step.
///
/// The iterator protocol yields the breakpoints in strictly descending
/// order starting from the longest path; [`next_below`] answers the
/// same question from an arbitrary starting point.
///
/// [`next_below`]: Breakpoints::next_below
///
/// # Example
///
/// ```
/// use tbf_logic::generators::figures::figure1_three_paths;
/// use tbf_logic::paths::Breakpoints;
/// use tbf_logic::Time;
///
/// let n = figure1_three_paths();
/// let out = n.outputs()[0].1;
/// let ks: Vec<Time> = Breakpoints::from_output(&n, out).collect();
/// assert!(ks.windows(2).all(|w| w[0] > w[1]), "strictly descending");
/// assert_eq!(ks[0], n.topological_delay(), "starts at the longest path");
/// ```
#[derive(Debug)]
pub struct Breakpoints<'a> {
    netlist: &'a Netlist,
    sweep: BreakpointSweep,
    cursor: Time,
}

impl<'a> Breakpoints<'a> {
    /// A sweep over the distinct max path lengths of `output`'s cone.
    pub fn from_output(netlist: &'a Netlist, output: NodeId) -> Breakpoints<'a> {
        Breakpoints {
            netlist,
            sweep: BreakpointSweep::new(netlist, output),
            cursor: Time::MAX,
        }
    }

    /// Largest maximum path length strictly below `below`, or `None`
    /// if no path is shorter. Does not move the iterator cursor.
    pub fn next_below(&mut self, below: Time) -> Option<Time> {
        self.sweep.next_below(self.netlist, below)
    }
}

/// The borrow-free state of a [`Breakpoints`] sweep: the arrival
/// profile and the `(node, residual)` memo, without the netlist
/// reference. Callers that own the netlist behind an `Arc` (the
/// per-cone engine contexts, which must outlive any one request in
/// service mode) hold this and pass the netlist back in per query.
///
/// Every call must pass the netlist the sweep was built from; the memo
/// is meaningless against any other netlist.
#[derive(Debug)]
pub struct BreakpointSweep {
    output: NodeId,
    pmax: Vec<Time>,
    memo: HashMap<(NodeId, Time), Option<Time>>,
}

impl BreakpointSweep {
    /// The sweep state for `output`'s cone in `netlist`.
    pub fn new(netlist: &Netlist, output: NodeId) -> BreakpointSweep {
        BreakpointSweep {
            output,
            pmax: netlist.arrivals(false, true),
            memo: HashMap::new(),
        }
    }

    /// Largest maximum path length strictly below `below`, or `None`
    /// if no path is shorter.
    pub fn next_below(&mut self, netlist: &Netlist, below: Time) -> Option<Time> {
        self.go(netlist, self.output, below)
    }

    // Longest arrival (including `n`'s own delay) strictly below
    // `residual`.
    fn go(&mut self, netlist: &Netlist, n: NodeId, residual: Time) -> Option<Time> {
        if self.pmax[n.index()] < residual {
            return Some(self.pmax[n.index()]);
        }
        if let Some(&r) = self.memo.get(&(n, residual)) {
            return r;
        }
        let node = netlist.node(n);
        let d = node.delay().max;
        let mut best: Option<Time> = None;
        if node.fanins().is_empty() {
            // A source with arrival 0 ≥ residual: no path below residual.
            self.memo.insert((n, residual), None);
            return None;
        }
        for &f in node.fanins() {
            if let Some(sub) = self.go(netlist, f, residual - d) {
                let total = sub + d;
                best = Some(best.map_or(total, |b: Time| b.max(total)));
            }
        }
        self.memo.insert((n, residual), best);
        best
    }
}

impl Iterator for Breakpoints<'_> {
    type Item = Time;

    fn next(&mut self) -> Option<Time> {
        let below = self.cursor;
        let k = self.next_below(below)?;
        self.cursor = k;
        Some(k)
    }
}

/// Largest maximum path length over **all** outputs strictly below
/// `below`.
pub fn next_breakpoint_all(netlist: &Netlist, below: Time) -> Option<Time> {
    netlist
        .outputs()
        .iter()
        .filter_map(|&(_, out)| next_breakpoint(netlist, out, below))
        .max()
}

/// Enumerates the paths to `output` that straddle the query point
/// `t = b⁻` (`kᵐⁱⁿ < b ≤ kᵐᵃˣ`) — the delay-dependent paths of the TBF
/// network at that time.
///
/// # Errors
///
/// Returns [`PathLimitExceeded`] if more than `limit` straddling paths
/// exist; the caller (the delay engine) surfaces this as a typed,
/// bounded-but-not-exact result rather than silently truncating.
pub fn straddling_paths(
    netlist: &Netlist,
    output: NodeId,
    b: Time,
    limit: usize,
) -> Result<Vec<Path>, PathLimitExceeded> {
    let pmax = netlist.arrivals(false, true);
    let pmin = netlist.arrivals(true, false);
    let mut out_paths = Vec::new();
    // DFS from the output toward the inputs. `suffix` holds the nodes
    // popped so far (output-first); `acc_*` the delay sums of the gates
    // strictly after the current node.
    struct Dfs<'a> {
        netlist: &'a Netlist,
        pmax: &'a [Time],
        pmin: &'a [Time],
        b: Time,
        limit: usize,
        stack_nodes: Vec<NodeId>,
    }
    impl Dfs<'_> {
        fn visit(
            &mut self,
            n: NodeId,
            acc_min: Time,
            acc_max: Time,
            out: &mut Vec<Path>,
        ) -> Result<(), PathLimitExceeded> {
            // Prune: no completion can reach kᵐᵃˣ ≥ b.
            if acc_max + self.pmax[n.index()] < self.b {
                return Ok(());
            }
            // Prune: every completion has kᵐⁱⁿ ≥ b.
            if acc_min + self.pmin[n.index()] >= self.b {
                return Ok(());
            }
            self.stack_nodes.push(n);
            let node = self.netlist.node(n);
            if node.fanins().is_empty() {
                // Totals are exactly the accumulators.
                if acc_min < self.b && self.b <= acc_max {
                    if out.len() >= self.limit {
                        return Err(PathLimitExceeded { limit: self.limit });
                    }
                    let mut nodes = self.stack_nodes.clone();
                    nodes.reverse();
                    out.push(Path { nodes });
                }
            } else {
                let d = node.delay();
                for &f in node.fanins() {
                    self.visit(f, acc_min + d.min, acc_max + d.max, out)?;
                }
            }
            self.stack_nodes.pop();
            Ok(())
        }
    }
    let mut dfs = Dfs {
        netlist,
        pmax: &pmax,
        pmin: &pmin,
        b,
        limit,
        stack_nodes: Vec::new(),
    };
    dfs.visit(output, Time::ZERO, Time::ZERO, &mut out_paths)?;
    Ok(out_paths)
}

/// Enumerates **all** input-to-`output` paths, up to `limit`.
///
/// Exponential in general — intended for tests and small circuits.
///
/// # Errors
///
/// Returns [`PathLimitExceeded`] beyond `limit` paths.
pub fn all_paths(
    netlist: &Netlist,
    output: NodeId,
    limit: usize,
) -> Result<Vec<Path>, PathLimitExceeded> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    fn go(
        netlist: &Netlist,
        n: NodeId,
        stack: &mut Vec<NodeId>,
        out: &mut Vec<Path>,
        limit: usize,
    ) -> Result<(), PathLimitExceeded> {
        stack.push(n);
        if netlist.node(n).fanins().is_empty() {
            if out.len() >= limit {
                return Err(PathLimitExceeded { limit });
            }
            let mut nodes = stack.clone();
            nodes.reverse();
            out.push(Path { nodes });
        } else {
            for &f in netlist.node(n).fanins() {
                go(netlist, f, stack, out, limit)?;
            }
        }
        stack.pop();
        Ok(())
    }
    go(netlist, output, &mut stack, &mut out, limit)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayBounds;
    use crate::gate::GateKind;

    fn d(lo: i64, hi: i64) -> DelayBounds {
        DelayBounds::new(Time::from_int(lo), Time::from_int(hi))
    }

    fn t(x: i64) -> Time {
        Time::from_int(x)
    }

    /// Diamond with bounds: g1 ∈ [1,2], g2 ∈ [3,5], g3 ∈ [1,1].
    fn diamond() -> Netlist {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let g1 = b.gate(GateKind::Buf, "g1", vec![a], d(1, 2)).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", vec![a], d(3, 5)).unwrap();
        let g3 = b.gate(GateKind::And, "g3", vec![g1, g2], d(1, 1)).unwrap();
        b.output("f", g3);
        b.finish().unwrap()
    }

    #[test]
    fn all_paths_enumeration() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        let ps = all_paths(&n, out, 100).unwrap();
        assert_eq!(ps.len(), 2);
        for p in &ps {
            assert_eq!(p.input(), n.find("a").unwrap());
            assert_eq!(p.output(), out);
            assert_eq!(p.gates().len(), 2);
        }
        let lens: Vec<_> = ps.iter().map(|p| p.length_max(&n)).collect();
        assert!(lens.contains(&t(3)));
        assert!(lens.contains(&t(6)));
    }

    #[test]
    fn all_paths_limit() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        assert_eq!(all_paths(&n, out, 1), Err(PathLimitExceeded { limit: 1 }));
    }

    #[test]
    fn breakpoints_descend_through_distinct_kmax() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        assert_eq!(next_breakpoint(&n, out, Time::MAX), Some(t(6)));
        assert_eq!(next_breakpoint(&n, out, t(6)), Some(t(3)));
        assert_eq!(next_breakpoint(&n, out, t(3)), None);
        assert_eq!(next_breakpoint_all(&n, t(6)), Some(t(3)));
    }

    #[test]
    fn breakpoint_sweep_matches_one_shot_queries() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        let mut sweep = Breakpoints::from_output(&n, out);
        assert_eq!(sweep.next_below(Time::MAX), Some(t(6)));
        assert_eq!(sweep.next_below(t(6)), Some(t(3)));
        assert_eq!(sweep.next_below(t(3)), None);
        // `next_below` never moves the iterator cursor.
        let collected: Vec<Time> = Breakpoints::from_output(&n, out).collect();
        assert_eq!(collected, vec![t(6), t(3)]);
    }

    /// The sweep on the paper's figure circuits agrees, breakpoint by
    /// breakpoint, with the memo-per-call `next_breakpoint`, and
    /// descends strictly from the cone's longest path.
    #[test]
    fn breakpoint_sweep_agrees_on_paper_figures() {
        use crate::generators::figures::{
            figure1_three_paths, figure4_example3, figure5_example4, figure6_glitch,
        };
        for n in [
            figure1_three_paths(),
            figure4_example3(),
            figure5_example4(),
            figure6_glitch(),
        ] {
            for &(ref name, out) in n.outputs() {
                let swept: Vec<Time> = Breakpoints::from_output(&n, out).collect();
                let mut stepped = Vec::new();
                let mut below = Time::MAX;
                while let Some(k) = next_breakpoint(&n, out, below) {
                    stepped.push(k);
                    below = k;
                }
                assert_eq!(swept, stepped, "{name}: sweep disagrees with one-shots");
                assert!(
                    swept.windows(2).all(|w| w[0] > w[1]),
                    "{name}: not strictly descending: {swept:?}"
                );
                assert_eq!(
                    swept.first().copied(),
                    Some(n.arrivals(false, true)[out.index()]),
                    "{name}: first breakpoint must be the cone's longest path"
                );
            }
        }
    }

    #[test]
    fn breakpoints_match_brute_force_on_multi_level() {
        // 3 stages of 2-way diamonds → 8 paths with various lengths.
        let mut b = Netlist::builder();
        let mut cur = b.input("a");
        let ds = [(1, 2), (2, 3), (4, 7)];
        for (i, &(lo, hi)) in ds.iter().enumerate() {
            let g1 = b
                .gate(GateKind::Buf, &format!("u{i}"), vec![cur], d(lo, lo))
                .unwrap();
            let g2 = b
                .gate(GateKind::Not, &format!("v{i}"), vec![cur], d(hi, hi))
                .unwrap();
            cur = b
                .gate(GateKind::Or, &format!("m{i}"), vec![g1, g2], d(1, 1))
                .unwrap();
        }
        b.output("f", cur);
        let n = b.finish().unwrap();
        let out = n.find("m2").unwrap();
        // Brute-force distinct kmax values.
        let mut lens: Vec<Time> = all_paths(&n, out, 1000)
            .unwrap()
            .iter()
            .map(|p| p.length_max(&n))
            .collect();
        lens.sort_unstable();
        lens.dedup();
        lens.reverse();
        let mut cur = Time::MAX;
        for &expect in &lens {
            let got = next_breakpoint(&n, out, cur).unwrap();
            assert_eq!(got, expect);
            cur = got;
        }
        assert_eq!(next_breakpoint(&n, out, cur), None);
    }

    #[test]
    fn straddling_paths_basic() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        // Path lengths: via g1 [2,3], via g2 [4,6].
        // b=6 (t=6⁻): straddles iff kmin<6≤kmax → only the g2 path.
        let ps = straddling_paths(&n, out, t(6), 10).unwrap();
        assert_eq!(ps.len(), 1);
        assert!(ps[0].nodes().iter().any(|&id| n.node(id).name() == "g2"));
        // b=3: g1 path [2,3] straddles (2<3≤3); g2 path kmin=4 ≥ 3 doesn't.
        let ps = straddling_paths(&n, out, t(3), 10).unwrap();
        assert_eq!(ps.len(), 1);
        assert!(ps[0].nodes().iter().any(|&id| n.node(id).name() == "g1"));
        // b=10: nothing reaches kmax ≥ 10.
        assert!(straddling_paths(&n, out, t(10), 10).unwrap().is_empty());
    }

    #[test]
    fn straddling_agrees_with_brute_force() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        let all = all_paths(&n, out, 100).unwrap();
        for b in 1..9 {
            let b = t(b);
            let fast = straddling_paths(&n, out, b, 100).unwrap();
            let slow: Vec<_> = all.iter().filter(|p| p.straddles(&n, b)).cloned().collect();
            assert_eq!(fast.len(), slow.len(), "at b={b:?}");
            for p in &slow {
                assert!(fast.contains(p), "missing {p:?} at b={b:?}");
            }
        }
    }

    #[test]
    fn straddling_limit_error() {
        // Many identical-straddle paths: wide AND of buffers.
        let mut b = Netlist::builder();
        let a = b.input("a");
        let mut bufs = Vec::new();
        for i in 0..8 {
            bufs.push(
                b.gate(GateKind::Buf, &format!("b{i}"), vec![a], d(1, 3))
                    .unwrap(),
            );
        }
        let g = b.gate(GateKind::And, "g", bufs, d(1, 1)).unwrap();
        b.output("f", g);
        let n = b.finish().unwrap();
        let out = n.find("g").unwrap();
        let r = straddling_paths(&n, out, t(3), 4);
        assert_eq!(r, Err(PathLimitExceeded { limit: 4 }));
        assert_eq!(straddling_paths(&n, out, t(3), 8).unwrap().len(), 8);
    }

    #[test]
    fn path_length_helpers() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        let ps = all_paths(&n, out, 10).unwrap();
        let long = ps.iter().find(|p| p.length_max(&n) == t(6)).unwrap();
        assert_eq!(long.length_min(&n), t(4));
        assert!(long.straddles(&n, t(5)));
        assert!(!long.straddles(&n, t(4))); // kmin = 4 not < 4
        assert!(!long.straddles(&n, t(7))); // kmax = 6 < 7
    }
}
