//! Gate kinds and their Boolean semantics.

use std::fmt;

/// The kind of a netlist node.
///
/// All standard-cell primitives used by the ISCAS-85 benchmarks are
/// covered; `And`/`Or`/`Nand`/`Nor`/`Xor`/`Xnor` are n-ary (n ≥ 1),
/// `Not`/`Buf` are unary, constants are nullary.
///
/// # Example
///
/// ```
/// use tbf_logic::GateKind;
/// assert_eq!(GateKind::Nand.eval(&[true, true]), false);
/// assert_eq!(GateKind::Xor.eval(&[true, false, true]), false); // parity
/// assert_eq!(GateKind::And.controlling_value(), Some(false));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum GateKind {
    /// A primary input (no fanins, no delay).
    Input,
    /// N-ary conjunction.
    And,
    /// N-ary disjunction.
    Or,
    /// N-ary negated conjunction.
    Nand,
    /// N-ary negated disjunction.
    Nor,
    /// N-ary parity (odd number of true inputs).
    Xor,
    /// N-ary negated parity.
    Xnor,
    /// Inverter.
    Not,
    /// Non-inverting buffer.
    Buf,
    /// 3-input majority (the full-adder carry function `ab + ac + bc`).
    Maj,
    /// 2:1 multiplexer with pin order `(s, d0, d1)`: `s̄·d0 + s·d1`.
    Mux,
    /// Constant false.
    Const0,
    /// Constant true.
    Const1,
}

impl GateKind {
    /// Evaluates the gate on concrete input values.
    ///
    /// # Panics
    ///
    /// Panics if the number of inputs is invalid for the kind (see
    /// [`valid_arity`](Self::valid_arity)).
    pub fn eval(self, inputs: &[bool]) -> bool {
        assert!(
            self.valid_arity(inputs.len()),
            "{self} cannot take {} inputs",
            inputs.len()
        );
        match self {
            GateKind::Input => unreachable!("inputs are not evaluated"),
            GateKind::And => inputs.iter().all(|&b| b),
            GateKind::Or => inputs.iter().any(|&b| b),
            GateKind::Nand => !inputs.iter().all(|&b| b),
            GateKind::Nor => !inputs.iter().any(|&b| b),
            GateKind::Xor => inputs.iter().filter(|&&b| b).count() % 2 == 1,
            GateKind::Xnor => inputs.iter().filter(|&&b| b).count() % 2 == 0,
            GateKind::Not => !inputs[0],
            GateKind::Buf => inputs[0],
            GateKind::Maj => {
                let ones = inputs.iter().filter(|&&b| b).count();
                ones >= 2
            }
            GateKind::Mux => {
                if inputs[0] {
                    inputs[2]
                } else {
                    inputs[1]
                }
            }
            GateKind::Const0 => false,
            GateKind::Const1 => true,
        }
    }

    /// True if a node of this kind may have `n` fanins.
    pub fn valid_arity(self, n: usize) -> bool {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => n == 0,
            GateKind::Not | GateKind::Buf => n == 1,
            GateKind::Maj | GateKind::Mux => n == 3,
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => n >= 1,
        }
    }

    /// The controlling input value of the gate, if it has one (a value
    /// that determines the output regardless of the other inputs).
    ///
    /// `And`/`Nand` → `false`; `Or`/`Nor` → `true`; parity gates, buffers
    /// and inverters have none.
    pub fn controlling_value(self) -> Option<bool> {
        match self {
            GateKind::And | GateKind::Nand => Some(false),
            GateKind::Or | GateKind::Nor => Some(true),
            _ => None,
        }
    }

    /// True if the gate inverts (its output with all-non-controlling
    /// single input toggles against that input): `Not`, `Nand`, `Nor`,
    /// `Xnor`.
    pub fn is_inverting(self) -> bool {
        matches!(
            self,
            GateKind::Not | GateKind::Nand | GateKind::Nor | GateKind::Xnor
        )
    }

    /// True for `Input`.
    pub fn is_input(self) -> bool {
        self == GateKind::Input
    }

    /// True for the two constant kinds.
    pub fn is_constant(self) -> bool {
        matches!(self, GateKind::Const0 | GateKind::Const1)
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "INPUT",
            GateKind::And => "AND",
            GateKind::Or => "OR",
            GateKind::Nand => "NAND",
            GateKind::Nor => "NOR",
            GateKind::Xor => "XOR",
            GateKind::Xnor => "XNOR",
            GateKind::Not => "NOT",
            GateKind::Buf => "BUF",
            GateKind::Maj => "MAJ",
            GateKind::Mux => "MUX",
            GateKind::Const0 => "CONST0",
            GateKind::Const1 => "CONST1",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truth_tables_binary() {
        let cases = [
            (GateKind::And, [false, false, false, true]),
            (GateKind::Or, [false, true, true, true]),
            (GateKind::Nand, [true, true, true, false]),
            (GateKind::Nor, [true, false, false, false]),
            (GateKind::Xor, [false, true, true, false]),
            (GateKind::Xnor, [true, false, false, true]),
        ];
        for (kind, expect) in cases {
            for (i, &e) in expect.iter().enumerate() {
                let a = [(i & 1) != 0, (i & 2) != 0];
                assert_eq!(kind.eval(&a), e, "{kind} on {a:?}");
            }
        }
    }

    #[test]
    fn nary_gates() {
        assert!(GateKind::And.eval(&[true, true, true]));
        assert!(!GateKind::And.eval(&[true, false, true]));
        assert!(GateKind::Or.eval(&[false, false, true]));
        assert!(GateKind::Xor.eval(&[true, true, true])); // odd parity
        assert!(!GateKind::Xnor.eval(&[true, true, true]));
        assert!(GateKind::And.eval(&[true])); // unary degenerate
    }

    #[test]
    fn maj_and_mux() {
        // Majority truth table.
        for i in 0..8u8 {
            let a = [(i & 1) != 0, (i & 2) != 0, (i & 4) != 0];
            let ones = a.iter().filter(|&&b| b).count();
            assert_eq!(GateKind::Maj.eval(&a), ones >= 2, "{a:?}");
        }
        // Mux: (s, d0, d1).
        assert!(!GateKind::Mux.eval(&[false, false, true]));
        assert!(GateKind::Mux.eval(&[false, true, false]));
        assert!(GateKind::Mux.eval(&[true, false, true]));
        assert!(!GateKind::Mux.eval(&[true, true, false]));
        assert!(GateKind::Maj.valid_arity(3));
        assert!(!GateKind::Maj.valid_arity(2));
        assert!(!GateKind::Mux.valid_arity(4));
        assert_eq!(GateKind::Maj.controlling_value(), None);
        assert_eq!(GateKind::Mux.to_string(), "MUX");
    }

    #[test]
    fn unary_and_const() {
        assert!(GateKind::Not.eval(&[false]));
        assert!(GateKind::Buf.eval(&[true]));
        assert!(!GateKind::Const0.eval(&[]));
        assert!(GateKind::Const1.eval(&[]));
    }

    #[test]
    fn arity_validation() {
        assert!(GateKind::Not.valid_arity(1));
        assert!(!GateKind::Not.valid_arity(2));
        assert!(!GateKind::And.valid_arity(0));
        assert!(GateKind::And.valid_arity(9));
        assert!(GateKind::Input.valid_arity(0));
        assert!(!GateKind::Input.valid_arity(1));
    }

    #[test]
    #[should_panic(expected = "cannot take")]
    fn bad_arity_panics() {
        let _ = GateKind::Not.eval(&[true, false]);
    }

    #[test]
    fn controlling_values() {
        assert_eq!(GateKind::And.controlling_value(), Some(false));
        assert_eq!(GateKind::Nand.controlling_value(), Some(false));
        assert_eq!(GateKind::Or.controlling_value(), Some(true));
        assert_eq!(GateKind::Nor.controlling_value(), Some(true));
        assert_eq!(GateKind::Xor.controlling_value(), None);
        assert_eq!(GateKind::Buf.controlling_value(), None);
    }

    #[test]
    fn classification_helpers() {
        assert!(GateKind::Nand.is_inverting());
        assert!(!GateKind::And.is_inverting());
        assert!(GateKind::Input.is_input());
        assert!(GateKind::Const1.is_constant());
        assert!(!GateKind::Buf.is_constant());
    }

    #[test]
    fn display_names() {
        assert_eq!(GateKind::Nand.to_string(), "NAND");
        assert_eq!(GateKind::Input.to_string(), "INPUT");
    }
}
