//! The exact circuits of the paper's figures, with the figure's delay
//! annotations, for one-to-one reproduction of the worked examples.

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;
use crate::netlist::Netlist;

pub use crate::generators::adders::paper_bypass_adder as figure7_bypass_adder;

fn d(lo: i64, hi: i64) -> DelayBounds {
    DelayBounds::new(Time::from_int(lo), Time::from_int(hi))
}

/// Figure 1 / Example 1: three reconvergent paths into an AND gate.
///
/// `P1` is a buffer with bounds `[4,5]`, `P2` an inverter `[1,2]`, `P3`
/// a buffer `[1,2]`; the AND output is the single PO. Sensitizing `P1`
/// for a falling input transition needs `|P3| > |P1|` and `|P2| < |P1|`,
/// which the bounds make *topologically infeasible* — the example
/// motivating the realizability (LP) step of exact delay computation.
///
/// Inputs in order: `x1` (P1), `x2` (P2), `x3` (P3).
pub fn figure1_three_paths() -> Netlist {
    let mut b = Netlist::builder();
    let x1 = b.input("x1");
    let x2 = b.input("x2");
    let x3 = b.input("x3");
    let p1 = b
        .gate(GateKind::Buf, "p1", vec![x1], d(4, 5))
        .expect("figure names are unique");
    let p2 = b
        .gate(GateKind::Not, "p2", vec![x2], d(1, 2))
        .expect("figure names are unique");
    let p3 = b
        .gate(GateKind::Buf, "p3", vec![x3], d(1, 2))
        .expect("figure names are unique");
    let g = b
        .gate(GateKind::And, "g", vec![p1, p2, p3], DelayBounds::ZERO)
        .expect("figure names are unique");
    b.output("f", g);
    b.finish().expect("figure has an output")
}

/// Figure 4 / Example 3: `f = a + a·b` through two gates with delays in
/// `[1,2]`.
///
/// The TBF is `f(t) = a(t−d₂) + a(t−d₁−d₂)·b(t−d₁−d₂)`; the mixed
/// Boolean LP of the example has maximum `t = 4`, which is also the
/// topological length — the exact 2-vector delay is **4**.
///
/// Inputs in order: `a`, `b`. Gate `g1` is the AND (delay `d₁`), `g2`
/// the OR (delay `d₂`).
pub fn figure4_example3() -> Netlist {
    let mut b = Netlist::builder();
    let a = b.input("a");
    let bb = b.input("b");
    let g1 = b
        .gate(GateKind::And, "g1", vec![a, bb], d(1, 2))
        .expect("figure names are unique");
    let g2 = b
        .gate(GateKind::Or, "g2", vec![a, g1], d(1, 2))
        .expect("figure names are unique");
    b.output("f", g2);
    b.finish().expect("figure has an output")
}

/// Figure 5 / Example 4: the five-gate network whose TBF network at
/// `t = 2.8` splits paths into positive / negative / delay-dependent
/// groups. Every gate has delay `[0.9, 1.0]`.
///
/// Paths (by gate sets): `A–g1–g2–g3–g5` (min 3.6 → negative at 2.8),
/// `A–g1–g2–g5` and `B–g2–g3–g5` (straddle 2.8 → delay-dependent),
/// `B–g2–g5`, `B–g4–g5` (max ≤ 2 → positive).
pub fn figure5_example4() -> Netlist {
    let dd = DelayBounds::new(Time::from_units(0.9), Time::from_int(1));
    let mut b = Netlist::builder();
    let a = b.input("A");
    let bb = b.input("B");
    let g1 = b
        .gate(GateKind::Buf, "g1", vec![a], dd)
        .expect("figure names are unique");
    let g2 = b
        .gate(GateKind::And, "g2", vec![g1, bb], dd)
        .expect("figure names are unique");
    let g3 = b
        .gate(GateKind::Not, "g3", vec![g2], dd)
        .expect("figure names are unique");
    let g4 = b
        .gate(GateKind::Buf, "g4", vec![bb], dd)
        .expect("figure names are unique");
    let g5 = b
        .gate(GateKind::Or, "g5", vec![g2, g3, g4], dd)
        .expect("figure names are unique");
    b.output("f", g5);
    b.finish().expect("figure has an output")
}

/// Figure 6 / Example 5: buffer and inverter feeding an AND — nodes `b`
/// and `c` always settle to opposite values, so the static output is 0.
///
/// With **fixed** unit delays the output never moves (delay by sequences
/// of vectors = 0) while the floating delay is 2; with variable delays
/// the two coincide (Theorem 2). Built here with fixed delays; use
/// [`Netlist::map_delays`] to relax them.
pub fn figure6_glitch() -> Netlist {
    let fixed = DelayBounds::fixed(Time::from_int(1));
    let mut b = Netlist::builder();
    let x = b.input("a");
    let buf = b
        .gate(GateKind::Buf, "b", vec![x], fixed)
        .expect("figure names are unique");
    let inv = b
        .gate(GateKind::Not, "c", vec![x], fixed)
        .expect("figure names are unique");
    let g = b
        .gate(GateKind::And, "g", vec![buf, inv], fixed)
        .expect("figure names are unique");
    b.output("f", g);
    b.finish().expect("figure has an output")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paths::all_paths;

    #[test]
    fn figure1_shape() {
        let n = figure1_three_paths();
        assert_eq!(n.inputs().len(), 3);
        assert_eq!(n.gate_count(), 4);
        // f = x1 · !x2 · x3 statically.
        assert_eq!(n.evaluate_outputs(&[true, false, true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[true, true, true]), vec![false]);
        // Bounds make |P3| > |P1| impossible: max(P3)=2 < min(P1)=4.
        let p1 = n.find("p1").unwrap();
        let p3 = n.find("p3").unwrap();
        assert!(n.node(p3).delay().max < n.node(p1).delay().min);
    }

    #[test]
    fn figure4_statics() {
        let n = figure4_example3();
        // f = a + a·b = a.
        for a in [false, true] {
            for bb in [false, true] {
                assert_eq!(n.evaluate_outputs(&[a, bb]), vec![a]);
            }
        }
        assert_eq!(n.topological_delay(), Time::from_int(4));
    }

    #[test]
    fn figure5_path_classification_at_2_8() {
        let n = figure5_example4();
        let out = n.find("g5").unwrap();
        let t28 = Time::from_units(2.8);
        let paths = all_paths(&n, out, 100).unwrap();
        assert_eq!(paths.len(), 5);
        let mut negative = 0;
        let mut straddle = 0;
        let mut positive = 0;
        for p in &paths {
            if p.length_min(&n) >= t28 {
                negative += 1;
            } else if p.length_max(&n) < t28 {
                positive += 1;
            } else {
                straddle += 1;
            }
        }
        assert_eq!(negative, 1, "A–g1–g2–g3–g5 (min 3.6)");
        assert_eq!(straddle, 2, "A–g1–g2–g5 and B–g2–g3–g5");
        assert_eq!(positive, 2, "B–g2–g5 and B–g4–g5");
    }

    #[test]
    fn figure6_static_zero() {
        let n = figure6_glitch();
        assert_eq!(n.evaluate_outputs(&[false]), vec![false]);
        assert_eq!(n.evaluate_outputs(&[true]), vec![false]);
        assert_eq!(n.topological_delay(), Time::from_int(2));
        // Gates are fixed-delay as built.
        let g = n.find("g").unwrap();
        assert!(!n.node(g).delay().is_variable());
    }

    #[test]
    fn figure7_reexport() {
        let n = figure7_bypass_adder();
        assert_eq!(n.topological_delay(), Time::from_int(40));
    }
}
