//! Datapath generators: array multiplier, decoder and barrel shifter.
//!
//! The array multiplier is the structure of ISCAS-85's C6288 — the one
//! benchmark the paper's evaluation *could not complete* ("all ISCAS
//! benchmark circuits (except C6188 \[sic\])"): its reconvergent
//! carry-save mesh has astronomically many near-critical paths. Small
//! instances are exactly analyzable here; larger ones reproduce the
//! paper's exclusion honestly via the typed resource-cap errors.

use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// An `n × n` carry-save array multiplier (the C6288 structure):
/// AND-gate partial products, rows of full adders, ripple final row.
/// Product outputs `p0..p(2n-1)`. Uniform delay bounds on every gate.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use tbf_logic::generators::datapath::array_multiplier;
/// use tbf_logic::{DelayBounds, Time};
/// let m = array_multiplier(3, DelayBounds::fixed(Time::from_int(1)));
/// assert_eq!(m.inputs().len(), 6);
/// assert_eq!(m.outputs().len(), 6);
/// ```
pub fn array_multiplier(n: usize, delay: DelayBounds) -> Netlist {
    assert!(n > 0, "multiplier needs at least one bit");
    let mut b = Netlist::builder();
    let a: Vec<NodeId> = (0..n).map(|i| b.input(&format!("a{i}"))).collect();
    let y: Vec<NodeId> = (0..n).map(|i| b.input(&format!("b{i}"))).collect();

    // Partial products pp[i][j] = a_i · b_j.
    let mut pp: Vec<Vec<NodeId>> = Vec::with_capacity(n);
    for (i, &ai) in a.iter().enumerate() {
        let mut row = Vec::with_capacity(n);
        for (j, &yj) in y.iter().enumerate() {
            row.push(
                b.gate(GateKind::And, &format!("pp{i}_{j}"), vec![ai, yj], delay)
                    .expect("generator names are unique"),
            );
        }
        pp.push(row);
    }

    // Carry-save reduction, row by row: row r sums pp[.][r] into the
    // running partial sums. sums[k] holds the current bit of weight k.
    let full_adder = |b: &mut crate::netlist::NetlistBuilder,
                      name: &str,
                      x: NodeId,
                      yv: NodeId,
                      z: NodeId|
     -> (NodeId, NodeId) {
        let x1 = b
            .gate(GateKind::Xor, &format!("{name}_x1"), vec![x, yv], delay)
            .expect("generator names are unique");
        let s = b
            .gate(GateKind::Xor, &format!("{name}_s"), vec![x1, z], delay)
            .expect("generator names are unique");
        let c = b
            .gate(GateKind::Maj, &format!("{name}_c"), vec![x, yv, z], delay)
            .expect("generator names are unique");
        (s, c)
    };
    let half_adder = |b: &mut crate::netlist::NetlistBuilder,
                      name: &str,
                      x: NodeId,
                      yv: NodeId|
     -> (NodeId, NodeId) {
        let s = b
            .gate(GateKind::Xor, &format!("{name}_s"), vec![x, yv], delay)
            .expect("generator names are unique");
        let c = b
            .gate(GateKind::And, &format!("{name}_c"), vec![x, yv], delay)
            .expect("generator names are unique");
        (s, c)
    };

    // sums[k]: the bit of weight k accumulated so far. One extra slot
    // holds the structurally-present (logically always-zero) carry out of
    // the top full adder.
    let mut sums: Vec<Option<NodeId>> = vec![None; 2 * n + 1];
    let mut carries: Vec<(usize, NodeId)> = Vec::new(); // (weight, node)
    for (i, row) in pp.iter().enumerate() {
        for (j, &node) in row.iter().enumerate() {
            carries.push((i + j, node));
        }
    }
    // Repeatedly compress: at each weight, combine pending bits with
    // half/full adders until one bit remains per weight.
    let mut stage = 0usize;
    loop {
        let mut pending: Vec<Vec<NodeId>> = vec![Vec::new(); 2 * n + 1];
        for (w, node) in carries.drain(..) {
            // Bits at weight ≥ 2n are provably zero (the product fits in
            // 2n bits); their generating gates stay in the netlist (as in
            // the real C6288) but are not propagated further.
            if w <= 2 * n {
                pending[w].push(node);
            }
        }
        for (w, s) in sums.iter().enumerate() {
            if let Some(node) = s {
                pending[w].push(*node);
            }
        }
        sums = vec![None; 2 * n + 1];
        let mut any_multi = false;
        for w in 0..=2 * n {
            let bits = &mut pending[w];
            match bits.len() {
                0 => {}
                1 => sums[w] = Some(bits[0]),
                2 => {
                    let (s, c) = half_adder(&mut b, &format!("ha{stage}_{w}"), bits[0], bits[1]);
                    sums[w] = Some(s);
                    carries.push((w + 1, c));
                    any_multi = true;
                }
                _ => {
                    let (s, c) =
                        full_adder(&mut b, &format!("fa{stage}_{w}"), bits[0], bits[1], bits[2]);
                    sums[w] = Some(s);
                    carries.push((w + 1, c));
                    for &extra in &bits[3..] {
                        carries.push((w, extra));
                    }
                    any_multi = true;
                }
            }
            stage += 1;
        }
        if !any_multi && carries.is_empty() {
            break;
        }
    }
    for (w, s) in sums.iter().take(2 * n).enumerate() {
        match s {
            Some(node) => b.output(&format!("p{w}"), *node),
            None => {
                let zero = b
                    .gate(
                        GateKind::Const0,
                        &format!("zero{w}"),
                        vec![],
                        DelayBounds::ZERO,
                    )
                    .expect("generator names are unique");
                b.output(&format!("p{w}"), zero);
            }
        }
    }
    b.finish().expect("generator emits outputs")
}

/// An `n`-to-`2^n` one-hot decoder with an AND per output line.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 16`.
pub fn decoder(n: usize, delay: DelayBounds) -> Netlist {
    assert!(n > 0 && n <= 16, "decoder size out of range");
    let mut b = Netlist::builder();
    let sel: Vec<NodeId> = (0..n).map(|i| b.input(&format!("s{i}"))).collect();
    let nsel: Vec<NodeId> = (0..n)
        .map(|i| {
            b.gate(GateKind::Not, &format!("ns{i}"), vec![sel[i]], delay)
                .expect("generator names are unique")
        })
        .collect();
    for line in 0..(1usize << n) {
        let fanins: Vec<NodeId> = (0..n)
            .map(|i| {
                if (line >> i) & 1 == 1 {
                    sel[i]
                } else {
                    nsel[i]
                }
            })
            .collect();
        let g = b
            .gate(GateKind::And, &format!("d{line}"), fanins, delay)
            .expect("generator names are unique");
        b.output(&format!("y{line}"), g);
    }
    b.finish().expect("generator emits outputs")
}

/// A logarithmic barrel shifter: `2^k`-bit word rotated left by a
/// `k`-bit amount, built from `k` mux layers.
///
/// # Panics
///
/// Panics if `k == 0` or `k > 6`.
pub fn barrel_shifter(k: usize, delay: DelayBounds) -> Netlist {
    assert!(k > 0 && k <= 6, "shifter size out of range");
    let width = 1usize << k;
    let mut b = Netlist::builder();
    let sh: Vec<NodeId> = (0..k).map(|i| b.input(&format!("sh{i}"))).collect();
    let mut word: Vec<NodeId> = (0..width).map(|i| b.input(&format!("d{i}"))).collect();
    for (layer, &s) in sh.iter().enumerate() {
        let dist = 1usize << layer;
        let mut next = Vec::with_capacity(width);
        for i in 0..width {
            let rotated = word[(i + width - dist) % width];
            next.push(
                b.gate(
                    GateKind::Mux,
                    &format!("m{layer}_{i}"),
                    vec![s, word[i], rotated],
                    delay,
                )
                .expect("generator names are unique"),
            );
        }
        word = next;
    }
    for (i, &w) in word.iter().enumerate() {
        b.output(&format!("y{i}"), w);
    }
    b.finish().expect("generator emits outputs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::Time;

    fn d1() -> DelayBounds {
        DelayBounds::fixed(Time::from_int(1))
    }

    fn eval_word(n: &Netlist, inputs: &[bool]) -> u64 {
        n.evaluate_outputs(inputs)
            .iter()
            .enumerate()
            .fold(0u64, |acc, (i, &b)| acc | (u64::from(b) << i))
    }

    #[test]
    fn multiplier_multiplies() {
        for n in [1usize, 2, 3, 4] {
            let m = array_multiplier(n, d1());
            for a in 0..(1u64 << n) {
                for b in 0..(1u64 << n) {
                    let mut inputs = Vec::new();
                    for i in 0..n {
                        inputs.push((a >> i) & 1 == 1);
                    }
                    for i in 0..n {
                        inputs.push((b >> i) & 1 == 1);
                    }
                    assert_eq!(eval_word(&m, &inputs), a * b, "{n}-bit: {a} × {b}");
                }
            }
        }
    }

    #[test]
    fn multiplier_path_count_explodes() {
        // The C6288 effect: path counts grow out of control fast.
        let m3 = array_multiplier(3, d1());
        let m6 = array_multiplier(6, d1());
        let (p3, p6) = (m3.total_path_count(), m6.total_path_count());
        assert!(p6 > 20 * p3, "m3 has {p3} paths, m6 only {p6}");
    }

    #[test]
    fn decoder_is_one_hot() {
        let n = decoder(3, d1());
        for line in 0..8usize {
            let inputs: Vec<bool> = (0..3).map(|i| (line >> i) & 1 == 1).collect();
            let outs = n.evaluate_outputs(&inputs);
            for (i, &o) in outs.iter().enumerate() {
                assert_eq!(o, i == line, "line {line}, output {i}");
            }
        }
    }

    #[test]
    fn barrel_shifter_rotates() {
        let k = 3;
        let width = 8usize;
        let n = barrel_shifter(k, d1());
        for amount in 0..width {
            for word in [0b0000_0001u64, 0b1010_0110, 0b1111_0000] {
                let mut inputs = Vec::new();
                for i in 0..k {
                    inputs.push((amount >> i) & 1 == 1);
                }
                for i in 0..width {
                    inputs.push((word >> i) & 1 == 1);
                }
                let expect =
                    ((word << amount) | (word >> (width - amount))) & ((1u64 << width) - 1);
                let expect = if amount == 0 { word } else { expect };
                assert_eq!(
                    eval_word(&n, &inputs),
                    expect,
                    "rotate {word:#b} by {amount}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_multiplier_panics() {
        let _ = array_multiplier(0, d1());
    }
}
