//! Adder generators: ripple-carry, carry-bypass and carry-select.
//!
//! Carry-bypass (a.k.a. carry-skip) adders are the canonical false-path
//! circuits — the paper's own §11 worked example is a 4-bit ripple-bypass
//! adder — so they carry the evaluation's "exact ≪ topological" shape.

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// An `bits`-bit ripple-carry adder (sum and carry-out outputs), every
/// gate with the same delay bounds.
///
/// # Panics
///
/// Panics if `bits == 0`.
///
/// # Example
///
/// ```
/// use tbf_logic::generators::adders::ripple_carry;
/// use tbf_logic::{DelayBounds, Time};
///
/// let n = ripple_carry(4, DelayBounds::fixed(Time::from_int(1)));
/// // 2·4 operand bits + carry-in, 4 sum bits + carry-out.
/// assert_eq!(n.inputs().len(), 9);
/// assert_eq!(n.outputs().len(), 5);
/// ```
pub fn ripple_carry(bits: usize, delay: DelayBounds) -> Netlist {
    assert!(bits > 0, "adder needs at least one bit");
    let mut b = Netlist::builder();
    let a_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("b{i}"))).collect();
    let mut carry = b.input("cin");
    for i in 0..bits {
        let p = b
            .gate(
                GateKind::Xor,
                &format!("p{i}"),
                vec![a_in[i], b_in[i]],
                delay,
            )
            .expect("generator names are unique");
        let s = b
            .gate(GateKind::Xor, &format!("s{i}"), vec![p, carry], delay)
            .expect("generator names are unique");
        b.output(&format!("sum{i}"), s);
        carry = b
            .gate(
                GateKind::Maj,
                &format!("c{}", i + 1),
                vec![a_in[i], b_in[i], carry],
                delay,
            )
            .expect("generator names are unique");
    }
    b.output("cout", carry);
    b.finish().expect("generator emits outputs")
}

/// A carry-bypass adder: `blocks` blocks of `block_bits` bits, each with
/// a ripple chain and a propagate-AND controlled bypass mux. Uniform
/// delay bounds on every gate.
///
/// The block-crossing "ripple all the way" paths are false whenever every
/// propagate signal in a block is true (the mux then selects the bypass),
/// which is exactly the §11 effect scaled up.
///
/// # Panics
///
/// Panics if `block_bits == 0` or `blocks == 0`.
pub fn carry_bypass(block_bits: usize, blocks: usize, delay: DelayBounds) -> Netlist {
    assert!(block_bits > 0 && blocks > 0, "empty bypass adder");
    let bits = block_bits * blocks;
    let mut b = Netlist::builder();
    let a_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("b{i}"))).collect();
    let mut block_cin = b.input("cin");
    for blk in 0..blocks {
        let mut carry = block_cin;
        let mut props = Vec::with_capacity(block_bits);
        for j in 0..block_bits {
            let i = blk * block_bits + j;
            let p = b
                .gate(
                    GateKind::Xor,
                    &format!("p{i}"),
                    vec![a_in[i], b_in[i]],
                    delay,
                )
                .expect("generator names are unique");
            props.push(p);
            let s = b
                .gate(GateKind::Xor, &format!("s{i}"), vec![p, carry], delay)
                .expect("generator names are unique");
            b.output(&format!("sum{i}"), s);
            carry = b
                .gate(
                    GateKind::Maj,
                    &format!("c{blk}_{j}"),
                    vec![a_in[i], b_in[i], carry],
                    delay,
                )
                .expect("generator names are unique");
        }
        let bypass = b
            .gate(GateKind::And, &format!("bp{blk}"), props, delay)
            .expect("generator names are unique");
        block_cin = b
            .gate(
                GateKind::Mux,
                &format!("bc{blk}"),
                vec![bypass, carry, block_cin],
                delay,
            )
            .expect("generator names are unique");
    }
    b.output("cout", block_cin);
    b.finish().expect("generator emits outputs")
}

/// A carry-select adder: each block computes both carry phases and a mux
/// picks the real one; sums are selected per-bit.
///
/// # Panics
///
/// Panics if `block_bits == 0` or `blocks == 0`.
pub fn carry_select(block_bits: usize, blocks: usize, delay: DelayBounds) -> Netlist {
    assert!(block_bits > 0 && blocks > 0, "empty select adder");
    let bits = block_bits * blocks;
    let mut b = Netlist::builder();
    let a_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("b{i}"))).collect();
    let mut block_cin = b.input("cin");
    for blk in 0..blocks {
        let mut carry0 = b
            .gate(
                GateKind::Const0,
                &format!("z{blk}"),
                vec![],
                DelayBounds::ZERO,
            )
            .expect("generator names are unique");
        let mut carry1 = b
            .gate(
                GateKind::Const1,
                &format!("o{blk}"),
                vec![],
                DelayBounds::ZERO,
            )
            .expect("generator names are unique");
        for j in 0..block_bits {
            let i = blk * block_bits + j;
            let p = b
                .gate(
                    GateKind::Xor,
                    &format!("p{i}"),
                    vec![a_in[i], b_in[i]],
                    delay,
                )
                .expect("generator names are unique");
            let s0 = b
                .gate(GateKind::Xor, &format!("s0_{i}"), vec![p, carry0], delay)
                .expect("generator names are unique");
            let s1 = b
                .gate(GateKind::Xor, &format!("s1_{i}"), vec![p, carry1], delay)
                .expect("generator names are unique");
            let s = b
                .gate(
                    GateKind::Mux,
                    &format!("s{i}"),
                    vec![block_cin, s0, s1],
                    delay,
                )
                .expect("generator names are unique");
            b.output(&format!("sum{i}"), s);
            carry0 = b
                .gate(
                    GateKind::Maj,
                    &format!("c0_{blk}_{j}"),
                    vec![a_in[i], b_in[i], carry0],
                    delay,
                )
                .expect("generator names are unique");
            carry1 = b
                .gate(
                    GateKind::Maj,
                    &format!("c1_{blk}_{j}"),
                    vec![a_in[i], b_in[i], carry1],
                    delay,
                )
                .expect("generator names are unique");
        }
        block_cin = b
            .gate(
                GateKind::Mux,
                &format!("bc{blk}"),
                vec![block_cin, carry0, carry1],
                delay,
            )
            .expect("generator names are unique");
    }
    b.output("cout", block_cin);
    b.finish().expect("generator emits outputs")
}

/// The exact 4-bit ripple-bypass adder of the paper's §11 (Figure 7):
/// carry-in buffer `g0 ∈ [2,20]` (modeling the previous stage), four
/// majority carry stages `g1..g4 ∈ [2,4]`, propagate XORs and bypass AND
/// `∈ [2,4]`, and the final bypass mux `g5 ∈ [2,4]`. Only the carry
/// output is exposed (the paper ignores the sum bits).
///
/// Its longest topological path is `c0→g0→g1→g2→g3→g4→g5` of length
/// **40**; its exact 2-vector carry delay is **24** (the ripple-through
/// path is false).
pub fn paper_bypass_adder() -> Netlist {
    let d = |lo: i64, hi: i64| DelayBounds::new(Time::from_int(lo), Time::from_int(hi));
    let mut b = Netlist::builder();
    let c0 = b.input("c0");
    let a_in: Vec<NodeId> = (1..=4).map(|i| b.input(&format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (1..=4).map(|i| b.input(&format!("b{i}"))).collect();
    let g0 = b
        .gate(GateKind::Buf, "g0", vec![c0], d(2, 20))
        .expect("generator names are unique");
    let mut carry = g0;
    let mut props = Vec::new();
    for i in 0..4 {
        let p = b
            .gate(
                GateKind::Xor,
                &format!("p{}", i + 1),
                vec![a_in[i], b_in[i]],
                d(2, 4),
            )
            .expect("generator names are unique");
        props.push(p);
        carry = b
            .gate(
                GateKind::Maj,
                &format!("g{}", i + 1),
                vec![a_in[i], b_in[i], carry],
                d(2, 4),
            )
            .expect("generator names are unique");
    }
    let bypass = b
        .gate(GateKind::And, "bp", props, d(2, 4))
        .expect("generator names are unique");
    let g5 = b
        .gate(GateKind::Mux, "g5", vec![bypass, carry, g0], d(2, 4))
        .expect("generator names are unique");
    b.output("cout", g5);
    b.finish().expect("generator emits outputs")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d1() -> DelayBounds {
        DelayBounds::fixed(Time::from_int(1))
    }

    /// Oracle: add via u64 arithmetic.
    fn check_adder(n: &Netlist, bits: usize, a: u64, bv: u64, cin: bool) {
        let mut assignment = Vec::new();
        // Input order: a0..a(bits-1), b0..b(bits-1), cin — matches builders.
        for i in 0..bits {
            assignment.push((a >> i) & 1 == 1);
        }
        for i in 0..bits {
            assignment.push((bv >> i) & 1 == 1);
        }
        assignment.push(cin);
        let outs = n.evaluate_outputs(&assignment);
        let total = a + bv + u64::from(cin);
        // Outputs: sum0..sum(bits-1), cout (declaration order).
        for (i, &s) in outs[..bits].iter().enumerate() {
            assert_eq!(s, (total >> i) & 1 == 1, "sum bit {i} of {a}+{bv}+{cin}");
        }
        assert_eq!(
            outs[bits],
            (total >> bits) & 1 == 1,
            "carry of {a}+{bv}+{cin}"
        );
    }

    #[test]
    fn ripple_carry_adds_correctly() {
        let n = ripple_carry(4, d1());
        for a in 0..16 {
            for bv in 0..16 {
                check_adder(&n, 4, a, bv, false);
                check_adder(&n, 4, a, bv, true);
            }
        }
    }

    #[test]
    fn carry_bypass_adds_correctly() {
        let n = carry_bypass(2, 2, d1());
        for a in 0..16 {
            for bv in 0..16 {
                check_adder(&n, 4, a, bv, false);
                check_adder(&n, 4, a, bv, true);
            }
        }
    }

    #[test]
    fn carry_select_adds_correctly() {
        let n = carry_select(2, 2, d1());
        for a in 0..16 {
            for bv in 0..16 {
                check_adder(&n, 4, a, bv, false);
                check_adder(&n, 4, a, bv, true);
            }
        }
    }

    #[test]
    fn sizes_scale() {
        let small = carry_bypass(2, 2, d1());
        let large = carry_bypass(4, 8, d1());
        assert!(large.gate_count() > 3 * small.gate_count());
        assert_eq!(large.inputs().len(), 2 * 32 + 1);
    }

    #[test]
    fn paper_adder_topological_delay_is_40() {
        let n = paper_bypass_adder();
        assert_eq!(n.topological_delay(), Time::from_int(40));
        assert_eq!(n.outputs().len(), 1);
        assert_eq!(n.inputs().len(), 9);
    }

    #[test]
    fn paper_adder_carry_function() {
        // The carry-out must equal the arithmetic carry of a 4-bit add.
        let n = paper_bypass_adder();
        // Input order: c0, a1..a4, b1..b4.
        for c0 in [false, true] {
            for a in 0..16u64 {
                for bv in 0..16u64 {
                    let mut assignment = vec![c0];
                    for i in 0..4 {
                        assignment.push((a >> i) & 1 == 1);
                    }
                    for i in 0..4 {
                        assignment.push((bv >> i) & 1 == 1);
                    }
                    let expect = (a + bv + u64::from(c0)) >> 4 & 1 == 1;
                    assert_eq!(
                        n.evaluate_outputs(&assignment),
                        vec![expect],
                        "carry of {a}+{bv}+{c0}"
                    );
                }
            }
        }
    }

    #[test]
    fn bypass_mux_kills_ripple_path_statically() {
        // When every propagate is true the mux selects the bypass leg, so
        // the chain value is logically irrelevant: carry-out = carry-in.
        let n = paper_bypass_adder();
        // a = 0101, b = 1010 → all p_i = 1.
        let mut assignment = vec![true];
        for i in 0..4 {
            assignment.push(i % 2 == 0);
        }
        for i in 0..4 {
            assignment.push(i % 2 == 1);
        }
        assert_eq!(n.evaluate_outputs(&assignment), vec![true]);
        assignment[0] = false;
        assert_eq!(n.evaluate_outputs(&assignment), vec![false]);
    }

    #[test]
    #[should_panic(expected = "at least one bit")]
    fn zero_bits_panics() {
        let _ = ripple_carry(0, d1());
    }
}
