//! Deterministic circuit generators.
//!
//! The paper's evaluation ran on ISCAS-85 netlists mapped through SIS with
//! MCNC-library delays. Those proprietary mapped netlists are replaced
//! here (see `DESIGN.md`) by:
//!
//! * the genuine embedded [`c17`](crate::parsers::bench::c17()) benchmark,
//! * [`adders`] — ripple-carry, carry-bypass (the paper's own §11
//!   example class, the canonical false-path family) and carry-select,
//! * [`trees`] — parity/AND/OR/mux trees and comparators (no false
//!   paths; the control group),
//! * [`random`] — seeded random DAGs,
//! * [`figures`] — the exact circuits of the paper's Figures 1–7.
//!
//! [`benchmark_suite`] bundles an ISCAS-scale mix for the §12 table.

pub mod adders;
pub mod datapath;
pub mod figures;
pub mod random;
pub mod trees;

use crate::delay::{DelayBounds, Time};
use crate::netlist::Netlist;
use crate::parsers::bench::c17;
use crate::parsers::mcnc_like_delays;

/// Uniform `[0.9·d, d]` bounds with `d = 1` unit — the paper's §12 setup
/// on a unit-delay library.
pub fn unit_ninety_percent() -> DelayBounds {
    DelayBounds::scaled_min(Time::from_int(1), 0.9)
}

/// The benchmark mix used to regenerate the paper's §12 table: name and
/// circuit, smallest first. All circuits use MCNC-like delays with
/// `dᵐⁱⁿ = 0.9·dᵐᵃˣ`.
pub fn benchmark_suite() -> Vec<(String, Netlist)> {
    let d = unit_ninety_percent();
    vec![
        ("c17".into(), c17(mcnc_like_delays)),
        ("rca8".into(), adders::ripple_carry(8, d)),
        ("rca16".into(), adders::ripple_carry(16, d)),
        ("bypass4x4".into(), adders::carry_bypass(4, 4, d)),
        ("bypass4x8".into(), adders::carry_bypass(4, 8, d)),
        ("select4x4".into(), adders::carry_select(4, 4, d)),
        ("parity16".into(), trees::parity_tree(16, d)),
        ("parity64".into(), trees::parity_tree(64, d)),
        ("muxtree5".into(), trees::mux_tree(5, d)),
        ("cmp16".into(), trees::comparator(16, d)),
        ("mult4".into(), datapath::array_multiplier(4, d)),
        ("shifter4".into(), datapath::barrel_shifter(4, d)),
        ("decoder5".into(), datapath::decoder(5, d)),
        ("rand100".into(), random::random_dag(10, 100, 3, 0xDA93)),
        ("rand250".into(), random::random_dag(12, 250, 3, 0x1CAF)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_builds_and_is_nontrivial() {
        let suite = benchmark_suite();
        assert!(suite.len() >= 10);
        for (name, n) in &suite {
            assert!(n.gate_count() > 0, "{name} is empty");
            assert!(!n.outputs().is_empty(), "{name} has no outputs");
            assert!(n.topological_delay() > Time::ZERO, "{name} has zero delay");
        }
    }

    #[test]
    fn suite_names_are_unique() {
        let suite = benchmark_suite();
        let mut names: Vec<_> = suite.iter().map(|(n, _)| n.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), suite.len());
    }
}
