//! Seeded random DAG circuits.
//!
//! Uses an internal SplitMix64 so generated benchmarks are bit-stable
//! across platforms and independent of external RNG crates.

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

/// Deterministic 64-bit SplitMix generator.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "empty range");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform boolean.
    pub fn coin(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// A random combinational DAG with `n_inputs` inputs and `n_gates` gates
/// of fanin up to `max_fanin`, reproducible from `seed`.
///
/// Gate kinds are drawn from the simple-cell mix (AND/OR/NAND/NOR/XOR/
/// NOT), delays from a two-speed spread (`dᵐᵃˣ ∈ {1, 2}` units) with
/// `dᵐⁱⁿ = 0.9·dᵐᵃˣ` — coarse enough that the breakpoint set `{Kᵢᵐᵃˣ}`
/// stays on the unit grid instead of exploding combinatorially. Every
/// gate with no fanout is promoted to a primary output, so the DAG is
/// fully observable.
///
/// # Panics
///
/// Panics if `n_inputs == 0`, `n_gates == 0` or `max_fanin < 2`.
pub fn random_dag(n_inputs: usize, n_gates: usize, max_fanin: usize, seed: u64) -> Netlist {
    assert!(n_inputs > 0 && n_gates > 0, "empty circuit");
    assert!(max_fanin >= 2, "need fanin of at least 2");
    let mut rng = SplitMix64::new(seed);
    let mut b = Netlist::builder();
    let mut pool: Vec<NodeId> = (0..n_inputs).map(|i| b.input(&format!("x{i}"))).collect();
    let kinds = [
        GateKind::And,
        GateKind::Or,
        GateKind::Nand,
        GateKind::Nor,
        GateKind::Xor,
        GateKind::Not,
    ];
    let delays: Vec<DelayBounds> = [1.0, 2.0]
        .iter()
        .map(|&u| DelayBounds::scaled_min(Time::from_units(u), 0.9))
        .collect();
    // Track which nodes ever appear as a fanin so sinks can be promoted
    // to primary outputs afterwards.
    let mut has_fanout = vec![false; n_inputs + n_gates];
    for g in 0..n_gates {
        let kind = kinds[rng.below(kinds.len())];
        let fanin_count = if kind == GateKind::Not {
            1
        } else {
            2 + rng.below(max_fanin - 1)
        };
        // Bias toward recent nodes to get depth (and reconvergence).
        let mut fanins = Vec::with_capacity(fanin_count);
        for _ in 0..fanin_count {
            let idx = if rng.coin() && pool.len() > n_inputs {
                pool.len() - 1 - rng.below((pool.len() - n_inputs).min(8))
            } else {
                rng.below(pool.len())
            };
            has_fanout[pool[idx].index()] = true;
            fanins.push(pool[idx]);
        }
        let delay = delays[rng.below(delays.len())];
        let id = b
            .gate(kind, &format!("g{g}"), fanins, delay)
            .expect("generator names are unique");
        pool.push(id);
    }
    // Every fanout-free gate becomes an output, keeping the whole DAG
    // observable.
    for &id in pool.iter().skip(n_inputs) {
        if !has_fanout[id.index()] {
            b.output(&format!("o{}", id.index()), id);
        }
    }
    b.finish().expect("the last gate is always fanout-free")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(rng.below(13) < 13);
        }
    }

    #[test]
    fn random_dag_is_reproducible() {
        let a = random_dag(8, 50, 4, 0xBEEF);
        let b = random_dag(8, 50, 4, 0xBEEF);
        assert_eq!(a.len(), b.len());
        for ((_, na), (_, nb)) in a.nodes().zip(b.nodes()) {
            assert_eq!(na.name(), nb.name());
            assert_eq!(na.kind(), nb.kind());
            assert_eq!(na.fanins(), nb.fanins());
            assert_eq!(na.delay(), nb.delay());
        }
        let c = random_dag(8, 50, 4, 0xBEEE);
        let differs = a
            .nodes()
            .zip(c.nodes())
            .any(|((_, x), (_, y))| x.kind() != y.kind() || x.fanins() != y.fanins());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn random_dag_shape() {
        let n = random_dag(8, 100, 4, 1);
        assert_eq!(n.inputs().len(), 8);
        assert_eq!(n.gate_count(), 100);
        assert!(!n.outputs().is_empty());
        // All sinks are outputs.
        for (id, node) in n.nodes() {
            if !node.kind().is_input() && n.fanouts(id).is_empty() {
                assert!(
                    n.outputs().iter().any(|(_, o)| *o == id),
                    "sink {} not an output",
                    node.name()
                );
            }
        }
    }

    #[test]
    fn random_dag_evaluates() {
        let n = random_dag(6, 40, 3, 99);
        let zeros = vec![false; 6];
        let ones = vec![true; 6];
        // Just exercise evaluation end-to-end.
        assert_eq!(n.evaluate_outputs(&zeros).len(), n.outputs().len());
        assert_eq!(n.evaluate_outputs(&ones).len(), n.outputs().len());
    }

    #[test]
    #[should_panic(expected = "need fanin")]
    fn tiny_fanin_panics() {
        let _ = random_dag(4, 4, 1, 0);
    }
}
