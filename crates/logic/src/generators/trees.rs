//! Tree-structured circuits: parity, AND/OR reductions, mux trees and
//! comparators. Trees have no reconvergent false paths, so their exact
//! delay equals their topological delay — the control group of the
//! evaluation.

use crate::delay::DelayBounds;
use crate::gate::GateKind;
use crate::netlist::{Netlist, NodeId};

fn reduce_tree(
    b: &mut crate::netlist::NetlistBuilder,
    kind: GateKind,
    mut layer: Vec<NodeId>,
    delay: DelayBounds,
    prefix: &str,
) -> NodeId {
    assert!(!layer.is_empty(), "cannot reduce an empty layer");
    let mut level = 0usize;
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(2));
        for (i, pair) in layer.chunks(2).enumerate() {
            match pair {
                [only] => next.push(*only),
                [l, r] => next.push(
                    b.gate(kind, &format!("{prefix}_l{level}_{i}"), vec![*l, *r], delay)
                        .expect("generator names are unique"),
                ),
                _ => unreachable!("chunks(2)"),
            }
        }
        layer = next;
        level += 1;
    }
    layer[0]
}

/// A balanced XOR (parity) tree over `n` inputs.
///
/// # Panics
///
/// Panics if `n == 0`.
///
/// # Example
///
/// ```
/// use tbf_logic::generators::trees::parity_tree;
/// use tbf_logic::{DelayBounds, Time};
/// let n = parity_tree(8, DelayBounds::fixed(Time::from_int(1)));
/// assert_eq!(n.gate_count(), 7);
/// assert_eq!(n.topological_delay(), Time::from_int(3));
/// ```
pub fn parity_tree(n: usize, delay: DelayBounds) -> Netlist {
    tree_of(GateKind::Xor, n, delay)
}

/// A balanced AND tree over `n` inputs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn and_tree(n: usize, delay: DelayBounds) -> Netlist {
    tree_of(GateKind::And, n, delay)
}

/// A balanced OR tree over `n` inputs.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn or_tree(n: usize, delay: DelayBounds) -> Netlist {
    tree_of(GateKind::Or, n, delay)
}

fn tree_of(kind: GateKind, n: usize, delay: DelayBounds) -> Netlist {
    assert!(n > 0, "tree needs at least one input");
    let mut b = Netlist::builder();
    let leaves: Vec<NodeId> = (0..n).map(|i| b.input(&format!("x{i}"))).collect();
    let root = reduce_tree(&mut b, kind, leaves, delay, "t");
    b.output("y", root);
    b.finish().expect("generator emits outputs")
}

/// A complete mux tree of the given `depth`: `2^depth` data inputs
/// selected by `depth` select lines — a `2^depth`-way multiplexer.
///
/// # Panics
///
/// Panics if `depth == 0`.
pub fn mux_tree(depth: usize, delay: DelayBounds) -> Netlist {
    assert!(depth > 0, "mux tree needs depth ≥ 1");
    let mut b = Netlist::builder();
    let selects: Vec<NodeId> = (0..depth).map(|i| b.input(&format!("s{i}"))).collect();
    let mut layer: Vec<NodeId> = (0..1usize << depth)
        .map(|i| b.input(&format!("d{i}")))
        .collect();
    for (lvl, &s) in selects.iter().enumerate() {
        let mut next = Vec::with_capacity(layer.len() / 2);
        for (i, pair) in layer.chunks(2).enumerate() {
            let [d0, d1] = pair else {
                unreachable!("power of two")
            };
            next.push(
                b.gate(
                    GateKind::Mux,
                    &format!("m{lvl}_{i}"),
                    vec![s, *d0, *d1],
                    delay,
                )
                .expect("generator names are unique"),
            );
        }
        layer = next;
    }
    b.output("y", layer[0]);
    b.finish().expect("generator emits outputs")
}

/// A `bits`-wide equality comparator: XNOR per bit, AND reduction.
///
/// # Panics
///
/// Panics if `bits == 0`.
pub fn comparator(bits: usize, delay: DelayBounds) -> Netlist {
    assert!(bits > 0, "comparator needs at least one bit");
    let mut b = Netlist::builder();
    let a_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("a{i}"))).collect();
    let b_in: Vec<NodeId> = (0..bits).map(|i| b.input(&format!("b{i}"))).collect();
    let eqs: Vec<NodeId> = (0..bits)
        .map(|i| {
            b.gate(
                GateKind::Xnor,
                &format!("eq{i}"),
                vec![a_in[i], b_in[i]],
                delay,
            )
            .expect("generator names are unique")
        })
        .collect();
    let root = reduce_tree(&mut b, GateKind::And, eqs, delay, "and");
    b.output("eq", root);
    b.finish().expect("generator emits outputs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::Time;

    fn d1() -> DelayBounds {
        DelayBounds::fixed(Time::from_int(1))
    }

    #[test]
    fn parity_matches_popcount() {
        let n = parity_tree(5, d1());
        for i in 0..32u32 {
            let a: Vec<bool> = (0..5).map(|j| (i >> j) & 1 == 1).collect();
            assert_eq!(
                n.evaluate_outputs(&a),
                vec![i.count_ones() % 2 == 1],
                "{a:?}"
            );
        }
    }

    #[test]
    fn and_or_trees() {
        let na = and_tree(7, d1());
        let no = or_tree(7, d1());
        assert_eq!(na.evaluate_outputs(&[true; 7]), vec![true]);
        let mut one_low = [true; 7];
        one_low[3] = false;
        assert_eq!(na.evaluate_outputs(&one_low), vec![false]);
        assert_eq!(no.evaluate_outputs(&[false; 7]), vec![false]);
        let mut one_high = [false; 7];
        one_high[6] = true;
        assert_eq!(no.evaluate_outputs(&one_high), vec![true]);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let n = parity_tree(64, d1());
        assert_eq!(n.topological_delay(), Time::from_int(6));
        assert_eq!(n.gate_count(), 63);
        // Ragged width still works.
        let n = parity_tree(9, d1());
        assert_eq!(n.gate_count(), 8);
        assert_eq!(n.topological_delay(), Time::from_int(4));
    }

    #[test]
    fn mux_tree_selects() {
        let depth = 3;
        let n = mux_tree(depth, d1());
        // Inputs: s0..s2, d0..d7.
        for sel in 0..8usize {
            for data in 0..256u32 {
                let mut a = Vec::new();
                for j in 0..depth {
                    a.push((sel >> j) & 1 == 1);
                }
                for j in 0..8 {
                    a.push((data >> j) & 1 == 1);
                }
                // Level 0 muxes on s0 pick within pairs, level 1 on s1, ...
                // → data index whose bit j is sel bit j.
                let expect = (data >> sel) & 1 == 1;
                assert_eq!(n.evaluate_outputs(&a), vec![expect], "sel={sel}");
            }
        }
    }

    #[test]
    fn comparator_detects_equality() {
        let n = comparator(4, d1());
        for a in 0..16u32 {
            for b in 0..16u32 {
                let mut inputs = Vec::new();
                for j in 0..4 {
                    inputs.push((a >> j) & 1 == 1);
                }
                for j in 0..4 {
                    inputs.push((b >> j) & 1 == 1);
                }
                assert_eq!(n.evaluate_outputs(&inputs), vec![a == b]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn empty_tree_panics() {
        let _ = parity_tree(0, d1());
    }
}
