//! Fixed-point time arithmetic and gate delay bounds.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// Fixed-point sub-units per time unit (a resolution of 10⁻⁴ units).
///
/// All delay data in the workspace lives on this grid so that breakpoint
/// deduplication, interval comparison and LP feasibility stay exact —
/// floating-point drift cannot perturb the descending-breakpoint search of
/// the delay algorithms.
pub const TIME_SCALE: i64 = 10_000;

/// A point in time or a duration, stored as `i64` fixed-point at
/// [`TIME_SCALE`] sub-units per unit.
///
/// # Example
///
/// ```
/// use tbf_logic::Time;
/// let a = Time::from_int(3);
/// let b = Time::from_units(0.5);
/// assert_eq!((a + b).to_units(), 3.5);
/// assert!(a > b);
/// assert_eq!(a - a, Time::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// Zero time.
    pub const ZERO: Time = Time(0);
    /// The largest representable time (useful as an "infinity" sentinel).
    pub const MAX: Time = Time(i64::MAX);
    /// The smallest representable time.
    pub const MIN: Time = Time(i64::MIN);

    /// An integer number of time units.
    pub const fn from_int(units: i64) -> Time {
        Time(units * TIME_SCALE)
    }

    /// A raw fixed-point value ([`TIME_SCALE`] sub-units per unit).
    pub const fn from_scaled(scaled: i64) -> Time {
        Time(scaled)
    }

    /// A fractional number of units, rounded to the fixed-point grid.
    pub fn from_units(units: f64) -> Time {
        Time((units * TIME_SCALE as f64).round() as i64)
    }

    /// The raw fixed-point value.
    pub const fn scaled(self) -> i64 {
        self.0
    }

    /// The value in time units as `f64` (reporting only).
    pub fn to_units(self) -> f64 {
        self.0 as f64 / TIME_SCALE as f64
    }

    /// True if exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The smallest representable positive step (one fixed-point unit).
    ///
    /// Used as the `ε` of the paper's `t = b⁻` evaluations.
    pub const EPSILON: Time = Time(1);

    /// Saturating addition (for "infinity" sentinels).
    pub fn saturating_add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }

    /// Minimum of two times.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Maximum of two times.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add for Time {
    type Output = Time;
    /// Saturating: sums that leave the representable range clamp to the
    /// [`Time::MAX`]/[`Time::MIN`] sentinels instead of panicking, so
    /// deep topological-bound accumulations over generated circuits stay
    /// on the sound side ("at least this late") rather than aborting an
    /// analysis.
    fn add(self, rhs: Time) -> Time {
        Time(self.0.saturating_add(rhs.0))
    }
}

impl Sub for Time {
    type Output = Time;
    /// Saturating, mirroring [`Add`]: differences clamp to the sentinels.
    fn sub(self, rhs: Time) -> Time {
        Time(self.0.saturating_sub(rhs.0))
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        *self = *self + rhs;
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        *self = *self - rhs;
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    /// Saturating, mirroring [`Add`].
    fn mul(self, rhs: i64) -> Time {
        Time(self.0.saturating_mul(rhs))
    }
}

impl Sum for Time {
    fn sum<I: Iterator<Item = Time>>(iter: I) -> Time {
        iter.fold(Time::ZERO, |a, b| a + b)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Time({})", self.to_units())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % TIME_SCALE == 0 {
            write!(f, "{}", self.0 / TIME_SCALE)
        } else {
            write!(f, "{}", self.to_units())
        }
    }
}

/// The bounded gate delay model of the paper: a gate's delay may take any
/// value in `[min, max]`.
///
/// Fixed delays are expressed as `min == max`, the unbounded model as
/// `min == 0`.
///
/// # Example
///
/// ```
/// use tbf_logic::{DelayBounds, Time};
/// let d = DelayBounds::new(Time::from_units(0.9), Time::from_int(1));
/// assert!(d.is_variable());
/// let fixed = DelayBounds::fixed(Time::from_int(2));
/// assert!(!fixed.is_variable());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct DelayBounds {
    /// Minimum delay.
    pub min: Time,
    /// Maximum delay.
    pub max: Time,
}

impl DelayBounds {
    /// Zero delay (used for primary inputs).
    pub const ZERO: DelayBounds = DelayBounds {
        min: Time::ZERO,
        max: Time::ZERO,
    };

    /// Creates `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or `min < 0`.
    pub fn new(min: Time, max: Time) -> DelayBounds {
        assert!(
            Time::ZERO <= min && min <= max,
            "invalid delay bounds [{min}, {max}]"
        );
        DelayBounds { min, max }
    }

    /// A fixed delay `[d, d]`.
    pub fn fixed(d: Time) -> DelayBounds {
        DelayBounds::new(d, d)
    }

    /// The unbounded model `[0, max]` of the floating/viability setting.
    pub fn unbounded(max: Time) -> DelayBounds {
        DelayBounds::new(Time::ZERO, max)
    }

    /// `[f·max, max]` — the manufacturing-precision model of paper §10
    /// (`f` clamped to `[0, 1]`).
    pub fn scaled_min(max: Time, f: f64) -> DelayBounds {
        let f = f.clamp(0.0, 1.0);
        let min = Time::from_scaled(((max.scaled() as f64) * f).round() as i64);
        DelayBounds::new(min.min(max), max)
    }

    /// True if the gate has genuinely variable delay (`min < max`), the
    /// premise of Theorems 1–2.
    pub fn is_variable(self) -> bool {
        self.min < self.max
    }
}

impl fmt::Display for DelayBounds {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_point_roundtrip() {
        assert_eq!(Time::from_int(3).scaled(), 3 * TIME_SCALE);
        assert_eq!(Time::from_units(0.5).to_units(), 0.5);
        assert_eq!(Time::from_scaled(1), Time::EPSILON);
        assert_eq!(Time::from_units(0.00005).scaled(), 1); // rounds to grid
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Time::from_int(2);
        let b = Time::from_int(3);
        assert_eq!(a + b, Time::from_int(5));
        assert_eq!(b - a, Time::from_int(1));
        assert_eq!(-a, Time::from_int(-2));
        assert_eq!(a * 4, Time::from_int(8));
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let mut c = a;
        c += b;
        assert_eq!(c, Time::from_int(5));
        c -= a;
        assert_eq!(c, b);
        let total: Time = [a, b, a].into_iter().sum();
        assert_eq!(total, Time::from_int(7));
    }

    #[test]
    fn saturating_add_handles_sentinels() {
        assert_eq!(Time::MAX.saturating_add(Time::from_int(1)), Time::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Time::from_int(7).to_string(), "7");
        assert_eq!(Time::from_units(2.5).to_string(), "2.5");
        assert_eq!(
            DelayBounds::new(Time::from_int(1), Time::from_int(2)).to_string(),
            "[1, 2]"
        );
    }

    #[test]
    fn delay_bounds_constructors() {
        let d = DelayBounds::fixed(Time::from_int(5));
        assert_eq!(d.min, d.max);
        assert!(!d.is_variable());
        let u = DelayBounds::unbounded(Time::from_int(5));
        assert_eq!(u.min, Time::ZERO);
        assert!(u.is_variable());
        let s = DelayBounds::scaled_min(Time::from_int(10), 0.9);
        assert_eq!(s.min, Time::from_int(9));
        assert_eq!(s.max, Time::from_int(10));
        // Clamping.
        assert_eq!(
            DelayBounds::scaled_min(Time::from_int(10), 2.0).min,
            Time::from_int(10)
        );
        assert_eq!(
            DelayBounds::scaled_min(Time::from_int(10), -1.0).min,
            Time::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "invalid delay bounds")]
    fn inverted_bounds_panic() {
        let _ = DelayBounds::new(Time::from_int(2), Time::from_int(1));
    }

    #[test]
    fn overflow_saturates_at_the_sentinels() {
        assert_eq!(Time::MAX + Time::EPSILON, Time::MAX);
        assert_eq!(Time::MIN - Time::EPSILON, Time::MIN);
        assert_eq!(Time::MAX * 2, Time::MAX);
        assert_eq!(Time::MIN * 2, Time::MIN);
        let mut acc = Time::MAX;
        acc += Time::from_int(1);
        assert_eq!(acc, Time::MAX);
    }

    #[test]
    fn pathological_deep_chain_sum_saturates() {
        // A chain deep enough that the topological sum would overflow
        // i64 many times over must land exactly on the MAX sentinel.
        let total: Time = (0..1_000).map(|_| Time::from_scaled(i64::MAX / 4)).sum();
        assert_eq!(total, Time::MAX);
        // And stays there under further arithmetic.
        assert_eq!(total + Time::from_int(1), Time::MAX);
    }
}
