//! # tbf-logic — Gate-level netlists for exact timing analysis
//!
//! The circuit substrate for the Timed-Boolean-Function delay algorithms
//! (Lam/Brayton/Sangiovanni-Vincentelli, UCB/ERL M93/6): combinational
//! gate-level netlists with per-gate bounded delays
//! `[dᵐⁱⁿ, dᵐᵃˣ]`, plus everything needed to feed the evaluation section
//! of the paper:
//!
//! * [`Netlist`] / [`NetlistBuilder`] — immutable DAG of gates with
//!   fixed-point [`Time`] delay bounds,
//! * topology queries ([`Netlist::arrivals`], [`Netlist::suffixes`],
//!   [`Netlist::topological_delay`], path counting),
//! * a multi-format front end ([`load_netlist`]/[`parse_netlist`] over
//!   [`Format`]): ISCAS-85 [`.bench`](parsers::bench) and a
//!   [BLIF subset](parsers::blif) — both with round-trip writers — plus
//!   [AIGER](parsers::aiger) and a
//!   [structural-Verilog subset](parsers::verilog),
//! * deterministic [generators] for the paper's figure circuits, ripple /
//!   carry-bypass / carry-skip adders, tree circuits and random DAGs,
//! * the rise/fall [expansion](rise_fall) of paper §4.1 (Figure 3).
//!
//! # Example
//!
//! ```
//! use tbf_logic::{GateKind, Netlist, DelayBounds, Time};
//!
//! // Figure 4 of the paper: two gates with delays in [1,2].
//! let mut b = Netlist::builder();
//! let a = b.input("a");
//! let bb = b.input("b");
//! let d12 = DelayBounds::new(Time::from_int(1), Time::from_int(2));
//! let g1 = b.gate(GateKind::And, "g1", vec![a, bb], d12)?;
//! let g2 = b.gate(GateKind::Or, "g2", vec![a, g1], d12)?;
//! b.output("f", g2);
//! let n = b.finish()?;
//! assert_eq!(n.topological_delay(), Time::from_int(4));
//! # Ok::<(), tbf_logic::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod delay;
mod gate;
mod netlist;
mod topo;

pub mod generators;
pub mod parsers;
pub mod paths;
pub mod rise_fall;
pub mod transform;

pub use delay::{DelayBounds, Time, TIME_SCALE};
pub use gate::GateKind;
pub use netlist::{Netlist, NetlistBuilder, NetlistError, Node, NodeId};
pub use parsers::{load_netlist, parse_netlist, Format};
