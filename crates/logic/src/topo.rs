//! Topological timing queries: arrival bounds, suffix bounds, logic
//! levels, and the classical (pessimistic) topological delay.

use crate::delay::Time;
use crate::netlist::{Netlist, NodeId};

impl Netlist {
    /// Logic level of every node (inputs and constants at level 0, each
    /// gate one above its deepest fanin).
    pub fn levels(&self) -> Vec<usize> {
        let mut levels = vec![0usize; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            levels[i] = node
                .fanins
                .iter()
                .map(|f| levels[f.index()] + 1)
                .max()
                .unwrap_or(0);
        }
        levels
    }

    /// Maximum logic depth over all outputs.
    pub fn depth(&self) -> usize {
        let levels = self.levels();
        self.outputs
            .iter()
            .map(|(_, id)| levels[id.index()])
            .max()
            .unwrap_or(0)
    }

    /// Arrival bounds per node: for each node, the extremal sum of gate
    /// delays over all input-to-node paths, *including the node's own
    /// delay*.
    ///
    /// * `use_min_delay` — sum `dᵐⁱⁿ` instead of `dᵐᵃˣ` along paths.
    /// * `longest` — take the maximum over paths instead of the minimum.
    ///
    /// In the paper's notation, `arrivals(false, true)` at an output is
    /// `max kᵢᵐᵃˣ` (the topological length `L`) and `arrivals(true, true)`
    /// is `max kᵢᵐⁱⁿ` (the quantity of Theorem 5).
    pub fn arrivals(&self, use_min_delay: bool, longest: bool) -> Vec<Time> {
        let mut arr = vec![Time::ZERO; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            let d = if use_min_delay {
                node.delay.min
            } else {
                node.delay.max
            };
            let over_fanins = node.fanins.iter().map(|f| arr[f.index()]);
            let base = if longest {
                over_fanins.max()
            } else {
                over_fanins.min()
            };
            arr[i] = base.unwrap_or(Time::ZERO) + d;
        }
        arr
    }

    /// The classical topological (static, false-path-oblivious) delay:
    /// the longest input-to-output path using maximum gate delays. This is
    /// the `L` that seeds the exact-delay search, and the STA baseline the
    /// paper's evaluation compares against.
    pub fn topological_delay(&self) -> Time {
        let arr = self.arrivals(false, true);
        self.outputs
            .iter()
            .map(|(_, id)| arr[id.index()])
            .max()
            .unwrap_or(Time::ZERO)
    }

    /// Topological delay to one output only.
    pub fn topological_delay_of(&self, output: NodeId) -> Time {
        self.arrivals(false, true)[output.index()]
    }

    /// Suffix bounds toward one output: for each node, the extremal sum of
    /// the delays of the gates *strictly after* the node on node-to-output
    /// paths; `None` for nodes with no path to `output`.
    ///
    /// The total length of a path through node `n` decomposes as
    /// `arrival(n) + suffix(n)`, the split used by the TBF-network
    /// construction (paper §7.1) to classify paths against the query time.
    pub fn suffixes(
        &self,
        output: NodeId,
        use_min_delay: bool,
        longest: bool,
    ) -> Vec<Option<Time>> {
        let mut suf: Vec<Option<Time>> = vec![None; self.nodes.len()];
        suf[output.index()] = Some(Time::ZERO);
        for i in (0..self.nodes.len()).rev() {
            // Propagate from each node to its fanins: a path from fanin f
            // through node i pays node i's own delay plus i's suffix.
            let Some(s) = suf[i] else { continue };
            let node = &self.nodes[i];
            let d = if use_min_delay {
                node.delay.min
            } else {
                node.delay.max
            };
            let through = s + d;
            for f in &node.fanins {
                let entry = &mut suf[f.index()];
                *entry = Some(match *entry {
                    None => through,
                    Some(cur) => {
                        if longest {
                            cur.max(through)
                        } else {
                            cur.min(through)
                        }
                    }
                });
            }
        }
        suf
    }

    /// Number of distinct input-to-`output` paths (saturating at
    /// `u128::MAX`).
    pub fn path_count(&self, output: NodeId) -> u128 {
        let mut counts = vec![0u128; self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            counts[i] = if node.fanins.is_empty() {
                1
            } else {
                node.fanins
                    .iter()
                    .fold(0u128, |acc, f| acc.saturating_add(counts[f.index()]))
            };
        }
        counts[output.index()]
    }

    /// Total path count over all outputs.
    pub fn total_path_count(&self) -> u128 {
        self.outputs.iter().fold(0u128, |acc, (_, id)| {
            acc.saturating_add(self.path_count(*id))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delay::DelayBounds;
    use crate::gate::GateKind;

    fn d(lo: i64, hi: i64) -> DelayBounds {
        DelayBounds::new(Time::from_int(lo), Time::from_int(hi))
    }

    /// A diamond: a → {g1, g2} → g3, with asymmetric delays.
    fn diamond() -> Netlist {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let g1 = b.gate(GateKind::Buf, "g1", vec![a], d(1, 2)).unwrap();
        let g2 = b.gate(GateKind::Not, "g2", vec![a], d(3, 5)).unwrap();
        let g3 = b.gate(GateKind::And, "g3", vec![g1, g2], d(1, 1)).unwrap();
        b.output("f", g3);
        b.finish().unwrap()
    }

    #[test]
    fn levels_and_depth() {
        let n = diamond();
        let lv = n.levels();
        assert_eq!(lv[n.find("a").unwrap().index()], 0);
        assert_eq!(lv[n.find("g1").unwrap().index()], 1);
        assert_eq!(lv[n.find("g3").unwrap().index()], 2);
        assert_eq!(n.depth(), 2);
    }

    #[test]
    fn arrivals_four_ways() {
        let n = diamond();
        let g3 = n.find("g3").unwrap().index();
        // Two paths: via g1 (max 2+1=3, min 1+1=2), via g2 (max 5+1=6, min 3+1=4).
        assert_eq!(n.arrivals(false, true)[g3], Time::from_int(6));
        assert_eq!(n.arrivals(false, false)[g3], Time::from_int(3));
        assert_eq!(n.arrivals(true, true)[g3], Time::from_int(4));
        assert_eq!(n.arrivals(true, false)[g3], Time::from_int(2));
    }

    #[test]
    fn topological_delay_is_longest_max_path() {
        let n = diamond();
        assert_eq!(n.topological_delay(), Time::from_int(6));
        let g3 = n.find("g3").unwrap();
        assert_eq!(n.topological_delay_of(g3), Time::from_int(6));
    }

    #[test]
    fn suffixes_exclude_own_delay() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        let smax = n.suffixes(out, false, true);
        let smin = n.suffixes(out, true, false);
        // From a: via g1 gates after a are {g1, g3}: max 2+1=3; via g2: 5+1=6.
        assert_eq!(smax[n.find("a").unwrap().index()], Some(Time::from_int(6)));
        assert_eq!(smin[n.find("a").unwrap().index()], Some(Time::from_int(2)));
        // From g1: gates after = {g3} only.
        assert_eq!(smax[n.find("g1").unwrap().index()], Some(Time::from_int(1)));
        // Output node has zero suffix.
        assert_eq!(smax[out.index()], Some(Time::ZERO));
    }

    #[test]
    fn suffix_none_for_unreachable() {
        let mut b = Netlist::builder();
        let a = b.input("a");
        let x = b.input("x");
        let g = b.gate(GateKind::Buf, "g", vec![a], d(1, 1)).unwrap();
        let h = b.gate(GateKind::Buf, "h", vec![x], d(1, 1)).unwrap();
        b.output("f", g);
        b.output("f2", h);
        let n = b.finish().unwrap();
        let suf = n.suffixes(n.find("g").unwrap(), false, true);
        assert_eq!(suf[n.find("x").unwrap().index()], None);
        assert_eq!(suf[n.find("h").unwrap().index()], None);
        assert!(suf[n.find("a").unwrap().index()].is_some());
    }

    #[test]
    fn arrival_plus_suffix_is_total_path_length() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        let arr = n.arrivals(false, true);
        let suf = n.suffixes(out, false, true);
        // For the critical path the decomposition at every node on it
        // equals the topological delay.
        let g2 = n.find("g2").unwrap().index();
        assert_eq!(arr[g2] + suf[g2].unwrap(), Time::from_int(6));
    }

    #[test]
    fn path_counting() {
        let n = diamond();
        let out = n.find("g3").unwrap();
        assert_eq!(n.path_count(out), 2);
        assert_eq!(n.total_path_count(), 2);
    }

    #[test]
    fn path_count_grows_multiplicatively() {
        // Chain of k diamonds → 2^k paths.
        let mut b = Netlist::builder();
        let mut cur = b.input("a");
        for i in 0..20 {
            let g1 = b
                .gate(GateKind::Buf, &format!("u{i}"), vec![cur], d(1, 1))
                .unwrap();
            let g2 = b
                .gate(GateKind::Not, &format!("v{i}"), vec![cur], d(1, 1))
                .unwrap();
            cur = b
                .gate(GateKind::And, &format!("m{i}"), vec![g1, g2], d(1, 1))
                .unwrap();
        }
        b.output("f", cur);
        let n = b.finish().unwrap();
        assert_eq!(n.path_count(n.find("m19").unwrap()), 1 << 20);
    }
}
