//! Structural-Verilog subset reader.
//!
//! Supports the gate-level netlists a synthesis flow emits: one
//! `module` with `input`/`output`/`wire` declarations and primitive
//! gate instances (`and`, `or`, `nand`, `nor`, `xor`, `xnor`, `not`,
//! `buf`), each listing its output net first:
//!
//! ```text
//! module example (a, b, y);
//!   input a, b;
//!   output y;
//!   wire t;
//!   nand #(1.2) g1 (t, a, b);
//!   not        g2 (y, t);
//! endmodule
//! ```
//!
//! An optional `#(d)` delay gives fixed bounds of `d` time units; the
//! two-value form `#(dmin, dmax)` gives an interval (this reader's one
//! extension over the standard `#(rise, fall)` reading — the paper's
//! delay model is a min/max interval per gate, not a rise/fall pair).
//! Gates without an annotation get bounds from the delay callback.
//! `//` and `/* … */` comments are stripped. Everything behavioral or
//! vectored — `assign`, `always`, buses (`[3:0]`), parameters, multiple
//! modules — is rejected with a typed error.

use std::collections::HashMap;

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError, NodeId};

/// Replaces comments with whitespace, preserving line numbers.
fn strip_comments(text: &str) -> Result<String, NetlistError> {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars().peekable();
    let mut line = 1usize;
    while let Some(c) = chars.next() {
        match c {
            '\n' => {
                line += 1;
                out.push('\n');
            }
            '/' if chars.peek() == Some(&'/') => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        out.push('\n');
                        break;
                    }
                }
            }
            '/' if chars.peek() == Some(&'*') => {
                chars.next();
                let open_line = line;
                let mut prev = ' ';
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        out.push('\n');
                    }
                    if prev == '*' && c == '/' {
                        closed = true;
                        break;
                    }
                    prev = c;
                }
                if !closed {
                    return Err(NetlistError::Parse {
                        line: open_line,
                        message: "unterminated /* comment".into(),
                    });
                }
                out.push(' ');
            }
            other => out.push(other),
        }
    }
    Ok(out)
}

/// A net name: identifier characters only; `[` flags a bus subscript.
fn check_net_name(name: &str, line: usize) -> Result<(), NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    if name.is_empty() {
        return Err(err("empty net name".into()));
    }
    if name.contains(['[', ']']) {
        return Err(err(format!(
            "bus `{name}` not supported (structural scalar subset)"
        )));
    }
    let mut chars = name.chars();
    let first = chars.next().unwrap_or(' ');
    if !(first.is_ascii_alphabetic() || first == '_' || first == '\\') {
        return Err(err(format!("invalid net name `{name}`")));
    }
    // Escaped identifiers (`\foo!bar `) pass anything after the
    // backslash; plain identifiers stick to word characters and `$`.
    if first != '\\' && !chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '$') {
        return Err(err(format!("invalid net name `{name}`")));
    }
    Ok(())
}

fn parse_delay_spec(spec: &str, line: usize) -> Result<DelayBounds, NetlistError> {
    let err = |message: String| NetlistError::Parse { line, message };
    let mut values = Vec::new();
    for part in spec.split(',') {
        let v: f64 = part
            .trim()
            .parse()
            .map_err(|_| err(format!("bad delay value `{}`", part.trim())))?;
        if !v.is_finite() || v < 0.0 {
            return Err(err(format!("delay value `{v}` out of range")));
        }
        values.push(v);
    }
    match values.as_slice() {
        [d] => Ok(DelayBounds::fixed(Time::from_units(*d))),
        [min, max] if min <= max => Ok(DelayBounds::new(
            Time::from_units(*min),
            Time::from_units(*max),
        )),
        [min, max] => Err(err(format!("delay interval ({min}, {max}) has min > max"))),
        _ => Err(err(format!(
            "delay spec `#({spec})` needs one or two values"
        ))),
    }
}

/// Parses a structural-Verilog module into a [`Netlist`], assigning
/// un-annotated gates delay bounds via `delay_fn(kind, fanin_count)`.
///
/// # Errors
///
/// Returns [`NetlistError::Parse`] for anything outside the structural
/// subset (no module, multiple modules, `assign`/behavioral constructs,
/// buses, malformed instances, bad delay specs), and the builder's
/// typed errors for duplicate drivers, cycles and dangling nets.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{verilog::parse_verilog, unit_delays};
///
/// let src = "
/// module half_adder (a, b, s, c);
///   input a, b;
///   output s, c;
///   xor #(1.8) g1 (s, a, b);
///   and #(1.2, 1.4) g2 (c, a, b);
/// endmodule
/// ";
/// let n = parse_verilog(src, unit_delays)?;
/// assert_eq!(n.evaluate_outputs(&[true, true]), vec![false, true]);
/// assert_eq!(n.evaluate_outputs(&[true, false]), vec![true, false]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn parse_verilog(
    text: &str,
    mut delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    struct Def {
        kind: GateKind,
        fanins: Vec<String>,
        delay: Option<DelayBounds>,
        line: usize,
    }
    let stripped = strip_comments(text)?;

    // Split into `;`-terminated statements, tracking each one's first
    // line; `endmodule` closes the module without a semicolon.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut acc = String::new();
    let mut acc_line = 0usize;
    let mut line = 1usize;
    let mut it = stripped.chars().peekable();
    while let Some(c) = it.next() {
        if c == '\n' {
            line += 1;
        }
        if c == ';' {
            statements.push((acc_line, std::mem::take(&mut acc)));
            acc_line = 0;
        } else {
            if acc_line == 0 && !c.is_whitespace() {
                acc_line = line;
            }
            acc.push(c);
            // `endmodule` terminates a statement without a semicolon;
            // only at an identifier boundary (not inside `endmodulex`).
            if acc.trim() == "endmodule" {
                let at_boundary = match it.peek() {
                    None => true,
                    Some(&n) => !(n.is_ascii_alphanumeric() || n == '_' || n == '$'),
                };
                if at_boundary {
                    statements.push((acc_line, std::mem::take(&mut acc)));
                    acc_line = 0;
                }
            }
        }
    }
    if !acc.trim().is_empty() {
        return Err(NetlistError::Parse {
            line: acc_line,
            message: format!("unterminated statement `{}`", acc.trim()),
        });
    }

    let mut inputs: Vec<(String, usize)> = Vec::new();
    let mut outputs: Vec<(String, usize)> = Vec::new();
    let mut defs: HashMap<String, Def> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    let mut in_module = false;
    let mut module_done = false;

    for (lineno, stmt) in &statements {
        let lineno = *lineno;
        let stmt = stmt.trim();
        if stmt.is_empty() {
            continue;
        }
        let err = |message: String| NetlistError::Parse {
            line: lineno,
            message,
        };
        // The leading keyword runs to the first non-identifier char, so
        // `not(f, a)` and `and #(2) (f, a, b)` both dispatch correctly.
        let keyword = {
            let head = stmt.split_whitespace().next().unwrap_or_default();
            let cut = head
                .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == '$'))
                .unwrap_or(head.len());
            &head[..cut]
        };
        if module_done {
            return Err(err(format!(
                "`{keyword}` after endmodule (one module per file)"
            )));
        }
        match keyword {
            "module" => {
                if in_module {
                    return Err(err("nested module".into()));
                }
                in_module = true;
                // `module name (ports…)` — the port list is redundant
                // with the input/output declarations; validate shape only.
                let rest = stmt["module".len()..].trim();
                let name = rest.split(['(', ' ', '\t', '\n']).next().unwrap_or("");
                check_net_name(name, lineno)?;
            }
            "endmodule" => {
                if !in_module {
                    return Err(err("endmodule without module".into()));
                }
                module_done = true;
            }
            "input" | "output" | "wire" => {
                if !in_module {
                    return Err(err(format!("`{keyword}` outside a module")));
                }
                let rest = stmt[keyword.len()..].trim();
                if rest.starts_with('[') {
                    return Err(err(format!(
                        "bus `{keyword} {rest}` not supported (structural scalar subset)"
                    )));
                }
                for name in rest.split(',') {
                    let name = name.trim();
                    check_net_name(name, lineno)?;
                    match keyword {
                        "input" => inputs.push((name.to_owned(), lineno)),
                        "output" => {
                            if outputs.iter().any(|(n, _)| n == name) {
                                return Err(err(format!("duplicate output `{name}`")));
                            }
                            outputs.push((name.to_owned(), lineno));
                        }
                        // Wires are implicit; the declaration is allowed
                        // but carries no information we need.
                        _ => {}
                    }
                }
            }
            "assign" | "always" | "initial" | "reg" | "parameter" | "specify" => {
                return Err(err(format!(
                    "`{keyword}` not supported (structural gate-level subset)"
                )));
            }
            kind_str => {
                if !in_module {
                    return Err(err(format!("`{kind_str}` outside a module")));
                }
                let kind = match kind_str {
                    "and" => GateKind::And,
                    "or" => GateKind::Or,
                    "nand" => GateKind::Nand,
                    "nor" => GateKind::Nor,
                    "xor" => GateKind::Xor,
                    "xnor" => GateKind::Xnor,
                    "not" => GateKind::Not,
                    "buf" => GateKind::Buf,
                    other => return Err(err(format!("unknown statement or primitive `{other}`"))),
                };
                let mut rest = stmt[kind_str.len()..].trim();
                // Optional `#(delay)` or `#(dmin, dmax)`.
                let mut delay = None;
                if let Some(after_hash) = rest.strip_prefix('#') {
                    let after_hash = after_hash.trim_start();
                    let inner = after_hash
                        .strip_prefix('(')
                        .and_then(|r| r.split_once(')'))
                        .ok_or_else(|| err("malformed delay spec after `#`".into()))?;
                    delay = Some(parse_delay_spec(inner.0, lineno)?);
                    rest = inner.1.trim();
                }
                // Optional instance name, then the terminal list.
                let open = rest
                    .find('(')
                    .ok_or_else(|| err(format!("missing terminal list in `{stmt}`")))?;
                let inst = rest[..open].trim();
                if !inst.is_empty() {
                    check_net_name(inst, lineno)?;
                }
                let close = rest
                    .rfind(')')
                    .ok_or_else(|| err(format!("missing `)` in `{stmt}`")))?;
                if close < open {
                    return Err(err(format!("missing `)` in `{stmt}`")));
                }
                if !rest[close + 1..].trim().is_empty() {
                    return Err(err(format!(
                        "trailing text after terminal list in `{stmt}`"
                    )));
                }
                let mut terminals = Vec::new();
                for t in rest[open + 1..close].split(',') {
                    let t = t.trim();
                    check_net_name(t, lineno)?;
                    terminals.push(t.to_owned());
                }
                let (target, fanins) = terminals
                    .split_first()
                    .map(|(t, f)| (t.clone(), f.to_vec()))
                    .ok_or_else(|| err("instance with no terminals".into()))?;
                if fanins.is_empty() {
                    return Err(err(format!("`{kind_str}` instance with no inputs")));
                }
                if matches!(kind, GateKind::Not | GateKind::Buf) && fanins.len() != 1 {
                    // Verilog allows multi-output not/buf; our netlist
                    // model does not.
                    return Err(err(format!(
                        "`{kind_str}` must have exactly one output and one input here"
                    )));
                }
                if defs.contains_key(&target) {
                    return Err(NetlistError::DuplicateName(target));
                }
                defs.insert(
                    target.clone(),
                    Def {
                        kind,
                        fanins,
                        delay,
                        line: lineno,
                    },
                );
                order.push(target);
            }
        }
    }
    if !in_module {
        return Err(NetlistError::Parse {
            line: 1,
            message: "no module found".into(),
        });
    }
    if !module_done {
        return Err(NetlistError::Parse {
            line: statements.last().map(|(l, _)| *l).unwrap_or(1),
            message: "missing endmodule".into(),
        });
    }

    for (name, line) in &inputs {
        if let Some(def) = defs.get(name) {
            return Err(NetlistError::Parse {
                line: def.line.max(*line),
                message: format!("`{name}` is declared input and driven by a gate"),
            });
        }
    }

    // Resolve in dependency order (first-ready in declaration order, so
    // reparsing a topologically-sorted file preserves node ids).
    let mut builder = Netlist::builder();
    let mut resolved: HashMap<String, NodeId> = HashMap::new();
    for (name, line) in &inputs {
        let id = builder.try_input(name).map_err(|e| match e {
            NetlistError::DuplicateName(n) => NetlistError::Parse {
                line: *line,
                message: format!("duplicate input `{n}`"),
            },
            other => other,
        })?;
        resolved.insert(name.clone(), id);
    }
    let mut remaining = order.clone();
    while !remaining.is_empty() {
        let ready = remaining
            .iter()
            .position(|name| defs[name].fanins.iter().all(|f| resolved.contains_key(f)));
        match ready {
            Some(p) => {
                let name = remaining.remove(p);
                let def = &defs[&name];
                let fanin_ids: Vec<NodeId> = def
                    .fanins
                    .iter()
                    .map(|f| {
                        resolved
                            .get(f)
                            .copied()
                            .ok_or_else(|| NetlistError::UnknownNode(f.clone()))
                    })
                    .collect::<Result<_, _>>()?;
                let delay = def
                    .delay
                    .unwrap_or_else(|| delay_fn(def.kind, fanin_ids.len()));
                let id = builder.gate(def.kind, &name, fanin_ids, delay)?;
                resolved.insert(name, id);
            }
            None => {
                let name = &remaining[0];
                let def = &defs[name];
                let missing = def
                    .fanins
                    .iter()
                    .find(|f| !resolved.contains_key(*f) && !defs.contains_key(*f));
                return Err(match missing {
                    Some(m) => NetlistError::UnknownNode(m.clone()),
                    None => NetlistError::Parse {
                        line: def.line,
                        message: format!("combinational cycle through `{name}`"),
                    },
                });
            }
        }
    }

    for (name, _) in &outputs {
        let id = resolved
            .get(name)
            .copied()
            .ok_or_else(|| NetlistError::UnknownNode(name.clone()))?;
        builder.try_output(name, id)?;
    }
    builder.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parsers::unit_delays;
    use crate::{Time, TIME_SCALE};

    const HALF_ADDER: &str = "
module half_adder (a, b, s, c);
  input a, b;
  output s, c;
  xor #(1.8) g1 (s, a, b);
  and #(1.2, 1.4) g2 (c, a, b);
endmodule
";

    #[test]
    fn parses_half_adder_with_delays() {
        let n = parse_verilog(HALF_ADDER, unit_delays).unwrap();
        assert_eq!(n.inputs().len(), 2);
        assert_eq!(n.outputs().len(), 2);
        let s = n.node(n.outputs()[0].1);
        let c = n.node(n.outputs()[1].1);
        assert_eq!(s.delay(), DelayBounds::fixed(Time::from_units(1.8)));
        assert_eq!(c.delay().min.scaled(), (1.2 * TIME_SCALE as f64) as i64);
        assert_eq!(c.delay().max.scaled(), (1.4 * TIME_SCALE as f64) as i64);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false, true]);
    }

    #[test]
    fn instances_resolve_in_any_order() {
        let src = "
module m (a, y);
  input a;
  output y;
  not g2 (y, t); // uses t before its driver appears
  not g1 (t, a);
endmodule
";
        let n = parse_verilog(src, unit_delays).unwrap();
        assert_eq!(n.gate_count(), 2);
        assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
    }

    #[test]
    fn comments_are_stripped() {
        let src = "
// leading comment
module m (a, y); /* inline
   spanning lines */ input a;
  output y;
  buf g (y, a); // trailing
endmodule
";
        let n = parse_verilog(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[true]), vec![true]);
    }

    #[test]
    fn primitive_without_space_before_paren() {
        let src = "module m(a, f); input a; output f; not(f, a); endmodule\n";
        let n = parse_verilog(src, unit_delays).unwrap();
        assert_eq!(n.gate_count(), 1);
        assert_eq!(n.evaluate_outputs(&[true]), vec![false]);
    }

    #[test]
    fn anonymous_instances_and_callback_delays() {
        let src = "module m (a, b, y);\ninput a, b;\noutput y;\nnand (y, a, b);\nendmodule\n";
        let mut seen = Vec::new();
        let n = parse_verilog(src, |kind, arity| {
            seen.push((kind, arity));
            unit_delays(kind, arity)
        })
        .unwrap();
        assert_eq!(seen, vec![(GateKind::Nand, 2)]);
        assert_eq!(n.evaluate_outputs(&[true, true]), vec![false]);
    }

    #[test]
    fn wide_gates_parse() {
        let src = "module m (a, b, c, d, y);\ninput a, b, c, d;\noutput y;\nor g (y, a, b, c, d);\nendmodule\n";
        let n = parse_verilog(src, unit_delays).unwrap();
        assert_eq!(n.evaluate_outputs(&[false, false, false, true]), vec![true]);
        assert_eq!(n.evaluate_outputs(&[false; 4]), vec![false]);
    }

    #[test]
    fn hostile_inputs_yield_typed_errors() {
        let cases: &[(&str, &str)] = &[
            ("", "no module"),
            ("module m (a);\ninput a;\n", "missing endmodule"),
            ("input a;\n", "outside a module"),
            (
                "module m (y);\noutput y;\nendmodule\nmodule n (z);\nendmodule\n",
                "after endmodule",
            ),
            ("module m;\nmodule n;\nendmodule\n", "nested module"),
            (
                "module m (a, y);\ninput a;\noutput y;\nassign y = a;\nendmodule\n",
                "assign",
            ),
            (
                "module m (a, y);\ninput [3:0] a;\noutput y;\nendmodule\n",
                "bus",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nfrob g (y, a);\nendmodule\n",
                "unknown statement",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot g (y);\nendmodule\n",
                "no inputs",
            ),
            (
                "module m (a, b, y);\ninput a, b;\noutput y;\nnot g (y, a, b);\nendmodule\n",
                "exactly one output",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot #(x) g (y, a);\nendmodule\n",
                "bad delay value",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot #(2, 1) g (y, a);\nendmodule\n",
                "min > max",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot #(1, 2, 3) g (y, a);\nendmodule\n",
                "one or two values",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot #(-1) g (y, a);\nendmodule\n",
                "out of range",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot g y, a;\nendmodule\n",
                "missing terminal list",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot g (y, a\nendmodule\n",
                "unterminated statement",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot g (y, ghost);\nendmodule\n",
                "ghost",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot a (a, y);\nendmodule\n",
                "declared input and driven",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot g (y, z);\nnot h (z, y);\nendmodule\n",
                "cycle",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\nnot g (y, a);\nnot h (y, a);\nendmodule\n",
                "duplicate node name",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\noutput y;\nnot g (y, a);\nendmodule\n",
                "duplicate output",
            ),
            (
                "module m (a, y);\ninput a;\noutput y;\n/* unterminated\nnot g (y, a);\nendmodule\n",
                "unterminated /*",
            ),
        ];
        for (src, needle) in cases {
            let err = parse_verilog(src, unit_delays).expect_err(src);
            assert!(
                err.to_string().contains(needle),
                "source {src:?}: expected error mentioning {needle:?}, got `{err}`"
            );
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "module m (a, y);\ninput a;\noutput y;\nassign y = a;\nendmodule\n";
        let err = parse_verilog(src, unit_delays).unwrap_err();
        assert!(
            matches!(err, NetlistError::Parse { line: 4, .. }),
            "{err:?}"
        );
    }
}
