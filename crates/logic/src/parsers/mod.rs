//! Netlist file-format front end.
//!
//! Four readers behind one [`Format`]-dispatching entry point
//! ([`load_netlist`] for paths, [`parse_netlist`] for bytes):
//!
//! * [`bench`](mod@bench) — the ISCAS-85 `.bench` format the paper's evaluation
//!   circuits ship in; real benchmark files drop in unchanged.
//! * [`blif`] — a combinational subset of Berkeley's BLIF (the format SIS
//!   emitted after the paper's technology mapping step), plus a `.gate`
//!   cell subset for structure-exact round trips.
//! * [`aiger`] — and-inverter graphs, ASCII `aag` and binary `aig`.
//! * [`verilog`] — a structural gate-level Verilog subset.
//!
//! `.bench` and BLIF also have writers ([`bench::write_bench`],
//! [`blif::write_blif`]) whose output reparses to a byte-identical
//! `structural_signature` — see `FORMATS.md` for the grammar subsets,
//! the `@tbf` delay/alias pragmas and the round-trip guarantees.
//!
//! None of the base formats carry interval delay data, so every parser
//! takes a delay assignment callback (gate kind + fanin count →
//! [`DelayBounds`]), with [`unit_delays`] and [`mcnc_like_delays`]
//! provided; `@tbf delay` pragmas and Verilog `#(…)` annotations
//! override the callback per gate.

pub mod aiger;
pub mod bench;
pub mod blif;
pub mod verilog;

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;
use crate::netlist::{Netlist, NetlistError};

/// The netlist file formats the front end reads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// ISCAS-85 `.bench`.
    Bench,
    /// Combinational BLIF subset (covers + `.gate` cells).
    Blif,
    /// AIGER and-inverter graphs; ASCII `aag` and binary `aig` are
    /// distinguished by the file's own magic, not the format tag.
    Aiger,
    /// Structural gate-level Verilog subset.
    Verilog,
}

impl Format {
    /// All formats, in canonical order.
    pub const ALL: [Format; 4] = [Format::Bench, Format::Blif, Format::Aiger, Format::Verilog];

    /// The canonical lowercase name (`bench`, `blif`, `aiger`,
    /// `verilog`).
    pub fn name(self) -> &'static str {
        match self {
            Format::Bench => "bench",
            Format::Blif => "blif",
            Format::Aiger => "aiger",
            Format::Verilog => "verilog",
        }
    }

    /// Resolves a user-supplied format name (CLI flag, protocol field);
    /// accepts the canonical names plus the extension spellings.
    pub fn from_name(name: &str) -> Option<Format> {
        match name.to_ascii_lowercase().as_str() {
            "bench" => Some(Format::Bench),
            "blif" => Some(Format::Blif),
            "aiger" | "aag" | "aig" => Some(Format::Aiger),
            "verilog" | "v" => Some(Format::Verilog),
            _ => None,
        }
    }

    /// Infers the format from a path's extension (`.bench`, `.blif`,
    /// `.aag`, `.aig`, `.v`).
    pub fn from_extension(path: &std::path::Path) -> Option<Format> {
        let ext = path.extension()?.to_str()?;
        match ext.to_ascii_lowercase().as_str() {
            "bench" => Some(Format::Bench),
            "blif" => Some(Format::Blif),
            "aag" | "aig" => Some(Format::Aiger),
            "v" => Some(Format::Verilog),
            _ => None,
        }
    }

    /// Sniffs the format from file content: the AIGER magic, then the
    /// first substantive line (`.`-directive → BLIF, `module` → Verilog,
    /// anything `.bench`-shaped → bench).
    pub fn sniff(bytes: &[u8]) -> Option<Format> {
        if bytes.starts_with(b"aag ") || bytes.starts_with(b"aig ") {
            return Some(Format::Aiger);
        }
        let text = std::str::from_utf8(bytes).ok()?;
        for raw in text.lines() {
            let line = raw.trim_start();
            if line.is_empty() || line.starts_with('#') || line.starts_with("//") {
                continue;
            }
            if line.starts_with('.') {
                return Some(Format::Blif);
            }
            if line == "module"
                || line
                    .strip_prefix("module")
                    .is_some_and(|r| r.starts_with(char::is_whitespace))
            {
                return Some(Format::Verilog);
            }
            let upper = line.to_ascii_uppercase();
            if upper.starts_with("INPUT") || upper.starts_with("OUTPUT") || line.contains('=') {
                return Some(Format::Bench);
            }
            return None;
        }
        None
    }
}

impl std::fmt::Display for Format {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Parses netlist bytes in the given format, assigning delays via
/// `delay_fn` wherever the file itself carries none.
///
/// Text formats reject invalid UTF-8 with a typed error; AIGER accepts
/// raw bytes (the binary AND section is not text).
///
/// # Errors
///
/// Whatever the format's parser returns — see [`bench::parse_bench`],
/// [`blif::parse_blif`], [`aiger::parse_aiger`],
/// [`verilog::parse_verilog`].
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{parse_netlist, Format, unit_delays};
///
/// let n = parse_netlist(
///     Format::Bench,
///     b"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n",
///     unit_delays,
/// )?;
/// assert_eq!(n.evaluate_outputs(&[false]), vec![true]);
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn parse_netlist(
    format: Format,
    bytes: &[u8],
    delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    let text = |bytes: &[u8]| -> Result<String, NetlistError> {
        String::from_utf8(bytes.to_vec()).map_err(|e| NetlistError::Parse {
            line: 1,
            message: format!("{format} input is not UTF-8: {e}"),
        })
    };
    match format {
        Format::Bench => bench::parse_bench(&text(bytes)?, delay_fn),
        Format::Blif => blif::parse_blif(&text(bytes)?, delay_fn),
        Format::Aiger => aiger::parse_aiger(bytes, delay_fn),
        Format::Verilog => verilog::parse_verilog(&text(bytes)?, delay_fn),
    }
}

/// Loads a netlist file, inferring its format from the extension and
/// falling back to content sniffing, then `.bench` (the historical
/// default for extension-less benchmark files).
///
/// # Errors
///
/// [`NetlistError::Io`] if the file cannot be read, otherwise whatever
/// [`parse_netlist`] returns for the resolved format.
///
/// # Example
///
/// ```
/// use tbf_logic::parsers::{load_netlist, unit_delays};
///
/// let path = std::env::temp_dir().join("tbf_doc_load.blif");
/// std::fs::write(&path, ".model m\n.inputs a\n.outputs f\n.gate inv i0=a O=f\n.end\n").unwrap();
/// let n = load_netlist(&path, unit_delays)?;
/// assert_eq!(n.evaluate_outputs(&[false]), vec![true]);
/// # std::fs::remove_file(&path).ok();
/// # Ok::<(), tbf_logic::NetlistError>(())
/// ```
pub fn load_netlist(
    path: impl AsRef<std::path::Path>,
    delay_fn: impl FnMut(GateKind, usize) -> DelayBounds,
) -> Result<Netlist, NetlistError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path).map_err(|e| NetlistError::Io {
        path: path.display().to_string(),
        detail: e.to_string(),
    })?;
    let format = Format::from_extension(path)
        .or_else(|| Format::sniff(&bytes))
        .unwrap_or(Format::Bench);
    parse_netlist(format, &bytes, delay_fn)
}

/// Splits a raw source line into its code part and an optional `@tbf`
/// pragma carried by the trailing comment.
///
/// Pragmas are the delay/alias annotation convention shared by the
/// `.bench` and BLIF writers (see `FORMATS.md`): a comment of the form
/// `# @tbf <body>` is returned as `Some(body)`; every other comment is
/// discarded exactly as before.
pub(crate) fn split_pragma(raw: &str) -> (&str, Option<&str>) {
    match raw.split_once('#') {
        None => (raw, None),
        Some((code, comment)) => match comment.trim().strip_prefix("@tbf") {
            Some(body) if body.starts_with(char::is_whitespace) => (code, Some(body.trim())),
            _ => (code, None),
        },
    }
}

/// Parses the body of a `@tbf delay <min> <max>` pragma (scaled
/// fixed-point integers, [`crate::TIME_SCALE`] sub-units per unit) into
/// delay bounds. Returns `Ok(None)` if `body` is not a delay pragma.
pub(crate) fn parse_delay_pragma(
    body: &str,
    line: usize,
) -> Result<Option<DelayBounds>, NetlistError> {
    let Some(rest) = body.strip_prefix("delay") else {
        return Ok(None);
    };
    let err = |message: String| NetlistError::Parse { line, message };
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let [min, max] = parts.as_slice() else {
        return Err(err(format!(
            "delay pragma needs two scaled integers, got `{rest}`"
        )));
    };
    let min: i64 = min
        .parse()
        .map_err(|e| err(format!("delay pragma min: {e}")))?;
    let max: i64 = max
        .parse()
        .map_err(|e| err(format!("delay pragma max: {e}")))?;
    if min < 0 || min > max {
        return Err(err(format!("invalid delay pragma bounds [{min}, {max}]")));
    }
    Ok(Some(DelayBounds::new(
        Time::from_scaled(min),
        Time::from_scaled(max),
    )))
}

/// Parses the body of a `@tbf output <name> <driver>` pragma, which
/// re-binds a declared primary output to a differently-named driver
/// node. Returns `Ok(None)` if `body` is not an output pragma.
pub(crate) fn parse_output_pragma(
    body: &str,
    line: usize,
) -> Result<Option<(String, String)>, NetlistError> {
    let Some(rest) = body.strip_prefix("output") else {
        return Ok(None);
    };
    let parts: Vec<&str> = rest.split_whitespace().collect();
    let [name, driver] = parts.as_slice() else {
        return Err(NetlistError::Parse {
            line,
            message: format!("output pragma needs `<name> <driver>`, got `{rest}`"),
        });
    };
    Ok(Some(((*name).to_owned(), (*driver).to_owned())))
}

/// The `@tbf delay` pragma text for one gate's bounds (scaled integers).
pub(crate) fn delay_pragma(delay: DelayBounds) -> String {
    format!("# @tbf delay {} {}", delay.min.scaled(), delay.max.scaled())
}

/// Checks that every name a writer would emit survives a reparse as a
/// single token: non-empty, no whitespace, none of the characters the
/// line grammars assign meaning to, and (for BLIF) no leading `.`.
pub(crate) fn check_writable_name(name: &str, format: &'static str) -> Result<(), NetlistError> {
    let bad_char = |c: char| c.is_whitespace() || matches!(c, '#' | '(' | ')' | ',' | '=' | '\\');
    if name.is_empty() || name.contains(bad_char) || name.starts_with('.') {
        return Err(NetlistError::Unwritable {
            name: name.to_owned(),
            detail: format!("name is not representable as a {format} token"),
        });
    }
    Ok(())
}

/// Checks the writer precondition that primary inputs occupy the first
/// node ids: both line-oriented parsers resolve all inputs before any
/// gate, so an interleaved netlist cannot round-trip id-exactly.
pub(crate) fn check_inputs_first(netlist: &crate::Netlist) -> Result<(), NetlistError> {
    for (pos, id) in netlist.inputs().iter().enumerate() {
        if id.index() != pos {
            return Err(NetlistError::Unwritable {
                name: netlist.node(*id).name().to_owned(),
                detail: "inputs must precede all gates to round-trip id-exactly".to_owned(),
            });
        }
    }
    Ok(())
}

/// Every gate gets delay `[1, 1]`.
pub fn unit_delays(_kind: GateKind, _fanins: usize) -> DelayBounds {
    DelayBounds::fixed(Time::from_int(1))
}

/// An MCNC-library-like delay assignment: inverters/buffers are fast,
/// complex gates scale with fanin, and `dᵐⁱⁿ = 0.9·dᵐᵃˣ` exactly as in
/// the paper's §12 experiments.
pub fn mcnc_like_delays(kind: GateKind, fanins: usize) -> DelayBounds {
    let base = match kind {
        GateKind::Not | GateKind::Buf => 1.0,
        GateKind::Nand | GateKind::Nor => 1.2,
        GateKind::And | GateKind::Or => 1.4,
        GateKind::Xor | GateKind::Xnor => 1.8,
        GateKind::Maj | GateKind::Mux => 1.6,
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => return DelayBounds::ZERO,
    };
    let max = Time::from_units(base + 0.2 * fanins.saturating_sub(2) as f64);
    DelayBounds::scaled_min(max, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delays_are_unit() {
        assert_eq!(
            unit_delays(GateKind::Nand, 4),
            DelayBounds::fixed(Time::from_int(1))
        );
    }

    #[test]
    fn format_names_round_trip() {
        for f in Format::ALL {
            assert_eq!(Format::from_name(f.name()), Some(f));
            assert_eq!(f.to_string(), f.name());
        }
        assert_eq!(Format::from_name("AAG"), Some(Format::Aiger));
        assert_eq!(Format::from_name("v"), Some(Format::Verilog));
        assert_eq!(Format::from_name("vhdl"), None);
    }

    #[test]
    fn extension_inference() {
        use std::path::Path;
        let cases = [
            ("c17.bench", Some(Format::Bench)),
            ("x.BLIF", Some(Format::Blif)),
            ("x.aag", Some(Format::Aiger)),
            ("x.aig", Some(Format::Aiger)),
            ("x.v", Some(Format::Verilog)),
            ("x.vhd", None),
            ("noext", None),
        ];
        for (path, want) in cases {
            assert_eq!(Format::from_extension(Path::new(path)), want, "{path}");
        }
    }

    #[test]
    fn content_sniffing() {
        let cases: &[(&[u8], Option<Format>)] = &[
            (b"aag 1 1 0 1 0\n", Some(Format::Aiger)),
            (b"aig 1 1 0 1 0\n", Some(Format::Aiger)),
            (b"# hdr\n.model m\n", Some(Format::Blif)),
            (b"// hdr\nmodule m (a);\n", Some(Format::Verilog)),
            (b"# c17\nINPUT(1)\n", Some(Format::Bench)),
            (b"g = AND(a, b)\n", Some(Format::Bench)),
            (b"modulex = AND(a, b)\n", Some(Format::Bench)),
            (b"\n# only comments\n", None),
            (b"total gibberish", None),
            (b"\xff\xfe binary junk", None),
        ];
        for (bytes, want) in cases {
            assert_eq!(Format::sniff(bytes), *want, "{bytes:?}");
        }
    }

    #[test]
    fn parse_netlist_dispatches_all_formats() {
        let sources: [(&str, &[u8]); 4] = [
            ("bench", b"INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n"),
            (
                "blif",
                b".model m\n.inputs a\n.outputs y\n.gate inv i0=a O=y\n.end\n",
            ),
            ("aiger", b"aag 1 1 0 1 0\n2\n3\ni0 a\no0 y\n"),
            (
                "verilog",
                b"module m (a, y);\ninput a;\noutput y;\nnot g (y, a);\nendmodule\n",
            ),
        ];
        for (name, bytes) in sources {
            let format = Format::from_name(name).unwrap();
            let n = parse_netlist(format, bytes, unit_delays).unwrap_or_else(|e| {
                panic!("{name}: {e}");
            });
            assert_eq!(n.evaluate_outputs(&[false]), vec![true], "{name}");
            assert_eq!(n.evaluate_outputs(&[true]), vec![false], "{name}");
        }
    }

    #[test]
    fn parse_netlist_rejects_non_utf8_text_formats() {
        let err = parse_netlist(Format::Bench, b"\xff\xfe", unit_delays).unwrap_err();
        assert!(err.to_string().contains("UTF-8"), "{err}");
    }

    #[test]
    fn mcnc_like_delays_shape() {
        let inv = mcnc_like_delays(GateKind::Not, 1);
        let nand4 = mcnc_like_delays(GateKind::Nand, 4);
        assert!(inv.max < nand4.max, "wider gates are slower");
        // 90% lower bound.
        assert_eq!(
            inv.min.scaled(),
            ((inv.max.scaled() as f64) * 0.9).round() as i64
        );
        assert_eq!(mcnc_like_delays(GateKind::Input, 0), DelayBounds::ZERO);
    }
}
