//! Netlist file-format parsers.
//!
//! * [`bench`](mod@bench) — the ISCAS-85 `.bench` format the paper's evaluation
//!   circuits ship in; real benchmark files drop in unchanged.
//! * [`blif`] — a combinational subset of Berkeley's BLIF (the format SIS
//!   emitted after the paper's technology mapping step).
//!
//! Neither format carries delay data, so both parsers take a delay
//! assignment callback (gate kind + fanin count → [`DelayBounds`]), with
//! [`unit_delays`] and [`mcnc_like_delays`] provided.

pub mod bench;
pub mod blif;

use crate::delay::{DelayBounds, Time};
use crate::gate::GateKind;

/// Every gate gets delay `[1, 1]`.
pub fn unit_delays(_kind: GateKind, _fanins: usize) -> DelayBounds {
    DelayBounds::fixed(Time::from_int(1))
}

/// An MCNC-library-like delay assignment: inverters/buffers are fast,
/// complex gates scale with fanin, and `dᵐⁱⁿ = 0.9·dᵐᵃˣ` exactly as in
/// the paper's §12 experiments.
pub fn mcnc_like_delays(kind: GateKind, fanins: usize) -> DelayBounds {
    let base = match kind {
        GateKind::Not | GateKind::Buf => 1.0,
        GateKind::Nand | GateKind::Nor => 1.2,
        GateKind::And | GateKind::Or => 1.4,
        GateKind::Xor | GateKind::Xnor => 1.8,
        GateKind::Maj | GateKind::Mux => 1.6,
        GateKind::Input | GateKind::Const0 | GateKind::Const1 => return DelayBounds::ZERO,
    };
    let max = Time::from_units(base + 0.2 * fanins.saturating_sub(2) as f64);
    DelayBounds::scaled_min(max, 0.9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_delays_are_unit() {
        assert_eq!(
            unit_delays(GateKind::Nand, 4),
            DelayBounds::fixed(Time::from_int(1))
        );
    }

    #[test]
    fn mcnc_like_delays_shape() {
        let inv = mcnc_like_delays(GateKind::Not, 1);
        let nand4 = mcnc_like_delays(GateKind::Nand, 4);
        assert!(inv.max < nand4.max, "wider gates are slower");
        // 90% lower bound.
        assert_eq!(
            inv.min.scaled(),
            ((inv.max.scaled() as f64) * 0.9).round() as i64
        );
        assert_eq!(mcnc_like_delays(GateKind::Input, 0), DelayBounds::ZERO);
    }
}
